// Tests for the SIGUSR1 exposure-request plumbing (Section 4's mechanism).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "sched/signal_support.h"

namespace lcws::detail {
namespace {

TEST(SignalSupport, ExposureSignalIsUsr1) {
  EXPECT_EQ(exposure_signal(), SIGUSR1);
}

TEST(SignalSupport, InstallIsIdempotent) {
  install_exposure_handler();
  install_exposure_handler();  // must not abort or reinstall
}

TEST(SignalSupport, HandlerRunsRegisteredHook) {
  install_exposure_handler();
  static std::atomic<int> hits{0};
  set_exposure_hook([](void* ctx) noexcept {
    static_cast<std::atomic<int>*>(ctx)->fetch_add(1); }, &hits);
  const auto before = handler_invocations();
  ASSERT_TRUE(send_exposure_request(pthread_self()));
  // Delivery to self is synchronous on Linux for pthread_kill before
  // return-to-user, but don't rely on it: poll briefly.
  for (int i = 0; i < 1000 && hits.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(hits.load(), 1);
  EXPECT_GT(handler_invocations(), before);
  clear_exposure_hook();
}

TEST(SignalSupport, ClearedHookIsNotCalled) {
  install_exposure_handler();
  static std::atomic<int> hits{0};
  hits.store(0);
  set_exposure_hook([](void* ctx) noexcept {
    static_cast<std::atomic<int>*>(ctx)->fetch_add(1); }, &hits);
  clear_exposure_hook();
  const auto before = handler_invocations();
  ASSERT_TRUE(send_exposure_request(pthread_self()));
  for (int i = 0; i < 1000 && handler_invocations() == before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(handler_invocations(), before);  // handler ran...
  EXPECT_EQ(hits.load(), 0);                 // ...but had no hook
}

TEST(SignalSupport, HookIsThreadLocal) {
  install_exposure_handler();
  std::atomic<int> main_hits{0};
  std::atomic<int> other_hits{0};
  std::atomic<bool> registered{false};
  std::atomic<bool> quit{false};

  std::thread other([&] {
    set_exposure_hook([](void* ctx) noexcept {
      static_cast<std::atomic<int>*>(ctx)->fetch_add(1); }, &other_hits);
    registered.store(true, std::memory_order_release);
    while (!quit.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    clear_exposure_hook();
  });
  while (!registered.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  set_exposure_hook([](void* ctx) noexcept {
    static_cast<std::atomic<int>*>(ctx)->fetch_add(1); }, &main_hits);
  // Signal the other thread: only its hook must fire.
  ASSERT_TRUE(send_exposure_request(other.native_handle()));
  for (int i = 0; i < 2000 && other_hits.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  quit.store(true, std::memory_order_release);
  other.join();
  EXPECT_EQ(other_hits.load(), 1);
  EXPECT_EQ(main_hits.load(), 0);
  clear_exposure_hook();
}

TEST(SignalSupport, ManySignalsAreSafe) {
  install_exposure_handler();
  static std::atomic<int> hits{0};
  hits.store(0);
  set_exposure_hook([](void* ctx) noexcept {
    static_cast<std::atomic<int>*>(ctx)->fetch_add(1); }, &hits);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(send_exposure_request(pthread_self()));
    std::this_thread::yield();
  }
  // Signals may coalesce while blocked, but at least some must land and
  // nothing may crash.
  for (int i = 0; i < 1000 && hits.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(hits.load(), 0);
  clear_exposure_hook();
}

}  // namespace
}  // namespace lcws::detail
