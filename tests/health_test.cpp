// Unit tests for the graceful-degradation health monitor (DESIGN.md §6):
// config parsing, the healthy->degraded->healthy state machine, RTT
// evidence, the steal throttle and the backoff escalation hook.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "support/backoff.h"
#include "support/health.h"

namespace lcws::health {
namespace {

// setenv/unsetenv scope guard so knob tests cannot leak into each other.
class scoped_env {
 public:
  scoped_env(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~scoped_env() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

config quick_cfg() {
  config c;
  c.enabled = true;
  c.fail_streak = 3;
  c.fail_permille = 500;
  c.min_window = 4;
  c.probe_period = 2;
  c.recover_streak = 2;
  c.rtt_deadline_ns = 1000;  // 1us: timeouts are trivial to synthesize
  return c;
}

TEST(HealthConfig, DefaultsAreEnabledWithHysteresis) {
  const config c = config::from_env();
  EXPECT_TRUE(c.enabled);
  EXPECT_GE(c.fail_streak, 1u);
  EXPECT_GE(c.probe_period, 1u);
  EXPECT_GE(c.recover_streak, 1u);
  EXPECT_GT(c.rtt_deadline_ns, 0u);
  EXPECT_GT(c.steal_budget, 0u);
}

TEST(HealthConfig, KillSwitchAndKnobsParse) {
  scoped_env off("LCWS_DEGRADE_OFF", "1");
  scoped_env streak("LCWS_DEGRADE_FAIL_STREAK", "7");
  scoped_env probe("LCWS_DEGRADE_PROBE_PERIOD", "5");
  scoped_env recover("LCWS_DEGRADE_RECOVER", "9");
  scoped_env rtt("LCWS_DEGRADE_RTT_US", "250");
  const config c = config::from_env();
  EXPECT_FALSE(c.enabled);
  EXPECT_EQ(c.fail_streak, 7u);
  EXPECT_EQ(c.probe_period, 5u);
  EXPECT_EQ(c.recover_streak, 9u);
  EXPECT_EQ(c.rtt_deadline_ns, 250u * 1000);
}

TEST(HealthConfig, ZeroValuedKnobsAreClampedToOne) {
  scoped_env streak("LCWS_DEGRADE_FAIL_STREAK", "0");
  scoped_env probe("LCWS_DEGRADE_PROBE_PERIOD", "0");
  scoped_env recover("LCWS_DEGRADE_RECOVER", "0");
  const config c = config::from_env();
  EXPECT_EQ(c.fail_streak, 1u);
  EXPECT_EQ(c.probe_period, 1u);
  EXPECT_EQ(c.recover_streak, 1u);
}

TEST(HealthMonitor, ConsecutiveSendFailuresTrip) {
  monitor m(2, quick_cfg());
  EXPECT_FALSE(m.is_degraded(1));
  EXPECT_EQ(m.note_send_failure(1), transition::none);
  EXPECT_EQ(m.note_send_failure(1), transition::none);
  EXPECT_EQ(m.note_send_failure(1), transition::degraded);
  EXPECT_TRUE(m.is_degraded(1));
  EXPECT_FALSE(m.is_degraded(0));  // per-victim, not global
  EXPECT_EQ(m.degrade_count(), 1u);
  // Further failures while degraded report no new transition.
  EXPECT_EQ(m.note_send_failure(1), transition::none);
  EXPECT_EQ(m.degrade_count(), 1u);
}

TEST(HealthMonitor, SuccessResetsTheStreak) {
  monitor m(1, quick_cfg());
  m.note_send_failure(0);
  m.note_send_failure(0);
  m.note_send_ok(0);
  EXPECT_EQ(m.note_send_failure(0), transition::none);
  EXPECT_EQ(m.note_send_failure(0), transition::none);
  EXPECT_EQ(m.note_send_failure(0), transition::degraded);
}

TEST(HealthMonitor, EwmaTripsWithoutAStreak) {
  config c = quick_cfg();
  c.fail_streak = 1000;  // streak can never trip
  monitor m(1, c);
  // Alternate ok/fail: the streak stays <= 1 but the EWMA climbs past 50%
  // once the observation window fills.
  transition t = transition::none;
  for (int i = 0; i < 64 && t == transition::none; ++i) {
    m.note_send_ok(0);
    t = m.note_send_failure(0);
  }
  EXPECT_EQ(t, transition::degraded);
}

TEST(HealthMonitor, ProbeCadenceAndRecovery) {
  monitor m(1, quick_cfg());  // probe_period=2, recover_streak=2
  ASSERT_EQ(m.force_degraded(0, true), transition::degraded);
  // Every probe_period-th request probes.
  int probes = 0;
  for (int i = 0; i < 8; ++i) {
    if (m.should_probe(0)) ++probes;
  }
  EXPECT_EQ(probes, 4);
  // Sustained probe success restores; one success is not enough.
  EXPECT_EQ(m.note_probe_ok(0), transition::none);
  EXPECT_TRUE(m.is_degraded(0));
  EXPECT_EQ(m.note_probe_ok(0), transition::recovered);
  EXPECT_FALSE(m.is_degraded(0));
  EXPECT_EQ(m.recover_count(), 1u);
}

TEST(HealthMonitor, ProbeFailureResetsRecoveryStreak) {
  monitor m(1, quick_cfg());
  m.force_degraded(0, true);
  EXPECT_EQ(m.note_probe_ok(0), transition::none);
  m.note_probe_failure(0);  // streak back to zero
  EXPECT_EQ(m.note_probe_ok(0), transition::none);
  EXPECT_EQ(m.note_probe_ok(0), transition::recovered);
}

TEST(HealthMonitor, RecoveryClearsEvidenceForTheNextPhase) {
  monitor m(1, quick_cfg());
  m.note_send_failure(0);
  m.note_send_failure(0);
  m.note_send_failure(0);
  ASSERT_TRUE(m.is_degraded(0));
  m.note_probe_ok(0);
  m.note_probe_ok(0);
  ASSERT_FALSE(m.is_degraded(0));
  // The old failure history must not make the next trip cheaper.
  EXPECT_EQ(m.note_send_failure(0), transition::none);
  EXPECT_EQ(m.note_send_failure(0), transition::none);
  EXPECT_EQ(m.note_send_failure(0), transition::degraded);
}

TEST(HealthMonitor, RttSuccessFeedsLatencyEwmaNotFailure) {
  monitor m(1, quick_cfg());
  m.arm_rtt(0, /*now_ns=*/1000);
  m.note_handler_ran(0);  // the victim's handler answered
  EXPECT_EQ(m.poll_rtt(0, /*now_ns=*/5000), transition::none);
  EXPECT_EQ(m.rtt_ewma_ns(0), 4000u);
  EXPECT_FALSE(m.is_degraded(0));
  // Resolved: a second poll is a no-op.
  EXPECT_EQ(m.poll_rtt(0, 9000), transition::none);
  EXPECT_EQ(m.rtt_ewma_ns(0), 4000u);
}

// Regression: a sample *below* the running EWMA must decay it, not wrap
// the unsigned difference and catapult the average toward 2^64.
TEST(HealthMonitor, RttEwmaDecaysOnFasterSamples) {
  monitor m(1, quick_cfg());
  m.arm_rtt(0, /*now_ns=*/1000);
  m.note_handler_ran(0);
  EXPECT_EQ(m.poll_rtt(0, /*now_ns=*/9000), transition::none);
  EXPECT_EQ(m.rtt_ewma_ns(0), 8000u);
  m.arm_rtt(0, /*now_ns=*/10000);
  m.note_handler_ran(0);
  // 800ns sample against an 8000ns EWMA: 8000 + (800 - 8000) / 8 = 7100.
  EXPECT_EQ(m.poll_rtt(0, /*now_ns=*/10800), transition::none);
  EXPECT_EQ(m.rtt_ewma_ns(0), 7100u);
}

TEST(HealthMonitor, RttTimeoutsTripOnlyViaSustainedEwma) {
  config c = quick_cfg();
  c.fail_streak = 1000;
  monitor m(1, c);
  transition t = transition::none;
  for (int i = 0; i < 64 && t == transition::none; ++i) {
    m.arm_rtt(0, 1000);
    t = m.poll_rtt(0, 1000 + c.rtt_deadline_ns + 1);  // past the deadline
  }
  EXPECT_EQ(t, transition::degraded);
  EXPECT_GE(m.degrade_count(), 1u);
}

TEST(HealthMonitor, ArmRttIsOneInFlightPerVictim) {
  monitor m(1, quick_cfg());
  m.arm_rtt(0, 1000);
  m.arm_rtt(0, 2000);  // no-op: first measurement still pending
  m.note_handler_ran(0);
  EXPECT_EQ(m.poll_rtt(0, 3000), transition::none);
  EXPECT_EQ(m.rtt_ewma_ns(0), 2000u);  // measured from 1000, not 2000
}

TEST(HealthMonitor, StealEwmaConvergesTowardOutcomes) {
  monitor m(1, quick_cfg());
  for (int i = 0; i < 64; ++i) m.note_steal_outcome(0, true);
  // All-success drives the EWMA near 1000 permille.
  EXPECT_FALSE(m.pressure(0));  // pressure needs a preemption sample too
  const std::string dump = m.debug_string(0);
  EXPECT_NE(dump.find("steal_ewma_pm="), std::string::npos);
  EXPECT_NE(dump.find("degraded=0"), std::string::npos);
}

TEST(HealthMonitor, SamplePreemptionIsSafeAndRateLimited) {
  monitor m(1, quick_cfg());
  // Two immediate samples: the second is inside the sample period and
  // must be a no-op; neither may crash or set pressure on an idle thread.
  m.sample_preemption(0, 1);
  m.sample_preemption(0, 2);
  EXPECT_FALSE(m.pressure(0));
}

TEST(StealThrottle, BudgetExhaustsWithinWindowAndResets) {
  steal_throttle t(/*budget=*/3, /*window_ns=*/1000);
  EXPECT_FALSE(t.note_attempt(100));
  EXPECT_FALSE(t.note_attempt(200));
  EXPECT_FALSE(t.note_attempt(300));
  EXPECT_TRUE(t.note_attempt(400));   // 4th failed attempt: yield
  EXPECT_TRUE(t.note_attempt(500));
  EXPECT_FALSE(t.note_attempt(1200));  // new window
  t.reset(1300);
  EXPECT_EQ(t.attempts_in_window(), 0u);
}

TEST(Backoff, EscalateJumpsStraightToYield) {
  backoff bo(/*spins_before_yield=*/10);
  EXPECT_EQ(bo.step(), 0u);
  bo.escalate();
  EXPECT_EQ(bo.step(), 10u);
  bo.pause();  // yields; must not advance past the threshold
  EXPECT_EQ(bo.step(), 10u);
  bo.reset();
  EXPECT_EQ(bo.step(), 0u);
}

}  // namespace
}  // namespace lcws::health
