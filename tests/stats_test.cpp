// Unit tests for the synchronization-operation counters.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "stats/counters.h"

namespace lcws::stats {
namespace {

// Restores thread-local counter routing and zeroes the fallback block.
class StatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_local_counters(nullptr);
    local_counters() = op_counters{};
  }
  void TearDown() override { set_local_counters(nullptr); }
};

TEST_F(StatsTest, CountersStartAtZero) {
  const op_counters& c = local_counters();
  EXPECT_EQ(c.fences, 0u);
  EXPECT_EQ(c.cas, 0u);
  EXPECT_EQ(c.steals, 0u);
}

TEST_F(StatsTest, CountingHelpersIncrement) {
  count_fence();
  count_fence();
  count_cas(true);
  count_cas(false);
  count_push();
  count_pop_private();
  count_pop_public();
  count_steal_attempt();
  count_steal_success();
  count_steal_abort();
  count_private_work_seen();
  count_exposure(3);
  count_exposure_request();
  count_signal_sent();
  count_task_executed();
  count_idle_loop();

  const op_counters& c = local_counters();
  EXPECT_EQ(c.fences, 2u);
  EXPECT_EQ(c.cas, 2u);
  EXPECT_EQ(c.cas_failed, 1u);
  EXPECT_EQ(c.pushes, 1u);
  EXPECT_EQ(c.pops_private, 1u);
  EXPECT_EQ(c.pops_public, 1u);
  EXPECT_EQ(c.steal_attempts, 1u);
  EXPECT_EQ(c.steals, 1u);
  EXPECT_EQ(c.steal_aborts, 1u);
  EXPECT_EQ(c.private_work_seen, 1u);
  EXPECT_EQ(c.exposures, 3u);
  EXPECT_EQ(c.exposure_requests, 1u);
  EXPECT_EQ(c.signals_sent, 1u);
  EXPECT_EQ(c.tasks_executed, 1u);
  EXPECT_EQ(c.idle_loops, 1u);
}

TEST_F(StatsTest, RedirectionRoutesToBlock) {
  op_counters block;
  set_local_counters(&block);
  count_fence();
  count_push();
  set_local_counters(nullptr);
  count_fence();  // goes to the fallback, not the block

  EXPECT_EQ(block.fences, 1u);
  EXPECT_EQ(block.pushes, 1u);
  EXPECT_EQ(local_counters().fences, 1u);
  EXPECT_EQ(local_counters().pushes, 0u);
}

TEST_F(StatsTest, FallbackIsPerThread) {
  count_fence();
  std::uint64_t other_fences = 99;
  std::thread t([&] { other_fences = local_counters().fences; });
  t.join();
  EXPECT_EQ(other_fences, 0u);
  EXPECT_EQ(local_counters().fences, 1u);
}

TEST_F(StatsTest, PlusEqualsAndMinus) {
  op_counters a;
  a.fences = 5;
  a.cas = 3;
  a.steals = 2;
  op_counters b;
  b.fences = 1;
  b.cas = 1;
  b.steals = 1;
  a += b;
  EXPECT_EQ(a.fences, 6u);
  EXPECT_EQ(a.cas, 4u);
  EXPECT_EQ(a.steals, 3u);
  const op_counters d = a - b;
  EXPECT_EQ(d.fences, 5u);
  EXPECT_EQ(d.cas, 3u);
  EXPECT_EQ(d.steals, 2u);
}

TEST_F(StatsTest, AggregateSumsBlocks) {
  std::vector<cache_aligned<op_counters>> blocks(3);
  blocks[0]->fences = 1;
  blocks[1]->fences = 2;
  blocks[2]->fences = 3;
  blocks[1]->steals = 4;
  blocks[2]->steal_attempts = 8;
  const profile p = aggregate(blocks);
  EXPECT_EQ(p.totals.fences, 6u);
  EXPECT_EQ(p.totals.steals, 4u);
  EXPECT_EQ(p.totals.steal_attempts, 8u);
  EXPECT_DOUBLE_EQ(p.steal_success_rate(), 0.5);
}

TEST_F(StatsTest, DerivedFractionsHandleZeroDenominators) {
  profile p;
  EXPECT_EQ(p.exposed_not_stolen_fraction(), 0.0);
  EXPECT_EQ(p.steal_success_rate(), 0.0);
}

TEST_F(StatsTest, ExposedNotStolenFraction) {
  profile p;
  p.totals.exposures = 10;
  p.totals.pops_public = 4;  // owner re-took 4 of the 10 exposed tasks
  EXPECT_DOUBLE_EQ(p.exposed_not_stolen_fraction(), 0.4);
}

TEST_F(StatsTest, FormatMentionsKeyFields) {
  profile p;
  p.totals.fences = 7;
  p.totals.cas = 9;
  const std::string text = format_profile(p);
  EXPECT_NE(text.find("fences=7"), std::string::npos);
  EXPECT_NE(text.find("cas=9"), std::string::npos);
  EXPECT_NE(text.find("steal"), std::string::npos);
}

}  // namespace
}  // namespace lcws::stats
