// Verifies the LCWS_NO_STATS compile mode: the counting helpers become
// no-ops (profiles stay zero) while the schedulers remain fully
// functional. This TU is compiled with -DLCWS_NO_STATS (see CMakeLists).
#ifndef LCWS_NO_STATS
#error "this test must be compiled with LCWS_NO_STATS"
#endif

#include <gtest/gtest.h>

#include <atomic>

#include "parallel/parallel_for.h"
#include "parallel/reduce.h"
#include "sched/scheduler.h"

namespace lcws {
namespace {

TEST(NoStats, SchedulersStillWork) {
  signal_scheduler sched(4);
  std::vector<std::uint32_t> v(100000);
  sched.run([&] {
    par::parallel_for(sched, 0, v.size(), [&](std::size_t i) {
      v[i] = static_cast<std::uint32_t>(i);
    });
  });
  const auto total = sched.run(
      [&] { return par::sum<std::uint64_t>(sched, v.begin(), v.size()); });
  EXPECT_EQ(total, 99999ull * 100000 / 2);
}

TEST(NoStats, ProfileStaysZero) {
  ws_scheduler sched(4);
  std::atomic<int> count{0};
  sched.run([&] {
    par::parallel_for(sched, 0, 10000, [&](std::size_t) { count++; });
  });
  EXPECT_EQ(count.load(), 10000);
  const auto t = sched.profile().totals;
  EXPECT_EQ(static_cast<std::uint64_t>(t.fences), 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(t.cas), 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(t.pushes), 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(t.tasks_executed), 0u);
}

TEST(NoStats, DirectCountersStillCompile) {
  stats::count_fence();
  stats::count_cas(true);
  stats::count_exposure(5);
  EXPECT_EQ(static_cast<std::uint64_t>(stats::local_counters().fences), 0u);
}

// LCWS_NO_STATS strips the trace emit sites with the counters: even with
// LCWS_TRACE pointing at a file, the per-worker rings must record nothing
// (trace::emit is a no-op in this compile mode, same ODR story as the
// counters).
TEST(NoStats, TraceEmitIsCompiledOut) {
  const std::string path = "/tmp/lcws_nostats_trace.json";
  setenv("LCWS_TRACE", path.c_str(), 1);
  {
    ws_scheduler sched(2);
    sched.run([&] {
      std::atomic<int> n{0};
      par::parallel_for(sched, 0, 1000, [&](std::size_t) { n++; });
    });
    ASSERT_TRUE(sched.tracer().enabled());
    for (std::size_t w = 0; w < sched.num_workers(); ++w) {
      EXPECT_EQ(sched.tracer().worker_ring(w)->emitted(), 0u);
    }
  }
  unsetenv("LCWS_TRACE");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lcws
