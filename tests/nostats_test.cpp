// Verifies the LCWS_NO_STATS compile mode: the counting helpers become
// no-ops (profiles stay zero) while the schedulers remain fully
// functional. This TU is compiled with -DLCWS_NO_STATS (see CMakeLists).
#ifndef LCWS_NO_STATS
#error "this test must be compiled with LCWS_NO_STATS"
#endif

#include <gtest/gtest.h>

#include <atomic>

#include "parallel/parallel_for.h"
#include "parallel/reduce.h"
#include "sched/scheduler.h"

namespace lcws {
namespace {

TEST(NoStats, SchedulersStillWork) {
  signal_scheduler sched(4);
  std::vector<std::uint32_t> v(100000);
  sched.run([&] {
    par::parallel_for(sched, 0, v.size(), [&](std::size_t i) {
      v[i] = static_cast<std::uint32_t>(i);
    });
  });
  const auto total = sched.run(
      [&] { return par::sum<std::uint64_t>(sched, v.begin(), v.size()); });
  EXPECT_EQ(total, 99999ull * 100000 / 2);
}

TEST(NoStats, ProfileStaysZero) {
  ws_scheduler sched(4);
  std::atomic<int> count{0};
  sched.run([&] {
    par::parallel_for(sched, 0, 10000, [&](std::size_t) { count++; });
  });
  EXPECT_EQ(count.load(), 10000);
  const auto t = sched.profile().totals;
  EXPECT_EQ(static_cast<std::uint64_t>(t.fences), 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(t.cas), 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(t.pushes), 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(t.tasks_executed), 0u);
}

TEST(NoStats, DirectCountersStillCompile) {
  stats::count_fence();
  stats::count_cas(true);
  stats::count_exposure(5);
  EXPECT_EQ(static_cast<std::uint64_t>(stats::local_counters().fences), 0u);
}

}  // namespace
}  // namespace lcws
