// Observability layer (DESIGN.md §10): ring semantics, zero-cost-when-off
// counter bit-equality, an all-8-scheduler Chrome-trace smoke whose steal
// events must reconcile with the op-counter identities, trace_summary.py
// semantic validation, and the perf_counters unavailable fallback.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "parallel/parallel_for.h"
#include "sched/dispatch.h"
#include "sched/scheduler.h"
#include "stats/perf_counters.h"
#include "stats/trace.h"

namespace lcws {
namespace {

// ---- helpers ---------------------------------------------------------------

std::string tmp_path(const std::string& stem) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr && *dir ? dir : "/tmp") + "/lcws_" +
         stem + "_" + std::to_string(::getpid()) + ".json";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::size_t count_occurrences(const std::string& hay,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// Minimal structural JSON validation: first non-space char '{', quotes and
// braces/brackets balance. (CI additionally parses emitted traces with
// python3 json / scripts/trace_summary.py; see PythonSummaryValidates.)
bool looks_like_json(const std::string& s) {
  if (s.empty() || s.find_first_not_of(" \t\r\n") == std::string::npos) {
    return false;
  }
  if (s[s.find_first_not_of(" \t\r\n")] != '{') return false;
  long brace = 0, bracket = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++brace;
    if (c == '}') --brace;
    if (c == '[') ++bracket;
    if (c == ']') --bracket;
    if (brace < 0 || bracket < 0) return false;
  }
  return brace == 0 && bracket == 0 && !in_string;
}

// A fork-join tree whose leaves do real work: deep enough to produce
// steals on every scheduler at P=4, small enough to stay under a 64k ring.
template <typename Sched>
std::uint64_t tree_sum(Sched& sched, std::size_t depth) {
  if (depth == 0) {
    std::uint64_t x = 1;
    for (int i = 0; i < 64; ++i) x = x * 1099511628211ull + 17;
    return x | 1;
  }
  std::uint64_t l = 0, r = 0;
  sched.pardo([&] { l = tree_sum(sched, depth - 1); },
              [&] { r = tree_sum(sched, depth - 1); });
  return l + r;
}

struct env_guard {
  env_guard(const char* name, const std::string& value) : name_(name) {
    setenv(name, value.c_str(), 1);
  }
  ~env_guard() { unsetenv(name_); }
  const char* name_;
};

// ---- ring unit tests -------------------------------------------------------

TEST(TraceRing, CapacityRoundsToPowerOfTwo) {
  trace::ring r(100);
  EXPECT_EQ(r.capacity(), 128u);
  trace::ring r8(8);
  EXPECT_EQ(r8.capacity(), 8u);
}

TEST(TraceRing, WraparoundKeepsNewestInOrder) {
  trace::ring r(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    r.emit(trace::event::steal_attempt, i);
  }
  EXPECT_EQ(r.emitted(), 20u);
  EXPECT_EQ(r.dropped(), 12u);
  const auto snap = r.snapshot();
  ASSERT_EQ(snap.size(), 8u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].kind, trace::event::steal_attempt);
    EXPECT_EQ(snap[i].arg, 12u + i);  // oldest retained is #12
    if (i > 0) {
      EXPECT_GE(snap[i].ts, snap[i - 1].ts);
    }
  }
}

TEST(TraceRing, EventOrderingWithinWorker) {
  trace::ring r(64);
  r.emit(trace::event::run_begin);
  r.emit(trace::event::task_begin, 1);
  r.emit(trace::event::steal_attempt, 3);
  r.emit(trace::event::steal_success, 3);
  r.emit(trace::event::task_end);
  r.emit(trace::event::run_end);
  const auto snap = r.snapshot();
  ASSERT_EQ(snap.size(), 6u);
  EXPECT_EQ(snap.front().kind, trace::event::run_begin);
  EXPECT_EQ(snap.back().kind, trace::event::run_end);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_GE(snap[i].ts, snap[i - 1].ts) << "ring order must track time";
  }
  EXPECT_EQ(snap[2].arg, 3u);
}

TEST(TraceRing, ArgsTruncateTo56Bits) {
  trace::ring r(8);
  r.emit(trace::event::deque_grow, ~std::uint64_t{0});
  const auto snap = r.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].kind, trace::event::deque_grow);
  EXPECT_EQ(snap[0].arg, trace::kArgMask);
}

TEST(TraceRing, EmitIsNoopWithoutLocalRing) {
  trace::set_local_ring(nullptr);
  trace::emit(trace::event::steal_attempt, 1);  // must not crash
  trace::ring r(8);
  trace::set_local_ring(&r);
  trace::emit(trace::event::steal_attempt, 1);
  trace::set_local_ring(nullptr);
  EXPECT_EQ(r.emitted(), 1u);
}

// ---- zero cost when off ----------------------------------------------------

// With LCWS_TRACE unset vs set, a deterministic P=1 run must produce
// bit-identical op counters: the tracer writes only to its own rings and
// never touches the paper's fence/CAS/steal accounting.
TEST(TraceZeroCost, CountersBitIdenticalTraceOnVsOff) {
  const auto run_once = [](bool traced) {
    std::optional<env_guard> guard;
    if (traced) guard.emplace("LCWS_TRACE", tmp_path("zerocost"));
    ws_scheduler sched(1);
    sched.run([&] { tree_sum(sched, 10); });
    return sched.profile().totals;
  };
  const auto off = run_once(false);
  const auto on = run_once(true);
  EXPECT_EQ(off.fences.get(), on.fences.get());
  EXPECT_EQ(off.cas.get(), on.cas.get());
  EXPECT_EQ(off.pushes.get(), on.pushes.get());
  EXPECT_EQ(off.pops_private.get(), on.pops_private.get());
  EXPECT_EQ(off.pops_public.get(), on.pops_public.get());
  EXPECT_EQ(off.steals.get(), on.steals.get());
  EXPECT_EQ(off.steal_attempts.get(), on.steal_attempts.get());
  EXPECT_EQ(off.tasks_executed.get(), on.tasks_executed.get());
  EXPECT_GT(off.pushes.get(), 0u);  // the workload actually forked
  std::remove(tmp_path("zerocost").c_str());
}

// ---- all-8-scheduler smoke -------------------------------------------------

TEST(TraceSmoke, All8SchedulersEmitParseableChromeJson) {
  for (const sched_kind kind : all_sched_kinds) {
    const std::string path =
        tmp_path(std::string("smoke_") + to_string(kind));
    stats::profile prof;
    std::uint64_t emitted_max = 0;
    std::size_t ring_capacity = 0;
    {
      env_guard trace_guard("LCWS_TRACE", path);
      env_guard ring_guard("LCWS_TRACE_RING", "65536");
      with_scheduler(kind, 4, [&](auto& sched) {
        sched.run([&] { tree_sum(sched, 9); });
        prof = sched.profile();
        ASSERT_TRUE(sched.tracer().enabled());
        ring_capacity = sched.tracer().worker_ring(0)->capacity();
        for (std::size_t w = 0; w < sched.num_workers(); ++w) {
          emitted_max = std::max(emitted_max,
                                 sched.tracer().worker_ring(w)->emitted());
        }
      });
    }
    // Reconciliation below requires lossless rings.
    ASSERT_LE(emitted_max, ring_capacity) << to_string(kind);

    const std::string body = slurp(path);
    ASSERT_FALSE(body.empty()) << path;
    EXPECT_TRUE(looks_like_json(body)) << to_string(kind);
    EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(body.find("thread_name"), std::string::npos);

    // Steal-event reconciliation with the §3.3 counter identities: the
    // scheduler emits steal_success exactly when try_steal returns a task.
    // For wsmult, pop_top counts a "steal" on both claim-won and
    // claim-lost extractions (claims_lost of them return no task), so
    // scheduler-visible successes are steals - claims_lost; for every
    // other scheduler claims_lost == 0 and this is exactly `steals`.
    const auto successes = count_occurrences(body, "\"steal_success\"");
    const auto expected =
        prof.totals.steals.get() - prof.totals.claims_lost.get();
    EXPECT_EQ(successes, expected) << to_string(kind);
    EXPECT_GE(prof.totals.useful_steals.get() +
                  (kind == sched_kind::wsmult ? 0u : expected),
              expected)
        << "useful_steals identity sanity";

    // Every begin/end pair present for tasks; the run slice closed.
    EXPECT_GT(count_occurrences(body, "\"task\""), 0u) << to_string(kind);
    EXPECT_NE(body.find("\"run\""), std::string::npos);
    std::remove(path.c_str());
  }
}

// Steal *attempt* reconciliation holds exactly for the deque families
// (every try_steal counts one attempt). The mailbox family's early return
// for announced-parked victims traces an attempt without counting one, so
// it is excluded by design.
//
// Idle workers keep attempting steals between run() returning and pool
// shutdown, so a profile() snapshot taken inside the visitor can lag the
// final trace file. Both the exit dump and the final trace rewrite happen
// in the destructor *after* every worker has joined, so those two views
// are the pool's quiescent state and must agree exactly.
TEST(TraceSmoke, StealAttemptsReconcileForDequeFamilies) {
  for (const sched_kind kind :
       {sched_kind::ws, sched_kind::uslcws, sched_kind::wsmult}) {
    const std::string path =
        tmp_path(std::string("attempts_") + to_string(kind));
    const std::string dump_path =
        tmp_path(std::string("attempts_dump_") + to_string(kind));
    std::remove(dump_path.c_str());  // the dump appends
    bool dropped_any = false;
    {
      env_guard trace_guard("LCWS_TRACE", path);
      env_guard ring_guard("LCWS_TRACE_RING", "65536");
      env_guard dump_guard("LCWS_DUMP_ON_EXIT", dump_path);
      with_scheduler(kind, 4, [&](auto& sched) {
        sched.run([&] { tree_sum(sched, 9); });
        for (std::size_t w = 0; w < sched.num_workers(); ++w) {
          dropped_any |= sched.tracer().worker_ring(w)->dropped() != 0;
        }
      });
    }
    ASSERT_FALSE(dropped_any) << to_string(kind) << ": raise ring size";

    // Sum per-worker attempts out of the exit dump's "steals=S/A" fields.
    const std::string dump = slurp(dump_path);
    ASSERT_FALSE(dump.empty()) << dump_path;
    std::uint64_t dump_attempts = 0;
    std::size_t dump_workers = 0;
    const std::regex steals_re(R"( steals=(\d+)/(\d+))");
    for (auto it = std::sregex_iterator(dump.begin(), dump.end(), steals_re);
         it != std::sregex_iterator(); ++it) {
      dump_attempts += std::stoull((*it)[2].str());
      ++dump_workers;
    }
    ASSERT_EQ(dump_workers, 4u) << dump;

    const std::string body = slurp(path);
    EXPECT_EQ(count_occurrences(body, "\"steal_attempt\""), dump_attempts)
        << to_string(kind);
    std::remove(path.c_str());
    std::remove(dump_path.c_str());
  }
}

TEST(TraceSmoke, TraceTailAppearsInWorkerDump) {
  const std::string path = tmp_path("dump");
  env_guard trace_guard("LCWS_TRACE", path);
  ws_scheduler sched(2);
  sched.run([&] { tree_sum(sched, 6); });
  const std::string dump = sched.dump_worker_state();
  EXPECT_NE(dump.find("trace tail"), std::string::npos);
  EXPECT_NE(dump.find("task"), std::string::npos);
  std::remove(path.c_str());
}

// ---- trace_summary.py ------------------------------------------------------

// Semantic validation via the Python summarizer: utilization, steal
// latency pairing and park episodes must be derivable, and --check's
// ordering/balance gates must pass on a real trace.
TEST(TraceSummary, PythonSummaryValidates) {
  if (std::system("python3 -c 'import json' >/dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 unavailable";
  }
#ifndef LCWS_SOURCE_DIR
  GTEST_SKIP() << "LCWS_SOURCE_DIR not defined";
#else
  const std::string path = tmp_path("summary");
  {
    env_guard trace_guard("LCWS_TRACE", path);
    env_guard ring_guard("LCWS_TRACE_RING", "65536");
    uslcws_scheduler sched(4);
    sched.run([&] { tree_sum(sched, 9); });
  }
  const std::string script =
      std::string(LCWS_SOURCE_DIR) + "/scripts/trace_summary.py";
  const std::string cmd =
      "python3 " + script + " " + path + " --check >/dev/null 2>&1";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;
  std::remove(path.c_str());
#endif
}

// ---- perf_counters ---------------------------------------------------------

TEST(PerfCounters, ForcedEACCESReportsCleanUnavailableMarker) {
  stats::perf_group g;
  EXPECT_FALSE(g.open(EACCES));
  EXPECT_FALSE(g.is_open());
  EXPECT_EQ(g.error(), EACCES);
  EXPECT_EQ(g.status(), "unavailable:EACCES");
  const auto v = g.read();
  EXPECT_FALSE(v.any());
}

TEST(PerfCounters, ForcedENOENTReportsCleanUnavailableMarker) {
  stats::perf_group g;
  EXPECT_FALSE(g.open(ENOENT));
  EXPECT_EQ(g.status(), "unavailable:ENOENT");
}

TEST(PerfCounters, EnvForceFailFlowsIntoSchedulerProfile) {
  env_guard guard("LCWS_PERF_FORCE_FAIL", "EACCES");
  ws_scheduler sched(2);
  sched.run([&] { tree_sum(sched, 6); });
  const auto hw = sched.profile().hw;
  // The marker names the failure; the numeric fields must be zeros (a
  // clean "unavailable", never zeros masquerading as measurements).
  EXPECT_EQ(hw.status, "unavailable:EACCES");
  EXPECT_FALSE(hw.available);
  EXPECT_EQ(hw.cycles, 0u);
  EXPECT_EQ(hw.cache_misses, 0u);
  // And the worker dump carries the same verdict.
  const std::string dump = sched.dump_worker_state();
  EXPECT_NE(dump.find("err=EACCES"), std::string::npos);
}

TEST(PerfCounters, LcwsPerfOffDisablesSampling) {
  env_guard guard("LCWS_PERF", "0");
  ws_scheduler sched(2);
  sched.run([&] { tree_sum(sched, 6); });
  const auto hw = sched.profile().hw;
  EXPECT_EQ(hw.status, "unavailable:off");
  EXPECT_FALSE(hw.available);
  EXPECT_FALSE(sched.hw_counters_enabled());
}

TEST(PerfCounters, RealOpenEitherWorksOrFailsCleanly) {
  // Container-agnostic: where the kernel permits, values are real and
  // nonzero; where it doesn't, the status says so — never silent zeros.
  ws_scheduler sched(2);
  sched.run([&] { tree_sum(sched, 8); });
  const auto hw = sched.profile().hw;
  ASSERT_FALSE(hw.status.empty());
  if (hw.available && hw.status == "available") {
    EXPECT_GT(hw.cycles, 0u);
    EXPECT_GT(hw.instructions, 0u);
  } else if (!hw.available) {
    EXPECT_EQ(hw.status.rfind("unavailable:", 0), 0u) << hw.status;
    EXPECT_EQ(hw.cycles, 0u);
  }
}

}  // namespace
}  // namespace lcws
