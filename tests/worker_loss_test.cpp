// Worker-loss containment and cancellation (DESIGN.md §11).
//
// This binary links the LCWS_FAULT_INJECTION build so the worker_crash
// site is live: workers die at scheduling boundaries (loop top — wedge or
// abrupt exit) or between claiming a stolen task and executing it (wedge,
// the one flavor that strands a live joiner). With LCWS_WORKER_LOST_MS
// armed, every run must either complete with the correct result on the
// surviving workers or surface worker_lost_error through the ordinary
// exception path — never hang, never abort — and the pool must stay
// reusable afterwards. The deadline/cancellation tests need no faults at
// all: run_for and cancel_run are ordinary API surface.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>

#include "sched/dispatch.h"
#include "sched/run_errors.h"
#include "sched/scheduler.h"
#include "stats/counters.h"
#include "support/fault_injection.h"

namespace lcws {
namespace {

template <typename Sched>
std::uint64_t fib(Sched& sched, unsigned n) {
  if (n < 2) return n;
  if (n < 10) {
    std::uint64_t a = 0, b = 1;
    for (unsigned i = 1; i < n; ++i) {
      const std::uint64_t c = a + b;
      a = b;
      b = c;
    }
    return b;
  }
  std::uint64_t left = 0, right = 0;
  sched.pardo([&] { left = fib(sched, n - 1); },
              [&] { right = fib(sched, n - 2); });
  return left + right;
}

// Crash-sweep workload: a balanced fork tree whose leaves each burn ~20µs
// of CPU, so one run spans many scheduling quanta. A cutoff-fib kernel
// finishes in microseconds — often before workers 1..3 even wake — which
// starves the loop-top/mid-task crash sites of draws and turns the sweep
// into a no-op. Returns the leaf count (1 << depth).
template <typename Sched>
std::uint64_t burn_tree(Sched& sched, unsigned depth) {
  if (depth == 0) {
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 20000; ++i) sink = sink + 1;
    return 1;
  }
  std::uint64_t l = 0, r = 0;
  sched.pardo([&] { l = burn_tree(sched, depth - 1); },
              [&] { r = burn_tree(sched, depth - 1); });
  return l + r;
}

// Seeds per scheduler kind; acceptance floor is 64, raisable for soak runs.
int sweep_seeds() {
  if (const char* s = std::getenv("LCWS_FI_SEEDS")) {
    const int n = std::atoi(s);
    if (n > 0) return n;
  }
  return 64;
}

// setenv/unsetenv scope guard; the scheduler reads LCWS_* once at
// construction, so guards must outlive the pool under test.
class scoped_env {
 public:
  scoped_env(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~scoped_env() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

// A detection can race the very end of a run: the root returns while
// another worker is still inside recover_lost_worker, so a snapshot taken
// immediately after run() may catch the books mid-update. Poll until two
// consecutive snapshots agree on every §11-relevant counter.
template <typename Sched>
stats::op_counters settled_totals(Sched& sched) {
  auto prev = sched.profile().totals;
  for (int i = 0; i < 200; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    auto next = sched.profile().totals;
    if (next.workers_lost.get() == prev.workers_lost.get() &&
        next.deques_adopted.get() == prev.deques_adopted.get() &&
        next.tasks_orphaned.get() == prev.tasks_orphaned.get() &&
        next.pushes.get() == prev.pushes.get() &&
        next.steals.get() == prev.steals.get() &&
        next.pops_private.get() == prev.pops_private.get() &&
        next.pops_public.get() == prev.pops_public.get() &&
        next.tasks_executed.get() == prev.tasks_executed.get()) {
      return next;
    }
    prev = next;
  }
  return prev;
}

// ---------------------------------------------------------------------------
// The crash sweep
// ---------------------------------------------------------------------------

class WorkerLoss : public ::testing::TestWithParam<sched_kind> {
 protected:
  void TearDown() override { fi::disable(); }
};

// seeds x schedulers with the worker_crash site armed at a low rate, so
// workers survive long enough to steal before dying — exercising both the
// clean-loss path (boundary death, run completes short-handed) and the
// repair path (mid-task wedge, run returns worker_lost_error). Every run
// must terminate, every result must be correct or carry the structured
// error, and the push/pop/steal/orphan books must balance across the run
// plus a follow-up clean run on the diminished pool.
TEST_P(WorkerLoss, EveryCrashScheduleCompletesOrReportsLoss) {
  const sched_kind kind = GetParam();
  const int seeds = sweep_seeds();
  // Short detection window so a wedged joiner is repaired in ~2 windows;
  // real deployments would use hundreds of ms.
  scoped_env lost_ms("LCWS_WORKER_LOST_MS", "25");
  int lost_runs = 0;
  std::uint64_t crashes_seen = 0;
  // Several faulted runs per seed on one pool: workers pass the loop-top
  // site only between top-level tasks (nested pardo work drains inside
  // join loops), so a single run offers each worker just a handful of
  // draws — and a corpse from run j makes runs j+1.. genuinely
  // short-handed, which is exactly the regime under test.
  constexpr int kRunsPerSeed = 6;
  for (int seed = 0; seed < seeds; ++seed) {
    // 10/1000 per visit: a worker survives ~100 boundary visits (many
    // runs), so steals — and therefore mid-task wedges that strand a
    // live joiner — happen well before most deaths.
    fi::configure(static_cast<std::uint64_t>(seed) * 0xd1342543ULL + 7,
                  /*rate_permille=*/10,
                  fi::site_bit(fi::site::worker_crash) |
                      fi::site_bit(fi::site::worker_crash_midtask));
    with_scheduler(kind, 4, [&](auto& sched) {
      sched.reset_counters();
      ASSERT_TRUE(sched.loss_detection_active());
      for (int r = 0; r < kRunsPerSeed; ++r) {
        try {
          const std::uint64_t got =
              sched.run([&] { return burn_tree(sched, 9); });
          EXPECT_EQ(got, 512u)
              << to_string(kind) << " seed " << seed << " run " << r;
        } catch (const worker_lost_error& e) {
          // A mid-task wedge stranded a join; the repair protocol
          // completed it with the structured error. The dump is the
          // post-mortem.
          ++lost_runs;
          EXPECT_GE(e.worker(), 1u) << to_string(kind) << " seed " << seed;
          EXPECT_LT(e.worker(), 4u) << to_string(kind) << " seed " << seed;
          EXPECT_FALSE(e.worker_dump().empty())
              << to_string(kind) << " seed " << seed;
          EXPECT_GE(sched.lost_workers(), 1u)
              << to_string(kind) << " seed " << seed;
        }
      }
      // Injected crashes, not detected ones: a loop-top corpse holds no
      // task, so a short run completes without ever needing the verdict —
      // workers_lost stays 0 unless a joiner was actually stranded (or an
      // idle poll happens to land past the window). The site being alive
      // is what this counts; detection is asserted via lost_runs below and
      // the deterministic DebugLoseWorker tests.
      crashes_seen += fi::injected_count(fi::site::worker_crash) +
                      fi::injected_count(fi::site::worker_crash_midtask);
      // The pool must remain reusable after any outcome: stop injecting
      // and run again on whatever workers survive (worker 0 always does).
      fi::disable();
      EXPECT_EQ(sched.run([&] { return fib(sched, 15); }), 610u)
          << to_string(kind) << " seed " << seed;
      const auto t = settled_totals(sched);
      // Loss bookkeeping: every lost-worker verdict adopts exactly one
      // deque (mailbox victims have no thief-side drain, so nothing is
      // adoptable and everything unreachable is orphaned instead).
      if (kind == sched_kind::private_deques) {
        EXPECT_EQ(t.deques_adopted.get(), 0u)
            << to_string(kind) << " seed " << seed;
      } else {
        EXPECT_EQ(t.deques_adopted.get(), t.workers_lost.get())
            << to_string(kind) << " seed " << seed;
      }
      EXPECT_EQ(t.workers_lost.get(), sched.lost_workers())
          << to_string(kind) << " seed " << seed;
      // Balance: every pushed job was consumed exactly once or is
      // accounted orphaned in a dead worker's unreachable private part.
      if (kind == sched_kind::wsmult) {
        EXPECT_EQ(t.steals.get(), t.useful_steals.get() + t.claims_lost.get())
            << to_string(kind) << " seed " << seed;
        EXPECT_EQ(t.pushes.get(), t.pops_private.get() +
                                      t.useful_steals.get() +
                                      t.tasks_orphaned.get())
            << to_string(kind) << " seed " << seed;
      } else {
        EXPECT_EQ(t.pushes.get(),
                  t.pops_private.get() + t.pops_public.get() +
                      t.steals.get() + t.tasks_orphaned.get())
            << to_string(kind) << " seed " << seed;
      }
      // Execution: popped-but-abandoned tasks (one per repaired join) are
      // the only pushes that are consumed yet never executed.
      const std::uint64_t consumed_not_run =
          t.pushes.get() - t.unexposures.get() - t.tasks_orphaned.get() -
          t.tasks_executed.get();
      EXPECT_LE(consumed_not_run, t.workers_lost.get())
          << to_string(kind) << " seed " << seed;
      // Signal family: a corpse can fail sends (ESRCH) but every exposure
      // request still resolves to exactly one outcome.
      if (kind == sched_kind::signal || kind == sched_kind::conservative ||
          kind == sched_kind::expose_half) {
        EXPECT_EQ(t.exposure_requests.get(),
                  t.signals_sent.get() + t.signals_failed.get() +
                      t.fallback_exposures.get())
            << to_string(kind) << " seed " << seed;
      }
    });
  }
  RecordProperty("lost_error_runs", lost_runs);
  RecordProperty("workers_crashed", static_cast<int>(crashes_seen));
  // With 3 killable workers drawing ~5 boundary samples per run x 6 runs
  // per seed at 10/1000 (measured on a 1-CPU host — more everywhere
  // else), expected crashes are ~1 per seed: a sweep that never saw one
  // means the sites are dead code. Repair-path coverage is NOT asserted
  // statistically here — steal frequency varies too much across scheduler
  // families and hosts (the signal family steals rarely on a 1-CPU box) —
  // MidTaskWedgeRepairIsDeterministic below forces it per scheduler.
  if (seeds >= 8) {
    EXPECT_GT(crashes_seen, 0u) << to_string(kind);
  }
}

// Directed repair coverage: arm ONLY the mid-task site at rate 1000, so
// the first top-level steal wedges its thief while holding the claimed
// task — the joiner is stranded and the run can end no other way than the
// §11 repair completing it with worker_lost_error. Retries cover runs
// that happened to finish without any top-level steal (the retry pool is
// intact by construction: nothing wedged). A full retry budget with no
// steal ever wedged would mean the site or the steal path is dead.
TEST_P(WorkerLoss, MidTaskWedgeRepairIsDeterministic) {
  const sched_kind kind = GetParam();
  scoped_env lost_ms("LCWS_WORKER_LOST_MS", "25");
  bool repaired = false;
  with_scheduler(kind, 4, [&](auto& sched) {
    sched.reset_counters();
    ASSERT_TRUE(sched.loss_detection_active());
    for (int attempt = 0; attempt < 50 && !repaired; ++attempt) {
      fi::configure(static_cast<std::uint64_t>(attempt) * 0x9e3779b9ULL + 1,
                    /*rate_permille=*/1000,
                    fi::site_bit(fi::site::worker_crash_midtask));
      try {
        const std::uint64_t got =
            sched.run([&] { return burn_tree(sched, 9); });
        // No top-level steal this run — nothing wedged, result exact.
        EXPECT_EQ(got, 512u) << to_string(kind) << " attempt " << attempt;
      } catch (const worker_lost_error& e) {
        repaired = true;
        EXPECT_GE(e.worker(), 1u) << to_string(kind);
        EXPECT_LT(e.worker(), 4u) << to_string(kind);
        EXPECT_FALSE(e.worker_dump().empty()) << to_string(kind);
        EXPECT_GE(sched.lost_workers(), 1u) << to_string(kind);
      }
    }
    EXPECT_TRUE(repaired)
        << to_string(kind) << ": 50 runs without a repaired mid-task wedge";
    // The books after a forced repair: the wedge's claim was counted a
    // steal but never executed, and the pool still answers.
    fi::disable();
    EXPECT_EQ(sched.run([&] { return fib(sched, 15); }), 610u)
        << to_string(kind);
    const auto t = settled_totals(sched);
    EXPECT_EQ(t.workers_lost.get(), sched.lost_workers()) << to_string(kind);
    const std::uint64_t consumed_not_run =
        t.pushes.get() - t.unexposures.get() - t.tasks_orphaned.get() -
        t.tasks_executed.get();
    EXPECT_LE(consumed_not_run, t.workers_lost.get()) << to_string(kind);
  });
}

// Deterministic loss: debug_lose_worker halts a worker at its next
// boundary; with detection armed the pool must notice within the window,
// fence the corpse, adopt (or orphan) its deque, and keep answering runs.
TEST_P(WorkerLoss, DebugLoseWorkerIsDetectedFencedAndSurvivable) {
  const sched_kind kind = GetParam();
  scoped_env lost_ms("LCWS_WORKER_LOST_MS", "10");
  with_scheduler(kind, 4, [&](auto& sched) {
    sched.reset_counters();
    ASSERT_TRUE(sched.loss_detection_active());
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    std::uint64_t checksum = 0;
    sched.run([&] {
      sched.debug_lose_worker(1);
      // Keep the pool scheduling (joins and idle probes are where the
      // detector lives) until the loss is booked or we give up.
      while (sched.lost_workers() == 0 &&
             std::chrono::steady_clock::now() < deadline) {
        checksum += fib(sched, 13);
      }
      return checksum;
    });
    EXPECT_GE(sched.lost_workers(), 1u) << to_string(kind);
    EXPECT_TRUE(sched.is_lost(1)) << to_string(kind);
    const auto t = settled_totals(sched);
    EXPECT_GE(t.workers_lost.get(), 1u) << to_string(kind);
    if (kind == sched_kind::private_deques) {
      EXPECT_EQ(t.deques_adopted.get(), 0u) << to_string(kind);
    } else {
      EXPECT_EQ(t.deques_adopted.get(), t.workers_lost.get())
          << to_string(kind);
    }
    // A boundary death strands nothing: the run above completed normally
    // and the diminished pool keeps working.
    EXPECT_EQ(sched.run([&] { return fib(sched, 16); }), 987u)
        << to_string(kind);
  });
}

// debug_lose_worker input hardening: worker 0 and out-of-range ids are
// refused (worker 0 drives run() and must never die).
TEST(WorkerLossHooks, DebugLoseWorkerRefusesWorkerZeroAndBogusIds) {
  scoped_env lost_ms("LCWS_WORKER_LOST_MS", "10");
  ws_scheduler sched(2);
  sched.debug_lose_worker(0);
  sched.debug_lose_worker(99);
  EXPECT_EQ(sched.run([&] { return fib(sched, 16); }), 987u);
  EXPECT_EQ(sched.lost_workers(), 0u);
}

// ---------------------------------------------------------------------------
// Cancellation and deadlines
// ---------------------------------------------------------------------------

// run_for: a computation that would run forever is collapsed at the
// deadline — every pardo from then on refuses the fork — and the error
// surfaces at the run_for call. The pool is immediately reusable.
TEST_P(WorkerLoss, RunForDeadlineCancelsRunawayAndPoolStaysUsable) {
  const sched_kind kind = GetParam();
  with_scheduler(kind, 4, [&](auto& sched) {
    sched.reset_counters();
    EXPECT_THROW(sched.run_for(std::chrono::milliseconds(50),
                               [&] {
                                 // Distinct per-branch locals: the right
                                 // branch may run on a thief concurrently
                                 // with the left on this thread.
                                 for (;;) {
                                   std::uint64_t l = 0, r = 0;
                                   sched.pardo([&] { l = fib(sched, 12); },
                                               [&] { r = fib(sched, 12); });
                                   (void)(l + r);
                                 }
                               }),
                 run_cancelled_error)
        << to_string(kind);
    EXPECT_TRUE(sched.run_cancel_requested()) << to_string(kind);
    EXPECT_EQ(sched.profile().totals.runs_cancelled.get(), 1u)
        << to_string(kind);
    // The token rearms on the next run: same pool, clean completion.
    EXPECT_EQ(sched.run([&] { return fib(sched, 16); }), 987u)
        << to_string(kind);
    EXPECT_FALSE(sched.run_cancel_requested()) << to_string(kind);
  });
}

// LCWS_RUN_TIMEOUT_MS: every plain run() carries the deadline.
TEST(WorkerLossCancel, EnvRunTimeoutAppliesToPlainRun) {
  scoped_env timeout("LCWS_RUN_TIMEOUT_MS", "50");
  ws_scheduler sched(4);
  EXPECT_THROW(sched.run([&] {
    for (;;) {
      std::uint64_t l = 0, r = 0;
      sched.pardo([&] { l = fib(sched, 12); }, [&] { r = fib(sched, 12); });
      (void)(l + r);
    }
  }),
               run_cancelled_error);
  // A short run finishes before its deadline and is unaffected.
  EXPECT_EQ(sched.run([&] { return fib(sched, 16); }), 987u);
}

// cancel_run edge semantics: exactly one cancelling edge per run; calls
// between runs are no-ops; a pardo after the edge refuses the fork.
TEST(WorkerLossCancel, CancelRunEdgeIsOncePerRun) {
  ws_scheduler sched(4);
  sched.reset_counters();
  EXPECT_FALSE(sched.cancel_run());  // no active run
  EXPECT_THROW(sched.run([&] {
    EXPECT_FALSE(sched.run_cancel_requested());
    EXPECT_TRUE(sched.cancel_run());    // the edge
    EXPECT_FALSE(sched.cancel_run());   // idempotent within the run
    sched.pardo([] {}, [] {});          // cancellation point -> throws
    ADD_FAILURE() << "pardo after cancel_run must refuse the fork";
  }),
               run_cancelled_error);
  EXPECT_FALSE(sched.cancel_run());  // run is over
  EXPECT_EQ(sched.profile().totals.runs_cancelled.get(), 1u);
  EXPECT_EQ(sched.run([&] { return fib(sched, 16); }), 987u);
}

// Watchdog escalation ladder, first rung (§11): a frozen progress token
// cancels the run cooperatively instead of aborting. User code that polls
// run_cancel_requested() gets to exit cleanly — the run *returns*.
TEST(WorkerLossCancel, WatchdogFirstRungCancelsInsteadOfAborting) {
  scoped_env dog("LCWS_WATCHDOG_MS", "200");
  ws_scheduler sched(4);
  sched.reset_counters();
  const std::uint64_t r = sched.run([&]() -> std::uint64_t {
    // Pure user-code spin: no scheduling, so the progress token freezes
    // and the watchdog's first frozen window issues the cancel.
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!sched.run_cancel_requested() &&
           std::chrono::steady_clock::now() < give_up) {
      std::this_thread::yield();
    }
    return 42;
  });
  EXPECT_EQ(r, 42u);
  EXPECT_EQ(sched.profile().totals.runs_cancelled.get(), 1u);
  // The cancel rung sufficed: had it escalated to the abort rung this
  // whole process would be gone.
  EXPECT_EQ(sched.run([&] { return fib(sched, 16); }), 987u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, WorkerLoss, ::testing::ValuesIn(all_sched_kinds),
    [](const ::testing::TestParamInfo<sched_kind>& info) {
      return std::string(to_string(info.param));
    });

}  // namespace
}  // namespace lcws
