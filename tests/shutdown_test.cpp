// Shutdown/quiescence coverage across all seven schedulers: destruction
// with every worker parked, repeated run() cycles on one instance,
// destruction immediately after a throwing run(), and the
// LCWS_DUMP_ON_EXIT post-mortem knob.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "sched/dispatch.h"
#include "sched/scheduler.h"

namespace lcws {
namespace {

template <typename Sched>
std::uint64_t fib(Sched& sched, unsigned n) {
  if (n < 2) return n;
  std::uint64_t left = 0, right = 0;
  sched.pardo([&] { left = fib(sched, n - 1); },
              [&] { right = fib(sched, n - 2); });
  return left + right;
}

class Shutdown : public ::testing::TestWithParam<sched_kind> {};

// Destructor with all workers parked: run a computation, then idle long
// enough that every worker has passed kParkAfterFailures and blocked in
// the lot (or the between-runs inactive wait). Destruction must deliver
// shutdown permits to all of them and join cleanly.
TEST_P(Shutdown, DestructorWithAllWorkersParked) {
  with_scheduler(GetParam(), 8, [&](auto& sched) {
    EXPECT_EQ(sched.run([&] { return fib(sched, 12); }), 144u);
    // Workers drain into parks/inactive waits while the owner sleeps.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });  // with_scheduler destroys the pool here
}

// Repeated run() cycles on one instance: targeted flags, parking permits
// and counters must all reset correctly between computations.
TEST_P(Shutdown, RepeatedRunCyclesOnOneInstance) {
  with_scheduler(GetParam(), 4, [&](auto& sched) {
    for (int cycle = 0; cycle < 12; ++cycle) {
      EXPECT_EQ(sched.run([&] { return fib(sched, 14); }), 377u) << cycle;
    }
    const auto t = sched.profile().totals;
    EXPECT_EQ(t.pushes.get(),
              t.pops_private.get() + t.pops_public.get() + t.steals.get());
    EXPECT_EQ(t.tasks_executed.get(), t.pushes.get() - t.unexposures.get());
  });
}

// Destruction immediately after a throwing run(): the pardo contract says
// every sibling has drained by the time the exception surfaces, so the
// destructor must not deadlock or touch freed jobs.
TEST_P(Shutdown, DestructionImmediatelyAfterThrowingRun) {
  with_scheduler(GetParam(), 4, [&](auto& sched) {
    EXPECT_THROW(sched.run([&] {
      sched.pardo([&] { (void)fib(sched, 10); },
                  [&] {
                    (void)fib(sched, 10);
                    throw std::runtime_error("shutdown-test");
                  });
      return 0;
    }),
                 std::runtime_error);
  });  // destroyed with no intervening quiescence wait
}

// Throw, then reuse the same instance: the pool must stay serviceable.
TEST_P(Shutdown, ThrowThenReuseThenDestroy) {
  with_scheduler(GetParam(), 4, [&](auto& sched) {
    EXPECT_THROW(
        sched.run([&]() -> int { throw std::runtime_error("first"); }),
        std::runtime_error);
    EXPECT_EQ(sched.run([&] { return fib(sched, 15); }), 610u);
  });
}

// Shutdown racing an active §6 degrade->recover episode: victims flip
// between degraded and healthy while computations run (probes, fallback
// exposures and recovery all in flight), and the pool is destroyed with
// one victim still degraded and another mid-flip — no quiescence, no
// forced recovery. The destructor must deliver shutdown to workers that
// believe their victim table is in every possible episode state.
TEST_P(Shutdown, DestructionMidDegradeRecoverEpisode) {
  with_scheduler(GetParam(), 4, [&](auto& sched) {
    auto& health = sched.health_monitor();
    std::atomic<bool> stop{false};
    std::thread flipper([&] {
      bool on = true;
      while (!stop.load(std::memory_order_relaxed)) {
        (void)health.force_degraded(1, on);
        (void)health.force_degraded(2, !on);
        on = !on;
        std::this_thread::yield();
      }
    });
    for (int cycle = 0; cycle < 8; ++cycle) {
      EXPECT_EQ(sched.run([&] { return fib(sched, 13); }), 233u) << cycle;
    }
    stop.store(true, std::memory_order_relaxed);
    flipper.join();
    // Leave the episode open: a degraded victim at destruction time.
    (void)health.force_degraded(1, true);
  });  // destroyed mid-episode; no recovery ever happens
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, Shutdown, ::testing::ValuesIn(all_sched_kinds),
    [](const ::testing::TestParamInfo<sched_kind>& info) {
      return std::string(to_string(info.param));
    });

// ---------------------------------------------------------------------------
// LCWS_DUMP_ON_EXIT
// ---------------------------------------------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(DumpOnExit, WritesFinalStateToFile) {
  const std::string path =
      "/tmp/lcws_dump_" + std::to_string(::getpid()) + ".txt";
  std::remove(path.c_str());
  ::setenv("LCWS_DUMP_ON_EXIT", path.c_str(), 1);
  {
    signal_scheduler sched(2);
    EXPECT_EQ(sched.run([&] { return fib(sched, 12); }), 144u);
  }  // destructor emits the dump
  ::unsetenv("LCWS_DUMP_ON_EXIT");
  const std::string dump = read_file(path);
  EXPECT_NE(dump.find("scheduler=signal"), std::string::npos) << dump;
  EXPECT_NE(dump.find("w0"), std::string::npos);
  EXPECT_NE(dump.find("w1"), std::string::npos);
  EXPECT_NE(dump.find("tasks="), std::string::npos);
  std::remove(path.c_str());
}

TEST(DumpOnExit, AppendsAcrossInstances) {
  const std::string path =
      "/tmp/lcws_dump_append_" + std::to_string(::getpid()) + ".txt";
  std::remove(path.c_str());
  ::setenv("LCWS_DUMP_ON_EXIT", path.c_str(), 1);
  {
    ws_scheduler a(2);
    EXPECT_EQ(a.run([&] { return fib(a, 10); }), 55u);
  }
  {
    uslcws_scheduler b(2);
    EXPECT_EQ(b.run([&] { return fib(b, 10); }), 55u);
  }
  ::unsetenv("LCWS_DUMP_ON_EXIT");
  const std::string dump = read_file(path);
  EXPECT_NE(dump.find("scheduler=ws"), std::string::npos) << dump;
  EXPECT_NE(dump.find("scheduler=uslcws"), std::string::npos) << dump;
  std::remove(path.c_str());
}

TEST(DumpOnExit, OffByDefault) {
  const std::string path =
      "/tmp/lcws_dump_off_" + std::to_string(::getpid()) + ".txt";
  std::remove(path.c_str());
  {
    ws_scheduler sched(2);
    EXPECT_EQ(sched.run([&] { return fib(sched, 10); }), 55u);
  }
  std::ifstream in(path);
  EXPECT_FALSE(in.good());  // no env knob, no file
}

}  // namespace
}  // namespace lcws
