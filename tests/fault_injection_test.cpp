// Deterministic fault-injection sweep: seeds x schedulers x armed fault
// sites. This binary links the LCWS_FAULT_INJECTION build of the library,
// so the fi:: hooks at the named sites (forced steal-CAS losses, dropped/
// delayed exposure signals, failed pthread_kill, spurious park wakeups)
// are live; every run must still complete with the correct result and
// balanced stats counters — faults may cost performance, never progress
// or correctness.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "deque/wsmult_deque.h"
#include "parallel/parallel_for.h"
#include "sched/dispatch.h"
#include "sched/scheduler.h"
#include "stats/counters.h"
#include "support/fault_injection.h"

namespace lcws {
namespace {

TEST(FaultInjectionBuild, HooksCompiledIn) {
  ASSERT_TRUE(fi::compiled_in())
      << "fault_injection_test must link the LCWS_FAULT_INJECTION library";
  EXPECT_FALSE(fi::armed());
}

TEST(FaultInjectionBuild, ConfigureArmsAndDisableDisarms) {
  fi::configure(/*seed=*/1, /*rate_permille=*/1000,
                fi::site_bit(fi::site::steal_cas));
  EXPECT_TRUE(fi::armed());
  // With rate 1000 every visit to an armed site injects.
  EXPECT_TRUE(fi::inject(fi::site::steal_cas));
  EXPECT_GE(fi::injected_count(fi::site::steal_cas), 1u);
  // Unarmed sites never fire regardless of rate.
  EXPECT_FALSE(fi::inject(fi::site::spurious_wake));
  fi::disable();
  EXPECT_FALSE(fi::armed());
  EXPECT_FALSE(fi::inject(fi::site::steal_cas));
}

TEST(FaultInjectionBuild, SameSeedSameSchedule) {
  auto draw = [](std::uint64_t seed) {
    fi::configure(seed, 500);
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern += fi::inject(fi::site::steal_cas) ? '1' : '0';
    }
    fi::disable();
    return pattern;
  };
  const auto a = draw(1234), b = draw(1234), c = draw(5678);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // 2^-64 false-failure odds
}

// ---------------------------------------------------------------------------
// The sweep
// ---------------------------------------------------------------------------

template <typename Sched>
std::uint64_t fib(Sched& sched, unsigned n) {
  if (n < 2) return n;
  if (n < 10) {
    std::uint64_t a = 0, b = 1;
    for (unsigned i = 1; i < n; ++i) {
      const std::uint64_t c = a + b;
      a = b;
      b = c;
    }
    return b;
  }
  std::uint64_t left = 0, right = 0;
  sched.pardo([&] { left = fib(sched, n - 1); },
              [&] { right = fib(sched, n - 2); });
  return left + right;
}

// Seeds per scheduler kind; acceptance floor is 64, raisable for soak runs.
int sweep_seeds() {
  if (const char* s = std::getenv("LCWS_FI_SEEDS")) {
    const int n = std::atoi(s);
    if (n > 0) return n;
  }
  return 64;
}

class FaultSweep : public ::testing::TestWithParam<sched_kind> {
 protected:
  void TearDown() override { fi::disable(); }
};

TEST_P(FaultSweep, CompletesCorrectlyWithBalancedStatsUnderFaults) {
  const sched_kind kind = GetParam();
  const int seeds = sweep_seeds();
  for (int seed = 0; seed < seeds; ++seed) {
    // 10% fault rate across every site: high enough that a typical run
    // injects dozens of faults, low enough that work still flows.
    fi::configure(static_cast<std::uint64_t>(seed) * 0x9e3779b9ULL + 1,
                  /*rate_permille=*/100, fi::all_sites);
    with_scheduler(kind, 4, [&](auto& sched) {
      sched.reset_counters();
      // Fork-join compute plus a parallel_for: both the pardo hot path and
      // the toolkit path run under fire.
      const std::uint64_t f = sched.run([&] { return fib(sched, 17); });
      EXPECT_EQ(f, 1597u) << to_string(kind) << " seed " << seed;
      std::atomic<std::uint64_t> sum{0};
      sched.run([&] {
        par::parallel_for(
            sched, 0, 4096,
            [&](std::size_t i) {
              sum.fetch_add(i, std::memory_order_relaxed);
            },
            32);
      });
      EXPECT_EQ(sum.load(), 4096ull * 4095 / 2)
          << to_string(kind) << " seed " << seed;
      // Balance: every pushed job consumed exactly once, every original
      // job executed exactly once (re-pushes from Lace unexposure are the
      // only double-counted pushes), and no counter went negative.
      const auto t = sched.profile().totals;
      if (kind == sched_kind::wsmult) {
        // Multiplicity accounting (DESIGN.md §9): a wsmult "steal" is any
        // claim arbitration on an index the thief's snapshot said was
        // occupied, so exactly-once consumption runs through the claim
        // winners and the claim identity must balance the rest.
        EXPECT_EQ(t.steals.get(),
                  t.useful_steals.get() + t.claims_lost.get())
            << to_string(kind) << " seed " << seed;
        EXPECT_EQ(t.pushes.get(),
                  t.pops_private.get() + t.useful_steals.get())
            << to_string(kind) << " seed " << seed;
      } else {
        EXPECT_EQ(t.pushes.get(), t.pops_private.get() +
                                      t.pops_public.get() + t.steals.get())
            << to_string(kind) << " seed " << seed;
      }
      EXPECT_EQ(t.tasks_executed.get(), t.pushes.get() - t.unexposures.get())
          << to_string(kind) << " seed " << seed;
      EXPECT_GE(t.steal_attempts.get(), t.steals.get() + t.steal_aborts.get());
      // Signal family: every counted exposure request resolved to exactly
      // one outcome — sent, recorded-failed, or (when the §6 health
      // monitor degraded the victim) routed through the user-space flag.
      if (kind == sched_kind::signal || kind == sched_kind::conservative ||
          kind == sched_kind::expose_half) {
        EXPECT_EQ(t.exposure_requests.get(),
                  t.signals_sent.get() + t.signals_failed.get() +
                      t.fallback_exposures.get())
            << to_string(kind) << " seed " << seed;
      }
      // State-machine sanity: a victim can only recover after degrading.
      EXPECT_GE(t.degrade_events.get(), t.recover_events.get())
          << to_string(kind) << " seed " << seed;
    });
    fi::disable();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, FaultSweep, ::testing::ValuesIn(all_sched_kinds),
    [](const ::testing::TestParamInfo<sched_kind>& info) {
      return std::string(to_string(info.param));
    });

// Directed test: with pthread_kill forced to fail 100% of the time, the
// signal family must fall back — completing correctly — and account every
// request as either a recorded-failed send (healthy phase + probes) or a
// user-space-routed fallback exposure (degraded phase).
TEST(FaultDirected, SignalSendAlwaysFailsStillCompletes) {
  fi::configure(7, /*rate_permille=*/1000, fi::site_bit(fi::site::signal_send));
  signal_scheduler sched(4);
  sched.reset_counters();
  EXPECT_EQ(sched.run([&] { return fib(sched, 17); }), 1597u);
  const auto t = sched.profile().totals;
  EXPECT_EQ(t.signals_sent.get(), 0u);
  EXPECT_EQ(t.exposure_requests.get(),
            t.signals_failed.get() + t.fallback_exposures.get());
  EXPECT_EQ(t.recover_events.get(), 0u);  // sends never start working
  fi::disable();
}

// Directed test: every exposure signal delivered but dropped by the
// handler — the victim simply keeps and executes its own work.
TEST(FaultDirected, ExposureAlwaysDroppedStillCompletes) {
  fi::configure(8, /*rate_permille=*/1000,
                fi::site_bit(fi::site::exposure_drop));
  expose_half_scheduler sched(4);
  sched.reset_counters();
  EXPECT_EQ(sched.run([&] { return fib(sched, 17); }), 1597u);
  const auto t = sched.profile().totals;
  // Dropped handlers expose nothing, so thieves can never steal from the
  // split deque's (empty) public part.
  EXPECT_EQ(t.exposures.get(), 0u);
  EXPECT_EQ(t.steals.get(), 0u);
  fi::disable();
}

// Directed test: every steal attempt loses its CAS — the pool degrades to
// sequential execution by the owner but still terminates correctly.
TEST(FaultDirected, AllStealsFailStillCompletes) {
  fi::configure(9, /*rate_permille=*/1000, fi::site_bit(fi::site::steal_cas));
  uslcws_scheduler sched(4);
  sched.reset_counters();
  EXPECT_EQ(sched.run([&] { return fib(sched, 16); }), 987u);
  EXPECT_EQ(sched.profile().totals.steals.get(), 0u);
  fi::disable();
}

// Directed test: the wsmult_dup site stalls every extractor between its
// index snapshot and its claim, and makes winning thieves "forget" to
// advance top — the stalled-thief schedule in which the fence-free deque
// genuinely extracts indices more than once. The slot-claim exchange must
// keep execution exactly-once: correct results, the claim identity, and
// the push balance routed through claim winners. Multiplicity must be
// *observable*: any successful steal leaves a claimed slot in the owner's
// downward walk, so dup_extractions moves whenever steals do.
TEST(FaultDirected, WsmultDuplicateExtractionResolvedByClaims) {
  for (int seed = 0; seed < 16; ++seed) {
    fi::configure(static_cast<std::uint64_t>(seed) * 0x6c8e9cf5ULL + 5,
                  /*rate_permille=*/1000,
                  fi::site_bit(fi::site::wsmult_dup));
    wsmult_scheduler sched(4);
    sched.reset_counters();
    EXPECT_EQ(sched.run([&] { return fib(sched, 17); }), 1597u)
        << "seed " << seed;
    const auto t = sched.profile().totals;
    EXPECT_EQ(t.steals.get(), t.useful_steals.get() + t.claims_lost.get())
        << "seed " << seed;
    EXPECT_EQ(t.pushes.get(), t.pops_private.get() + t.useful_steals.get())
        << "seed " << seed;
    EXPECT_EQ(t.tasks_executed.get(), t.pushes.get()) << "seed " << seed;
    if (t.useful_steals.get() > 0) {
      EXPECT_GT(t.dup_extractions.get(), 0u) << "seed " << seed;
    }
    fi::disable();
  }
}

// Deterministic single-threaded proof of the claim identity: with the
// wsmult_dup site at 100% a winning pop_top never advances top, so the
// very next pop_top re-extracts the same index and must lose the slot
// claim — every duplicate is scripted, so the counters are exact. Also
// pins the headline property the perf gate enforces structurally: the
// whole sequence runs zero fences and zero CAS.
TEST(FaultDirected, WsmultClaimBitPreservesStealIdentity) {
  fi::configure(13, /*rate_permille=*/1000,
                fi::site_bit(fi::site::wsmult_dup));
  const stats::op_counters before = stats::local_counters();
  wsmult_deque<int> d(64);
  int a = 0, b = 1, c = 2;
  d.push_bottom(&a);
  d.push_bottom(&b);
  d.push_bottom(&c);
  const auto r1 = d.pop_top();  // wins index 0, top store suppressed
  ASSERT_EQ(r1.status, steal_status::stolen);
  EXPECT_EQ(r1.task, &a);
  const auto r2 = d.pop_top();  // duplicate extraction of index 0: loses
  EXPECT_EQ(r2.status, steal_status::aborted);
  const auto r3 = d.pop_top();  // healed to index 1: wins
  ASSERT_EQ(r3.status, steal_status::stolen);
  EXPECT_EQ(r3.task, &b);
  const auto r4 = d.pop_top();  // duplicate of index 1: loses
  EXPECT_EQ(r4.status, steal_status::aborted);
  const auto r5 = d.pop_top();  // index 2: wins
  ASSERT_EQ(r5.status, steal_status::stolen);
  EXPECT_EQ(r5.task, &c);
  const stats::op_counters delta = stats::local_counters() - before;
  EXPECT_EQ(delta.steal_attempts.get(), 5u);
  EXPECT_EQ(delta.steals.get(), 5u);
  EXPECT_EQ(delta.useful_steals.get(), 3u);
  EXPECT_EQ(delta.claims_lost.get(), 2u);
  EXPECT_EQ(delta.steals.get(),
            delta.useful_steals.get() + delta.claims_lost.get());
  EXPECT_EQ(delta.dup_extractions.get(), 2u);
  EXPECT_EQ(delta.fences.get(), 0u);
  EXPECT_EQ(delta.cas.get(), 0u);
  fi::disable();
}

// A left-leaning spine: each level forks one trivial right child and
// recurses down the left, so the owner's private deque holds ~depth jobs
// at the deepest point. With a tiny starting capacity this forces many
// growth events while thieves are live. Returns depth + 1.
template <typename Sched>
std::uint64_t deep_spine(Sched& sched, unsigned depth) {
  if (depth == 0) return 1;
  std::uint64_t l = 0, r = 0;
  sched.pardo([&] { l = deep_spine(sched, depth - 1); }, [&] { r = 1; });
  return l + r;
}

// The tentpole's race scenario: every growth event pauses the owner
// between allocating the doubled buffer and publishing it (deque_grow
// site at 100%), stretching the window in which thieves race the swap.
// Work must still complete exactly once with balanced counters, and the
// growth counters must actually move (except for the unbounded mailbox
// deque, which never grows).
TEST_P(FaultSweep, DequeGrowthRacingThievesCompletesExactlyOnce) {
  const sched_kind kind = GetParam();
  const int seeds = std::max(4, sweep_seeds() / 4);
  for (int seed = 0; seed < seeds; ++seed) {
    fi::configure(static_cast<std::uint64_t>(seed) * 0x2545f491ULL + 3,
                  /*rate_permille=*/1000, fi::site_bit(fi::site::deque_grow));
    with_scheduler(kind, 4, /*deque_capacity=*/64, [&](auto& sched) {
      sched.reset_counters();
      const std::uint64_t v = sched.run([&] { return deep_spine(sched, 1200); });
      EXPECT_EQ(v, 1201u) << to_string(kind) << " seed " << seed;
      const auto t = sched.profile().totals;
      if (kind == sched_kind::wsmult) {
        EXPECT_EQ(t.steals.get(),
                  t.useful_steals.get() + t.claims_lost.get())
            << to_string(kind) << " seed " << seed;
        EXPECT_EQ(t.pushes.get(),
                  t.pops_private.get() + t.useful_steals.get())
            << to_string(kind) << " seed " << seed;
      } else {
        EXPECT_EQ(t.pushes.get(), t.pops_private.get() +
                                      t.pops_public.get() + t.steals.get())
            << to_string(kind) << " seed " << seed;
      }
      EXPECT_EQ(t.tasks_executed.get(), t.pushes.get() - t.unexposures.get())
          << to_string(kind) << " seed " << seed;
      if (kind == sched_kind::private_deques) {
        EXPECT_EQ(t.deque_grows.get(), 0u) << to_string(kind);
      } else {
        EXPECT_GT(t.deque_grows.get(), 0u)
            << to_string(kind) << " seed " << seed
            << ": spine never outgrew the 64-slot start";
        EXPECT_GE(fi::injected_count(fi::site::deque_grow), 1u)
            << to_string(kind) << " seed " << seed;
        EXPECT_GT(t.deque_hwm.get(), 64u)
            << to_string(kind) << " seed " << seed;
      }
    });
    fi::disable();
  }
}

// Directed test: parking under permanent spurious wakeups must neither
// hang nor lose permits.
TEST(FaultDirected, SpuriousWakeupsEverywhereStillCompletes) {
  fi::configure(10, /*rate_permille=*/1000,
                fi::site_bit(fi::site::spurious_wake));
  ws_scheduler sched(4, default_deque_capacity, parking_mode::enabled);
  sched.reset_counters();
  EXPECT_EQ(sched.run([&] { return fib(sched, 17); }), 1597u);
  fi::disable();
}

// ---------------------------------------------------------------------------
// Graceful degradation (DESIGN.md §6)
// ---------------------------------------------------------------------------

// setenv/unsetenv scope guard; the scheduler reads LCWS_DEGRADE_* once at
// construction, so guards must outlive the pool under test.
class scoped_env {
 public:
  scoped_env(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~scoped_env() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

// CPU burn competing with the pool. The degradation scenarios need thieves
// to observe victims holding private work, which on a lightly loaded (or
// single-CPU) host never happens: a small fib run completes inside one
// scheduling quantum, so the owner is never preempted mid-run and no
// exposure request is ever issued. Spinners force the preemption the
// paper's multiprogramming regime assumes.
class corun_load {
 public:
  explicit corun_load(int threads) {
    for (int i = 0; i < threads; ++i) {
      spinners_.emplace_back([this] {
        volatile std::uint64_t sink = 0;
        while (!stop_.load(std::memory_order_relaxed)) {
          for (int j = 0; j < 4096; ++j) sink = sink + 1;
        }
      });
    }
  }
  ~corun_load() {
    stop_.store(true, std::memory_order_relaxed);
    for (auto& t : spinners_) t.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::vector<std::thread> spinners_;
};

// Balanced fork tree whose leaves burn real CPU (~10-20us each), so one
// run spans many OS scheduling quanta. fib with its sequential cutoff is
// too fast here: the whole run fits inside a single quantum, the owner is
// never descheduled while holding private work, and the trip/recover
// machinery would have nothing to observe.
template <typename Sched>
std::uint64_t burn_tree(Sched& sched, unsigned depth) {
  if (depth == 0) {
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 20000; ++i) sink = sink + 1;
    return 1;
  }
  std::uint64_t l = 0, r = 0;
  sched.pardo([&] { l = burn_tree(sched, depth - 1); },
              [&] { r = burn_tree(sched, depth - 1); });
  return l + r;
}

// The satellite scenario: sustained forced signal_send failures must trip
// the fallback (degrade_events > 0, correct results, balanced counters),
// and ceasing the failures must trip recovery — across >= 16 seeds.
TEST(Degradation, SustainedSendFailuresTripFallbackThenRecover) {
  // Tight hysteresis so one short fib run per phase can observe both
  // transitions: trip after 2 consecutive failures, probe every 2nd
  // request, restore after 1 successful probe.
  scoped_env streak("LCWS_DEGRADE_FAIL_STREAK", "2");
  scoped_env probe("LCWS_DEGRADE_PROBE_PERIOD", "2");
  scoped_env recover("LCWS_DEGRADE_RECOVER", "1");
  corun_load load(2);
  for (int seed = 0; seed < 16; ++seed) {
    fi::configure(static_cast<std::uint64_t>(seed) * 0x51ed2701ULL + 11,
                  /*rate_permille=*/1000, fi::site_bit(fi::site::signal_send));
    signal_scheduler sched(4);
    ASSERT_TRUE(sched.degradation_active());
    sched.reset_counters();
    // Phase 1 — failures forced: keep running until some victim trips
    // (two requests against one victim suffice; the bound is generous).
    std::uint64_t degrades = 0;
    for (int iter = 0; iter < 32 && degrades == 0; ++iter) {
      ASSERT_EQ(sched.run([&] { return burn_tree(sched, 8); }), 256u)
          << "seed " << seed << " iter " << iter;
      degrades = sched.profile().totals.degrade_events.get();
    }
    auto t = sched.profile().totals;
    EXPECT_GT(t.degrade_events.get(), 0u) << "seed " << seed;
    EXPECT_GT(t.fallback_exposures.get(), 0u) << "seed " << seed;
    EXPECT_EQ(t.signals_sent.get(), 0u) << "seed " << seed;
    EXPECT_EQ(t.exposure_requests.get(),
              t.signals_failed.get() + t.fallback_exposures.get())
        << "seed " << seed;
    // Phase 2 — failures cease: probes start landing and sustained
    // success must restore the signal path.
    fi::disable();
    std::uint64_t recovers = 0;
    for (int iter = 0; iter < 32 && recovers == 0; ++iter) {
      ASSERT_EQ(sched.run([&] { return burn_tree(sched, 8); }), 256u)
          << "seed " << seed << " iter " << iter;
      recovers = sched.profile().totals.recover_events.get();
    }
    t = sched.profile().totals;
    EXPECT_GT(t.recover_events.get(), 0u) << "seed " << seed;
    EXPECT_GE(t.degrade_events.get(), t.recover_events.get())
        << "seed " << seed;
    EXPECT_GT(t.signals_sent.get(), 0u) << "seed " << seed;
    EXPECT_EQ(t.exposure_requests.get(),
              t.signals_sent.get() + t.signals_failed.get() +
                  t.fallback_exposures.get())
        << "seed " << seed;
  }
}

// The degraded pool must keep making task-level progress (no watchdog
// stall) while every signal send fails.
TEST(Degradation, NoStallUnderWatchdogWhileDegraded) {
  scoped_env streak("LCWS_DEGRADE_FAIL_STREAK", "2");
  scoped_env dog("LCWS_WATCHDOG_MS", "4000");
  fi::configure(21, /*rate_permille=*/1000,
                fi::site_bit(fi::site::signal_send));
  signal_scheduler sched(4);
  ASSERT_TRUE(sched.watchdog_active());
  sched.reset_counters();
  for (int iter = 0; iter < 8; ++iter) {
    ASSERT_EQ(sched.run([&] { return fib(sched, 17); }), 1597u) << iter;
  }
  fi::disable();
}

// Kill switch: with LCWS_DEGRADE_OFF=1 the legacy protocol runs
// bit-for-bit — no degradation counters move and the original
// sent+failed balance holds even under forced send failures.
TEST(Degradation, KillSwitchKeepsLegacyAccounting) {
  scoped_env off("LCWS_DEGRADE_OFF", "1");
  fi::configure(31, /*rate_permille=*/1000,
                fi::site_bit(fi::site::signal_send));
  signal_scheduler sched(4);
  ASSERT_FALSE(sched.degradation_active());
  sched.reset_counters();
  EXPECT_EQ(sched.run([&] { return fib(sched, 17); }), 1597u);
  const auto t = sched.profile().totals;
  EXPECT_EQ(t.degrade_events.get(), 0u);
  EXPECT_EQ(t.recover_events.get(), 0u);
  EXPECT_EQ(t.fallback_exposures.get(), 0u);
  EXPECT_EQ(t.signals_sent.get(), 0u);
  EXPECT_EQ(t.exposure_requests.get(), t.signals_failed.get());
  fi::disable();
}

// Conservative and ExposeHalf share the signal-family machinery; a spot
// check that the fallback completes correctly there too.
TEST(Degradation, FallbackCoversWholeSignalFamily) {
  scoped_env streak("LCWS_DEGRADE_FAIL_STREAK", "2");
  for (const sched_kind kind :
       {sched_kind::conservative, sched_kind::expose_half}) {
    fi::configure(41, /*rate_permille=*/1000,
                  fi::site_bit(fi::site::signal_send));
    with_scheduler(kind, 4, [&](auto& sched) {
      sched.reset_counters();
      for (int iter = 0; iter < 8; ++iter) {
        ASSERT_EQ(sched.run([&] { return fib(sched, 16); }), 987u)
            << to_string(kind) << " iter " << iter;
      }
      const auto t = sched.profile().totals;
      EXPECT_EQ(t.signals_sent.get(), 0u) << to_string(kind);
      EXPECT_EQ(t.exposure_requests.get(),
                t.signals_failed.get() + t.fallback_exposures.get())
          << to_string(kind);
    });
    fi::disable();
  }
}

}  // namespace
}  // namespace lcws
