// Deterministic fault-injection sweep: seeds x schedulers x armed fault
// sites. This binary links the LCWS_FAULT_INJECTION build of the library,
// so the fi:: hooks at the named sites (forced steal-CAS losses, dropped/
// delayed exposure signals, failed pthread_kill, spurious park wakeups)
// are live; every run must still complete with the correct result and
// balanced stats counters — faults may cost performance, never progress
// or correctness.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "parallel/parallel_for.h"
#include "sched/dispatch.h"
#include "sched/scheduler.h"
#include "support/fault_injection.h"

namespace lcws {
namespace {

TEST(FaultInjectionBuild, HooksCompiledIn) {
  ASSERT_TRUE(fi::compiled_in())
      << "fault_injection_test must link the LCWS_FAULT_INJECTION library";
  EXPECT_FALSE(fi::armed());
}

TEST(FaultInjectionBuild, ConfigureArmsAndDisableDisarms) {
  fi::configure(/*seed=*/1, /*rate_permille=*/1000,
                fi::site_bit(fi::site::steal_cas));
  EXPECT_TRUE(fi::armed());
  // With rate 1000 every visit to an armed site injects.
  EXPECT_TRUE(fi::inject(fi::site::steal_cas));
  EXPECT_GE(fi::injected_count(fi::site::steal_cas), 1u);
  // Unarmed sites never fire regardless of rate.
  EXPECT_FALSE(fi::inject(fi::site::spurious_wake));
  fi::disable();
  EXPECT_FALSE(fi::armed());
  EXPECT_FALSE(fi::inject(fi::site::steal_cas));
}

TEST(FaultInjectionBuild, SameSeedSameSchedule) {
  auto draw = [](std::uint64_t seed) {
    fi::configure(seed, 500);
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern += fi::inject(fi::site::steal_cas) ? '1' : '0';
    }
    fi::disable();
    return pattern;
  };
  const auto a = draw(1234), b = draw(1234), c = draw(5678);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // 2^-64 false-failure odds
}

// ---------------------------------------------------------------------------
// The sweep
// ---------------------------------------------------------------------------

template <typename Sched>
std::uint64_t fib(Sched& sched, unsigned n) {
  if (n < 2) return n;
  if (n < 10) {
    std::uint64_t a = 0, b = 1;
    for (unsigned i = 1; i < n; ++i) {
      const std::uint64_t c = a + b;
      a = b;
      b = c;
    }
    return b;
  }
  std::uint64_t left = 0, right = 0;
  sched.pardo([&] { left = fib(sched, n - 1); },
              [&] { right = fib(sched, n - 2); });
  return left + right;
}

// Seeds per scheduler kind; acceptance floor is 64, raisable for soak runs.
int sweep_seeds() {
  if (const char* s = std::getenv("LCWS_FI_SEEDS")) {
    const int n = std::atoi(s);
    if (n > 0) return n;
  }
  return 64;
}

class FaultSweep : public ::testing::TestWithParam<sched_kind> {
 protected:
  void TearDown() override { fi::disable(); }
};

TEST_P(FaultSweep, CompletesCorrectlyWithBalancedStatsUnderFaults) {
  const sched_kind kind = GetParam();
  const int seeds = sweep_seeds();
  for (int seed = 0; seed < seeds; ++seed) {
    // 10% fault rate across every site: high enough that a typical run
    // injects dozens of faults, low enough that work still flows.
    fi::configure(static_cast<std::uint64_t>(seed) * 0x9e3779b9ULL + 1,
                  /*rate_permille=*/100, fi::all_sites);
    with_scheduler(kind, 4, [&](auto& sched) {
      sched.reset_counters();
      // Fork-join compute plus a parallel_for: both the pardo hot path and
      // the toolkit path run under fire.
      const std::uint64_t f = sched.run([&] { return fib(sched, 17); });
      EXPECT_EQ(f, 1597u) << to_string(kind) << " seed " << seed;
      std::atomic<std::uint64_t> sum{0};
      sched.run([&] {
        par::parallel_for(
            sched, 0, 4096,
            [&](std::size_t i) {
              sum.fetch_add(i, std::memory_order_relaxed);
            },
            32);
      });
      EXPECT_EQ(sum.load(), 4096ull * 4095 / 2)
          << to_string(kind) << " seed " << seed;
      // Balance: every pushed job consumed exactly once, every original
      // job executed exactly once (re-pushes from Lace unexposure are the
      // only double-counted pushes), and no counter went negative.
      const auto t = sched.profile().totals;
      EXPECT_EQ(t.pushes.get(), t.pops_private.get() + t.pops_public.get() +
                                    t.steals.get())
          << to_string(kind) << " seed " << seed;
      EXPECT_EQ(t.tasks_executed.get(), t.pushes.get() - t.unexposures.get())
          << to_string(kind) << " seed " << seed;
      EXPECT_GE(t.steal_attempts.get(), t.steals.get() + t.steal_aborts.get());
      // Signal family: every counted exposure request resolved to exactly
      // one delivery outcome (sent or recorded-failed).
      if (kind == sched_kind::signal || kind == sched_kind::conservative ||
          kind == sched_kind::expose_half) {
        EXPECT_EQ(t.exposure_requests.get(),
                  t.signals_sent.get() + t.signals_failed.get())
            << to_string(kind) << " seed " << seed;
      }
    });
    fi::disable();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, FaultSweep, ::testing::ValuesIn(all_sched_kinds),
    [](const ::testing::TestParamInfo<sched_kind>& info) {
      return std::string(to_string(info.param));
    });

// Directed test: with pthread_kill forced to fail 100% of the time, the
// signal family must fall back to self-execution — completing correctly —
// and account every failed delivery in signals_failed.
TEST(FaultDirected, SignalSendAlwaysFailsStillCompletes) {
  fi::configure(7, /*rate_permille=*/1000, fi::site_bit(fi::site::signal_send));
  signal_scheduler sched(4);
  sched.reset_counters();
  EXPECT_EQ(sched.run([&] { return fib(sched, 17); }), 1597u);
  const auto t = sched.profile().totals;
  EXPECT_EQ(t.signals_sent.get(), 0u);
  EXPECT_EQ(t.exposure_requests.get(), t.signals_failed.get());
  fi::disable();
}

// Directed test: every exposure signal delivered but dropped by the
// handler — the victim simply keeps and executes its own work.
TEST(FaultDirected, ExposureAlwaysDroppedStillCompletes) {
  fi::configure(8, /*rate_permille=*/1000,
                fi::site_bit(fi::site::exposure_drop));
  expose_half_scheduler sched(4);
  sched.reset_counters();
  EXPECT_EQ(sched.run([&] { return fib(sched, 17); }), 1597u);
  const auto t = sched.profile().totals;
  // Dropped handlers expose nothing, so thieves can never steal from the
  // split deque's (empty) public part.
  EXPECT_EQ(t.exposures.get(), 0u);
  EXPECT_EQ(t.steals.get(), 0u);
  fi::disable();
}

// Directed test: every steal attempt loses its CAS — the pool degrades to
// sequential execution by the owner but still terminates correctly.
TEST(FaultDirected, AllStealsFailStillCompletes) {
  fi::configure(9, /*rate_permille=*/1000, fi::site_bit(fi::site::steal_cas));
  uslcws_scheduler sched(4);
  sched.reset_counters();
  EXPECT_EQ(sched.run([&] { return fib(sched, 16); }), 987u);
  EXPECT_EQ(sched.profile().totals.steals.get(), 0u);
  fi::disable();
}

// Directed test: parking under permanent spurious wakeups must neither
// hang nor lose permits.
TEST(FaultDirected, SpuriousWakeupsEverywhereStillCompletes) {
  fi::configure(10, /*rate_permille=*/1000,
                fi::site_bit(fi::site::spurious_wake));
  ws_scheduler sched(4, default_deque_capacity, parking_mode::enabled);
  sched.reset_counters();
  EXPECT_EQ(sched.run([&] { return fib(sched, 17); }), 1597u);
  fi::disable();
}

}  // namespace
}  // namespace lcws
