// Exception-propagation contract, pinned for every scheduler family: an
// exception thrown by a task — local or stolen, shallow or deep in a
// nested fork tree — rethrows at the spawning pardo after the join has
// drained, and the scheduler remains fully usable afterwards (no worker
// deadlocks, no leaked jobs, stats still balanced).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>

#include "parallel/parallel_for.h"
#include "parallel/parallel_invoke.h"
#include "sched/scheduler.h"

namespace lcws {
namespace {

struct test_error : std::runtime_error {
  using std::runtime_error::runtime_error;
};

template <typename Sched>
std::uint64_t fib(Sched& sched, unsigned n) {
  if (n < 2) return n;
  if (n < 12) {
    std::uint64_t a = 0, b = 1;
    for (unsigned i = 1; i < n; ++i) {
      const std::uint64_t c = a + b;
      a = b;
      b = c;
    }
    return b;
  }
  std::uint64_t left = 0, right = 0;
  sched.pardo([&] { left = fib(sched, n - 1); },
              [&] { right = fib(sched, n - 2); });
  return left + right;
}

// Post-exception health check: the pool still computes correctly and every
// pushed job was consumed exactly once (the drain guarantee).
template <typename Sched>
void expect_healthy(Sched& sched) {
  EXPECT_EQ(sched.run([&] { return fib(sched, 21); }), 10946u);
  const auto t = sched.profile().totals;
  EXPECT_EQ(t.pushes.get(),
            t.pops_private.get() + t.pops_public.get() + t.steals.get());
  EXPECT_EQ(t.tasks_executed.get(), t.pushes.get() - t.unexposures.get());
}

template <typename Sched>
class ExceptionTest : public ::testing::Test {};

using all_schedulers =
    ::testing::Types<ws_scheduler, uslcws_scheduler, signal_scheduler,
                     conservative_scheduler, expose_half_scheduler,
                     private_deques_scheduler, lace_scheduler>;

TYPED_TEST_SUITE(ExceptionTest, all_schedulers);

TYPED_TEST(ExceptionTest, RightBranchThrowRethrowsAtSpawnSite) {
  TypeParam sched(4);
  EXPECT_THROW(sched.run([&] {
    sched.pardo([] {}, [] { throw test_error("right"); });
  }),
               test_error);
  expect_healthy(sched);
}

TYPED_TEST(ExceptionTest, LeftBranchThrowStillDrainsRight) {
  TypeParam sched(4);
  std::atomic<bool> right_ran{false};
  try {
    sched.run([&] {
      sched.pardo(
          [] { throw test_error("left"); },
          [&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            right_ran.store(true, std::memory_order_relaxed);
          });
    });
    FAIL() << "expected test_error";
  } catch (const test_error& e) {
    EXPECT_STREQ(e.what(), "left");
  }
  // The drain guarantee: pardo must not unwind before its sibling is done.
  EXPECT_TRUE(right_ran.load(std::memory_order_relaxed));
  expect_healthy(sched);
}

TYPED_TEST(ExceptionTest, BothBranchesThrowLeftWins) {
  TypeParam sched(4);
  try {
    sched.run([&] {
      sched.pardo([] { throw test_error("left"); },
                  [] { throw test_error("right"); });
    });
    FAIL() << "expected test_error";
  } catch (const test_error& e) {
    EXPECT_STREQ(e.what(), "left");
  }
  expect_healthy(sched);
}

// A task that throws after announcing it has started. With the spawner
// busy-waiting (bounded) on that announcement, the task usually runs on a
// *thief* — exercising the stolen-task capture path; when nobody steals in
// time the owner executes it itself, which must behave identically.
TYPED_TEST(ExceptionTest, ThrowInStolenTaskSurfacesAtSpawner) {
  TypeParam sched(4);
  for (int round = 0; round < 25; ++round) {
    std::atomic<bool> started{false};
    EXPECT_THROW(sched.run([&] {
      sched.pardo(
          [&] {
            // Keep the owner away from its deque so a thief gets a
            // window; bounded so families whose exposure needs the owner
            // at a scheduling point (uslcws, lace, mailbox) cannot hang.
            const auto give_up = std::chrono::steady_clock::now() +
                                 std::chrono::milliseconds(50);
            while (!started.load(std::memory_order_acquire) &&
                   std::chrono::steady_clock::now() < give_up) {
            }
          },
          [&] {
            started.store(true, std::memory_order_release);
            throw test_error("stolen");
          });
    }),
                 test_error);
  }
  expect_healthy(sched);
}

TYPED_TEST(ExceptionTest, DeepNestedThrowClimbsToRoot) {
  TypeParam sched(4);
  // fib-shaped tree where one deep leaf throws: the exception must climb
  // join by join through helped/stolen intermediate frames to run()'s
  // caller.
  struct thrower {
    TypeParam& sched;
    std::uint64_t rec(unsigned n) {
      if (n < 2) return n;
      if (n == 13) throw test_error("deep");
      std::uint64_t l = 0, r = 0;
      if (n < 12) return n;  // cheap leaf; value irrelevant
      sched.pardo([&] { l = rec(n - 1); }, [&] { r = rec(n - 2); });
      return l + r;
    }
  } t{sched};
  EXPECT_THROW(sched.run([&] { return t.rec(22); }), test_error);
  expect_healthy(sched);
}

TYPED_TEST(ExceptionTest, ParallelForThrowSurfacesAndSkipsNothingElse) {
  TypeParam sched(4);
  std::atomic<std::uint64_t> visited{0};
  EXPECT_THROW(sched.run([&] {
    par::parallel_for(
        sched, 0, 10000,
        [&](std::size_t i) {
          if (i == 7777) throw test_error("loop");
          visited.fetch_add(1, std::memory_order_relaxed);
        },
        64);
  }),
               test_error);
  // Every block except the throwing one completes (no cancellation), so at
  // most one grain of iterations is lost.
  EXPECT_GE(visited.load(), 10000u - 64u);
  expect_healthy(sched);
}

TYPED_TEST(ExceptionTest, ParallelInvokeThrowLowestIndexWins) {
  TypeParam sched(4);
  std::atomic<int> ran{0};
  try {
    sched.run([&] {
      par::parallel_invoke(
          sched, [&] { ran.fetch_add(1); },
          [&] { throw test_error("b"); }, [&] { ran.fetch_add(1); },
          [&] { throw test_error("d"); });
    });
    FAIL() << "expected test_error";
  } catch (const test_error& e) {
    EXPECT_STREQ(e.what(), "b");  // leftmost thrower along the join path
  }
  EXPECT_EQ(ran.load(), 2);  // non-throwing callables all ran (drain)
  expect_healthy(sched);
}

TYPED_TEST(ExceptionTest, RepeatedThrowsDoNotExhaustThePool) {
  TypeParam sched(4);
  for (int i = 0; i < 50; ++i) {
    EXPECT_THROW(sched.run([&] {
      sched.pardo([] {}, [] { throw test_error("again"); });
    }),
                 test_error);
  }
  expect_healthy(sched);
}

TYPED_TEST(ExceptionTest, NonStdExceptionPropagates) {
  TypeParam sched(2);
  EXPECT_THROW(
      sched.run([&] { sched.pardo([] {}, [] { throw 42; }); }), int);
  expect_healthy(sched);
}

}  // namespace
}  // namespace lcws
