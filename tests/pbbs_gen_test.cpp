// Tests for the PBBS-style input generators and the CSR graph type.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "pbbs/geometry.h"
#include "pbbs/graph.h"
#include "pbbs/graph_gen.h"
#include "pbbs/point_gen.h"
#include "pbbs/sequence_gen.h"
#include "pbbs/text_gen.h"

namespace lcws::pbbs {
namespace {

// ---------------------------------------------------------------------------
// sequences
// ---------------------------------------------------------------------------

TEST(SequenceGen, RandomSeqDeterministicAndBounded) {
  const auto a = random_seq(1000, 100, 7);
  const auto b = random_seq(1000, 100, 7);
  EXPECT_EQ(a, b);
  for (const auto x : a) ASSERT_LT(x, 100u);
  const auto c = random_seq(1000, 100, 8);
  EXPECT_NE(a, c);
}

TEST(SequenceGen, RandomSeqRoughlyUniform) {
  const auto v = random_seq(100000, 10);
  std::vector<std::size_t> counts(10, 0);
  for (const auto x : v) ++counts[x];
  for (const auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 10000.0, 600.0);
  }
}

TEST(SequenceGen, ExptSeqIsSkewed) {
  const auto v = expt_seq(100000, 1 << 20);
  // The exponential distribution concentrates mass near zero: the median
  // must be far below the midpoint.
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_LT(sorted[sorted.size() / 2], std::uint64_t{1} << 17);
  for (const auto x : v) ASSERT_LT(x, std::uint64_t{1} << 20);
}

TEST(SequenceGen, AlmostSortedSeqIsNearlySorted) {
  const auto v = almost_sorted_seq(10000);
  std::size_t inversions_at_distance_1 = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    inversions_at_distance_1 += v[i - 1] > v[i];
  }
  // sqrt(n) = 100 swaps, each causing at most 2 adjacent inversions.
  EXPECT_LE(inversions_at_distance_1, 220u);
  EXPECT_GT(inversions_at_distance_1, 0u);  // but it is not fully sorted
  // It is a permutation of 0..n-1.
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) ASSERT_EQ(sorted[i], i);
}

TEST(SequenceGen, RandomPairSeqKeysBoundedValuesAreIndices) {
  const auto v = random_pair_seq(5000, 64);
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_LT(v[i].first, 64u);
    ASSERT_EQ(v[i].second, i);
  }
}

TEST(SequenceGen, DoubleSeqsInRange) {
  for (const auto x : random_double_seq(10000)) {
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
  for (const auto x : expt_double_seq(10000)) ASSERT_GE(x, 0.0);
}

// ---------------------------------------------------------------------------
// text
// ---------------------------------------------------------------------------

TEST(TextGen, TrigramWordsShape) {
  const auto corpus = trigram_words(5000);
  EXPECT_EQ(corpus.words.size(), 5000u);
  for (const auto w : corpus.words) {
    ASSERT_GE(w.size(), 2u);
    ASSERT_LE(w.size(), 7u);
    for (const char c : w) ASSERT_TRUE(c >= 'a' && c <= 'z');
  }
  // Views point into the text and are space-separated.
  EXPECT_GE(corpus.words[1].data(), corpus.text.data());
  EXPECT_LT(corpus.words.back().data() + corpus.words.back().size(),
            corpus.text.data() + corpus.text.size() + 1);
}

TEST(TextGen, TrigramWordsRepeatWords) {
  const auto corpus = trigram_words(20000);
  std::set<std::string_view> distinct(corpus.words.begin(),
                                      corpus.words.end());
  // The Markov chain must generate heavy repetition (that is the point of
  // trigram inputs).
  EXPECT_LT(distinct.size(), corpus.words.size() / 2);
  EXPECT_GT(distinct.size(), 26u);
}

TEST(TextGen, DocumentCollectionPartitionsWords) {
  const auto dc = document_collection(1050, 100);
  EXPECT_EQ(dc.docs.size(), 11u);
  std::size_t covered = 0;
  for (std::size_t d = 0; d < dc.docs.size(); ++d) {
    const auto [b, e] = dc.docs[d];
    ASSERT_LT(b, e);
    if (d > 0) ASSERT_EQ(b, dc.docs[d - 1].second);
    covered += e - b;
  }
  EXPECT_EQ(covered, 1050u);
}

// ---------------------------------------------------------------------------
// graphs
// ---------------------------------------------------------------------------

TEST(Graph, FromEdgesSymmetrizesAndDedupes) {
  const auto g = graph::from_edges(
      4, {{0, 1}, {1, 0}, {1, 2}, {2, 2}, {1, 2}, {3, 0}});
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_arcs(), 6u);  // {0,1}, {1,2}, {0,3} both ways
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_EQ(g.degree(3), 1u);
  const auto n1 = g.neighbors(1);
  EXPECT_EQ(std::vector<vertex_id>(n1.begin(), n1.end()),
            (std::vector<vertex_id>{0, 2}));
}

TEST(Graph, UndirectedEdgesReturnsCanonicalForms) {
  const auto g = graph::from_edges(4, {{0, 1}, {1, 2}, {3, 0}});
  const auto edges = g.undirected_edges();
  ASSERT_EQ(edges.size(), 3u);
  for (const auto& e : edges) ASSERT_LT(e.u, e.v);
}

TEST(GraphGen, RmatGraphIsSkewed) {
  const auto g = rmat_graph(10000, 50000);
  EXPECT_GT(g.num_vertices(), 0u);
  EXPECT_GT(g.num_arcs(), 40000u);  // most edges survive dedup
  // Power-law: the max degree dwarfs the average.
  std::size_t max_degree = 0;
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    max_degree = std::max(max_degree, g.degree(v));
  }
  const double avg = static_cast<double>(g.num_arcs()) /
                     static_cast<double>(g.num_vertices());
  EXPECT_GT(static_cast<double>(max_degree), 10.0 * avg);
}

TEST(GraphGen, RandLocalGraphDegreesNearUniform) {
  const auto g = rand_local_graph(5000, 8);
  EXPECT_EQ(g.num_vertices(), 5000u);
  std::size_t max_degree = 0;
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    max_degree = std::max(max_degree, g.degree(v));
  }
  // Each vertex has ~16 arcs (8 out + ~8 in); no power-law outliers.
  EXPECT_LE(max_degree, 64u);
}

TEST(GraphGen, Grid3dIsRegular) {
  const auto g = grid3d_graph(1000);  // side 10
  EXPECT_EQ(g.num_vertices(), 1000u);
  for (vertex_id v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(g.degree(v), 6u) << v;  // torus: all degrees equal
  }
}

TEST(GraphGen, Deterministic) {
  const auto a = rmat_graph(1000, 5000, 42);
  const auto b = rmat_graph(1000, 5000, 42);
  EXPECT_EQ(a.num_arcs(), b.num_arcs());
  EXPECT_EQ(a.undirected_edges().size(), b.undirected_edges().size());
}

// ---------------------------------------------------------------------------
// points
// ---------------------------------------------------------------------------

TEST(PointGen, CubePointsInUnitSquare) {
  for (const auto& p : points_in_cube_2d(10000)) {
    ASSERT_GE(p.x, 0.0);
    ASSERT_LT(p.x, 1.0);
    ASSERT_GE(p.y, 0.0);
    ASSERT_LT(p.y, 1.0);
  }
}

TEST(PointGen, SpherePointsInUnitDisc) {
  for (const auto& p : points_in_sphere_2d(10000)) {
    ASSERT_LE(p.x * p.x + p.y * p.y, 1.0 + 1e-12);
  }
}

TEST(PointGen, KuzminIsCentrallyClustered) {
  const auto pts = points_kuzmin_2d(20000);
  std::size_t inside_unit = 0;
  for (const auto& p : pts) inside_unit += (p.x * p.x + p.y * p.y) <= 1.0;
  // Far more than a uniform spread would put inside radius 1 given the
  // heavy tail (some points land far outside).
  EXPECT_GT(inside_unit, pts.size() / 4);
  double max_r2 = 0;
  for (const auto& p : pts) max_r2 = std::max(max_r2, p.x * p.x + p.y * p.y);
  EXPECT_GT(max_r2, 25.0);  // the tail reaches out
}

TEST(Geometry, CrossOrientation) {
  const point2d a{0, 0}, b{1, 0};
  EXPECT_GT(cross(a, b, {0.5, 1}), 0.0);   // left turn
  EXPECT_LT(cross(a, b, {0.5, -1}), 0.0);  // right turn
  EXPECT_EQ(cross(a, b, {2, 0}), 0.0);     // collinear
  EXPECT_DOUBLE_EQ(squared_distance({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
}

}  // namespace
}  // namespace lcws::pbbs
