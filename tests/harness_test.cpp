// Tests for the figure-harness statistics: every figure's box plots,
// averages and percentages flow through these helpers, so they get their
// own oracle checks (the environment parsing too).
#include <gtest/gtest.h>

#include <cstdlib>

#include "harness.h"

namespace lcws::benchh {
namespace {

TEST(HarnessStats, QuantileInterpolates) {
  const std::vector<double> sorted{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(sorted, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(sorted, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(sorted, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile(sorted, 0.125), 1.5);  // halfway 1 -> 2
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(HarnessStats, BoxOfComputesFiveNumberSummary) {
  const box b = box_of({5, 1, 3, 2, 4});
  EXPECT_DOUBLE_EQ(b.min, 1);
  EXPECT_DOUBLE_EQ(b.q1, 2);
  EXPECT_DOUBLE_EQ(b.median, 3);
  EXPECT_DOUBLE_EQ(b.q3, 4);
  EXPECT_DOUBLE_EQ(b.max, 5);
  EXPECT_EQ(b.n, 5u);
}

TEST(HarnessStats, BoxOfEmptyAndSingleton) {
  const box empty = box_of({});
  EXPECT_EQ(empty.n, 0u);
  const box one = box_of({7});
  EXPECT_DOUBLE_EQ(one.min, 7);
  EXPECT_DOUBLE_EQ(one.median, 7);
  EXPECT_DOUBLE_EQ(one.max, 7);
  EXPECT_EQ(one.n, 1u);
}

TEST(HarnessStats, MeanAndFractionAbove) {
  const std::vector<double> xs{0.9, 1.0, 1.1, 1.2};
  EXPECT_DOUBLE_EQ(mean_of(xs), 1.05);
  EXPECT_DOUBLE_EQ(fraction_above(xs, 1.0), 0.5);   // strict >
  EXPECT_DOUBLE_EQ(fraction_above(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(fraction_above(xs, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(fraction_above({}, 1.0), 0.0);
}

TEST(HarnessEnv, ProcsParsing) {
  setenv("LCWS_BENCH_PROCS", "1,3,5", 1);
  EXPECT_EQ(env_procs(), (std::vector<std::size_t>{1, 3, 5}));
  setenv("LCWS_BENCH_PROCS", "garbage", 1);
  EXPECT_EQ(env_procs({2, 4}), (std::vector<std::size_t>{2, 4}));
  unsetenv("LCWS_BENCH_PROCS");
  EXPECT_EQ(env_procs({7}), (std::vector<std::size_t>{7}));
}

TEST(HarnessEnv, ScaleAndRounds) {
  setenv("LCWS_BENCH_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(env_scale(), 0.5);
  unsetenv("LCWS_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(env_scale(), 0.05);
  setenv("LCWS_BENCH_ROUNDS", "7", 1);
  EXPECT_EQ(env_rounds(), 7);
  setenv("LCWS_BENCH_ROUNDS", "0", 1);
  EXPECT_EQ(env_rounds(), 1);  // floor
  unsetenv("LCWS_BENCH_ROUNDS");
  EXPECT_EQ(env_rounds(), 3);
}

TEST(HarnessEnv, MaxCfgCapsConfigs) {
  setenv("LCWS_BENCH_MAXCFG", "3", 1);
  EXPECT_EQ(env_configs().size(), 3u);
  unsetenv("LCWS_BENCH_MAXCFG");
  EXPECT_GT(env_configs().size(), 40u);
}

TEST(HarnessSweep, IndexAndRatios) {
  // A tiny real sweep: one config, two kinds, one P.
  setenv("LCWS_BENCH_MAXCFG", "1", 1);
  setenv("LCWS_BENCH_SCALE", "0.01", 1);
  setenv("LCWS_BENCH_ROUNDS", "1", 1);
  const auto cells = sweep({sched_kind::ws, sched_kind::uslcws}, {2});
  ASSERT_EQ(cells.size(), 2u);
  const sweep_index index(cells);
  ASSERT_NE(index.find(cells[0].cfg, 2, sched_kind::ws), nullptr);
  ASSERT_NE(index.find(cells[0].cfg, 2, sched_kind::uslcws), nullptr);
  EXPECT_EQ(index.find(cells[0].cfg, 3, sched_kind::ws), nullptr);

  const auto speedups =
      speedups_vs_ws(cells, index, sched_kind::uslcws, 2);
  ASSERT_EQ(speedups.size(), 1u);
  EXPECT_GT(speedups[0], 0.0);

  const auto ratios = counter_ratios(
      cells, index, sched_kind::uslcws, sched_kind::ws, 2,
      [](const stats::profile& p) { return p.totals.pushes; });
  ASSERT_EQ(ratios.size(), 1u);
  EXPECT_GT(ratios[0], 0.0);  // both schedulers push tasks
  unsetenv("LCWS_BENCH_MAXCFG");
  unsetenv("LCWS_BENCH_SCALE");
  unsetenv("LCWS_BENCH_ROUNDS");
}

}  // namespace
}  // namespace lcws::benchh
