// Adaptive worker parking (elastic idling): parking_lot unit tests, the
// never-lose-a-wakeup stress test, the counter-faithfulness proof (parking
// must not perturb the paper's fence/CAS/steal/exposure profiles), and the
// stale-targeted_-flag regression test.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

#include "sched/dispatch.h"
#include "sched/scheduler.h"
#include "support/parking_lot.h"
#include "support/rng.h"
#include "support/timing.h"

namespace lcws {
namespace {

using namespace std::chrono_literals;

constexpr auto kLongTimeout = std::chrono::microseconds(2'000'000);

void spin_for_ns(std::uint64_t ns) {
  stopwatch sw;
  volatile std::uint64_t sink = 0;
  while (sw.elapsed_ns() < ns) {
    for (int i = 0; i < 64; ++i) sink = sink + 1;
  }
}

// ---- parking_lot primitive ------------------------------------------------

TEST(ParkingLot, PermitDeliveredBeforeParkIsConsumedImmediately) {
  parking_lot lot(2);
  lot.announce(0);
  EXPECT_EQ(lot.sleepers(), 1u);
  EXPECT_TRUE(lot.unpark_one());
  EXPECT_EQ(lot.sleepers(), 0u);
  // The permit is sticky: the park that follows the claimed announcement
  // returns woken without blocking for the full timeout.
  stopwatch sw;
  EXPECT_TRUE(lot.park(0, kLongTimeout));
  EXPECT_LT(sw.elapsed_seconds(), 1.0);
}

TEST(ParkingLot, UnparkOneWakesAParkedThread) {
  parking_lot lot(2);
  std::atomic<bool> woken{false};
  std::thread parker([&] {
    lot.announce(1);
    woken.store(lot.park(1, kLongTimeout));
  });
  while (lot.sleepers() == 0) std::this_thread::yield();
  while (!lot.unpark_one()) std::this_thread::yield();
  parker.join();
  EXPECT_TRUE(woken.load());
  EXPECT_EQ(lot.sleepers(), 0u);
}

TEST(ParkingLot, TimeoutExpiresWithoutAWake) {
  parking_lot lot(1);
  lot.announce(0);
  EXPECT_FALSE(lot.park(0, std::chrono::microseconds(100)));
  EXPECT_EQ(lot.sleepers(), 0u);  // park retires the announcement
}

TEST(ParkingLot, CancelRetiresAnnouncement) {
  parking_lot lot(1);
  lot.announce(0);
  lot.cancel(0);
  EXPECT_EQ(lot.sleepers(), 0u);
  EXPECT_FALSE(lot.unpark_one());
}

TEST(ParkingLot, UnparkAllWakesEveryParkedWorker) {
  constexpr std::size_t kN = 3;
  parking_lot lot(kN);
  std::atomic<int> woken{0};
  std::vector<std::thread> parkers;
  for (std::size_t i = 0; i < kN; ++i) {
    parkers.emplace_back([&, i] {
      lot.announce(i);
      if (lot.park(i, kLongTimeout)) woken.fetch_add(1);
    });
  }
  while (lot.sleepers() < kN) std::this_thread::yield();
  EXPECT_EQ(lot.unpark_all(), kN);
  for (auto& t : parkers) t.join();
  EXPECT_EQ(woken.load(), static_cast<int>(kN));
}

TEST(ParkingLot, TargetedUnparkPermitIsStickyAcrossAnnounce) {
  parking_lot lot(2);
  // A targeted wake with no announcement outstanding (mailbox request racing
  // a victim that has not yet announced) leaves a permit...
  lot.unpark(0);
  // ...which the victim's next park consumes instantly.
  lot.announce(0);
  stopwatch sw;
  EXPECT_TRUE(lot.park(0, kLongTimeout));
  EXPECT_LT(sw.elapsed_seconds(), 1.0);
}

TEST(ParkingMode, KnobAndEnvironmentSemantics) {
  EXPECT_FALSE(parking_enabled(parking_mode::disabled));
  EXPECT_TRUE(parking_enabled(parking_mode::enabled));
  // env_default defers to LCWS_NO_PARKING: unset / empty / "0" mean on.
  unsetenv("LCWS_NO_PARKING");
  EXPECT_TRUE(parking_enabled(parking_mode::env_default));
  setenv("LCWS_NO_PARKING", "", 1);
  EXPECT_TRUE(parking_enabled(parking_mode::env_default));
  setenv("LCWS_NO_PARKING", "0", 1);
  EXPECT_TRUE(parking_enabled(parking_mode::env_default));
  setenv("LCWS_NO_PARKING", "1", 1);
  EXPECT_FALSE(parking_enabled(parking_mode::env_default));
  unsetenv("LCWS_NO_PARKING");
}

// ---- scheduler integration ------------------------------------------------

TEST(Parking, SingleWorkerPoolNeverParks) {
  ws_scheduler sched(1, default_deque_capacity, parking_mode::enabled);
  EXPECT_FALSE(sched.parking_active());
}

// With one worker spinning sequentially and the rest idle, parking must
// engage (parks and parked nanoseconds accumulate); with the kill-switch
// thrown, the parking counters must stay exactly zero.
TEST(Parking, EngagesWhenIdleAndKillSwitchIsInert) {
  for (const sched_kind kind : all_sched_kinds) {
    for (const bool on : {true, false}) {
      with_scheduler(
          kind, 8, on ? parking_mode::enabled : parking_mode::disabled,
          [&](auto& sched) {
            EXPECT_EQ(sched.parking_active(), on) << to_string(kind);
            sched.reset_counters();
            sched.run([&] { spin_for_ns(50'000'000); });
            const auto t = sched.profile().totals;
            if (on) {
              EXPECT_GT(t.parks, 0u) << to_string(kind);
              EXPECT_GT(t.idle_ns, 0u) << to_string(kind);
            } else {
              EXPECT_EQ(t.parks, 0u) << to_string(kind);
              EXPECT_EQ(t.wakes, 0u) << to_string(kind);
              EXPECT_EQ(t.idle_ns, 0u) << to_string(kind);
            }
          });
    }
  }
}

// ---- counter faithfulness (profile equivalence) ---------------------------

// Phase A: a purely sequential computation at P=8. Idle thieves probe empty
// deques, which is fence- and CAS-free in both the ABP and split deques, and
// parking itself is uncounted — so the protocol counters the paper plots
// must be *zero*, parked or spinning. (The mailbox family's probes post
// requests — a CAS and a counted request per probe, nondeterministically
// many — so it only pins the fence/steal/exposure columns.)
TEST(ProfileEquivalence, SequentialWorkloadKeepsProtocolCountersZero) {
  for (const sched_kind kind : all_sched_kinds) {
    for (const parking_mode mode :
         {parking_mode::enabled, parking_mode::disabled}) {
      with_scheduler(kind, 8, mode, [&](auto& sched) {
        sched.reset_counters();
        sched.run([&] { spin_for_ns(10'000'000); });
        const auto t = sched.profile().totals;
        const char* ctx = to_string(kind);
        EXPECT_EQ(t.fences, 0u) << ctx;
        EXPECT_EQ(t.steals, 0u) << ctx;
        EXPECT_EQ(t.exposures, 0u) << ctx;
        EXPECT_EQ(t.unexposures, 0u) << ctx;
        EXPECT_EQ(t.signals_sent, 0u) << ctx;
        if (kind != sched_kind::private_deques) {
          EXPECT_EQ(t.cas, 0u) << ctx;
          EXPECT_EQ(t.exposure_requests, 0u) << ctx;
        }
      });
    }
  }
}

template <typename Sched>
std::uint64_t fib(Sched& sched, unsigned n) {
  if (n < 2) return n;
  if (n < 16) {  // sequential cutoff: keep task counts deterministic-ish
    return fib(sched, n - 1) + fib(sched, n - 2);
  }
  std::uint64_t left = 0, right = 0;
  sched.pardo([&] { left = fib(sched, n - 1); },
              [&] { right = fib(sched, n - 2); });
  return left + right;
}

// Phase B: at P=1 the schedule is fully deterministic (no thieves, and
// parking is inert by construction), so the *entire* profile must be
// bit-identical with parking enabled vs disabled.
TEST(ProfileEquivalence, SingleWorkerProfilesAreIdentical) {
  for (const sched_kind kind : all_sched_kinds) {
    stats::op_counters t[2];
    int i = 0;
    for (const parking_mode mode :
         {parking_mode::enabled, parking_mode::disabled}) {
      with_scheduler(kind, 1, mode, [&](auto& sched) {
        sched.reset_counters();
        sched.run([&] { (void)fib(sched, 22); });
        t[i] = sched.profile().totals;
      });
      ++i;
    }
    const char* ctx = to_string(kind);
    EXPECT_EQ(t[0].fences, t[1].fences) << ctx;
    EXPECT_EQ(t[0].cas, t[1].cas) << ctx;
    EXPECT_EQ(t[0].pushes, t[1].pushes) << ctx;
    EXPECT_EQ(t[0].pops_private, t[1].pops_private) << ctx;
    EXPECT_EQ(t[0].pops_public, t[1].pops_public) << ctx;
    EXPECT_EQ(t[0].steal_attempts, t[1].steal_attempts) << ctx;
    EXPECT_EQ(t[0].steals, t[1].steals) << ctx;
    EXPECT_EQ(t[0].exposures, t[1].exposures) << ctx;
    EXPECT_EQ(t[0].exposure_requests, t[1].exposure_requests) << ctx;
    EXPECT_EQ(t[0].unexposures, t[1].unexposures) << ctx;
    EXPECT_EQ(t[0].signals_sent, t[1].signals_sent) << ctx;
    EXPECT_EQ(t[0].tasks_executed, t[1].tasks_executed) << ctx;
    EXPECT_EQ(t[0].parks, 0u) << ctx;
    EXPECT_EQ(t[1].parks, 0u) << ctx;
  }
}

// Phase C: at P=4 the steal schedule is nondeterministic, but the *work* is
// not: every pardo pushes exactly one job and every job runs exactly once,
// parked or not. Structure-determined counters must match across modes.
// (Lace-style unexposure re-pushes each reclaimed task — a schedule-
// dependent extra push_bottom — so the structural push count is
// pushes - unexposures.)
TEST(ProfileEquivalence, WorkCountersMatchAcrossModesAtP4) {
  for (const sched_kind kind : all_sched_kinds) {
    stats::op_counters t[2];
    std::uint64_t result[2];
    int i = 0;
    for (const parking_mode mode :
         {parking_mode::enabled, parking_mode::disabled}) {
      with_scheduler(kind, 4, mode, [&](auto& sched) {
        sched.reset_counters();
        result[i] = sched.run([&] { return fib(sched, 24); });
        t[i] = sched.profile().totals;
      });
      ++i;
    }
    const char* ctx = to_string(kind);
    EXPECT_EQ(result[0], result[1]) << ctx;
    EXPECT_EQ(t[0].pushes - t[0].unexposures,
              t[1].pushes - t[1].unexposures)
        << ctx;
    EXPECT_EQ(t[0].tasks_executed, t[1].tasks_executed) << ctx;
    EXPECT_EQ(t[1].parks, 0u) << ctx;  // kill-switch: no parking at all
    EXPECT_EQ(t[1].wakes, 0u) << ctx;
  }
}

// ---- stress: no lost wakeups, no deadlocks --------------------------------

// Same deterministic random tree as scheduler_fuzz_test.cpp.
template <typename Sched>
std::uint64_t random_tree(Sched& sched, std::uint64_t seed,
                          std::uint64_t path, unsigned depth) {
  const std::uint64_t h = hash64(seed ^ path);
  if (depth == 0 || (h & 7) == 0) {
    std::uint64_t acc = h;
    const unsigned iters = 1 + (h >> 8) % 200;
    for (unsigned i = 0; i < iters; ++i) acc = hash64(acc);
    return acc;
  }
  std::uint64_t left = 0, right = 0;
  const unsigned left_depth = (h >> 16) % (depth + 1);
  const unsigned right_depth = (h >> 24) % (depth + 1);
  sched.pardo(
      [&] { left = random_tree(sched, seed, path * 2 + 1, left_depth); },
      [&] { right = random_tree(sched, seed, path * 2 + 2, right_depth); });
  return left ^ (right * 0x9e3779b97f4a7c15ULL);
}

std::uint64_t random_tree_seq(std::uint64_t seed, std::uint64_t path,
                              unsigned depth) {
  const std::uint64_t h = hash64(seed ^ path);
  if (depth == 0 || (h & 7) == 0) {
    std::uint64_t acc = h;
    const unsigned iters = 1 + (h >> 8) % 200;
    for (unsigned i = 0; i < iters; ++i) acc = hash64(acc);
    return acc;
  }
  const unsigned left_depth = (h >> 16) % (depth + 1);
  const unsigned right_depth = (h >> 24) % (depth + 1);
  const std::uint64_t left = random_tree_seq(seed, path * 2 + 1, left_depth);
  const std::uint64_t right =
      random_tree_seq(seed, path * 2 + 2, right_depth);
  return left ^ (right * 0x9e3779b97f4a7c15ULL);
}

// Repeated run -> quiesce cycles with parking on: every cycle the workers
// park (the sleep between runs far exceeds the adaptive backstop), and the
// next run must wake them and complete. A lost wakeup shows up as a hang
// (gtest/ctest timeout); a protocol race shows up under TSan (the tsan
// preset builds this same test). Bursts *inside* a run (work appearing
// after everyone quiesced mid-run) are exercised by the second loop.
TEST(ParkingStress, RunQuiesceCyclesAcrossAllFamilies) {
  for (const sched_kind kind : all_sched_kinds) {
    with_scheduler(kind, 8, parking_mode::enabled, [&](auto& sched) {
      for (std::uint64_t cycle = 0; cycle < 5; ++cycle) {
        const std::uint64_t seed = 900 + cycle;
        const std::uint64_t expected = random_tree_seq(seed, 0, 12);
        const std::uint64_t got =
            sched.run([&] { return random_tree(sched, seed, 0, 12); });
        ASSERT_EQ(got, expected)
            << to_string(kind) << " cycle=" << cycle;
        std::this_thread::sleep_for(3ms);  // everyone parks (backstop ~100us)
      }
      // Mid-run quiesce: sequential lull, then a parallel burst that parked
      // workers must wake for.
      const std::uint64_t got = sched.run([&] {
        std::uint64_t acc = 0;
        for (int burst = 0; burst < 3; ++burst) {
          spin_for_ns(2'000'000);
          acc ^= random_tree(sched, 777 + burst, 0, 12);
        }
        return acc;
      });
      std::uint64_t expected = 0;
      for (int burst = 0; burst < 3; ++burst) {
        expected ^= random_tree_seq(777 + burst, 0, 12);
      }
      ASSERT_EQ(got, expected) << to_string(kind);
    });
  }
}

// ---- stale targeted_ flag regression --------------------------------------

// A targeted_ flag left set when a run drains used to survive into the next
// run() on the same pool. run() must clear it.
TEST(StaleTargetedFlag, ClearedAtRunEntry) {
  for (const sched_kind kind : all_sched_kinds) {
    with_scheduler(kind, 2, [&](auto& sched) {
      sched.set_targeted(0, true);
      sched.set_targeted(1, true);
      sched.run([] {});
      EXPECT_FALSE(sched.is_targeted(0)) << to_string(kind);
      EXPECT_FALSE(sched.is_targeted(1)) << to_string(kind);
    });
  }
}

// Counter-level proof of the user-space-family symptom: at P=1 there are no
// thieves, so a correct run performs zero exposures and zero fences. With a
// stale flag surviving into run(), the first nested pop would spuriously
// expose the outer pardo's pending job (1 exposure, 2 fences, 1 CAS).
TEST(StaleTargetedFlag, NoSpuriousExposureAtP1) {
  for (const sched_kind kind : {sched_kind::uslcws, sched_kind::lace}) {
    with_scheduler(kind, 1, [&](auto& sched) {
      sched.set_targeted(0, true);
      sched.reset_counters();
      sched.run([&] {
        sched.pardo([&] { sched.pardo([] {}, [] {}); }, [] {});
      });
      const auto t = sched.profile().totals;
      EXPECT_EQ(t.exposures, 0u) << to_string(kind);
      EXPECT_EQ(t.fences, 0u) << to_string(kind);
      EXPECT_EQ(t.cas, 0u) << to_string(kind);
    });
  }
}

}  // namespace
}  // namespace lcws
