// Correctness, instrumentation and liveness tests for the five schedulers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "sched/dispatch.h"
#include "sched/scheduler.h"

namespace lcws {
namespace {

// ---------------------------------------------------------------------------
// Typed tests: identical behavioural contract for every scheduler family.
// ---------------------------------------------------------------------------

template <typename Sched>
class SchedulerTest : public ::testing::Test {};

using all_schedulers =
    ::testing::Types<ws_scheduler, uslcws_scheduler, signal_scheduler,
                     conservative_scheduler, expose_half_scheduler,
                     private_deques_scheduler, lace_scheduler>;

TYPED_TEST_SUITE(SchedulerTest, all_schedulers);

// Recursive fork-join Fibonacci: the classic scheduler correctness probe.
template <typename Sched>
std::uint64_t fib(Sched& sched, unsigned n) {
  if (n < 2) return n;
  if (n < 12) {  // sequential cutoff
    std::uint64_t a = 0, b = 1;
    for (unsigned i = 1; i < n; ++i) {
      const std::uint64_t c = a + b;
      a = b;
      b = c;
    }
    return b;
  }
  std::uint64_t left = 0, right = 0;
  sched.pardo([&] { left = fib(sched, n - 1); },
              [&] { right = fib(sched, n - 2); });
  return left + right;
}

// Divide-and-conquer sum over [lo, hi).
template <typename Sched>
std::uint64_t dc_sum(Sched& sched, const std::vector<std::uint32_t>& data,
                     std::size_t lo, std::size_t hi) {
  if (hi - lo <= 512) {
    return std::accumulate(data.begin() + static_cast<std::ptrdiff_t>(lo),
                           data.begin() + static_cast<std::ptrdiff_t>(hi),
                           std::uint64_t{0});
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  std::uint64_t left = 0, right = 0;
  sched.pardo([&] { left = dc_sum(sched, data, lo, mid); },
              [&] { right = dc_sum(sched, data, mid, hi); });
  return left + right;
}

TYPED_TEST(SchedulerTest, SingleWorkerRunsSequentially) {
  TypeParam sched(1);
  const std::uint64_t result = sched.run([&] { return fib(sched, 20); });
  EXPECT_EQ(result, 6765u);
}

TYPED_TEST(SchedulerTest, FibonacciWithFourWorkers) {
  TypeParam sched(4);
  const std::uint64_t result = sched.run([&] { return fib(sched, 24); });
  EXPECT_EQ(result, 46368u);
}

TYPED_TEST(SchedulerTest, PardoOutsideRunSelfWraps) {
  TypeParam sched(2);
  int left = 0, right = 0;
  sched.pardo([&] { left = 1; }, [&] { right = 2; });
  EXPECT_EQ(left, 1);
  EXPECT_EQ(right, 2);
}

TYPED_TEST(SchedulerTest, DivideAndConquerSumMatchesSequential) {
  std::vector<std::uint32_t> data(100000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint32_t>(i * 2654435761u);
  }
  const std::uint64_t expected =
      std::accumulate(data.begin(), data.end(), std::uint64_t{0});
  TypeParam sched(4);
  const std::uint64_t result =
      sched.run([&] { return dc_sum(sched, data, 0, data.size()); });
  EXPECT_EQ(result, expected);
}

// Every leaf task runs exactly once — double execution (the failure mode of
// a broken owner/thief race) would overshoot the counter.
TYPED_TEST(SchedulerTest, EveryLeafExecutesExactlyOnce) {
  constexpr int kLeaves = 1 << 12;
  std::vector<std::atomic<int>> executed(kLeaves);
  for (auto& e : executed) e.store(0);

  TypeParam sched(8);  // oversubscribed: forces heavy interleaving
  struct rec {
    static void go(TypeParam& s, std::vector<std::atomic<int>>& ex, int lo,
                   int hi) {
      if (hi - lo == 1) {
        ex[static_cast<std::size_t>(lo)].fetch_add(1);
        return;
      }
      const int mid = lo + (hi - lo) / 2;
      s.pardo([&] { go(s, ex, lo, mid); }, [&] { go(s, ex, mid, hi); });
    }
  };
  sched.run([&] { rec::go(sched, executed, 0, kLeaves); });

  for (int i = 0; i < kLeaves; ++i) {
    ASSERT_EQ(executed[static_cast<std::size_t>(i)].load(), 1)
        << "leaf " << i;
  }
}

TYPED_TEST(SchedulerTest, RepeatedRunsOnSamePool) {
  TypeParam sched(4);
  for (int round = 0; round < 5; ++round) {
    const std::uint64_t result = sched.run([&] { return fib(sched, 20); });
    ASSERT_EQ(result, 6765u);
  }
}

TYPED_TEST(SchedulerTest, NestedPardoDeepRecursion) {
  TypeParam sched(4);
  std::atomic<int> count{0};
  struct rec {
    static void go(TypeParam& s, std::atomic<int>& c, int depth) {
      if (depth == 0) {
        c.fetch_add(1);
        return;
      }
      s.pardo([&] { go(s, c, depth - 1); }, [&] { go(s, c, depth - 1); });
    }
  };
  sched.run([&] { rec::go(sched, count, 10); });
  EXPECT_EQ(count.load(), 1024);
}

TYPED_TEST(SchedulerTest, RunReturnsValue) {
  TypeParam sched(2);
  const int v = sched.run([] { return 17; });
  EXPECT_EQ(v, 17);
}

TYPED_TEST(SchedulerTest, NestedRunIsTransparent) {
  TypeParam sched(2);
  const int v = sched.run([&] { return sched.run([] { return 23; }); });
  EXPECT_EQ(v, 23);
}

TYPED_TEST(SchedulerTest, ProfileCountsTasks) {
  TypeParam sched(4);
  sched.reset_counters();
  sched.run([&] { (void)fib(sched, 22); });
  const auto p = sched.profile();
  // Every pardo pushes exactly one job, and every pushed job is eventually
  // executed by someone. A Lace-style unexposure re-pushes a reclaimed
  // task, so each unexposure adds one push without adding an execution.
  EXPECT_GT(p.totals.pushes, 0u);
  EXPECT_EQ(p.totals.tasks_executed + p.totals.unexposures, p.totals.pushes);
  EXPECT_EQ(p.totals.pops_private + p.totals.pops_public + p.totals.steals,
            p.totals.pushes);
}

TYPED_TEST(SchedulerTest, ResetCountersZeroes) {
  TypeParam sched(2);
  sched.run([&] { (void)fib(sched, 18); });
  sched.reset_counters();
  const auto p = sched.profile();
  EXPECT_EQ(p.totals.pushes, 0u);
  EXPECT_EQ(p.totals.tasks_executed, 0u);
}

TYPED_TEST(SchedulerTest, CustomDequeCapacity) {
  // A small capacity still runs a computation whose depth fits it.
  TypeParam sched(2, /*deque_capacity=*/256);
  const std::uint64_t result = sched.run([&] { return fib(sched, 20); });
  EXPECT_EQ(result, 6765u);
  EXPECT_EQ(sched.deque_of(0).capacity(), 256u);
}

TYPED_TEST(SchedulerTest, NumWorkers) {
  TypeParam sched(3);
  EXPECT_EQ(sched.num_workers(), 3u);
  TypeParam sched0(0);  // clamps to 1
  EXPECT_EQ(sched0.num_workers(), 1u);
}

// ---------------------------------------------------------------------------
// Family-specific behaviour
// ---------------------------------------------------------------------------

// The paper's headline claim (Figs 3a, 8a): LCWS schedulers execute far
// fewer fences than WS on the same computation, because WS pays one fence
// per push and one per pop while LCWS pays fences only for exposed work.
TEST(SchedulerComparison, SplitDequeSchedulersUseFarFewerFences) {
  const auto workload = [](auto& sched) {
    sched.reset_counters();
    sched.run([&] { (void)fib(sched, 24); });
    return sched.profile().totals;
  };

  ws_scheduler ws(4);
  const auto ws_totals = workload(ws);
  ASSERT_GT(ws_totals.fences, 1000u);  // one per push + one per pop

  uslcws_scheduler us(4);
  const auto us_totals = workload(us);
  signal_scheduler sig(4);
  const auto sig_totals = workload(sig);

  // The paper measures <1% (Fig 3a); we only assert the order-of-magnitude
  // claim to stay robust against scheduling noise.
  EXPECT_LT(us_totals.fences * 10, ws_totals.fences);
  EXPECT_LT(sig_totals.fences * 10, ws_totals.fences);
}

TEST(SchedulerComparison, WsNeverExposesOrSignals) {
  ws_scheduler sched(4);
  sched.reset_counters();
  sched.run([&] { (void)fib(sched, 22); });
  const auto t = sched.profile().totals;
  EXPECT_EQ(t.exposures, 0u);
  EXPECT_EQ(t.signals_sent, 0u);
  EXPECT_EQ(t.private_work_seen, 0u);
}

TEST(SchedulerComparison, LaceNeverSendsSignalsAndNeverUnexposesMoreThanExposed) {
  lace_scheduler sched(4);
  sched.reset_counters();
  sched.run([&] { (void)fib(sched, 22); });
  const auto t = sched.profile().totals;
  EXPECT_EQ(t.signals_sent, 0u);
  EXPECT_LE(t.unexposures, t.exposures);
}

TEST(SchedulerComparison, LcwsVariantsNeverUnexpose) {
  // The paper's Section 2: LCWS never transfers exposed work back.
  uslcws_scheduler us(4);
  us.reset_counters();
  us.run([&] { (void)fib(us, 22); });
  EXPECT_EQ(us.profile().totals.unexposures, 0u);
  signal_scheduler sig(4);
  sig.reset_counters();
  sig.run([&] { (void)fib(sig, 22); });
  EXPECT_EQ(sig.profile().totals.unexposures, 0u);
}

TEST(SchedulerComparison, UslcwsNeverSendsSignals) {
  uslcws_scheduler sched(4);
  sched.reset_counters();
  sched.run([&] { (void)fib(sched, 22); });
  EXPECT_EQ(sched.profile().totals.signals_sent, 0u);
}

// Liveness of constant-time exposure (the property that separates the
// signal-based schedulers from USLCWS and Lace): a worker stuck in one long
// sequential task has its private fork exposed by the SIGUSR1 handler and
// stolen by a thief *while the long task still runs*. Under USLCWS this
// workload cannot terminate (the paper's Section 3.3 discussion), so it is
// only run for the schedulers that guarantee timely exposure.
template <typename Sched>
void expect_exposure_during_long_task() {
  Sched sched(2);
  sched.reset_counters();
  std::atomic<bool> right_ran{false};
  bool timed_out = false;
  sched.run([&] {
    sched.pardo(
        [&] {
          // "Long sequential task": spin until the fork is stolen. Bounded
          // so a broken implementation fails the test instead of hanging.
          const auto deadline =
              std::chrono::steady_clock::now() + std::chrono::seconds(30);
          while (!right_ran.load(std::memory_order_acquire)) {
            if (std::chrono::steady_clock::now() > deadline) {
              timed_out = true;
              return;
            }
            std::this_thread::yield();
          }
        },
        [&] { right_ran.store(true, std::memory_order_release); });
  });
  EXPECT_FALSE(timed_out) << "fork was never exposed/stolen";
  EXPECT_TRUE(right_ran.load());
  const auto t = sched.profile().totals;
  EXPECT_GE(t.steals, 1u);
}

TEST(SignalLiveness, BaseSignalSchedulerExposesDuringLongTask) {
  expect_exposure_during_long_task<signal_scheduler>();
}

TEST(SignalLiveness, ExposeHalfSchedulerExposesDuringLongTask) {
  expect_exposure_during_long_task<expose_half_scheduler>();
}

TEST(SignalLiveness, WsStealsDirectlyDuringLongTask) {
  expect_exposure_during_long_task<ws_scheduler>();
}

// Conservative Exposure refuses to expose a last private task, so the
// single-fork version above would hang; with two outstanding private forks
// it must expose the older one.
TEST(SignalLiveness, ConservativeExposesWithTwoPrivateTasks) {
  conservative_scheduler sched(2);
  sched.reset_counters();
  std::atomic<int> forks_ran{0};
  bool timed_out = false;
  sched.run([&] {
    sched.pardo(
        [&] {
          sched.pardo(
              [&] {
                const auto deadline = std::chrono::steady_clock::now() +
                                      std::chrono::seconds(30);
                // Two private forks outstanding; wait until a thief runs
                // at least one of them.
                while (forks_ran.load(std::memory_order_acquire) == 0) {
                  if (std::chrono::steady_clock::now() > deadline) {
                    timed_out = true;
                    return;
                  }
                  std::this_thread::yield();
                }
              },
              [&] { forks_ran.fetch_add(1); });
        },
        [&] { forks_ran.fetch_add(1); });
  });
  EXPECT_FALSE(timed_out) << "conservative exposure never fired";
  EXPECT_EQ(forks_ran.load(), 2);
  EXPECT_GE(sched.profile().totals.steals, 1u);
}

TEST(SignalProtocol, SignalsAreCountedWhenExposureIsRequested) {
  signal_scheduler sched(2);
  sched.reset_counters();
  std::atomic<bool> right_ran{false};
  sched.run([&] {
    sched.pardo(
        [&] {
          const auto deadline =
              std::chrono::steady_clock::now() + std::chrono::seconds(30);
          while (!right_ran.load() &&
                 std::chrono::steady_clock::now() < deadline) {
            std::this_thread::yield();
          }
        },
        [&] { right_ran.store(true); });
  });
  const auto t = sched.profile().totals;
  EXPECT_GE(t.signals_sent, 1u);
  EXPECT_GE(t.exposures, 1u);
}

// ---------------------------------------------------------------------------
// Runtime dispatch
// ---------------------------------------------------------------------------

TEST(Dispatch, AllKindsConstructAndRun) {
  for (const sched_kind kind : all_sched_kinds) {
    const std::uint64_t result = with_scheduler(
        kind, 2, [](auto& sched) {
          return sched.run([&] { return fib(sched, 20); });
        });
    EXPECT_EQ(result, 6765u) << to_string(kind);
  }
}

TEST(Dispatch, NamesRoundTrip) {
  EXPECT_STREQ(to_string(sched_kind::ws), "ws");
  EXPECT_STREQ(to_string(sched_kind::uslcws), "uslcws");
  EXPECT_STREQ(to_string(sched_kind::signal), "signal");
  EXPECT_STREQ(to_string(sched_kind::conservative), "conservative");
  EXPECT_STREQ(to_string(sched_kind::expose_half), "expose_half");
  EXPECT_STREQ(ws_scheduler::name(), "ws");
  EXPECT_STREQ(expose_half_scheduler::name(), "expose_half");
}

}  // namespace
}  // namespace lcws
