// Tests for the Parlay-like parallel toolkit, run over both a baseline WS
// scheduler and a signal-based LCWS scheduler so every algorithm exercises
// both deque protocols.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <numeric>
#include <string>
#include <string_view>
#include <vector>

#include "parallel/hash_table.h"
#include "parallel/histogram.h"
#include "parallel/integer_sort.h"
#include "parallel/merge.h"
#include "parallel/pack.h"
#include "parallel/parallel_for.h"
#include "parallel/collect_reduce.h"
#include "parallel/random.h"
#include "parallel/reduce.h"
#include "parallel/sample_sort.h"
#include "parallel/scan.h"
#include "parallel/parallel_invoke.h"
#include "parallel/sort.h"
#include "parallel/tokens.h"
#include "sched/scheduler.h"
#include "support/rng.h"

namespace lcws {
namespace {

template <typename Sched>
class ParallelTest : public ::testing::Test {
 protected:
  Sched sched{4};
};

using tested_schedulers = ::testing::Types<ws_scheduler, signal_scheduler>;
TYPED_TEST_SUITE(ParallelTest, tested_schedulers);

// ---------------------------------------------------------------------------
// parallel_for
// ---------------------------------------------------------------------------

TYPED_TEST(ParallelTest, ParallelForTouchesEveryIndexOnce) {
  constexpr std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  this->sched.run([&] {
    par::parallel_for(this->sched, 0, n,
                      [&](std::size_t i) { hits[i].fetch_add(1); });
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TYPED_TEST(ParallelTest, ParallelForEmptyAndSingleton) {
  std::atomic<int> count{0};
  this->sched.run([&] {
    par::parallel_for(this->sched, 5, 5, [&](std::size_t) { count++; });
    par::parallel_for(this->sched, 7, 8, [&](std::size_t i) {
      count += static_cast<int>(i);
    });
  });
  EXPECT_EQ(count.load(), 7);
}

TYPED_TEST(ParallelTest, ParallelForRespectsExplicitGrain) {
  constexpr std::size_t n = 1000;
  std::vector<int> data(n, 0);
  this->sched.run([&] {
    par::parallel_for(this->sched, 0, n, [&](std::size_t i) { data[i] = 1; },
                      n);  // grain == n: fully sequential, still correct
  });
  EXPECT_EQ(std::accumulate(data.begin(), data.end(), 0),
            static_cast<int>(n));
}

TYPED_TEST(ParallelTest, ParallelForBlockedCoversRange) {
  constexpr std::size_t n = 12345;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  this->sched.run([&] {
    par::parallel_for_blocked(this->sched, 0, n,
                              [&](std::size_t lo, std::size_t hi) {
                                ASSERT_LT(lo, hi);
                                for (std::size_t i = lo; i < hi; ++i) {
                                  hits[i].fetch_add(1);
                                }
                              });
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

// ---------------------------------------------------------------------------
// reduce
// ---------------------------------------------------------------------------

TYPED_TEST(ParallelTest, SumMatchesSequential) {
  std::vector<std::uint32_t> v(50000);
  xoshiro256 rng(1);
  for (auto& x : v) x = static_cast<std::uint32_t>(rng());
  const auto expected =
      std::accumulate(v.begin(), v.end(), std::uint64_t{0});
  const auto got = this->sched.run([&] {
    return par::sum<std::uint64_t>(this->sched, v.begin(), v.size());
  });
  EXPECT_EQ(got, expected);
}

TYPED_TEST(ParallelTest, MapReduceSquares) {
  std::vector<std::uint32_t> v(10000);
  std::iota(v.begin(), v.end(), 0u);
  const auto got = this->sched.run([&] {
    return par::map_reduce(
        this->sched, v.begin(), v.size(), std::uint64_t{0},
        [](std::uint32_t x) {
          return static_cast<std::uint64_t>(x) * x;
        },
        std::plus<std::uint64_t>{});
  });
  std::uint64_t expected = 0;
  for (const auto x : v) expected += std::uint64_t{x} * x;
  EXPECT_EQ(got, expected);
}

TYPED_TEST(ParallelTest, CountIfAndMax) {
  std::vector<int> v(30000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<int>(hash64(i) % 1000);
  }
  const auto [evens, biggest] = this->sched.run([&] {
    return std::pair{
        par::count_if(this->sched, v.begin(), v.size(),
                      [](int x) { return x % 2 == 0; }),
        par::max_value(this->sched, v.begin(), v.size(), -1)};
  });
  EXPECT_EQ(evens, static_cast<std::size_t>(std::count_if(
                       v.begin(), v.end(), [](int x) { return x % 2 == 0; })));
  EXPECT_EQ(biggest, *std::max_element(v.begin(), v.end()));
}

TYPED_TEST(ParallelTest, ReduceEmptyReturnsIdentity) {
  std::vector<int> v;
  const auto got = this->sched.run([&] {
    return par::reduce(this->sched, v.begin(), 0, 42, std::plus<int>{});
  });
  EXPECT_EQ(got, 42);
}

// ---------------------------------------------------------------------------
// scan
// ---------------------------------------------------------------------------

TYPED_TEST(ParallelTest, ScanMatchesSequential) {
  std::vector<std::uint64_t> v(25931);  // deliberately not block-aligned
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = hash64(i) % 100;
  std::vector<std::uint64_t> expected(v.size());
  std::exclusive_scan(v.begin(), v.end(), expected.begin(),
                      std::uint64_t{0});
  const std::uint64_t expected_total =
      std::accumulate(v.begin(), v.end(), std::uint64_t{0});

  std::vector<std::uint64_t> out(v.size());
  const auto total = this->sched.run([&] {
    return par::scan_add(this->sched, v.begin(), out.begin(), v.size(),
                         std::uint64_t{0});
  });
  EXPECT_EQ(total, expected_total);
  EXPECT_EQ(out, expected);
}

TYPED_TEST(ParallelTest, ScanInPlace) {
  std::vector<std::uint64_t> v(10000, 1);
  const auto total = this->sched.run([&] {
    return par::scan_add(this->sched, v.begin(), v.begin(), v.size(),
                         std::uint64_t{0});
  });
  EXPECT_EQ(total, 10000u);
  for (std::size_t i = 0; i < v.size(); ++i) ASSERT_EQ(v[i], i);
}

TYPED_TEST(ParallelTest, ScanEmptyAndTiny) {
  std::vector<int> v{5};
  std::vector<int> out(1, -1);
  const auto total0 = this->sched.run([&] {
    return par::scan_add(this->sched, v.begin(), out.begin(), 0, 0);
  });
  EXPECT_EQ(total0, 0);
  const auto total1 = this->sched.run([&] {
    return par::scan_add(this->sched, v.begin(), out.begin(), 1, 0);
  });
  EXPECT_EQ(total1, 5);
  EXPECT_EQ(out[0], 0);
}

// ---------------------------------------------------------------------------
// pack / filter
// ---------------------------------------------------------------------------

TYPED_TEST(ParallelTest, FilterKeepsOrderedMatches) {
  std::vector<int> v(40000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<int>(hash64(i) % 1000);
  }
  const auto got = this->sched.run([&] {
    return par::filter(this->sched, v.begin(), v.size(),
                       [](int x) { return x < 100; });
  });
  std::vector<int> expected;
  std::copy_if(v.begin(), v.end(), std::back_inserter(expected),
               [](int x) { return x < 100; });
  EXPECT_EQ(got, expected);
}

TYPED_TEST(ParallelTest, FilterWithHighSelectivity) {
  // Regression: per-block counts of kept elements exceed 255, which once
  // truncated through a uint8_t parameter in the scan combine and
  // corrupted the scatter offsets.
  std::vector<int> v(200000);
  std::iota(v.begin(), v.end(), 0);
  const auto got = this->sched.run([&] {
    return par::filter(this->sched, v.begin(), v.size(),
                       [](int x) { return x % 10 != 0; });  // keeps 90%
  });
  ASSERT_EQ(got.size(), 180000u);
  for (std::size_t i = 1; i < got.size(); ++i) ASSERT_LT(got[i - 1], got[i]);
  for (const int x : got) ASSERT_NE(x % 10, 0);
}

TYPED_TEST(ParallelTest, PackIndexGeneratesSelectedIndices) {
  const auto got = this->sched.run([&] {
    return par::pack_index(
        this->sched, 1000, [](std::size_t i) { return i % 7 == 0; },
        [](std::size_t i) { return i; });
  });
  ASSERT_EQ(got.size(), 143u);
  for (std::size_t k = 0; k < got.size(); ++k) EXPECT_EQ(got[k], 7 * k);
}

// ---------------------------------------------------------------------------
// merge / sort
// ---------------------------------------------------------------------------

TYPED_TEST(ParallelTest, MergeMatchesStdMerge) {
  xoshiro256 rng(3);
  std::vector<int> a(20011), b(29989);
  for (auto& x : a) x = static_cast<int>(rng.bounded(100000));
  for (auto& x : b) x = static_cast<int>(rng.bounded(100000));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<int> expected(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), expected.begin());
  std::vector<int> got(a.size() + b.size());
  this->sched.run([&] {
    par::merge(this->sched, a.begin(), a.size(), b.begin(), b.size(),
               got.begin(), std::less<>{}, 512);
  });
  EXPECT_EQ(got, expected);
}

TYPED_TEST(ParallelTest, MergeWithEmptySide) {
  std::vector<int> a{1, 2, 3}, b;
  std::vector<int> out(3);
  this->sched.run([&] {
    par::merge(this->sched, a.begin(), a.size(), b.begin(), 0, out.begin());
  });
  EXPECT_EQ(out, a);
}

TYPED_TEST(ParallelTest, SortRandomInput) {
  std::vector<std::uint64_t> v(60000);
  xoshiro256 rng(4);
  for (auto& x : v) x = rng();
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  this->sched.run([&] { par::sort(this->sched, v, std::less<>{}, 512); });
  EXPECT_EQ(v, expected);
}

TYPED_TEST(ParallelTest, SortCustomComparator) {
  std::vector<int> v(20000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<int>(hash64(i) % 1000);
  }
  auto expected = v;
  std::sort(expected.begin(), expected.end(), std::greater<>{});
  this->sched.run([&] { par::sort(this->sched, v, std::greater<>{}, 512); });
  EXPECT_EQ(v, expected);
}

TYPED_TEST(ParallelTest, SortAlreadySortedAndReversed) {
  std::vector<int> asc(30000), desc(30000);
  std::iota(asc.begin(), asc.end(), 0);
  std::iota(desc.rbegin(), desc.rend(), 0);
  auto asc_copy = asc;
  this->sched.run([&] {
    par::sort(this->sched, asc_copy, std::less<>{}, 512);
    par::sort(this->sched, desc, std::less<>{}, 512);
  });
  EXPECT_EQ(asc_copy, asc);
  EXPECT_EQ(desc, asc);
}

TYPED_TEST(ParallelTest, SortTinyInputs) {
  for (std::size_t n : {0u, 1u, 2u, 3u}) {
    std::vector<int> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<int>(n - i);
    this->sched.run([&] { par::sort(this->sched, v); });
    EXPECT_TRUE(std::is_sorted(v.begin(), v.end())) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// sample sort
// ---------------------------------------------------------------------------

TYPED_TEST(ParallelTest, SampleSortRandomInput) {
  std::vector<std::uint64_t> v(120000);
  xoshiro256 rng(14);
  for (auto& x : v) x = rng();
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  this->sched.run([&] { par::sample_sort(this->sched, v); });
  EXPECT_EQ(v, expected);
}

TYPED_TEST(ParallelTest, SampleSortAllEqualTerminates) {
  // Degenerate pivots: everything lands in one bucket; the depth guard
  // must terminate the recursion.
  std::vector<int> v(50000, 7);
  this->sched.run([&] { par::sample_sort(this->sched, v); });
  for (const int x : v) ASSERT_EQ(x, 7);
}

TYPED_TEST(ParallelTest, SampleSortFewDistinctKeys) {
  std::vector<std::uint32_t> v(100000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<std::uint32_t>(hash64(i) % 4);
  }
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  this->sched.run([&] { par::sample_sort(this->sched, v); });
  EXPECT_EQ(v, expected);
}

TYPED_TEST(ParallelTest, SampleSortCustomComparatorAndSmallInput) {
  std::vector<int> small{3, 1, 2};
  this->sched.run(
      [&] { par::sample_sort(this->sched, small, std::greater<>{}); });
  EXPECT_EQ(small, (std::vector<int>{3, 2, 1}));

  std::vector<double> v(60000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<double>(hash64(i) % 100000) / 7.0;
  }
  auto expected = v;
  std::sort(expected.begin(), expected.end(), std::greater<>{});
  this->sched.run(
      [&] { par::sample_sort(this->sched, v, std::greater<>{}); });
  EXPECT_EQ(v, expected);
}

// ---------------------------------------------------------------------------
// collect_reduce / group_by
// ---------------------------------------------------------------------------

TYPED_TEST(ParallelTest, CollectReduceSumsPerKey) {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> items(50000);
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i] = {static_cast<std::uint32_t>(hash64(i) % 50), i};
  }
  const auto got = this->sched.run([&] {
    return par::collect_reduce(
        this->sched, items.begin(), items.size(), 50,
        [](const auto& kv) { return kv.first; },
        [](const auto& kv) { return kv.second; }, std::uint64_t{0},
        std::plus<std::uint64_t>{});
  });
  std::vector<std::uint64_t> expected(50, 0);
  for (const auto& [k, v] : items) expected[k] += v;
  EXPECT_EQ(got, expected);
}

TYPED_TEST(ParallelTest, CollectReduceMaxPerKey) {
  std::vector<std::uint32_t> items(30000);
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i] = static_cast<std::uint32_t>(hash64(i) % 100000);
  }
  const auto got = this->sched.run([&] {
    return par::collect_reduce(
        this->sched, items.begin(), items.size(), 10,
        [](std::uint32_t x) { return x % 10; },
        [](std::uint32_t x) { return x; }, std::uint32_t{0},
        [](std::uint32_t a, std::uint32_t b) { return std::max(a, b); });
  });
  std::vector<std::uint32_t> expected(10, 0);
  for (const auto x : items) expected[x % 10] = std::max(expected[x % 10], x);
  EXPECT_EQ(got, expected);
}

TYPED_TEST(ParallelTest, GroupByPartitionsIndicesStably) {
  std::vector<std::uint32_t> items(40000);
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i] = static_cast<std::uint32_t>(hash64(i) % 17);
  }
  const auto groups = this->sched.run([&] {
    return par::group_by(this->sched, items.begin(), items.size(), 17,
                         [](std::uint32_t x) { return x; });
  });
  ASSERT_EQ(groups.size(), 17u);
  std::size_t total = 0;
  for (std::uint32_t k = 0; k < 17; ++k) {
    for (std::size_t j = 0; j < groups[k].size(); ++j) {
      ASSERT_EQ(items[groups[k][j]], k);
      if (j > 0) {
        ASSERT_LT(groups[k][j - 1], groups[k][j]);  // stable
      }
    }
    total += groups[k].size();
  }
  EXPECT_EQ(total, items.size());
}

TYPED_TEST(ParallelTest, GroupByEmpty) {
  std::vector<std::uint32_t> items;
  const auto groups = this->sched.run([&] {
    return par::group_by(this->sched, items.begin(), 0, 5,
                         [](std::uint32_t x) { return x; });
  });
  ASSERT_EQ(groups.size(), 5u);
  for (const auto& g : groups) EXPECT_TRUE(g.empty());
}

// ---------------------------------------------------------------------------
// integer sort
// ---------------------------------------------------------------------------

TYPED_TEST(ParallelTest, IntegerSortU32) {
  std::vector<std::uint32_t> v(60000);
  xoshiro256 rng(5);
  for (auto& x : v) x = static_cast<std::uint32_t>(rng());
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  this->sched.run([&] { par::integer_sort(this->sched, v, 32); });
  EXPECT_EQ(v, expected);
}

TYPED_TEST(ParallelTest, IntegerSortNarrowKeys) {
  std::vector<std::uint32_t> v(50000);
  xoshiro256 rng(6);
  for (auto& x : v) x = static_cast<std::uint32_t>(rng.bounded(256));
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  this->sched.run([&] { par::integer_sort(this->sched, v, 8); });
  EXPECT_EQ(v, expected);
}

TYPED_TEST(ParallelTest, IntegerSortPairsIsStable) {
  // Sort (key, original index) pairs by key only; for equal keys the
  // original order must survive (radix sort stability).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> v(40000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = {static_cast<std::uint32_t>(hash64(i) % 64),
            static_cast<std::uint32_t>(i)};
  }
  this->sched.run([&] {
    par::integer_sort(this->sched, v, [](const auto& p) { return p.first; },
                      6);
  });
  for (std::size_t i = 1; i < v.size(); ++i) {
    ASSERT_LE(v[i - 1].first, v[i].first);
    if (v[i - 1].first == v[i].first) {
      ASSERT_LT(v[i - 1].second, v[i].second) << "stability broken at " << i;
    }
  }
}

TYPED_TEST(ParallelTest, IntegerSortEmptyAndOne) {
  std::vector<std::uint32_t> empty, one{7};
  this->sched.run([&] {
    par::integer_sort(this->sched, empty, 32);
    par::integer_sort(this->sched, one, 32);
  });
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(one[0], 7u);
}

// ---------------------------------------------------------------------------
// histogram
// ---------------------------------------------------------------------------

TYPED_TEST(ParallelTest, HistogramSmallBuckets) {
  std::vector<std::uint32_t> v(80000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<std::uint32_t>(hash64(i) % 100);
  }
  const auto got = this->sched.run([&] {
    return par::histogram(this->sched, v.begin(), v.size(), 100);
  });
  std::vector<std::uint64_t> expected(100, 0);
  for (const auto x : v) ++expected[x];
  EXPECT_EQ(got, expected);
}

TYPED_TEST(ParallelTest, HistogramLargeBucketsUsesAtomics) {
  constexpr std::size_t buckets = 100000;  // > private-histogram limit
  std::vector<std::uint32_t> v(60000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<std::uint32_t>(hash64(i) % buckets);
  }
  const auto got = this->sched.run([&] {
    return par::histogram(this->sched, v.begin(), v.size(), buckets);
  });
  std::vector<std::uint64_t> expected(buckets, 0);
  for (const auto x : v) ++expected[x];
  EXPECT_EQ(got, expected);
}

TYPED_TEST(ParallelTest, HistogramEmpty) {
  std::vector<std::uint32_t> v;
  const auto got = this->sched.run([&] {
    return par::histogram(this->sched, v.begin(), 0, 10);
  });
  EXPECT_EQ(got, std::vector<std::uint64_t>(10, 0));
}

// ---------------------------------------------------------------------------
// hash structures
// ---------------------------------------------------------------------------

TYPED_TEST(ParallelTest, HashSetSequentialSemantics) {
  par::hash_set<std::uint64_t> set(100);
  EXPECT_TRUE(set.insert(1));
  EXPECT_FALSE(set.insert(1));
  EXPECT_TRUE(set.insert(2));
  EXPECT_TRUE(set.contains(1));
  EXPECT_TRUE(set.contains(2));
  EXPECT_FALSE(set.contains(3));
  auto keys = set.keys();
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{1, 2}));
}

TYPED_TEST(ParallelTest, HashSetConcurrentInsertCountsUniques) {
  constexpr std::size_t n = 50000;
  constexpr std::uint64_t distinct = 1000;
  par::hash_set<std::uint64_t> set(distinct * 2);
  std::atomic<std::size_t> inserted{0};
  this->sched.run([&] {
    par::parallel_for(this->sched, 0, n, [&](std::size_t i) {
      if (set.insert(hash64(i) % distinct)) inserted.fetch_add(1);
    });
  });
  // Exactly one insert per distinct key must have returned true.
  EXPECT_EQ(inserted.load(), distinct);
  EXPECT_EQ(set.keys().size(), distinct);
}

TYPED_TEST(ParallelTest, StringCounterMatchesMap) {
  const std::string corpus =
      "the quick brown fox jumps over the lazy dog the fox";
  std::vector<std::string_view> words;
  std::map<std::string_view, std::uint64_t> expected;
  std::size_t pos = 0;
  while (pos < corpus.size()) {
    auto end = corpus.find(' ', pos);
    if (end == std::string::npos) end = corpus.size();
    const std::string_view w(corpus.data() + pos, end - pos);
    words.push_back(w);
    ++expected[w];
    pos = end + 1;
  }
  par::string_counter counter(corpus, words.size());
  for (const auto w : words) counter.add(w);
  for (const auto& [w, c] : expected) EXPECT_EQ(counter.count(w), c) << w;
  EXPECT_EQ(counter.count("missing"), 0u);
  EXPECT_EQ(counter.entries().size(), expected.size());
}

TYPED_TEST(ParallelTest, StringCounterConcurrentAdds) {
  // Corpus of 4-letter words; equal words appear at many distinct offsets,
  // exercising the content-equality path.
  std::string corpus;
  constexpr std::size_t n = 20000;
  std::vector<std::string_view> words;
  words.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const char c = static_cast<char>('a' + (hash64(i) % 26));
    corpus.append(4, c);
  }
  for (std::size_t i = 0; i < n; ++i) {
    words.emplace_back(corpus.data() + 4 * i, 4);
  }
  par::string_counter counter(corpus, 26);
  this->sched.run([&] {
    par::parallel_for(this->sched, 0, n,
                      [&](std::size_t i) { counter.add(words[i]); });
  });
  std::map<std::string_view, std::uint64_t> expected;
  for (const auto w : words) ++expected[w];
  std::uint64_t total = 0;
  for (const auto& [w, c] : counter.entries()) {
    EXPECT_EQ(expected.at(w), c);
    total += c;
  }
  EXPECT_EQ(total, n);
}

// ---------------------------------------------------------------------------
// tokens / parallel_invoke
// ---------------------------------------------------------------------------

TYPED_TEST(ParallelTest, TokensSplitsOnWhitespace) {
  const std::string text = "  the quick\tbrown\n\nfox  ";
  const auto got =
      this->sched.run([&] { return par::tokens(this->sched, text); });
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0], "the");
  EXPECT_EQ(got[1], "quick");
  EXPECT_EQ(got[2], "brown");
  EXPECT_EQ(got[3], "fox");
}

TYPED_TEST(ParallelTest, TokensEdgeCases) {
  const std::string empty;
  EXPECT_TRUE(this->sched
                  .run([&] { return par::tokens(this->sched, empty); })
                  .empty());
  const std::string only_spaces = "    ";
  EXPECT_TRUE(
      this->sched
          .run([&] { return par::tokens(this->sched, only_spaces); })
          .empty());
  const std::string no_delims = "single";
  const auto got = this->sched.run(
      [&] { return par::tokens(this->sched, no_delims); });
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "single");
}

TYPED_TEST(ParallelTest, TokensLargeTextMatchesSequentialSplit) {
  std::string text;
  std::vector<std::string> expected;
  xoshiro256 rng(21);
  for (int w = 0; w < 20000; ++w) {
    std::string word;
    const std::size_t len = 1 + rng.bounded(8);
    for (std::size_t c = 0; c < len; ++c) {
      word.push_back(static_cast<char>('a' + rng.bounded(26)));
    }
    expected.push_back(word);
    text += word;
    text.append(1 + rng.bounded(3), ' ');
  }
  const auto got =
      this->sched.run([&] { return par::tokens(this->sched, text); });
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t k = 0; k < got.size(); ++k) {
    ASSERT_EQ(got[k], expected[k]) << k;
  }
}

TYPED_TEST(ParallelTest, TokensCustomDelimiter) {
  const std::string csv = "a,bb,,ccc,";
  const auto got = this->sched.run([&] {
    return par::tokens(this->sched, csv, [](char c) { return c == ','; });
  });
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "a");
  EXPECT_EQ(got[1], "bb");
  EXPECT_EQ(got[2], "ccc");
}

TYPED_TEST(ParallelTest, ParallelInvokeRunsAllBranches) {
  std::atomic<int> mask{0};
  this->sched.run([&] {
    par::parallel_invoke(
        this->sched, [&] { mask.fetch_or(1); }, [&] { mask.fetch_or(2); },
        [&] { mask.fetch_or(4); }, [&] { mask.fetch_or(8); },
        [&] { mask.fetch_or(16); });
  });
  EXPECT_EQ(mask.load(), 31);
}

TYPED_TEST(ParallelTest, ParallelInvokeSingleCallable) {
  int x = 0;
  this->sched.run(
      [&] { par::parallel_invoke(this->sched, [&] { x = 42; }); });
  EXPECT_EQ(x, 42);
}

// ---------------------------------------------------------------------------
// random fill
// ---------------------------------------------------------------------------

TYPED_TEST(ParallelTest, RandomFillDeterministicAndBounded) {
  std::vector<std::uint64_t> a(10000), b(10000);
  this->sched.run([&] {
    par::random_fill(this->sched, a, 9, 1000);
    par::random_fill(this->sched, b, 9, 1000);
  });
  EXPECT_EQ(a, b);
  for (const auto x : a) ASSERT_LT(x, 1000u);
  std::vector<std::uint64_t> c(10000);
  this->sched.run([&] { par::random_fill(this->sched, c, 10, 1000); });
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace lcws
