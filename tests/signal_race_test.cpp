// Stress tests for the Section 4 data race and its fixes, driven by real
// SIGUSR1 signals at far higher frequency than the schedulers generate.
//
// The race: a victim executing pop_bottom has evaluated its emptiness
// check when an exposure signal lands; the handler moves public_bot over
// the task the victim is about to take, and a thief steals it — double
// execution. Section 4 fixes this with the decrement-first pop
// (signal-safe), Section 4.1.1 by never exposing the last private task
// (conservative with the original pop). Both are hammered here with a
// dedicated signal-storm thread; every task must be consumed exactly once.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "deque/split_deque.h"
#include "sched/signal_support.h"
#include "support/backoff.h"
#include "support/rng.h"

namespace lcws {
namespace {

struct storm_harness {
  static constexpr int kTotal = 30000;

  split_deque<int> deque{1 << 16};
  std::vector<int> arena;
  std::vector<std::atomic<int>> taken;
  std::atomic<int> consumed{0};
  std::atomic<bool> owner_ready{false};
  std::atomic<bool> done{false};
  pthread_t owner_handle{};

  storm_harness() : arena(kTotal), taken(kTotal) {
    for (int i = 0; i < kTotal; ++i) arena[static_cast<std::size_t>(i)] = i;
    for (auto& t : taken) t.store(0);
  }

  void consume(int* task) {
    taken[static_cast<std::size_t>(*task)].fetch_add(1);
    consumed.fetch_add(1);
  }

  // Owner loop: pushes all tasks in random bursts, drains with the given
  // pop function, while the registered exposure hook fires from real
  // signals between (and inside) these operations.
  template <typename PopFn>
  void owner_loop(PopFn pop) {
    xoshiro256 rng(17);
    int pushed = 0;
    while (consumed.load(std::memory_order_relaxed) < kTotal) {
      if (pushed < kTotal && rng.bounded(3) != 0) {
        deque.push_bottom(&arena[static_cast<std::size_t>(pushed)]);
        ++pushed;
      } else {
        if (int* task = pop(deque)) {
          consume(task);
        } else if (int* pub = deque.pop_public_bottom()) {
          consume(pub);
        } else if (pushed == kTotal) {
          std::this_thread::yield();
        }
      }
    }
  }

  void thief_loop() {
    while (!done.load(std::memory_order_acquire)) {
      const auto r = deque.pop_top();
      if (r.status == steal_status::stolen) {
        consume(r.task);
      } else {
        std::this_thread::yield();
      }
    }
  }

  void storm_loop() {
    // Saturate the owner with exposure requests; kernel-side coalescing
    // still delivers thousands over the run.
    while (!done.load(std::memory_order_acquire)) {
      detail::send_exposure_request(owner_handle);
      for (int i = 0; i < 50; ++i) cpu_relax();
      std::this_thread::yield();
    }
  }

  void verify() {
    for (int i = 0; i < kTotal; ++i) {
      ASSERT_EQ(taken[static_cast<std::size_t>(i)].load(), 1)
          << "task " << i << " consumed wrong number of times";
    }
  }
};

template <typename PopFn, typename ExposeHook>
void run_storm(PopFn pop, ExposeHook hook) {
  detail::install_exposure_handler();
  storm_harness h;

  std::thread owner([&] {
    detail::set_exposure_hook(hook, &h.deque);
    h.owner_handle = pthread_self();
    h.owner_ready.store(true, std::memory_order_release);
    h.owner_loop(pop);
    detail::clear_exposure_hook();
  });
  while (!h.owner_ready.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  std::thread thief1([&] { h.thief_loop(); });
  std::thread thief2([&] { h.thief_loop(); });
  std::thread storm([&] { h.storm_loop(); });

  owner.join();
  h.done.store(true, std::memory_order_release);
  thief1.join();
  thief2.join();
  storm.join();
  h.verify();
}

TEST(SignalRace, SignalSafePopSurvivesSignalStormWithExposeOne) {
  run_storm(
      [](split_deque<int>& d) { return d.pop_bottom_signal_safe(); },
      [](void* ctx) noexcept {
        static_cast<split_deque<int>*>(ctx)->expose_one();
      });
}

TEST(SignalRace, SignalSafePopSurvivesSignalStormWithExposeHalf) {
  run_storm(
      [](split_deque<int>& d) { return d.pop_bottom_signal_safe(); },
      [](void* ctx) noexcept {
        static_cast<split_deque<int>*>(ctx)->expose_half();
      });
}

TEST(SignalRace, OriginalPopSurvivesSignalStormWithConservativeExposure) {
  // Conservative exposure never exposes the last private task, so the
  // original Listing 2 pop_bottom is safe even under the storm.
  run_storm(
      [](split_deque<int>& d) { return d.pop_bottom_original(); },
      [](void* ctx) noexcept {
        static_cast<split_deque<int>*>(ctx)->expose_conservative();
      });
}

}  // namespace
}  // namespace lcws
