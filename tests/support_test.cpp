// Unit tests for the support substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "support/align.h"
#include "support/backoff.h"
#include "support/barrier.h"
#include "support/rng.h"
#include "support/threads.h"
#include "support/timing.h"
#include "support/topology.h"

namespace lcws {
namespace {

TEST(Align, CacheAlignedHasLineAlignment) {
  EXPECT_GE(alignof(cache_aligned<char>), 64u);
  EXPECT_GE(sizeof(cache_aligned<char>), cache_line_size);
  cache_aligned<int> x(41);
  EXPECT_EQ(x.get(), 41);
  *x = 42;
  EXPECT_EQ(*x, 42);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&x.get()) % 64, 0u);
}

TEST(Align, CacheAlignedArrayElementsDoNotShareLines) {
  std::vector<cache_aligned<std::uint8_t>> v(4);
  for (std::size_t i = 1; i < v.size(); ++i) {
    const auto prev = reinterpret_cast<std::uintptr_t>(&v[i - 1].get());
    const auto cur = reinterpret_cast<std::uintptr_t>(&v[i].get());
    EXPECT_GE(cur - prev, cache_line_size);
  }
}

TEST(Align, RoundUpPow2) {
  EXPECT_EQ(round_up_pow2(0, 64), 0u);
  EXPECT_EQ(round_up_pow2(1, 64), 64u);
  EXPECT_EQ(round_up_pow2(64, 64), 64u);
  EXPECT_EQ(round_up_pow2(65, 64), 128u);
}

TEST(Align, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(1023));
}

TEST(Align, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Rng, Deterministic) {
  xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SeedsDiffer) {
  xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, BoundedStaysInRange) {
  xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Rng, BoundedCoversRange) {
  xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval) {
  xoshiro256 rng(9);
  double sum = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, Hash64Mixes) {
  // Consecutive inputs must map to wildly different outputs.
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 1000; ++i) outs.insert(hash64(i));
  EXPECT_EQ(outs.size(), 1000u);
  EXPECT_NE(hash64(0), 0u);
}

TEST(Timing, StopwatchAdvances) {
  stopwatch sw;
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + static_cast<std::uint64_t>(i);
  }
  EXPECT_GT(sw.elapsed_ns(), 0u);
  EXPECT_GE(sw.elapsed_seconds(), 0.0);
}

TEST(Timing, TimeSecondsRunsFunction) {
  bool ran = false;
  const double t = time_seconds([&] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_GE(t, 0.0);
}

TEST(Backoff, EscalatesThenYields) {
  backoff bo(3);
  EXPECT_EQ(bo.step(), 0u);
  bo.pause();
  bo.pause();
  bo.pause();
  EXPECT_EQ(bo.step(), 3u);
  bo.pause();  // yield path; step stays put
  EXPECT_EQ(bo.step(), 3u);
  bo.reset();
  EXPECT_EQ(bo.step(), 0u);
}

TEST(Barrier, SynchronizesPhases) {
  constexpr std::size_t kThreads = 4;
  constexpr int kPhases = 50;
  spin_barrier barrier(kThreads);
  std::atomic<int> in_phase{0};
  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int phase = 0; phase < kPhases; ++phase) {
        in_phase.fetch_add(1);
        barrier.arrive_and_wait();
        // All kThreads must have entered before any leaves.
        if (in_phase.load() < static_cast<int>(kThreads) * (phase + 1)) {
          violated.store(true);
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(in_phase.load(), static_cast<int>(kThreads) * kPhases);
}

TEST(Threads, WorkerIdRoundTrips) {
  EXPECT_EQ(this_worker_id(), npos_worker);
  set_this_worker_id(3);
  EXPECT_EQ(this_worker_id(), 3u);
  set_this_worker_id(npos_worker);
  EXPECT_EQ(this_worker_id(), npos_worker);
}

TEST(Threads, WorkerIdIsThreadLocal) {
  set_this_worker_id(1);
  std::size_t other = 0;
  std::thread t([&] { other = this_worker_id(); });
  t.join();
  EXPECT_EQ(other, npos_worker);
  set_this_worker_id(npos_worker);
}

TEST(Threads, PinIsBestEffort) {
  // Must not crash either way; on cpu 0 it usually succeeds.
  (void)pin_this_thread(0);
  // An absurd cpu index must fail gracefully.
  EXPECT_FALSE(pin_this_thread(100000));
}

TEST(Topology, ProbeReturnsSaneValues) {
  const machine_info info = probe_machine();
  EXPECT_GE(info.logical_cpus, 1u);
  const std::string text = format_machine(info);
  EXPECT_NE(text.find("CPU:"), std::string::npos);
  EXPECT_NE(text.find("Memory:"), std::string::npos);
  EXPECT_NE(text.find("OS:"), std::string::npos);
}

}  // namespace
}  // namespace lcws
