// Scheduler-level coverage for growable deques (DESIGN.md §8): a spawn
// spine that provably exceeds a tiny starting capacity must complete on
// every scheduler with growth enabled, must throw (never abort) in
// LCWS_DEQUE_FIXED mode, and the new counters must obey their identities.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "deque/deque_common.h"
#include "sched/dispatch.h"
#include "sched/scheduler.h"

namespace lcws {
namespace {

// setenv/unsetenv scope guard (same shape as fault_injection_test.cpp);
// the scheduler snapshots LCWS_DEQUE_* once at construction, so the guard
// must enclose the with_scheduler call.
class scoped_env {
 public:
  scoped_env(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~scoped_env() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

// Left spine of trivial right children: the owner's private deque depth
// tracks the recursion depth, so depth >> capacity forces doublings.
// Returns depth + 1. (Native stack depth stays ~1.2k frames — far below
// the worker stack limit; the single-threaded >default_deque_capacity
// case lives in deque_test.cpp where no recursion is needed.)
template <typename Sched>
std::uint64_t deep_spine(Sched& sched, unsigned depth) {
  if (depth == 0) return 1;
  std::uint64_t l = 0, r = 0;
  sched.pardo([&] { l = deep_spine(sched, depth - 1); }, [&] { r = 1; });
  return l + r;
}

constexpr unsigned spine_depth = 1200;
constexpr std::size_t tiny_capacity = 64;

class GrowthSweep : public ::testing::TestWithParam<sched_kind> {};

TEST_P(GrowthSweep, DeepSpawnOutgrowsTinyCapacityAndCompletes) {
  const sched_kind kind = GetParam();
  with_scheduler(kind, 4, tiny_capacity, [&](auto& sched) {
    ASSERT_FALSE(sched.growth_config().fixed);
    sched.reset_counters();
    EXPECT_EQ(sched.run([&] { return deep_spine(sched, spine_depth); }),
              spine_depth + 1)
        << to_string(kind);
    const auto t = sched.profile().totals;
    if (kind == sched_kind::private_deques) {
      // The mailbox deque is unbounded std::deque storage: no growth
      // events, and its owner-local stack is not hwm-instrumented.
      EXPECT_EQ(t.deque_grows.get(), 0u) << to_string(kind);
    } else {
      EXPECT_GT(t.deque_grows.get(), 0u) << to_string(kind);
      EXPECT_GT(t.deque_hwm.get(), tiny_capacity) << to_string(kind);
      // Doubling identity: the worker holding the high-water mark must
      // have doubled from tiny_capacity at least until it covered hwm, so
      // the pool-wide grow total is at least ceil(log2(hwm/capacity)).
      std::uint64_t need = 0;
      for (std::uint64_t cap = tiny_capacity; cap < t.deque_hwm.get();
           cap *= 2) {
        ++need;
      }
      EXPECT_GE(t.deque_grows.get(), need) << to_string(kind);
    }
  });
}

TEST_P(GrowthSweep, FixedModeRestoresThrowingCapacityCeiling) {
  const sched_kind kind = GetParam();
  scoped_env fixed("LCWS_DEQUE_FIXED", "1");
  with_scheduler(kind, 4, tiny_capacity, [&](auto& sched) {
    ASSERT_TRUE(sched.growth_config().fixed);
    sched.reset_counters();
    if (kind == sched_kind::private_deques) {
      // Unbounded storage: the fixed knob is a no-op here by design.
      EXPECT_EQ(sched.run([&] { return deep_spine(sched, spine_depth); }),
                spine_depth + 1);
    } else {
      EXPECT_THROW(
          (void)sched.run([&] { return deep_spine(sched, spine_depth); }),
          deque_overflow_error)
          << to_string(kind);
    }
    EXPECT_EQ(sched.profile().totals.deque_grows.get(), 0u)
        << to_string(kind);
  });
}

TEST_P(GrowthSweep, ShallowWorkloadNeverGrowsOrInlines) {
  // The fast path is untouched when nothing overflows: a workload that
  // fits the default capacity records zero growth and zero inline spawns.
  const sched_kind kind = GetParam();
  with_scheduler(kind, 4, [&](auto& sched) {
    sched.reset_counters();
    EXPECT_EQ(sched.run([&] { return deep_spine(sched, 64); }), 65u);
    const auto t = sched.profile().totals;
    EXPECT_EQ(t.deque_grows.get(), 0u) << to_string(kind);
    EXPECT_EQ(t.spawns_inline.get(), 0u) << to_string(kind);
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, GrowthSweep, ::testing::ValuesIn(all_sched_kinds),
    [](const ::testing::TestParamInfo<sched_kind>& info) {
      return std::string(to_string(info.param));
    });

// Backpressure: past the soft cap the owner runs spawns inline instead of
// pushing, bounding memory while keeping results exact. The cap is far
// below the spine depth, so inline spawns must fire; inlined frames never
// touch the deque, so with capacity above the cap nothing ever grows.
TEST(GrowthBackpressure, SoftCapForcesInlineSpawns) {
  scoped_env cap("LCWS_DEQUE_SOFT_CAP", "32");
  with_scheduler(sched_kind::uslcws, 4, tiny_capacity, [&](auto& sched) {
    ASSERT_EQ(sched.growth_config().soft_cap, 32u);
    sched.reset_counters();
    EXPECT_EQ(sched.run([&] { return deep_spine(sched, spine_depth); }),
              spine_depth + 1);
    const auto t = sched.profile().totals;
    EXPECT_GT(t.spawns_inline.get(), 0u);
    EXPECT_EQ(t.deque_grows.get(), 0u);
  });
}

// Fixed mode disables backpressure too: the soft cap is a growth-mode
// knob, and LCWS_DEQUE_FIXED must restore today's throwing behavior
// bit-for-bit — no silent serialization.
TEST(GrowthBackpressure, FixedModeIgnoresSoftCap) {
  scoped_env cap("LCWS_DEQUE_SOFT_CAP", "32");
  scoped_env fixed("LCWS_DEQUE_FIXED", "1");
  with_scheduler(sched_kind::uslcws, 4, tiny_capacity, [&](auto& sched) {
    sched.reset_counters();
    EXPECT_THROW(
        (void)sched.run([&] { return deep_spine(sched, spine_depth); }),
        deque_overflow_error);
    EXPECT_EQ(sched.profile().totals.spawns_inline.get(), 0u);
  });
}

}  // namespace
}  // namespace lcws
