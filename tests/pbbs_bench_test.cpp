// Correctness tests for the 19 PBBS-style workloads: every benchmark's
// parallel output is validated against its sequential oracle, under both a
// baseline WS scheduler and a signal-based LCWS scheduler, for every input
// instance (via the runner, which is also under test here).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <string_view>
#include <utility>

#include "pbbs/benchmarks/bfs.h"
#include "pbbs/benchmarks/classify.h"
#include "pbbs/benchmarks/convex_hull.h"
#include "pbbs/benchmarks/integer_sort.h"
#include "pbbs/benchmarks/maximal_matching.h"
#include "pbbs/benchmarks/min_spanning_forest.h"
#include "pbbs/benchmarks/mis.h"
#include "pbbs/benchmarks/nbody.h"
#include "pbbs/benchmarks/nearest_neighbors.h"
#include "pbbs/benchmarks/range_query.h"
#include "pbbs/benchmarks/ray_cast.h"
#include "pbbs/benchmarks/spanning_forest.h"
#include "pbbs/benchmarks/suffix_array.h"
#include "pbbs/runner.h"
#include "sched/scheduler.h"

namespace lcws::pbbs {
namespace {

// Small but non-trivial sizes keep the full matrix fast on one core.
constexpr std::size_t kTestSize = 40000;

// ---------------------------------------------------------------------------
// Full matrix through the runner: every config x {ws, signal}, validated.
// ---------------------------------------------------------------------------

struct matrix_param {
  config cfg;
  sched_kind kind;
};

void PrintTo(const matrix_param& p, std::ostream* os) {
  *os << p.cfg.benchmark << "/" << p.cfg.instance << "@"
      << to_string(p.kind);
}

class PbbsMatrixTest : public ::testing::TestWithParam<matrix_param> {};

TEST_P(PbbsMatrixTest, ValidatedRun) {
  const auto& p = GetParam();
  const auto result =
      run_config(p.kind, 4, p.cfg, kTestSize, /*rounds=*/1,
                 /*validate=*/true);
  EXPECT_TRUE(result.checked);
  EXPECT_TRUE(result.ok) << p.cfg.key() << " failed validation under "
                         << to_string(p.kind);
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_GT(result.profile.totals.tasks_executed, 0u);
}

std::vector<matrix_param> matrix() {
  std::vector<matrix_param> out;
  for (const auto& cfg : all_configs()) {
    for (const auto kind : {sched_kind::ws, sched_kind::signal}) {
      out.push_back({cfg, kind});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, PbbsMatrixTest, ::testing::ValuesIn(matrix()),
    [](const ::testing::TestParamInfo<matrix_param>& info) {
      std::string name = info.param.cfg.benchmark + "_" +
                         info.param.cfg.instance + "_" +
                         to_string(info.param.kind);
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// The remaining three LCWS variants get one representative benchmark each
// (the full matrix over five kinds would double test time for little new
// coverage; scheduler_test already pins their protocols).
TEST(PbbsVariants, UslcwsRunsIntegerSort) {
  const auto r = run_config(sched_kind::uslcws, 4,
                            {"integerSort", "randomSeq_int"}, kTestSize, 1,
                            true);
  EXPECT_TRUE(r.ok);
}

TEST(PbbsVariants, ConservativeRunsBfs) {
  const auto r = run_config(sched_kind::conservative, 4,
                            {"breadthFirstSearch", "rMatGraph"}, kTestSize,
                            1, true);
  EXPECT_TRUE(r.ok);
}

TEST(PbbsVariants, PrivateDequesRunsComparisonSort) {
  const auto r = run_config(sched_kind::private_deques, 4,
                            {"comparisonSort", "randomSeq_double"}, kTestSize,
                            1, true);
  EXPECT_TRUE(r.ok);
}

TEST(PbbsVariants, ExposeHalfRunsConvexHull) {
  const auto r = run_config(sched_kind::expose_half, 4,
                            {"convexHull", "2DinSphere"}, kTestSize, 1,
                            true);
  EXPECT_TRUE(r.ok);
}

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

TEST(Runner, AllConfigsCoversNineteenBenchmarks) {
  const auto benchmarks = all_benchmarks();
  EXPECT_EQ(benchmarks.size(), 19u);
  const auto configs = all_configs();
  EXPECT_GE(configs.size(), 43u);
  for (const auto& cfg : configs) {
    EXPECT_FALSE(cfg.benchmark.empty());
    EXPECT_FALSE(cfg.instance.empty());
    EXPECT_EQ(cfg.key(), cfg.benchmark + "/" + cfg.instance);
  }
}

TEST(Runner, DefaultSizeScales) {
  const auto base = default_size("integerSort");
  EXPECT_EQ(default_size("integerSort", 0.5), base / 2);
  EXPECT_GE(default_size("anything", 1e-9), 1024u);  // floor
}

TEST(Runner, UnknownBenchmarkThrows) {
  EXPECT_THROW(run_config(sched_kind::ws, 2, {"nope", "x"}, 1000, 1, false),
               std::invalid_argument);
}

TEST(Runner, UnknownInstanceThrows) {
  clear_input_cache();
  EXPECT_THROW(
      run_config(sched_kind::ws, 2, {"integerSort", "nope"}, 1000, 1, false),
      std::invalid_argument);
}

TEST(Runner, InputCacheMakesRepeatRunsConsistent) {
  clear_input_cache();
  const config cfg{"histogram", "randomSeq_256_int"};
  const auto a = run_config(sched_kind::ws, 2, cfg, 20000, 1, true);
  const auto b = run_config(sched_kind::signal, 2, cfg, 20000, 1, true);
  EXPECT_TRUE(a.ok);
  EXPECT_TRUE(b.ok);
  clear_input_cache();
}

// ---------------------------------------------------------------------------
// Direct module-level checks of the graph/geometry oracles themselves
// (guards against a check() that accepts anything).
// ---------------------------------------------------------------------------

TEST(OracleSanity, BfsCheckRejectsWrongDistances) {
  auto in = bfs_bench::make("3Dgrid", 4000);
  ws_scheduler sched(2);
  auto out = bfs_bench::run(sched, in);
  ASSERT_TRUE(bfs_bench::check(in, out));
  out.distance[out.distance.size() / 2] += 1;
  EXPECT_FALSE(bfs_bench::check(in, out));
}

TEST(OracleSanity, MatchingCheckRejectsNonMaximal) {
  auto in = maximal_matching_bench::make("randLocalGraph", 20000);
  ws_scheduler sched(2);
  auto out = maximal_matching_bench::run(sched, in);
  ASSERT_TRUE(maximal_matching_bench::check(in, out));
  ASSERT_FALSE(out.matched_edges.empty());
  out.matched_edges.pop_back();  // drop one edge: still valid, not maximal
  EXPECT_FALSE(maximal_matching_bench::check(in, out));
}

TEST(OracleSanity, MatchingCheckRejectsSharedVertex) {
  auto in = maximal_matching_bench::make("randLocalGraph", 20000);
  ws_scheduler sched(2);
  auto out = maximal_matching_bench::run(sched, in);
  ASSERT_TRUE(maximal_matching_bench::check(in, out));
  out.matched_edges.push_back(out.matched_edges.front());
  EXPECT_FALSE(maximal_matching_bench::check(in, out));
}

TEST(OracleSanity, MisCheckRejectsDependentSet) {
  auto in = mis_bench::make("randLocalGraph", 20000);
  ws_scheduler sched(2);
  auto out = mis_bench::run(sched, in);
  ASSERT_TRUE(mis_bench::check(in, out));
  // Force a violation: add a neighbour of a set member.
  const graph& g = *in.g;
  bool mutated = false;
  for (vertex_id v = 0; v < g.num_vertices() && !mutated; ++v) {
    if (!out.in_set[v]) continue;
    for (const vertex_id w : g.neighbors(v)) {
      out.in_set[w] = 1;
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  EXPECT_FALSE(mis_bench::check(in, out));
}

TEST(OracleSanity, SpanningForestCheckRejectsCycleAndGap) {
  auto in = spanning_forest_bench::make("randLocalGraph", 20000);
  ws_scheduler sched(2);
  auto out = spanning_forest_bench::run(sched, in);
  ASSERT_TRUE(spanning_forest_bench::check(in, out));
  auto with_dup = out;
  with_dup.forest_edges.push_back(with_dup.forest_edges.front());
  EXPECT_FALSE(spanning_forest_bench::check(in, with_dup));  // cycle
  auto with_gap = out;
  with_gap.forest_edges.pop_back();
  EXPECT_FALSE(spanning_forest_bench::check(in, with_gap));  // not spanning
}

TEST(OracleSanity, HullCheckRejectsMissingVertex) {
  auto in = convex_hull_bench::make("2DinSphere", 20000);
  ws_scheduler sched(2);
  auto out = convex_hull_bench::run(sched, in);
  ASSERT_TRUE(convex_hull_bench::check(in, out));
  ASSERT_GE(out.hull.size(), 4u);
  out.hull.erase(out.hull.begin() + 1);  // leaves a point outside
  EXPECT_FALSE(convex_hull_bench::check(in, out));
}

TEST(OracleSanity, KnnCheckRejectsSelfNeighbor) {
  auto in = nearest_neighbors_bench::make("2DinCube", 5000);
  ws_scheduler sched(2);
  auto out = nearest_neighbors_bench::run(sched, in);
  ASSERT_TRUE(nearest_neighbors_bench::check(in, out));
  out.neighbor[0] = 0;
  EXPECT_FALSE(nearest_neighbors_bench::check(in, out));
}

TEST(OracleSanity, SuffixArrayCheckRejectsSwaps) {
  auto in = suffix_array_bench::make("trigramString", 20000);
  ws_scheduler sched(2);
  auto out = suffix_array_bench::run(sched, in);
  ASSERT_TRUE(suffix_array_bench::check(in, out));
  std::swap(out.sa[0], out.sa[out.sa.size() / 2]);
  EXPECT_FALSE(suffix_array_bench::check(in, out));
}

TEST(OracleSanity, SuffixArrayMatchesStdSortOracle) {
  auto in = suffix_array_bench::make("randomString", 2000);
  ws_scheduler sched(2);
  const auto out = suffix_array_bench::run(sched, in);
  // Direct oracle: sort suffix offsets by suffix comparison.
  std::vector<std::uint32_t> expected(in.text->size());
  std::iota(expected.begin(), expected.end(), 0u);
  const std::string_view sv(*in.text);
  std::sort(expected.begin(), expected.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return sv.substr(a) < sv.substr(b);
            });
  EXPECT_EQ(out.sa, expected);
}

TEST(OracleSanity, MsfCheckRejectsWrongEdge) {
  auto in = min_spanning_forest_bench::make("randLocalGraph", 20000);
  ws_scheduler sched(2);
  auto out = min_spanning_forest_bench::run(sched, in);
  ASSERT_TRUE(min_spanning_forest_bench::check(in, out));
  // Replace one forest edge with an arbitrary non-forest edge: the unique
  // MSF no longer matches.
  std::vector<std::uint8_t> used(in.edges.size(), 0);
  for (const auto e : out.forest_edges) used[e] = 1;
  for (std::uint32_t e = 0; e < in.edges.size(); ++e) {
    if (!used[e]) {
      out.forest_edges.back() = e;
      break;
    }
  }
  EXPECT_FALSE(min_spanning_forest_bench::check(in, out));
}

TEST(OracleSanity, NbodyCheckRejectsPerturbedForces) {
  auto in = nbody_bench::make("2DinCube", 4000);
  ws_scheduler sched(2);
  auto out = nbody_bench::run(sched, in);
  ASSERT_TRUE(nbody_bench::check(in, out));
  for (auto& f : out.force) {
    f.x *= 1.2;  // 20% systematic error: far beyond the 2% tolerance
    f.y *= 1.2;
  }
  EXPECT_FALSE(nbody_bench::check(in, out));
}

TEST(OracleSanity, ClassifyCheckRejectsBrokenTree) {
  auto in = classify_bench::make("covtype_like", 20000);
  ws_scheduler sched(2);
  auto out = classify_bench::run(sched, in);
  ASSERT_TRUE(classify_bench::check(in, out));
  // Collapse the tree to a single majority leaf: structurally valid but
  // cannot beat the majority baseline.
  classify_bench::output stump;
  stump.tree.push_back({-1, 0, -1, -1, out.tree.back().leaf_class});
  EXPECT_FALSE(classify_bench::check(in, stump));
}

TEST(OracleSanity, BackForwardBfsMatchesOracle) {
  auto in = bfs_bench::make("backForwardBFS_3Dgrid", 30000);
  ASSERT_TRUE(in.back_forward);
  ws_scheduler sched(2);
  const auto out = bfs_bench::run(sched, in);
  EXPECT_TRUE(bfs_bench::check(in, out));
}

TEST(OracleSanity, RangeQueryCheckRejectsWrongCounts) {
  auto in = range_query_bench::make("2DinCube", 20000);
  ws_scheduler sched(2);
  auto out = range_query_bench::run(sched, in);
  ASSERT_TRUE(range_query_bench::check(in, out));
  out.counts[0] += 1;
  EXPECT_FALSE(range_query_bench::check(in, out));
}

TEST(OracleSanity, RayCastCheckRejectsPerturbedHits) {
  auto in = ray_cast_bench::make("happyRays", 10000);
  ws_scheduler sched(2);
  auto out = ray_cast_bench::run(sched, in);
  ASSERT_TRUE(ray_cast_bench::check(in, out));
  // At least some sampled rays hit the heightfield from above.
  std::size_t hits = 0;
  for (const auto t : out.hit_t) hits += !std::isinf(t);
  EXPECT_GT(hits, out.hit_t.size() / 2);
  for (auto& t : out.hit_t) {
    if (!std::isinf(t)) t *= 1.5;
  }
  EXPECT_FALSE(ray_cast_bench::check(in, out));
}

TEST(OracleSanity, IntegerSortCheckRejectsUnsorted) {
  auto in = integer_sort_bench::make("randomSeq_int", 10000);
  ws_scheduler sched(2);
  auto out = integer_sort_bench::run(sched, in);
  ASSERT_TRUE(integer_sort_bench::check(in, out));
  auto& sorted = std::get<std::vector<std::uint64_t>>(out.sorted);
  std::swap(sorted.front(), sorted.back());
  EXPECT_FALSE(integer_sort_bench::check(in, out));
}

}  // namespace
}  // namespace lcws::pbbs
