// Cross-module integration tests: the whole stack (scheduler + toolkit +
// workloads) under stress, determinism across schedulers, and pool
// lifecycle robustness.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "parallel/integer_sort.h"
#include "parallel/parallel_for.h"
#include "parallel/reduce.h"
#include "parallel/scan.h"
#include "parallel/sort.h"
#include "pbbs/runner.h"
#include "sched/dispatch.h"
#include "sched/scheduler.h"

namespace lcws {
namespace {

// ---------------------------------------------------------------------------
// Determinism across schedulers: every deterministic workload must produce
// bit-identical results no matter which scheduler ran it (scheduling must
// not leak into outputs).
// ---------------------------------------------------------------------------

TEST(Integration, SortOutputsIdenticalAcrossSchedulers) {
  std::vector<std::uint64_t> input(100000);
  for (std::size_t i = 0; i < input.size(); ++i) input[i] = hash64(i) % 5000;

  std::vector<std::vector<std::uint64_t>> results;
  for (const sched_kind kind : all_sched_kinds) {
    auto v = input;
    with_scheduler(kind, 4, [&](auto& sched) {
      sched.run([&] { par::sort(sched, v, std::less<>{}, 512); });
    });
    results.push_back(std::move(v));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i], results[0]) << to_string(all_sched_kinds[i]);
  }
}

TEST(Integration, ScanTotalsIdenticalAcrossWorkerCounts) {
  std::vector<std::uint64_t> input(77777);
  for (std::size_t i = 0; i < input.size(); ++i) input[i] = hash64(i) % 100;
  std::vector<std::uint64_t> reference;
  for (const std::size_t workers : {1u, 2u, 3u, 8u}) {
    signal_scheduler sched(workers);
    std::vector<std::uint64_t> out(input.size());
    sched.run([&] {
      par::scan_add(sched, input.begin(), out.begin(), input.size(),
                    std::uint64_t{0});
    });
    if (reference.empty()) {
      reference = std::move(out);
    } else {
      ASSERT_EQ(out, reference) << workers << " workers";
    }
  }
}

// ---------------------------------------------------------------------------
// Pool lifecycle
// ---------------------------------------------------------------------------

TEST(Integration, ManyPoolsSequentially) {
  for (int round = 0; round < 20; ++round) {
    const sched_kind kind =
        all_sched_kinds[static_cast<std::size_t>(round) %
                        std::size(all_sched_kinds)];
    const auto n = with_scheduler(kind, 3, [](auto& sched) {
      std::atomic<int> count{0};
      sched.run([&] {
        par::parallel_for(sched, 0, 1000,
                          [&](std::size_t) { count.fetch_add(1); });
      });
      return count.load();
    });
    ASSERT_EQ(n, 1000);
  }
}

TEST(Integration, IdlePoolTearsDownCleanly) {
  // Construct and destroy pools that never run anything: workers must park
  // on the condition variable and leave on shutdown.
  for (int i = 0; i < 10; ++i) {
    signal_scheduler sched(4);
  }
}

TEST(Integration, PoolSurvivesBackToBackRunsWithIdleGaps) {
  expose_half_scheduler sched(4);
  for (int round = 0; round < 10; ++round) {
    std::atomic<std::uint64_t> sum{0};
    sched.run([&] {
      par::parallel_for(sched, 0, 10000, [&](std::size_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
      });
    });
    ASSERT_EQ(sum.load(), 10000ull * 9999 / 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));  // go idle
  }
}

// ---------------------------------------------------------------------------
// Heavy mixed workload under every scheduler (stress; oversubscribed)
// ---------------------------------------------------------------------------

TEST(Integration, MixedPipelineAllSchedulers) {
  for (const sched_kind kind : all_sched_kinds) {
    with_scheduler(kind, 6, [&](auto& sched) {
      std::vector<std::uint32_t> v(60000);
      sched.run([&] {
        par::parallel_for(sched, 0, v.size(), [&](std::size_t i) {
          v[i] = static_cast<std::uint32_t>(hash64(i) % 1000);
        });
        par::integer_sort(sched, v, 10);
      });
      ASSERT_TRUE(std::is_sorted(v.begin(), v.end())) << to_string(kind);
      const auto total = sched.run([&] {
        return par::sum<std::uint64_t>(sched, v.begin(), v.size());
      });
      std::uint64_t expected = 0;
      for (const auto x : v) expected += x;
      ASSERT_EQ(total, expected) << to_string(kind);
    });
  }
}

// The runner's counter profiles must reflect the family contracts on a
// realistic workload (not just fib): WS exposes nothing; USLCWS signals
// nothing; split-deque schedulers fence far less than WS.
TEST(Integration, RunnerProfilesMatchFamilyContracts) {
  pbbs::clear_input_cache();
  const pbbs::config cfg{"comparisonSort", "randomSeq_double"};
  const auto ws = pbbs::run_config(sched_kind::ws, 4, cfg, 60000, 2, false);
  const auto us =
      pbbs::run_config(sched_kind::uslcws, 4, cfg, 60000, 2, false);
  const auto sig =
      pbbs::run_config(sched_kind::signal, 4, cfg, 60000, 2, false);

  EXPECT_EQ(ws.profile.totals.exposures, 0u);
  EXPECT_EQ(ws.profile.totals.signals_sent, 0u);
  EXPECT_EQ(us.profile.totals.signals_sent, 0u);
  EXPECT_GT(ws.profile.totals.fences, 0u);
  EXPECT_LT(us.profile.totals.fences * 5, ws.profile.totals.fences);
  EXPECT_LT(sig.profile.totals.fences * 5, ws.profile.totals.fences);
  pbbs::clear_input_cache();
}

// Tasks pushed == tasks executed == tasks consumed, on a full PBBS
// workload under the signal scheduler (global conservation law).
TEST(Integration, TaskConservationOnRealWorkload) {
  pbbs::clear_input_cache();
  const auto r = pbbs::run_config(sched_kind::signal, 4,
                                  {"convexHull", "2DinCube"}, 50000, 1,
                                  true);
  ASSERT_TRUE(r.ok);
  const auto& t = r.profile.totals;
  EXPECT_EQ(t.tasks_executed, t.pushes);
  EXPECT_EQ(t.pops_private + t.pops_public + t.steals, t.pushes);
  pbbs::clear_input_cache();
}

}  // namespace
}  // namespace lcws
