// Randomized fork-tree property tests: arbitrary-shaped computations (as
// opposed to the regular trees of fib / parallel_for) executed under every
// scheduler, with full-result validation. The tree shape, leaf work and
// scheduler parameters all derive from the test seed, so failures
// reproduce deterministically.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "sched/dispatch.h"
#include "sched/scheduler.h"
#include "support/rng.h"

namespace lcws {
namespace {

// A deterministic random tree: node identity = (seed, path). Returns the
// checksum of all leaves under the node; forks with random arity shape
// (left-heavy, right-heavy, balanced) and random depth cutoffs.
template <typename Sched>
std::uint64_t random_tree(Sched& sched, std::uint64_t seed,
                          std::uint64_t path, unsigned depth) {
  const std::uint64_t h = hash64(seed ^ path);
  if (depth == 0 || (h & 7) == 0) {  // leaf with pseudo-random work
    std::uint64_t acc = h;
    const unsigned iters = 1 + (h >> 8) % 200;
    for (unsigned i = 0; i < iters; ++i) acc = hash64(acc);
    return acc;
  }
  std::uint64_t left = 0, right = 0;
  // Unbalanced subtrees: one side often gets much deeper.
  const unsigned left_depth = (h >> 16) % (depth + 1);
  const unsigned right_depth = (h >> 24) % (depth + 1);
  sched.pardo(
      [&] { left = random_tree(sched, seed, path * 2 + 1, left_depth); },
      [&] { right = random_tree(sched, seed, path * 2 + 2, right_depth); });
  return left ^ (right * 0x9e3779b97f4a7c15ULL);
}

// Sequential oracle with identical structure.
std::uint64_t random_tree_seq(std::uint64_t seed, std::uint64_t path,
                              unsigned depth) {
  const std::uint64_t h = hash64(seed ^ path);
  if (depth == 0 || (h & 7) == 0) {
    std::uint64_t acc = h;
    const unsigned iters = 1 + (h >> 8) % 200;
    for (unsigned i = 0; i < iters; ++i) acc = hash64(acc);
    return acc;
  }
  const unsigned left_depth = (h >> 16) % (depth + 1);
  const unsigned right_depth = (h >> 24) % (depth + 1);
  const std::uint64_t left = random_tree_seq(seed, path * 2 + 1, left_depth);
  const std::uint64_t right =
      random_tree_seq(seed, path * 2 + 2, right_depth);
  return left ^ (right * 0x9e3779b97f4a7c15ULL);
}

class SchedulerFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerFuzzTest, RandomTreeMatchesSequentialOracle) {
  const std::uint64_t seed = GetParam();
  xoshiro256 rng(seed);
  const std::uint64_t expected = random_tree_seq(seed, 0, 14);
  // Scheduler kind and worker count derive from the seed too.
  const sched_kind kind =
      all_sched_kinds[rng.bounded(std::size(all_sched_kinds))];
  const std::size_t workers = 1 + rng.bounded(8);
  const std::uint64_t got = with_scheduler(kind, workers, [&](auto& sched) {
    return sched.run([&] { return random_tree(sched, seed, 0, 14); });
  });
  EXPECT_EQ(got, expected) << "kind=" << to_string(kind)
                           << " workers=" << workers;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 25));

// Back-to-back runs of different shapes on one pool: state from one run
// (targeted flags, deque indices, mailboxes) must not leak into the next.
TEST(SchedulerFuzz, PoolReuseAcrossShapes) {
  for (const sched_kind kind : all_sched_kinds) {
    with_scheduler(kind, 4, [&](auto& sched) {
      for (std::uint64_t seed = 100; seed < 106; ++seed) {
        const std::uint64_t expected = random_tree_seq(seed, 0, 12);
        const std::uint64_t got =
            sched.run([&] { return random_tree(sched, seed, 0, 12); });
        ASSERT_EQ(got, expected)
            << to_string(kind) << " seed=" << seed;
      }
    });
  }
}

}  // namespace
}  // namespace lcws
