// Unit, stress and model-based property tests for the work-stealing
// deques (ABP baseline, Chase-Lev, the paper's split deque, and the
// fence-free wsmult deque).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "deque/abp_deque.h"
#include "deque/chase_lev_deque.h"
#include "deque/split_deque.h"
#include "deque/wsmult_deque.h"
#include "support/rng.h"

namespace lcws {
namespace {

// Tests park integers in a stable arena and push their addresses.
std::vector<int> make_arena(int n) {
  std::vector<int> arena(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) arena[static_cast<std::size_t>(i)] = i;
  return arena;
}

// ---------------------------------------------------------------------------
// ABP deque
// ---------------------------------------------------------------------------

TEST(AbpDeque, EmptyPops) {
  abp_deque<int> d(64);
  EXPECT_EQ(d.pop_bottom(), nullptr);
  EXPECT_EQ(d.pop_top().status, steal_status::empty);
}

TEST(AbpDeque, LifoForOwner) {
  auto arena = make_arena(5);
  abp_deque<int> d(64);
  for (auto& x : arena) d.push_bottom(&x);
  for (int i = 4; i >= 0; --i) EXPECT_EQ(d.pop_bottom(), &arena[i]);
  EXPECT_EQ(d.pop_bottom(), nullptr);
}

TEST(AbpDeque, FifoForThieves) {
  auto arena = make_arena(5);
  abp_deque<int> d(64);
  for (auto& x : arena) d.push_bottom(&x);
  for (int i = 0; i < 5; ++i) {
    const auto r = d.pop_top();
    ASSERT_EQ(r.status, steal_status::stolen);
    EXPECT_EQ(r.task, &arena[i]);
  }
  EXPECT_EQ(d.pop_top().status, steal_status::empty);
  EXPECT_EQ(d.pop_bottom(), nullptr);
}

TEST(AbpDeque, OwnerAndThiefMeetInTheMiddle) {
  auto arena = make_arena(6);
  abp_deque<int> d(64);
  for (auto& x : arena) d.push_bottom(&x);
  EXPECT_EQ(d.pop_top().task, &arena[0]);
  EXPECT_EQ(d.pop_bottom(), &arena[5]);
  EXPECT_EQ(d.pop_top().task, &arena[1]);
  EXPECT_EQ(d.pop_bottom(), &arena[4]);
  EXPECT_EQ(d.pop_bottom(), &arena[3]);
  EXPECT_EQ(d.pop_bottom(), &arena[2]);
  EXPECT_EQ(d.pop_bottom(), nullptr);
  EXPECT_EQ(d.pop_top().status, steal_status::empty);
}

TEST(AbpDeque, ResetAfterEmptyAllowsReuse) {
  auto arena = make_arena(8);
  abp_deque<int> d(4);  // tiny capacity: only works if indices reset
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 4; ++i) d.push_bottom(&arena[i]);
    for (int i = 0; i < 4; ++i) EXPECT_NE(d.pop_bottom(), nullptr);
    EXPECT_EQ(d.pop_bottom(), nullptr);
  }
}

TEST(AbpDeque, SizeEstimate) {
  auto arena = make_arena(3);
  abp_deque<int> d(64);
  EXPECT_EQ(d.size_estimate(), 0);
  for (auto& x : arena) d.push_bottom(&x);
  EXPECT_EQ(d.size_estimate(), 3);
  (void)d.pop_top();
  EXPECT_EQ(d.size_estimate(), 2);
}

// ---------------------------------------------------------------------------
// Chase-Lev deque
// ---------------------------------------------------------------------------

TEST(ChaseLevDeque, EmptyPops) {
  chase_lev_deque<int> d(64);
  EXPECT_EQ(d.pop_bottom(), nullptr);
  EXPECT_EQ(d.pop_top().status, steal_status::empty);
}

TEST(ChaseLevDeque, LifoForOwnerFifoForThieves) {
  auto arena = make_arena(6);
  chase_lev_deque<int> d(64);
  for (auto& x : arena) d.push_bottom(&x);
  EXPECT_EQ(d.pop_bottom(), &arena[5]);
  EXPECT_EQ(d.pop_top().task, &arena[0]);
  EXPECT_EQ(d.pop_top().task, &arena[1]);
  EXPECT_EQ(d.pop_bottom(), &arena[4]);
  EXPECT_EQ(d.pop_bottom(), &arena[3]);
  EXPECT_EQ(d.pop_bottom(), &arena[2]);
  EXPECT_EQ(d.pop_bottom(), nullptr);
}

TEST(ChaseLevDeque, CircularIndexingSurvivesManyRounds) {
  auto arena = make_arena(4);
  chase_lev_deque<int> d(4);
  // Push/pop far more elements than the capacity; circular indexing must
  // keep working because occupancy never exceeds 4.
  for (int round = 0; round < 100; ++round) {
    for (auto& x : arena) d.push_bottom(&x);
    for (int i = 0; i < 4; ++i) EXPECT_NE(d.pop_bottom(), nullptr);
  }
  EXPECT_EQ(d.pop_bottom(), nullptr);
}

// ---------------------------------------------------------------------------
// Split deque: basic semantics
// ---------------------------------------------------------------------------

TEST(SplitDeque, FreshTasksArePrivate) {
  auto arena = make_arena(3);
  split_deque<int> d(64);
  for (auto& x : arena) d.push_bottom(&x);
  EXPECT_EQ(d.private_size(), 3);
  EXPECT_EQ(d.public_size(), 0);
  // Thieves cannot touch private work; they see PRIVATE_WORK.
  EXPECT_EQ(d.pop_top().status, steal_status::private_work);
}

TEST(SplitDeque, PopTopOnEmptyDequeReportsEmpty) {
  split_deque<int> d(64);
  EXPECT_EQ(d.pop_top().status, steal_status::empty);
}

TEST(SplitDeque, ExposeOneMovesOldestPrivateTask) {
  auto arena = make_arena(3);
  split_deque<int> d(64);
  for (auto& x : arena) d.push_bottom(&x);
  EXPECT_EQ(d.expose_one(), 1);
  EXPECT_EQ(d.public_size(), 1);
  EXPECT_EQ(d.private_size(), 2);
  // The exposed task is the oldest (top-most) private one.
  const auto r = d.pop_top();
  ASSERT_EQ(r.status, steal_status::stolen);
  EXPECT_EQ(r.task, &arena[0]);
}

TEST(SplitDeque, ExposeOneOnEmptyIsNoop) {
  split_deque<int> d(64);
  EXPECT_EQ(d.expose_one(), 0);
  EXPECT_EQ(d.public_size(), 0);
}

TEST(SplitDeque, OwnerPopsNewestPrivateFirst) {
  auto arena = make_arena(4);
  split_deque<int> d(64);
  for (auto& x : arena) d.push_bottom(&x);
  EXPECT_EQ(d.pop_bottom_original(), &arena[3]);
  EXPECT_EQ(d.pop_bottom_signal_safe(), &arena[2]);
  EXPECT_EQ(d.private_size(), 2);
}

TEST(SplitDeque, PopBottomStopsAtPublicBoundary) {
  auto arena = make_arena(3);
  split_deque<int> d(64);
  for (auto& x : arena) d.push_bottom(&x);
  d.expose_one();
  d.expose_one();
  // One private task left.
  EXPECT_EQ(d.pop_bottom_original(), &arena[2]);
  EXPECT_EQ(d.pop_bottom_original(), nullptr);  // boundary reached
}

TEST(SplitDeque, PopPublicBottomTakesNewestPublic) {
  auto arena = make_arena(3);
  split_deque<int> d(64);
  for (auto& x : arena) d.push_bottom(&x);
  d.expose_one();
  d.expose_one();  // public = {arena0, arena1}, private = {arena2}
  EXPECT_EQ(d.pop_bottom_original(), &arena[2]);
  EXPECT_EQ(d.pop_bottom_original(), nullptr);
  EXPECT_EQ(d.pop_public_bottom(), &arena[1]);  // newest public first
  EXPECT_EQ(d.pop_bottom_original(), nullptr);
  EXPECT_EQ(d.pop_public_bottom(), &arena[0]);
  EXPECT_EQ(d.pop_public_bottom(), nullptr);
  EXPECT_EQ(d.size_estimate(), 0);
}

TEST(SplitDeque, SignalSafePopOnEmptyIsRepairedByPublicPop) {
  auto arena = make_arena(2);
  split_deque<int> d(64);
  // Section 4: the signal-safe pop decrements speculatively; the follow-up
  // pop_public_bottom must repair bot. Run several cycles to prove no
  // drift.
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(d.pop_bottom_signal_safe(), nullptr);
    EXPECT_EQ(d.pop_public_bottom(), nullptr);
    d.push_bottom(&arena[0]);
    d.push_bottom(&arena[1]);
    EXPECT_EQ(d.pop_bottom_signal_safe(), &arena[1]);
    EXPECT_EQ(d.pop_bottom_signal_safe(), &arena[0]);
    EXPECT_EQ(d.pop_bottom_signal_safe(), nullptr);
    EXPECT_EQ(d.pop_public_bottom(), nullptr);
  }
}

TEST(SplitDeque, StealsAndOwnerPopsPartitionTheTasks) {
  auto arena = make_arena(6);
  split_deque<int> d(64);
  for (auto& x : arena) d.push_bottom(&x);
  d.expose_one();
  d.expose_one();
  d.expose_one();  // public = {0,1,2}, private = {3,4,5}
  EXPECT_EQ(d.pop_top().task, &arena[0]);
  EXPECT_EQ(d.pop_bottom_original(), &arena[5]);
  EXPECT_EQ(d.pop_top().task, &arena[1]);
  EXPECT_EQ(d.pop_bottom_original(), &arena[4]);
  EXPECT_EQ(d.pop_bottom_original(), &arena[3]);
  EXPECT_EQ(d.pop_bottom_original(), nullptr);
  EXPECT_EQ(d.pop_public_bottom(), &arena[2]);
  EXPECT_EQ(d.pop_public_bottom(), nullptr);
}

TEST(SplitDeque, IndicesResetWhenEmptiedAllowsTinyCapacity) {
  auto arena = make_arena(4);
  split_deque<int> d(4);
  for (int round = 0; round < 3; ++round) {
    for (auto& x : arena) d.push_bottom(&x);
    for (int i = 3; i >= 0; --i) EXPECT_EQ(d.pop_bottom_original(), &arena[i]);
    EXPECT_EQ(d.pop_bottom_original(), nullptr);
    EXPECT_EQ(d.pop_public_bottom(), nullptr);  // resets indices to zero
  }
}

TEST(SplitDeque, PopPublicBottomRacesLastTaskViaCas) {
  auto arena = make_arena(1);
  split_deque<int> d(64);
  d.push_bottom(&arena[0]);
  d.expose_one();
  // Single exposed task; the owner must win it via the CAS path.
  EXPECT_EQ(d.pop_bottom_original(), nullptr);
  EXPECT_EQ(d.pop_public_bottom(), &arena[0]);
  EXPECT_EQ(d.pop_public_bottom(), nullptr);
  EXPECT_EQ(d.pop_top().status, steal_status::empty);
}

// ---------------------------------------------------------------------------
// Split deque: exposure policies
// ---------------------------------------------------------------------------

TEST(SplitDeque, ConservativeNeverExposesLastTask) {
  auto arena = make_arena(3);
  split_deque<int> d(64);
  d.push_bottom(&arena[0]);
  EXPECT_EQ(d.expose_conservative(), 0);  // one private task: refuse
  d.push_bottom(&arena[1]);
  EXPECT_EQ(d.expose_conservative(), 1);  // two: expose one
  EXPECT_EQ(d.expose_conservative(), 0);  // back to one private: refuse
  d.push_bottom(&arena[2]);
  EXPECT_EQ(d.expose_conservative(), 1);
  EXPECT_EQ(d.private_size(), 1);
  EXPECT_EQ(d.public_size(), 2);
}

TEST(SplitDeque, HasTwoTasksTracksPrivateCount) {
  auto arena = make_arena(3);
  split_deque<int> d(64);
  EXPECT_FALSE(d.has_two_tasks());
  d.push_bottom(&arena[0]);
  EXPECT_FALSE(d.has_two_tasks());
  d.push_bottom(&arena[1]);
  EXPECT_TRUE(d.has_two_tasks());
  d.expose_one();
  EXPECT_FALSE(d.has_two_tasks());  // one private + one public
}

TEST(SplitDeque, ExposeHalfCounts) {
  // r private tasks -> round(r/2) exposed for r >= 3, else min(r, 1).
  const struct {
    int before;
    std::int64_t exposed;
  } cases[] = {{0, 0}, {1, 1}, {2, 1}, {3, 2}, {4, 2},
               {5, 2},  // 2.5 rounds to even -> 2
               {6, 3}, {7, 4},  // 3.5 rounds to even -> 4
               {8, 4}, {9, 4}, {16, 8}, {17, 8}};
  for (const auto& c : cases) {
    auto arena = make_arena(c.before);
    split_deque<int> d(64);
    for (auto& x : arena) d.push_bottom(&x);
    EXPECT_EQ(d.expose_half(), c.exposed) << "r=" << c.before;
    EXPECT_EQ(d.public_size(), c.exposed) << "r=" << c.before;
    EXPECT_EQ(d.private_size(), c.before - c.exposed) << "r=" << c.before;
  }
}

TEST(Double2Int, MatchesRoundHalfToEven) {
  EXPECT_EQ(double2int(0.0), 0);
  EXPECT_EQ(double2int(1.0), 1);
  EXPECT_EQ(double2int(1.4), 1);
  EXPECT_EQ(double2int(1.5), 2);
  EXPECT_EQ(double2int(2.5), 2);  // half-to-even
  EXPECT_EQ(double2int(3.5), 4);
  EXPECT_EQ(double2int(3.49), 3);
  EXPECT_EQ(double2int(1000000.5), 1000000);
  EXPECT_EQ(double2int(-1.5), -2);
  EXPECT_EQ(double2int(-2.5), -2);
}

// ---------------------------------------------------------------------------
// Split deque: model-based property test (single-threaded oracle)
// ---------------------------------------------------------------------------

// Reference model of the split deque's sequential semantics: a deque of
// tasks plus the public/private boundary.
class split_model {
 public:
  void push(int* t) { items_.push_back(t); }

  int* pop_bottom() {
    if (items_.size() == boundary_) return nullptr;
    int* t = items_.back();
    items_.pop_back();
    return t;
  }

  int* pop_public_bottom() {
    if (boundary_ == 0) return nullptr;
    --boundary_;
    int* t = items_.back();
    items_.pop_back();
    return t;
  }

  steal_status steal(int*& out) {
    if (boundary_ > 0) {
      out = items_.front();
      items_.pop_front();
      --boundary_;
      return steal_status::stolen;
    }
    return items_.empty() ? steal_status::empty : steal_status::private_work;
  }

  std::int64_t expose_one() {
    if (boundary_ < items_.size()) {
      ++boundary_;
      return 1;
    }
    return 0;
  }

  std::size_t private_size() const { return items_.size() - boundary_; }
  std::size_t public_size() const { return boundary_; }

 private:
  std::deque<int*> items_;
  std::size_t boundary_ = 0;  // first `boundary_` items are public
};

class SplitDequeModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SplitDequeModelTest, RandomOpSequenceMatchesModel) {
  xoshiro256 rng(GetParam());
  auto arena = make_arena(10000);
  int next = 0;
  split_deque<int> d(16384);
  split_model model;

  for (int step = 0; step < 20000; ++step) {
    switch (rng.bounded(5)) {
      case 0:
      case 1: {  // push (biased so the deque has content)
        if (next < 10000 && model.private_size() + model.public_size() < 900) {
          d.push_bottom(&arena[next]);
          model.push(&arena[next]);
          ++next;
        }
        break;
      }
      case 2: {  // owner take: pop_bottom, then pop_public on failure
        int* got = d.pop_bottom_original();
        int* want = model.pop_bottom();
        ASSERT_EQ(got, want) << "step " << step;
        if (got == nullptr) {
          got = d.pop_public_bottom();
          want = model.pop_public_bottom();
          ASSERT_EQ(got, want) << "step " << step;
        }
        break;
      }
      case 3: {  // thief steal
        int* want = nullptr;
        const steal_status want_status = model.steal(want);
        const auto r = d.pop_top();
        ASSERT_EQ(r.status, want_status) << "step " << step;
        if (want_status == steal_status::stolen) {
          ASSERT_EQ(r.task, want) << "step " << step;
        }
        break;
      }
      case 4: {  // exposure
        ASSERT_EQ(d.expose_one(), model.expose_one()) << "step " << step;
        break;
      }
    }
    ASSERT_EQ(static_cast<std::size_t>(d.private_size()),
              model.private_size())
        << "step " << step;
    ASSERT_EQ(static_cast<std::size_t>(d.public_size()), model.public_size())
        << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitDequeModelTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// Same property sweep with the Section 4 signal-safe pop_bottom. Each
// failed pop must be followed by pop_public_bottom (the scheduler's calling
// convention), which repairs the speculative decrement.
class SplitDequeSignalSafeModelTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SplitDequeSignalSafeModelTest, RandomOpSequenceMatchesModel) {
  xoshiro256 rng(GetParam());
  auto arena = make_arena(10000);
  int next = 0;
  split_deque<int> d(16384);
  split_model model;

  for (int step = 0; step < 20000; ++step) {
    switch (rng.bounded(4)) {
      case 0: {
        if (next < 10000 && model.private_size() + model.public_size() < 900) {
          d.push_bottom(&arena[next]);
          model.push(&arena[next]);
          ++next;
        }
        break;
      }
      case 1: {
        int* got = d.pop_bottom_signal_safe();
        int* want = model.pop_bottom();
        ASSERT_EQ(got, want) << "step " << step;
        if (got == nullptr) {
          got = d.pop_public_bottom();
          want = model.pop_public_bottom();
          ASSERT_EQ(got, want) << "step " << step;
        }
        break;
      }
      case 2: {
        int* want = nullptr;
        const steal_status want_status = model.steal(want);
        const auto r = d.pop_top();
        ASSERT_EQ(r.status, want_status) << "step " << step;
        if (want_status == steal_status::stolen) {
          ASSERT_EQ(r.task, want) << "step " << step;
        }
        break;
      }
      case 3: {
        ASSERT_EQ(d.expose_one(), model.expose_one()) << "step " << step;
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitDequeSignalSafeModelTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808, 909, 1010));

TEST(SplitDeque, UnexposeHalfReclaimsNewestPublicInOrder) {
  auto arena = make_arena(6);
  split_deque<int> d(64);
  for (auto& x : arena) d.push_bottom(&x);
  for (int i = 0; i < 4; ++i) d.expose_one();  // public {0,1,2,3}
  // Drain the private part first (the Lace policy's precondition).
  EXPECT_EQ(d.pop_bottom_original(), &arena[5]);
  EXPECT_EQ(d.pop_bottom_original(), &arena[4]);
  EXPECT_EQ(d.pop_bottom_original(), nullptr);
  // Reclaim half of the 4 public tasks: the two newest (3, 2).
  EXPECT_EQ(d.unexpose_half(), 2);
  EXPECT_EQ(d.private_size(), 2);
  EXPECT_EQ(d.public_size(), 2);
  // Order preserved: newest private is still task 3.
  EXPECT_EQ(d.pop_bottom_original(), &arena[3]);
  EXPECT_EQ(d.pop_bottom_original(), &arena[2]);
  EXPECT_EQ(d.pop_bottom_original(), nullptr);
  // The remaining public tasks are untouched and still stealable.
  EXPECT_EQ(d.pop_top().task, &arena[0]);
  EXPECT_EQ(d.pop_top().task, &arena[1]);
}

TEST(SplitDeque, UnexposeHalfOnEmptyPublicIsNoop) {
  auto arena = make_arena(2);
  split_deque<int> d(64);
  d.push_bottom(&arena[0]);
  EXPECT_EQ(d.pop_bottom_original(), &arena[0]);
  EXPECT_EQ(d.unexpose_half(), 0);
  EXPECT_EQ(d.size_estimate(), 0);
}

TEST(SplitDeque, UnexposeHalfRoundsUp) {
  auto arena = make_arena(3);
  split_deque<int> d(64);
  for (auto& x : arena) d.push_bottom(&x);
  for (int i = 0; i < 3; ++i) d.expose_one();
  while (d.pop_bottom_original() != nullptr) {
  }
  EXPECT_EQ(d.unexpose_half(), 2);  // ceil(3/2)
  EXPECT_EQ(d.private_size(), 2);
  EXPECT_EQ(d.public_size(), 1);
}

// Model sweep over the other two exposure policies: conservative (expose
// only with >= 2 private tasks) and half (expose round(r/2) for r >= 3).
class SplitDequePolicyModelTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SplitDequePolicyModelTest, ConservativeAndHalfMatchTheirSpecs) {
  xoshiro256 rng(GetParam());
  auto arena = make_arena(8000);
  int next = 0;
  split_deque<int> d(16384);
  // Track expected private/public sizes under a mixed policy schedule.
  std::int64_t priv = 0, pub = 0;
  for (int step = 0; step < 15000; ++step) {
    switch (rng.bounded(5)) {
      case 0:
      case 1: {
        if (next < 8000 && priv + pub < 900) {
          d.push_bottom(&arena[next++]);
          ++priv;
        }
        break;
      }
      case 2: {  // conservative exposure
        const std::int64_t expect = priv >= 2 ? 1 : 0;
        ASSERT_EQ(d.expose_conservative(), expect) << "step " << step;
        priv -= expect;
        pub += expect;
        break;
      }
      case 3: {  // half exposure
        std::int64_t expect = 0;
        if (priv >= 3) {
          expect = static_cast<std::int64_t>(
              double2int(static_cast<double>(priv) / 2.0));
        } else if (priv >= 1) {
          expect = 1;
        }
        ASSERT_EQ(d.expose_half(), expect) << "step " << step;
        priv -= expect;
        pub += expect;
        break;
      }
      case 4: {  // owner take (original pop + public fallback)
        int* got = d.pop_bottom_original();
        if (priv > 0) {
          ASSERT_NE(got, nullptr) << "step " << step;
          --priv;
        } else {
          ASSERT_EQ(got, nullptr) << "step " << step;
          got = d.pop_public_bottom();
          if (pub > 0) {
            ASSERT_NE(got, nullptr) << "step " << step;
            --pub;
          } else {
            ASSERT_EQ(got, nullptr) << "step " << step;
          }
        }
        break;
      }
    }
    ASSERT_EQ(d.private_size(), priv) << "step " << step;
    ASSERT_EQ(d.public_size(), pub) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitDequePolicyModelTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// ---------------------------------------------------------------------------
// Concurrency stress: every task is consumed exactly once
// ---------------------------------------------------------------------------

// Owner produces and consumes with the given pop variant + exposure policy;
// `thieves` threads hammer pop_top. Every pushed task must be taken exactly
// once across all parties.
template <typename Deque, typename OwnerStep>
void exactly_once_stress(Deque& d, int total, int thieves, OwnerStep owner_step) {
  std::vector<std::atomic<int>> taken(static_cast<std::size_t>(total));
  for (auto& t : taken) t.store(0);
  auto arena = make_arena(total);
  std::atomic<bool> done{false};
  std::atomic<int> consumed{0};

  std::vector<std::thread> pool;
  for (int t = 0; t < thieves; ++t) {
    pool.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const auto r = d.pop_top();
        if (r.status == steal_status::stolen) {
          taken[static_cast<std::size_t>(*r.task)].fetch_add(1);
          consumed.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  // Owner: push in batches, interleave exposure and pops.
  xoshiro256 rng(42);
  int pushed = 0;
  while (consumed.load(std::memory_order_relaxed) < total) {
    if (pushed < total && rng.bounded(3) != 0) {
      d.push_bottom(&arena[pushed]);
      ++pushed;
    } else {
      if (int* t = owner_step(d)) {
        taken[static_cast<std::size_t>(*t)].fetch_add(1);
        consumed.fetch_add(1);
      } else if (pushed == total) {
        std::this_thread::yield();
      }
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();

  for (int i = 0; i < total; ++i) {
    EXPECT_EQ(taken[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  }
}

TEST(AbpDequeStress, ExactlyOnceUnderConcurrentSteals) {
  abp_deque<int> d(1 << 12);
  exactly_once_stress(d, 2000, 3,
                      [](abp_deque<int>& dq) { return dq.pop_bottom(); });
}

TEST(ChaseLevDequeStress, ExactlyOnceUnderConcurrentSteals) {
  chase_lev_deque<int> d(1 << 12);
  exactly_once_stress(d, 2000, 3,
                      [](chase_lev_deque<int>& dq) { return dq.pop_bottom(); });
}

TEST(SplitDequeStress, ExactlyOnceWithOwnerExposure) {
  split_deque<int> d(1 << 12);
  xoshiro256 rng(7);
  exactly_once_stress(d, 2000, 3, [&rng](split_deque<int>& dq) -> int* {
    if (rng.bounded(2) == 0) dq.expose_one();
    if (int* t = dq.pop_bottom_original()) return t;
    return dq.pop_public_bottom();
  });
}

TEST(SplitDequeStress, ExactlyOnceWithSignalSafePopAndExposeHalf) {
  split_deque<int> d(1 << 12);
  xoshiro256 rng(11);
  exactly_once_stress(d, 2000, 3, [&rng](split_deque<int>& dq) -> int* {
    if (rng.bounded(4) == 0) dq.expose_half();
    if (int* t = dq.pop_bottom_signal_safe()) return t;
    return dq.pop_public_bottom();
  });
}

TEST(SplitDequeStress, ExactlyOnceWithConservativeExposure) {
  split_deque<int> d(1 << 12);
  xoshiro256 rng(13);
  exactly_once_stress(d, 2000, 3, [&rng](split_deque<int>& dq) -> int* {
    if (rng.bounded(2) == 0) dq.expose_conservative();
    if (int* t = dq.pop_bottom_original()) return t;
    return dq.pop_public_bottom();
  });
}

// ---------------------------------------------------------------------------
// Capacity exhaustion (fixed mode): a detectable error, not UB
// ---------------------------------------------------------------------------

// LCWS_DEQUE_FIXED semantics, requested programmatically: growth disabled,
// push past capacity throws.
constexpr deque_growth fixed_mode{/*fixed=*/true, /*soft_cap=*/0};

TEST(SplitDeque, OverflowThrowsWithoutCorruption) {
  auto arena = make_arena(10);
  split_deque<int> d(8, nullptr, fixed_mode);
  for (int i = 0; i < 8; ++i) d.push_bottom(&arena[static_cast<std::size_t>(i)]);
  try {
    d.push_bottom(&arena[8]);
    FAIL() << "expected deque_overflow_error";
  } catch (const deque_overflow_error& e) {
    EXPECT_NE(std::string(e.what()).find("split_deque"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("deque_capacity"), std::string::npos);
  }
  // The failed push published nothing: the 8 resident tasks drain intact
  // and the deque is usable again afterwards.
  for (int i = 7; i >= 0; --i) {
    EXPECT_EQ(d.pop_bottom_original(), &arena[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(d.pop_bottom_original(), nullptr);
  d.push_bottom(&arena[0]);
  EXPECT_EQ(d.pop_bottom_original(), &arena[0]);
}

// The documented capacity contract: a steal consumes the top slot without
// lowering bot, so stolen slots stay unavailable until the owner drains
// the deque completely — filling past that drift must throw, not corrupt.
TEST(SplitDeque, StealDriftOverflowIsDetected) {
  auto arena = make_arena(9);
  split_deque<int> d(8, nullptr, fixed_mode);
  for (int i = 0; i < 8; ++i) d.push_bottom(&arena[static_cast<std::size_t>(i)]);
  while (d.expose_one() == 1) {
  }
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(d.pop_top().status, steal_status::stolen);
  }
  EXPECT_EQ(d.size_estimate(), 0);
  // All 8 slots are behind top; bot never came down, so the next push
  // overflows even though the deque is logically empty.
  EXPECT_THROW(d.push_bottom(&arena[8]), deque_overflow_error);
  // Owner-side drain (pop_public_bottom on the empty deque) resets the
  // indices and restores full capacity.
  EXPECT_EQ(d.pop_public_bottom(), nullptr);
  for (int i = 0; i < 8; ++i) d.push_bottom(&arena[static_cast<std::size_t>(i)]);
  EXPECT_EQ(d.size_estimate(), 8);
}

TEST(AbpDeque, OverflowThrowsWithoutCorruption) {
  auto arena = make_arena(9);
  abp_deque<int> d(8, nullptr, fixed_mode);
  for (int i = 0; i < 8; ++i) d.push_bottom(&arena[static_cast<std::size_t>(i)]);
  EXPECT_THROW(d.push_bottom(&arena[8]), deque_overflow_error);
  for (int i = 7; i >= 0; --i) {
    EXPECT_EQ(d.pop_bottom(), &arena[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(d.pop_bottom(), nullptr);
}

TEST(ChaseLevDeque, FixedModeOverflowThrowsInsteadOfAborting) {
  auto arena = make_arena(9);
  chase_lev_deque<int> d(8, nullptr, fixed_mode);
  for (int i = 0; i < 8; ++i) d.push_bottom(&arena[static_cast<std::size_t>(i)]);
  try {
    d.push_bottom(&arena[8]);
    FAIL() << "expected deque_overflow_error";
  } catch (const deque_overflow_error& e) {
    EXPECT_NE(std::string(e.what()).find("chase_lev_deque"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("deque_capacity"),
              std::string::npos);
  }
  for (int i = 7; i >= 0; --i) {
    EXPECT_EQ(d.pop_bottom(), &arena[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(d.pop_bottom(), nullptr);
}

// ---------------------------------------------------------------------------
// Growth: overflow becomes a slow-path doubling event (DESIGN.md §8)
// ---------------------------------------------------------------------------

// Growth enabled regardless of this process's LCWS_DEQUE_FIXED setting.
constexpr deque_growth grow_mode{/*fixed=*/false, /*soft_cap=*/0};

TEST(SplitDeque, GrowthPreservesContentsAndOrder) {
  const int n = 1000;
  auto arena = make_arena(n);
  split_deque<int> d(16, nullptr, grow_mode);
  for (auto& x : arena) d.push_bottom(&x);
  EXPECT_EQ(d.private_size(), n);
  // Geometric doubling identity: capacity == initial << grows.
  EXPECT_EQ(d.capacity(), std::size_t{16} << d.grow_count());
  EXPECT_GE(d.capacity(), static_cast<std::size_t>(n));
  EXPECT_EQ(d.high_water_mark(), n);
  // Without a domain nothing is freed early; every grown-out buffer is
  // parked on the retired list until destruction.
  EXPECT_EQ(d.retired_buffers(), d.grow_count());
  for (int i = n - 1; i >= 0; --i) {
    ASSERT_EQ(d.pop_bottom_original(), &arena[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(d.pop_bottom_original(), nullptr);
}

TEST(SplitDeque, GrowthAcrossThePublicBoundaryKeepsExposedTasksStealable) {
  const int n = 300;
  auto arena = make_arena(n);
  split_deque<int> d(8, nullptr, grow_mode);
  for (int i = 0; i < 4; ++i) d.push_bottom(&arena[static_cast<std::size_t>(i)]);
  for (int i = 0; i < 4; ++i) d.expose_one();
  // Pushing past capacity with live public slots: growth must carry them.
  for (int i = 4; i < n; ++i) d.push_bottom(&arena[static_cast<std::size_t>(i)]);
  EXPECT_GT(d.grow_count(), 0u);
  for (int i = 0; i < 4; ++i) {
    const auto r = d.pop_top();
    ASSERT_EQ(r.status, steal_status::stolen);
    EXPECT_EQ(r.task, &arena[static_cast<std::size_t>(i)]);
  }
  for (int i = n - 1; i >= 4; --i) {
    ASSERT_EQ(d.pop_bottom_original(), &arena[static_cast<std::size_t>(i)]);
  }
}

// The legacy StealDriftOverflow scenario, growth edition: drifted slots
// cost a doubling instead of an exception, and the eventual full drain
// still resets the indices.
TEST(SplitDeque, StealDriftGrowsInsteadOfThrowing) {
  auto arena = make_arena(9);
  split_deque<int> d(8, nullptr, grow_mode);
  for (int i = 0; i < 8; ++i) d.push_bottom(&arena[static_cast<std::size_t>(i)]);
  while (d.expose_one() == 1) {
  }
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(d.pop_top().status, steal_status::stolen);
  }
  EXPECT_EQ(d.size_estimate(), 0);
  d.push_bottom(&arena[8]);  // would throw in fixed mode
  EXPECT_EQ(d.grow_count(), 1u);
  EXPECT_EQ(d.pop_bottom_original(), &arena[8]);
}

TEST(AbpDeque, GrowthPreservesContentsAndOrder) {
  const int n = 1000;
  auto arena = make_arena(n);
  abp_deque<int> d(16, nullptr, grow_mode);
  for (auto& x : arena) d.push_bottom(&x);
  EXPECT_EQ(d.size_estimate(), n);
  EXPECT_EQ(d.capacity(), std::size_t{16} << d.grow_count());
  EXPECT_EQ(d.high_water_mark(), n);
  // FIFO half from the top, LIFO half from the bottom.
  for (int i = 0; i < n / 2; ++i) {
    const auto r = d.pop_top();
    ASSERT_EQ(r.status, steal_status::stolen);
    EXPECT_EQ(r.task, &arena[static_cast<std::size_t>(i)]);
  }
  for (int i = n - 1; i >= n / 2; --i) {
    ASSERT_EQ(d.pop_bottom(), &arena[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(d.pop_bottom(), nullptr);
}

TEST(ChaseLevDeque, GrowthRemapsTheCircularRange) {
  const int n = 500;
  auto arena = make_arena(n);
  chase_lev_deque<int> d(4, nullptr, grow_mode);
  // Wrap the indices first so the live range straddles the old buffer's
  // modulus when growth remaps it.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 3; ++i) d.push_bottom(&arena[static_cast<std::size_t>(i)]);
    for (int i = 0; i < 3; ++i) ASSERT_NE(d.pop_bottom(), nullptr);
  }
  for (auto& x : arena) d.push_bottom(&x);
  EXPECT_GT(d.grow_count(), 0u);
  EXPECT_EQ(d.size_estimate(), n);
  for (int i = 0; i < n / 2; ++i) {
    const auto r = d.pop_top();
    ASSERT_EQ(r.status, steal_status::stolen);
    EXPECT_EQ(r.task, &arena[static_cast<std::size_t>(i)]);
  }
  for (int i = n - 1; i >= n / 2; --i) {
    ASSERT_EQ(d.pop_bottom(), &arena[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(d.pop_bottom(), nullptr);
}

// The task ceiling is really gone: push past default_deque_capacity in one
// deque (single-threaded; the scheduler-level equivalent lives in
// deque_growth_test.cpp with a smaller starting capacity).
TEST(SplitDeque, GrowsPastDefaultDequeCapacity) {
  const int n = static_cast<int>(default_deque_capacity) + 1000;
  auto arena = make_arena(n);
  split_deque<int> d(default_deque_capacity, nullptr, grow_mode);
  for (auto& x : arena) d.push_bottom(&x);
  EXPECT_GE(d.grow_count(), 1u);
  EXPECT_EQ(d.high_water_mark(), n);
  for (int i = n - 1; i >= 0; --i) {
    ASSERT_EQ(d.pop_bottom_original(), &arena[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(d.pop_bottom_original(), nullptr);
}

// ---------------------------------------------------------------------------
// Reclamation: retirement, quiescence, and grow-during-steal races
// ---------------------------------------------------------------------------

TEST(ReclaimDomain, PassesOnlyAfterEveryReaderQuiesces) {
  reclaim_domain dom;
  const std::size_t r0 = dom.register_reader();
  const std::size_t r1 = dom.register_reader();
  ASSERT_EQ(dom.reader_count(), 2u);
  const std::uint64_t token = dom.retire_token();
  EXPECT_FALSE(dom.passed(token));  // nobody has quiesced yet
  dom.quiesce(r0);
  EXPECT_FALSE(dom.passed(token));  // one reader still outstanding
  dom.quiesce(r1);
  EXPECT_TRUE(dom.passed(token));
  // A new token is again blocked until the next quiesce round.
  const std::uint64_t token2 = dom.retire_token();
  EXPECT_FALSE(dom.passed(token2));
  dom.quiesce(r0);
  dom.quiesce(r1);
  EXPECT_TRUE(dom.passed(token2));
}

TEST(SplitDeque, RetiredBuffersAreFreedAtDrainPointsOnceQuiesced) {
  reclaim_domain dom;
  const std::size_t reader = dom.register_reader();
  const int n = 200;
  auto arena = make_arena(n);
  split_deque<int> d(8, &dom, grow_mode);
  for (auto& x : arena) d.push_bottom(&x);
  const std::uint64_t grown = d.grow_count();
  ASSERT_GT(grown, 0u);
  EXPECT_EQ(d.retired_buffers(), grown);  // reader silent: nothing freed
  dom.quiesce(reader);
  // Full drain hits the pop_public_bottom reset, which collects.
  for (int i = 0; i < n; ++i) ASSERT_NE(d.pop_bottom_original(), nullptr);
  EXPECT_EQ(d.pop_bottom_original(), nullptr);
  EXPECT_EQ(d.pop_public_bottom(), nullptr);
  EXPECT_EQ(d.retired_buffers(), 0u);
}

// Thieves hammer pop_top (quiescing between attempts) while the owner's
// pushes force repeated growth: every task is consumed exactly once, no
// thief ever reads freed storage (ASan/TSan-checked in those CI jobs), and
// the retired list drains once everyone quiesces.
TEST(SplitDequeStress, ExactlyOnceUnderConcurrentStealsAndGrowth) {
  reclaim_domain dom;
  split_deque<int> d(16, &dom, grow_mode);
  const int total = 6000;
  const int thieves = 3;
  std::vector<std::atomic<int>> taken(static_cast<std::size_t>(total));
  for (auto& t : taken) t.store(0);
  auto arena = make_arena(total);
  std::atomic<bool> done{false};
  std::atomic<int> consumed{0};

  std::vector<std::thread> pool;
  for (int t = 0; t < thieves; ++t) {
    pool.emplace_back([&] {
      const std::size_t reader = dom.register_reader();
      dom.quiesce(reader);
      while (!done.load(std::memory_order_acquire)) {
        const auto r = d.pop_top();
        if (r.status == steal_status::stolen) {
          taken[static_cast<std::size_t>(*r.task)].fetch_add(1);
          consumed.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
        dom.quiesce(reader);  // buffer pointer provably dropped
      }
      dom.quiesce(reader);
    });
  }
  // The domain contract requires every reader registered before the first
  // growth; hold pushes until all thieves have their slots.
  while (dom.reader_count() < static_cast<std::size_t>(thieves)) {
    std::this_thread::yield();
  }

  xoshiro256 rng(42);
  int pushed = 0;
  while (consumed.load(std::memory_order_relaxed) < total) {
    if (pushed < total && rng.bounded(3) != 0) {
      d.push_bottom(&arena[static_cast<std::size_t>(pushed)]);
      ++pushed;
      if (rng.bounded(2) == 0) d.expose_one();
    } else {
      if (rng.bounded(2) == 0) d.expose_half();
      int* t = d.pop_bottom_signal_safe();
      if (t == nullptr) t = d.pop_public_bottom();
      if (t != nullptr) {
        taken[static_cast<std::size_t>(*t)].fetch_add(1);
        consumed.fetch_add(1);
      } else if (pushed == total) {
        std::this_thread::yield();
      }
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();

  EXPECT_GT(d.grow_count(), 0u) << "stress never grew; raise total";
  for (int i = 0; i < total; ++i) {
    EXPECT_EQ(taken[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  }
  // Every thief quiesced after the last possible retirement, so the next
  // drain point reclaims the whole retired list.
  EXPECT_EQ(d.pop_public_bottom(), nullptr);
  EXPECT_EQ(d.retired_buffers(), 0u);
}

TEST(ChaseLevDequeStress, ExactlyOnceUnderConcurrentStealsAndGrowth) {
  reclaim_domain dom;
  chase_lev_deque<int> d(16, &dom, grow_mode);
  const int total = 6000;
  const int thieves = 3;
  std::vector<std::atomic<int>> taken(static_cast<std::size_t>(total));
  for (auto& t : taken) t.store(0);
  auto arena = make_arena(total);
  std::atomic<bool> done{false};
  std::atomic<int> consumed{0};

  std::vector<std::thread> pool;
  for (int t = 0; t < thieves; ++t) {
    pool.emplace_back([&] {
      const std::size_t reader = dom.register_reader();
      dom.quiesce(reader);
      while (!done.load(std::memory_order_acquire)) {
        const auto r = d.pop_top();
        if (r.status == steal_status::stolen) {
          taken[static_cast<std::size_t>(*r.task)].fetch_add(1);
          consumed.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
        dom.quiesce(reader);
      }
      dom.quiesce(reader);
    });
  }
  while (dom.reader_count() < static_cast<std::size_t>(thieves)) {
    std::this_thread::yield();
  }

  xoshiro256 rng(7);
  int pushed = 0;
  while (consumed.load(std::memory_order_relaxed) < total) {
    if (pushed < total && rng.bounded(3) != 0) {
      d.push_bottom(&arena[static_cast<std::size_t>(pushed)]);
      ++pushed;
    } else {
      if (int* t = d.pop_bottom()) {
        taken[static_cast<std::size_t>(*t)].fetch_add(1);
        consumed.fetch_add(1);
      } else if (pushed == total) {
        std::this_thread::yield();
      }
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();

  EXPECT_GT(d.grow_count(), 0u) << "stress never grew; raise total";
  for (int i = 0; i < total; ++i) {
    EXPECT_EQ(taken[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  }
}

// ---------------------------------------------------------------------------
// WS-mult deque (DESIGN.md §9): fence- and CAS-free with multiplicity
// ---------------------------------------------------------------------------

TEST(WsmultDeque, EmptyPops) {
  wsmult_deque<int> d(64);
  EXPECT_EQ(d.pop_bottom(), nullptr);
  EXPECT_EQ(d.pop_top().status, steal_status::empty);
}

TEST(WsmultDeque, LifoForOwner) {
  auto arena = make_arena(5);
  wsmult_deque<int> d(64);
  for (auto& x : arena) d.push_bottom(&x);
  for (int i = 4; i >= 0; --i) EXPECT_EQ(d.pop_bottom(), &arena[i]);
  EXPECT_EQ(d.pop_bottom(), nullptr);
}

TEST(WsmultDeque, FifoForThieves) {
  auto arena = make_arena(5);
  wsmult_deque<int> d(64);
  for (auto& x : arena) d.push_bottom(&x);
  for (int i = 0; i < 5; ++i) {
    const auto r = d.pop_top();
    ASSERT_EQ(r.status, steal_status::stolen);
    EXPECT_EQ(r.task, &arena[i]);
  }
  EXPECT_EQ(d.pop_top().status, steal_status::empty);
  EXPECT_EQ(d.pop_bottom(), nullptr);
}

TEST(WsmultDeque, OwnerAndThiefMeetInTheMiddle) {
  auto arena = make_arena(6);
  wsmult_deque<int> d(64);
  for (auto& x : arena) d.push_bottom(&x);
  EXPECT_EQ(d.pop_top().task, &arena[0]);
  EXPECT_EQ(d.pop_bottom(), &arena[5]);
  EXPECT_EQ(d.pop_top().task, &arena[1]);
  EXPECT_EQ(d.pop_bottom(), &arena[4]);
  EXPECT_EQ(d.pop_bottom(), &arena[3]);
  EXPECT_EQ(d.pop_bottom(), &arena[2]);
  // The owner's drain walk ends on the two thief-claimed slots.
  EXPECT_EQ(d.pop_bottom(), nullptr);
  EXPECT_EQ(d.pop_top().status, steal_status::empty);
}

// Indices are monotonic within a generation; the owner's drain walk must
// wind the window back so a tiny capacity supports unbounded reuse, with
// steals working again after every reset.
TEST(WsmultDeque, ReuseAfterDrainResetWithTinyCapacity) {
  auto arena = make_arena(4);
  wsmult_deque<int> d(4);
  for (int round = 0; round < 100; ++round) {
    for (auto& x : arena) d.push_bottom(&x);
    const auto r = d.pop_top();
    ASSERT_EQ(r.status, steal_status::stolen);
    EXPECT_EQ(r.task, &arena[0]) << "round " << round;
    for (int i = 0; i < 3; ++i) ASSERT_NE(d.pop_bottom(), nullptr);
    ASSERT_EQ(d.pop_bottom(), nullptr) << "round " << round;
  }
  EXPECT_EQ(d.grow_count(), 0u);
  EXPECT_GT(d.reset_count(), 0u);
}

TEST(WsmultDeque, SizeEstimate) {
  auto arena = make_arena(3);
  wsmult_deque<int> d(64);
  EXPECT_EQ(d.size_estimate(), 0);
  for (auto& x : arena) d.push_bottom(&x);
  EXPECT_EQ(d.size_estimate(), 3);
  (void)d.pop_top();
  EXPECT_EQ(d.size_estimate(), 2);
}

TEST(WsmultDeque, GrowthPreservesContentsAndOrder) {
  const int n = 200;
  auto arena = make_arena(n);
  wsmult_deque<int> d(8, nullptr, grow_mode);
  for (auto& x : arena) d.push_bottom(&x);
  EXPECT_GT(d.grow_count(), 0u);
  EXPECT_GE(d.capacity(), static_cast<std::size_t>(n));
  // FIFO from the top across every growth boundary.
  for (int i = 0; i < n / 2; ++i) {
    const auto r = d.pop_top();
    ASSERT_EQ(r.status, steal_status::stolen);
    EXPECT_EQ(r.task, &arena[i]);
  }
  // LIFO from the bottom for the rest.
  for (int i = n - 1; i >= n / 2; --i) EXPECT_EQ(d.pop_bottom(), &arena[i]);
  EXPECT_EQ(d.pop_bottom(), nullptr);
}

TEST(WsmultDeque, FixedModeOverflowThrowsWithoutCorruption) {
  auto arena = make_arena(5);
  wsmult_deque<int> d(4, nullptr, fixed_mode);
  for (int i = 0; i < 4; ++i) d.push_bottom(&arena[i]);
  EXPECT_THROW(d.push_bottom(&arena[4]), deque_overflow_error);
  for (int i = 3; i >= 0; --i) EXPECT_EQ(d.pop_bottom(), &arena[i]);
  EXPECT_EQ(d.pop_bottom(), nullptr);
}

TEST(WsmultDeque, RetiredBuffersAreFreedAtDrainPointsOnceQuiesced) {
  reclaim_domain dom;
  const std::size_t reader = dom.register_reader();
  const int n = 200;
  auto arena = make_arena(n);
  wsmult_deque<int> d(8, &dom, grow_mode);
  for (auto& x : arena) d.push_bottom(&x);
  const std::uint64_t grown = d.grow_count();
  ASSERT_GT(grown, 0u);
  EXPECT_EQ(d.retired_buffers(), grown);  // reader silent: nothing freed
  dom.quiesce(reader);
  // The drain walk's empty return is a collection point.
  for (int i = 0; i < n; ++i) ASSERT_NE(d.pop_bottom(), nullptr);
  EXPECT_EQ(d.pop_bottom(), nullptr);
  EXPECT_EQ(d.retired_buffers(), 0u);
}

TEST(WsmultDequeStress, ExactlyOnceUnderConcurrentSteals) {
  wsmult_deque<int> d(1 << 12);
  exactly_once_stress(d, 2000, 3,
                      [](wsmult_deque<int>& dq) { return dq.pop_bottom(); });
}

// The §9 version of the growth race: thieves claim through buffers the
// owner is concurrently replacing, so the copy's slot exchanges must hand
// every task to exactly one party, and quiescence must drain the retired
// list.
TEST(WsmultDequeStress, ExactlyOnceUnderConcurrentStealsAndGrowth) {
  reclaim_domain dom;
  wsmult_deque<int> d(16, &dom, grow_mode);
  const int total = 6000;
  const int thieves = 3;
  std::vector<std::atomic<int>> taken(static_cast<std::size_t>(total));
  for (auto& t : taken) t.store(0);
  auto arena = make_arena(total);
  std::atomic<bool> done{false};
  std::atomic<int> consumed{0};

  std::vector<std::thread> pool;
  for (int t = 0; t < thieves; ++t) {
    pool.emplace_back([&] {
      const std::size_t reader = dom.register_reader();
      dom.quiesce(reader);
      while (!done.load(std::memory_order_acquire)) {
        const auto r = d.pop_top();
        if (r.status == steal_status::stolen) {
          taken[static_cast<std::size_t>(*r.task)].fetch_add(1);
          consumed.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
        dom.quiesce(reader);
      }
      dom.quiesce(reader);
    });
  }
  while (dom.reader_count() < static_cast<std::size_t>(thieves)) {
    std::this_thread::yield();
  }

  xoshiro256 rng(23);
  int pushed = 0;
  while (consumed.load(std::memory_order_relaxed) < total) {
    if (pushed < total && rng.bounded(3) != 0) {
      d.push_bottom(&arena[static_cast<std::size_t>(pushed)]);
      ++pushed;
    } else {
      if (int* t = d.pop_bottom()) {
        taken[static_cast<std::size_t>(*t)].fetch_add(1);
        consumed.fetch_add(1);
      } else if (pushed == total) {
        std::this_thread::yield();
      }
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();

  EXPECT_GT(d.grow_count(), 0u) << "stress never grew; raise total";
  for (int i = 0; i < total; ++i) {
    EXPECT_EQ(taken[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  }
}

}  // namespace
}  // namespace lcws
