// Tests for the locality layer: sysfs topology parsing against fixture
// trees, tier classification, pin orders, victim tables, the two-level
// victim selector's distribution, reproducible seeding (LCWS_SEED), and
// the scheduler-level steal-placement counter identities.
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "sched/scheduler.h"
#include "sched/victim_select.h"
#include "support/rng.h"
#include "support/topology.h"

namespace lcws {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// fixture sysfs/procfs trees
// ---------------------------------------------------------------------------

class fixture_tree {
 public:
  explicit fixture_tree(const std::string& name) {
    root_ = fs::path(::testing::TempDir()) /
            ("lcws_topo_" + name + "_" + std::to_string(::getpid()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  ~fixture_tree() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  void write(const std::string& rel, const std::string& content) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p);
    out << content << "\n";
  }

  std::string path() const { return root_.string(); }

 private:
  fs::path root_;
};

void add_cpu(fixture_tree& t, int cpu, const std::string& siblings,
             const std::string& llc, int socket,
             const std::string& cluster = "") {
  const std::string d = "devices/system/cpu/cpu" + std::to_string(cpu);
  t.write(d + "/topology/thread_siblings_list", siblings);
  t.write(d + "/topology/physical_package_id", std::to_string(socket));
  if (!llc.empty()) t.write(d + "/cache/index3/shared_cpu_list", llc);
  if (!cluster.empty()) t.write(d + "/topology/cluster_cpus_list", cluster);
}

// One socket, 4 CPUs: SMT pairs (0,1) (2,3), one shared L3, one node.
void build_smt_1socket(fixture_tree& t) {
  t.write("devices/system/cpu/online", "0-3");
  add_cpu(t, 0, "0-1", "0-3", 0);
  add_cpu(t, 1, "0-1", "0-3", 0);
  add_cpu(t, 2, "2-3", "0-3", 0);
  add_cpu(t, 3, "2-3", "0-3", 0);
  t.write("devices/system/node/node0/cpulist", "0-3");
}

// Two sockets x two L3 domains x two SMT cores: 16 CPUs, 2 NUMA nodes.
// Socket 0 = cpus 0-7 (L3s 0-3 and 4-7), socket 1 = cpus 8-15.
void build_two_socket(fixture_tree& t) {
  t.write("devices/system/cpu/online", "0-15");
  for (int s = 0; s < 2; ++s) {
    const int base = s * 8;
    for (int c = 0; c < 8; ++c) {
      const int cpu = base + c;
      const int pair_lo = base + (c / 2) * 2;
      const int llc_lo = base + (c / 4) * 4;
      add_cpu(t, cpu,
              std::to_string(pair_lo) + "-" + std::to_string(pair_lo + 1),
              std::to_string(llc_lo) + "-" + std::to_string(llc_lo + 3), s);
    }
  }
  t.write("devices/system/node/node0/cpulist", "0-7");
  t.write("devices/system/node/node1/cpulist", "8-15");
}

// ---------------------------------------------------------------------------
// probe_topology + classify
// ---------------------------------------------------------------------------

TEST(Topology, Parses1SocketSmtFixture) {
  fixture_tree t("smt1s");
  build_smt_1socket(t);
  const cpu_topology topo = probe_topology(t.path());
  ASSERT_TRUE(topo.from_sysfs);
  ASSERT_EQ(topo.cpus.size(), 4u);
  EXPECT_EQ(topo.socket_count(), 1u);
  EXPECT_EQ(topo.core_count(), 2u);
  EXPECT_EQ(topo.node_count(), 1u);
  ASSERT_NE(topo.find(2), nullptr);
  EXPECT_EQ(topo.find(2)->smt_group, 2);
  EXPECT_EQ(topo.find(2)->llc, 0);
  EXPECT_EQ(topo.find(2)->node, 0);

  EXPECT_EQ(classify(topo, 0, 0), locality_tier::smt);
  EXPECT_EQ(classify(topo, 0, 1), locality_tier::smt);
  EXPECT_EQ(classify(topo, 0, 2), locality_tier::llc);  // no cluster level
  EXPECT_EQ(classify(topo, 0, 99), locality_tier::remote);  // unknown cpu
}

TEST(Topology, Parses2SocketFixtureAllTiers) {
  fixture_tree t("2socket");
  build_two_socket(t);
  const cpu_topology topo = probe_topology(t.path());
  ASSERT_TRUE(topo.from_sysfs);
  ASSERT_EQ(topo.cpus.size(), 16u);
  EXPECT_EQ(topo.socket_count(), 2u);
  EXPECT_EQ(topo.core_count(), 8u);
  EXPECT_EQ(topo.node_count(), 2u);

  EXPECT_EQ(classify(topo, 0, 1), locality_tier::smt);     // same core
  EXPECT_EQ(classify(topo, 0, 2), locality_tier::llc);     // same L3
  EXPECT_EQ(classify(topo, 0, 4), locality_tier::socket);  // other L3
  EXPECT_EQ(classify(topo, 0, 8), locality_tier::remote);  // other node
  EXPECT_EQ(classify(topo, 8, 15), locality_tier::socket);
}

TEST(Topology, ClusterLevelGivesCoreTier) {
  fixture_tree t("cluster");
  t.write("devices/system/cpu/online", "0-7");
  for (int c = 0; c < 8; ++c) {
    const int pair_lo = (c / 2) * 2;
    const int cluster_lo = (c / 4) * 4;
    add_cpu(t, c, std::to_string(pair_lo) + "-" + std::to_string(pair_lo + 1),
            "0-7", 0,
            std::to_string(cluster_lo) + "-" + std::to_string(cluster_lo + 3));
  }
  t.write("devices/system/node/node0/cpulist", "0-7");
  const cpu_topology topo = probe_topology(t.path());
  EXPECT_EQ(classify(topo, 0, 2), locality_tier::core);  // same cluster
  EXPECT_EQ(classify(topo, 0, 4), locality_tier::llc);   // other cluster
}

TEST(Topology, DegenerateClusterIsDropped) {
  // A "cluster" spanning the whole LLC adds no information; keeping it
  // would misreport the llc tier as core.
  fixture_tree t("degcluster");
  t.write("devices/system/cpu/online", "0-3");
  for (int c = 0; c < 4; ++c) {
    const int pair_lo = (c / 2) * 2;
    add_cpu(t, c, std::to_string(pair_lo) + "-" + std::to_string(pair_lo + 1),
            "0-3", 0, "0-3");
  }
  const cpu_topology topo = probe_topology(t.path());
  ASSERT_NE(topo.find(0), nullptr);
  EXPECT_EQ(topo.find(0)->cluster, -1);
  EXPECT_EQ(classify(topo, 0, 2), locality_tier::llc);
}

TEST(Topology, MissingSysfsFallsBackFlat) {
  fixture_tree t("empty");
  const cpu_topology topo = probe_topology(t.path());
  EXPECT_FALSE(topo.from_sysfs);
  ASSERT_FALSE(topo.cpus.empty());
  EXPECT_EQ(topo.socket_count(), 0u);  // every level unknown
  // Distinct CPUs on the flat topology are remote: no false locality.
  if (topo.cpus.size() >= 2) {
    EXPECT_EQ(classify(topo, 0, 1), locality_tier::remote);
  }
  EXPECT_EQ(classify(topo, 0, 0), locality_tier::smt);
}

// ---------------------------------------------------------------------------
// probe_machine (satellite: ARM/container 0-socket clamp)
// ---------------------------------------------------------------------------

TEST(Machine, ArmCpuinfoWithoutIdsClampsToOne) {
  // ARM /proc/cpuinfo has no `physical id`/`core id` lines; with no sysfs
  // either, the old probe reported 0 sockets / 0 cores.
  fixture_tree proc("armproc");
  proc.write("cpuinfo",
             "processor\t: 0\nmodel name\t: ARMv8 Processor rev 3 (v8l)\n"
             "BogoMIPS\t: 38.40\nFeatures\t: fp asimd\n\n"
             "processor\t: 1\nmodel name\t: ARMv8 Processor rev 3 (v8l)\n");
  proc.write("meminfo", "MemTotal:        1024000 kB");
  fixture_tree sys("armsys");  // empty: no topology at all
  const machine_info info = probe_machine(proc.path(), sys.path());
  EXPECT_GE(info.sockets, 1u);
  EXPECT_GE(info.physical_cores, 1u);
  EXPECT_EQ(info.physical_cores, info.logical_cpus);
  EXPECT_EQ(info.cpu_model, "ARMv8 Processor rev 3 (v8l)");
  EXPECT_EQ(info.memory_bytes, 1024000u * 1024u);
}

TEST(Machine, PrefersSysfsCountsOverCpuinfo) {
  fixture_tree proc("sysproc");
  proc.write("cpuinfo", "model name\t: Fixture CPU\n");  // no id lines
  proc.write("meminfo", "MemTotal:        2048 kB");
  fixture_tree sys("syssys");
  build_two_socket(sys);
  const machine_info info = probe_machine(proc.path(), sys.path());
  EXPECT_EQ(info.sockets, 2u);
  EXPECT_EQ(info.physical_cores, 8u);
  EXPECT_EQ(info.logical_cpus, 16u);
}

// ---------------------------------------------------------------------------
// pin_order
// ---------------------------------------------------------------------------

TEST(PinOrder, CompactKeepsSiblingsAdjacent) {
  fixture_tree t("compact");
  build_two_socket(t);
  const cpu_topology topo = probe_topology(t.path());
  const std::vector<int> order = pin_order(topo, pin_mode::compact);
  ASSERT_EQ(order.size(), 16u);
  // Hierarchy-major: socket 0 fully before socket 1, SMT siblings adjacent.
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i) << "at " << i;
}

TEST(PinOrder, ScatterOnePerCoreAcrossSockets) {
  fixture_tree t("scatter");
  build_two_socket(t);
  const cpu_topology topo = probe_topology(t.path());
  const std::vector<int> order = pin_order(topo, pin_mode::scatter);
  ASSERT_EQ(order.size(), 16u);
  // First 8 entries: one CPU per physical core, alternating sockets.
  std::set<int> cores_seen;
  for (int i = 0; i < 8; ++i) {
    const auto* info = topo.find(order[i]);
    ASSERT_NE(info, nullptr);
    EXPECT_TRUE(cores_seen.insert(info->smt_group).second)
        << "core repeated before all cores used";
    EXPECT_EQ(info->socket, i % 2) << "sockets not round-robined at " << i;
  }
  // Second half revisits the same cores (the SMT siblings).
  std::set<int> all(order.begin(), order.end());
  EXPECT_EQ(all.size(), 16u);
}

TEST(PinOrder, OffIsEmpty) {
  fixture_tree t("pinoff");
  build_smt_1socket(t);
  const cpu_topology topo = probe_topology(t.path());
  EXPECT_TRUE(pin_order(topo, pin_mode::off).empty());
}

// ---------------------------------------------------------------------------
// build_victim_table + victim_selector
// ---------------------------------------------------------------------------

TEST(VictimTable, TiersBracketNearestFirst) {
  fixture_tree t("vtable");
  build_two_socket(t);
  const cpu_topology topo = probe_topology(t.path());
  // Workers on cpus 0 (self), 1 (smt), 2 (llc), 4 (socket), 8 (remote),
  // and one unpinned worker (-1 => remote).
  const std::vector<int> cpus = {0, 1, 2, 4, 8, -1};
  const victim_table table = build_victim_table(topo, cpus, 0);
  ASSERT_EQ(table.order.size(), 5u);
  EXPECT_EQ(table.tier_of[1], static_cast<unsigned char>(locality_tier::smt));
  EXPECT_EQ(table.tier_of[2], static_cast<unsigned char>(locality_tier::llc));
  EXPECT_EQ(table.tier_of[3],
            static_cast<unsigned char>(locality_tier::socket));
  EXPECT_EQ(table.tier_of[4],
            static_cast<unsigned char>(locality_tier::remote));
  EXPECT_EQ(table.tier_of[5],
            static_cast<unsigned char>(locality_tier::remote));
  // order is tier-bucketed nearest-first.
  EXPECT_EQ(table.order[0], 1u);
  EXPECT_EQ(table.order[1], 2u);
  EXPECT_EQ(table.order[2], 3u);
  // tier_begin brackets: smt [0,1), core [1,1), llc [1,2), socket [2,3),
  // remote [3,5).
  EXPECT_EQ(table.tier_begin[0], 0u);
  EXPECT_EQ(table.tier_begin[1], 1u);
  EXPECT_EQ(table.tier_begin[2], 1u);
  EXPECT_EQ(table.tier_begin[3], 2u);
  EXPECT_EQ(table.tier_begin[4], 3u);
  EXPECT_EQ(table.tier_begin[5], 5u);
}

TEST(VictimSelector, VisitsEveryVictimAndPrefersNear) {
  fixture_tree t("select");
  build_two_socket(t);
  const cpu_topology topo = probe_topology(t.path());
  const std::vector<int> cpus = {0, 1, 2, 4, 8};
  victim_selector sel;
  sel.build(build_victim_table(topo, cpus, 0), /*explore_period=*/16);
  ASSERT_FALSE(sel.empty());
  EXPECT_EQ(sel.tier_of(1), locality_tier::smt);
  EXPECT_EQ(sel.tier_size(locality_tier::smt), 1u);

  xoshiro256 rng(123);
  std::map<std::size_t, std::size_t> visits;
  std::size_t explorations = 0;
  constexpr std::size_t kPicks = 20000;
  for (std::size_t i = 0; i < kPicks; ++i) {
    bool explored = false;
    const std::size_t v =
        sel.pick(rng, [](std::size_t) { return 1u; }, &explored);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 4u);
    ++visits[v];
    explorations += explored ? 1 : 0;
  }
  // Starvation freedom: every victim (including remote) gets picked.
  for (std::size_t v = 1; v <= 4; ++v) {
    EXPECT_GT(visits[v], 0u) << "victim " << v << " starved";
  }
  // Geometric tier bias: the smt victim (p ~ 1/2) dominates the remote
  // one (p ~ 1/8 as the absorbing farthest tier): ratio ~3.7 with the
  // uniform exploration rounds folded in.
  EXPECT_GT(visits[1], 3 * visits[4]);
  // Exploration fires once per explore_period.
  EXPECT_EQ(explorations, kPicks / 16);
}

TEST(VictimSelector, UnpinnedWorkersDegradeToUniform) {
  // No pinning info at all: everything lands in the remote tier and the
  // selector is (success-weighted) uniform — no victim favored a priori.
  const cpu_topology topo;  // empty, never consulted for cpu -1
  const std::vector<int> cpus = {-1, -1, -1, -1};
  victim_selector sel;
  sel.build(build_victim_table(topo, cpus, 0), 16);
  xoshiro256 rng(7);
  std::map<std::size_t, std::size_t> visits;
  for (std::size_t i = 0; i < 12000; ++i) {
    ++visits[sel.pick(rng, [](std::size_t) { return 1u; })];
  }
  for (std::size_t v = 1; v <= 3; ++v) {
    EXPECT_GT(visits[v], 2500u);  // ~4000 expected each
    EXPECT_LT(visits[v], 5500u);
  }
}

TEST(VictimSelector, WeightBiasesWithinTier) {
  // Two victims in one (remote) tier, one with a much better EWMA: the
  // power-of-two-choices pick should favor it ~3:1.
  const cpu_topology topo;
  const std::vector<int> cpus = {-1, -1, -1};
  victim_selector sel;
  sel.build(build_victim_table(topo, cpus, 0), 1u << 30);  // no exploration
  xoshiro256 rng(99);
  std::size_t hits = 0;
  constexpr std::size_t kPicks = 10000;
  for (std::size_t i = 0; i < kPicks; ++i) {
    hits += sel.pick(rng, [](std::size_t v) { return v == 1 ? 900u : 100u; })
            == 1;
  }
  EXPECT_GT(hits, kPicks / 2 + kPicks / 10);
}

// ---------------------------------------------------------------------------
// reproducible seeding (LCWS_SEED)
// ---------------------------------------------------------------------------

TEST(Seeding, DefaultMatchesHistoricalSeeds) {
  // Without LCWS_SEED the streams must be bit-identical to the historical
  // per-worker seeding, so locality-off runs reproduce the legacy RNG.
  for (std::size_t w = 0; w < 8; ++w) {
    EXPECT_EQ(worker_rng_seed(std::nullopt, w), hash64(0x5eed5eedULL + w));
  }
}

TEST(Seeding, UserSeedIsDeterministicAndDecorrelated) {
  const auto a0 = worker_rng_seed(std::uint64_t{42}, 0);
  EXPECT_EQ(a0, worker_rng_seed(std::uint64_t{42}, 0));
  EXPECT_NE(a0, worker_rng_seed(std::uint64_t{42}, 1));
  EXPECT_NE(a0, worker_rng_seed(std::uint64_t{43}, 0));
  EXPECT_NE(a0, worker_rng_seed(std::nullopt, 0));
}

TEST(Seeding, EnvSeedParsesDecimalAndHex) {
  ASSERT_EQ(unsetenv("LCWS_SEED"), 0);
  EXPECT_FALSE(env_seed().has_value());
  ASSERT_EQ(setenv("LCWS_SEED", "12345", 1), 0);
  EXPECT_EQ(env_seed(), std::uint64_t{12345});
  ASSERT_EQ(setenv("LCWS_SEED", "0xdeadbeef", 1), 0);
  EXPECT_EQ(env_seed(), std::uint64_t{0xdeadbeef});
  ASSERT_EQ(setenv("LCWS_SEED", "nonsense", 1), 0);
  EXPECT_FALSE(env_seed().has_value());
  ASSERT_EQ(unsetenv("LCWS_SEED"), 0);
}

// ---------------------------------------------------------------------------
// scheduler integration: counter identities + kill switch
// ---------------------------------------------------------------------------

template <typename Sched>
void spin_tree(Sched& sched, int depth) {
  if (depth == 0) {
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 2000; ++i) sink = sink + 1;
    return;
  }
  sched.pardo([&] { spin_tree(sched, depth - 1); },
              [&] { spin_tree(sched, depth - 1); });
}

TEST(SchedulerLocality, StealCountersSatisfyIdentity) {
  ws_scheduler sched(4, default_deque_capacity, parking_mode::disabled,
                     locality_mode::enabled);
  EXPECT_TRUE(sched.locality_active());
  sched.reset_counters();
  for (int rep = 0; rep < 4; ++rep) {
    sched.run([&] { spin_tree(sched, 8); });
  }
  const auto t = sched.profile().totals;
  // Every successful steal is classified exactly once:
  //   steals == steals_near + steals_remote == sum(steals_by_tier), i.e.
  //   steal_attempts == steals_near + steals_remote + failed attempts.
  EXPECT_EQ(t.steals, t.steals_near + t.steals_remote);
  std::uint64_t by_tier = 0;
  for (std::size_t i = 0; i < stats::kStealTierCount; ++i) {
    by_tier += t.steals_by_tier[i];
  }
  EXPECT_EQ(t.steals, by_tier);
  EXPECT_EQ(t.steal_attempts,
            t.steals_near + t.steals_remote + (t.steal_attempts - t.steals));
  EXPECT_GE(t.steal_attempts, t.steals);
}

TEST(SchedulerLocality, DisabledKeepsLegacyCountersZero) {
  ws_scheduler sched(4, default_deque_capacity, parking_mode::disabled,
                     locality_mode::disabled);
  EXPECT_FALSE(sched.locality_active());
  EXPECT_EQ(sched.pinned_cpu_of(0), -1);
  sched.reset_counters();
  sched.run([&] { spin_tree(sched, 8); });
  const auto t = sched.profile().totals;
  EXPECT_EQ(t.steals_near, 0u);
  EXPECT_EQ(t.steals_remote, 0u);
  EXPECT_EQ(t.locality_explores, 0u);
  for (std::size_t i = 0; i < stats::kStealTierCount; ++i) {
    EXPECT_EQ(t.steals_by_tier[i], 0u);
  }
}

TEST(SchedulerLocality, EnvKillSwitchRespected) {
  ASSERT_EQ(setenv("LCWS_LOCALITY_OFF", "1", 1), 0);
  EXPECT_FALSE(locality_config::from_env().enabled);
  {
    ws_scheduler sched(2, default_deque_capacity, parking_mode::disabled,
                       locality_mode::env_default);
    EXPECT_FALSE(sched.locality_active());
  }
  ASSERT_EQ(unsetenv("LCWS_LOCALITY_OFF"), 0);
  EXPECT_TRUE(locality_config::from_env().enabled);
  {
    ws_scheduler sched(2, default_deque_capacity, parking_mode::disabled,
                       locality_mode::env_default);
    EXPECT_TRUE(sched.locality_active());
  }
}

TEST(SchedulerLocality, SingleWorkerNeverActivates) {
  // Locality machinery is pointless with no victims; P=1 must not pin.
  ws_scheduler sched(1, default_deque_capacity, parking_mode::disabled,
                     locality_mode::enabled);
  EXPECT_FALSE(sched.locality_active());
  const int got = sched.run([&] { return 17; });
  EXPECT_EQ(got, 17);
}

}  // namespace
}  // namespace lcws
