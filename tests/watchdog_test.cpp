// Stall-watchdog semantics: fires on a frozen progress token, stays quiet
// while progress happens or while disarmed, and integrates with the
// scheduler via LCWS_WATCHDOG_MS without false positives on healthy runs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>

#include "sched/scheduler.h"
#include "support/watchdog.h"

namespace lcws {
namespace {

using namespace std::chrono_literals;

// Polls until `pred` holds or `limit` elapses.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds limit) {
  const auto give_up = std::chrono::steady_clock::now() + limit;
  while (std::chrono::steady_clock::now() < give_up) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

TEST(Watchdog, FiresOnFrozenProgress) {
  std::atomic<int> stalls{0};
  std::string captured;
  std::mutex m;
  watchdog dog(
      20ms, [] { return std::uint64_t{42}; },  // never advances
      [] { return std::string("frozen state dump"); },
      [&](const std::string& report) {
        std::lock_guard<std::mutex> lock(m);
        captured = report;
        stalls.fetch_add(1);
      });
  dog.arm();
  EXPECT_TRUE(eventually([&] { return stalls.load() >= 1; }, 2000ms));
  dog.disarm();
  std::lock_guard<std::mutex> lock(m);
  EXPECT_EQ(captured, "frozen state dump");
  EXPECT_GE(dog.stalls_reported(), 1u);
}

TEST(Watchdog, QuietWhileProgressAdvances) {
  std::atomic<std::uint64_t> token{0};
  std::atomic<int> stalls{0};
  watchdog dog(
      25ms, [&] { return token.fetch_add(1); },  // advances on every sample
      [] { return std::string("unused"); },
      [&](const std::string&) { stalls.fetch_add(1); });
  dog.arm();
  std::this_thread::sleep_for(300ms);
  dog.disarm();
  EXPECT_EQ(stalls.load(), 0);
}

TEST(Watchdog, QuietWhileDisarmed) {
  std::atomic<int> stalls{0};
  watchdog dog(
      20ms, [] { return std::uint64_t{7}; },  // frozen, but never armed
      [] { return std::string("unused"); },
      [&](const std::string&) { stalls.fetch_add(1); });
  std::this_thread::sleep_for(200ms);
  EXPECT_EQ(stalls.load(), 0);
}

TEST(Watchdog, DisarmStopsAnInFlightWindow) {
  std::atomic<int> stalls{0};
  watchdog dog(
      60ms, [] { return std::uint64_t{7}; },
      [] { return std::string("unused"); },
      [&](const std::string&) { stalls.fetch_add(1); });
  dog.arm();
  std::this_thread::sleep_for(20ms);  // inside the first window
  dog.disarm();
  std::this_thread::sleep_for(250ms);
  EXPECT_EQ(stalls.load(), 0);
}

TEST(Watchdog, EnvDeadlineParsing) {
  ASSERT_EQ(setenv("LCWS_WATCHDOG_MS", "250", 1), 0);
  auto d = watchdog::env_deadline();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 250ms);
  ASSERT_EQ(setenv("LCWS_WATCHDOG_MS", "0", 1), 0);
  EXPECT_FALSE(watchdog::env_deadline().has_value());
  ASSERT_EQ(setenv("LCWS_WATCHDOG_MS", "garbage", 1), 0);
  EXPECT_FALSE(watchdog::env_deadline().has_value());
  ASSERT_EQ(unsetenv("LCWS_WATCHDOG_MS"), 0);
  EXPECT_FALSE(watchdog::env_deadline().has_value());
}

// ---------------------------------------------------------------------------
// Scheduler integration
// ---------------------------------------------------------------------------

template <typename Sched>
std::uint64_t fib(Sched& sched, unsigned n) {
  if (n < 2) return n;
  if (n < 12) {
    std::uint64_t a = 0, b = 1;
    for (unsigned i = 1; i < n; ++i) {
      const std::uint64_t c = a + b;
      a = b;
      b = c;
    }
    return b;
  }
  std::uint64_t left = 0, right = 0;
  sched.pardo([&] { left = fib(sched, n - 1); },
              [&] { right = fib(sched, n - 2); });
  return left + right;
}

TEST(SchedulerWatchdog, DisabledByDefault) {
  ASSERT_EQ(unsetenv("LCWS_WATCHDOG_MS"), 0);
  ws_scheduler sched(2);
  EXPECT_FALSE(sched.watchdog_active());
}

// A healthy run under an armed watchdog must not trip it: the default
// stall handler aborts the process, so a false positive fails this test
// loudly.
TEST(SchedulerWatchdog, HealthyRunDoesNotTrip) {
  ASSERT_EQ(setenv("LCWS_WATCHDOG_MS", "2000", 1), 0);
  {
    ws_scheduler sched(4);
    EXPECT_TRUE(sched.watchdog_active());
    EXPECT_EQ(sched.run([&] { return fib(sched, 24); }), 46368u);
    // Idle (disarmed) time must not accumulate toward a stall either.
    std::this_thread::sleep_for(100ms);
    EXPECT_EQ(sched.run([&] { return fib(sched, 22); }), 17711u);
  }
  ASSERT_EQ(unsetenv("LCWS_WATCHDOG_MS"), 0);
}

TEST(SchedulerWatchdog, ProgressTokenAdvancesAcrossRuns) {
  uslcws_scheduler sched(2);
  const auto before = sched.progress_token();
  sched.run([&] { return fib(sched, 18); });
  EXPECT_GT(sched.progress_token(), before);
}

TEST(SchedulerWatchdog, DumpListsEveryWorker) {
  signal_scheduler sched(3);
  sched.run([&] { return fib(sched, 18); });
  const std::string dump = sched.dump_worker_state();
  EXPECT_NE(dump.find("scheduler=signal"), std::string::npos);
  EXPECT_NE(dump.find("w0:"), std::string::npos);
  EXPECT_NE(dump.find("w1:"), std::string::npos);
  EXPECT_NE(dump.find("w2:"), std::string::npos);
  EXPECT_NE(dump.find("top="), std::string::npos);
  EXPECT_NE(dump.find("targeted="), std::string::npos);
}

TEST(SchedulerWatchdog, MailboxDumpAvoidsRacyStackState) {
  private_deques_scheduler sched(2);
  const std::string dump = sched.dump_worker_state();
  EXPECT_NE(dump.find("mailbox pending_request="), std::string::npos);
}

}  // namespace
}  // namespace lcws
