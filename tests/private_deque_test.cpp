// Protocol-level tests for the private (mailbox) deque of Acar et al.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "deque/private_deque.h"
#include "support/rng.h"

namespace lcws {
namespace {

TEST(PrivateDeque, OwnerLifoSemantics) {
  int a = 0, b = 1, c = 2;
  private_deque<int> d;
  EXPECT_EQ(d.pop_bottom(), nullptr);
  d.push_bottom(&a);
  d.push_bottom(&b);
  d.push_bottom(&c);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.pop_bottom(), &c);
  EXPECT_EQ(d.pop_bottom(), &b);
  EXPECT_EQ(d.pop_bottom(), &a);
  EXPECT_EQ(d.pop_bottom(), nullptr);
}

TEST(PrivateDeque, RequestAnsweredWithOldestTask) {
  int a = 0, b = 1;
  private_deque<int> d;
  d.push_bottom(&a);
  d.push_bottom(&b);
  steal_box<int> box;
  ASSERT_TRUE(d.post_request(&box));
  EXPECT_TRUE(d.has_pending_request());
  d.poll();  // victim serves at its next scheduling point
  EXPECT_EQ(box.answer.load(), &a);  // oldest task, like a top-side steal
  EXPECT_FALSE(d.has_pending_request());
  EXPECT_EQ(d.pop_bottom(), &b);
}

TEST(PrivateDeque, EmptyVictimAnswersNull) {
  private_deque<int> d;
  steal_box<int> box;
  ASSERT_TRUE(d.post_request(&box));
  d.poll();
  EXPECT_EQ(box.answer.load(), nullptr);
}

TEST(PrivateDeque, SecondRequestRejectedWhilePending) {
  private_deque<int> d;
  steal_box<int> box1, box2;
  ASSERT_TRUE(d.post_request(&box1));
  EXPECT_FALSE(d.post_request(&box2));
  d.poll();
  EXPECT_TRUE(d.post_request(&box2));  // slot free again
  d.poll();
}

TEST(PrivateDeque, RetractionKeepsTaskWithOwner) {
  int a = 0;
  private_deque<int> d;
  d.push_bottom(&a);
  steal_box<int> box;
  ASSERT_TRUE(d.post_request(&box));
  ASSERT_TRUE(d.retract_request(&box));
  d.poll();  // no pending request anymore
  EXPECT_EQ(box.answer.load(), steal_box<int>::pending());
  EXPECT_EQ(d.pop_bottom(), &a);
}

TEST(PrivateDeque, RetractionFailsAfterAnswer) {
  int a = 0;
  private_deque<int> d;
  d.push_bottom(&a);
  steal_box<int> box;
  ASSERT_TRUE(d.post_request(&box));
  d.poll();
  EXPECT_FALSE(d.retract_request(&box));
  EXPECT_EQ(box.answer.load(), &a);
}

TEST(PrivateDeque, PushAndPopServePendingRequests) {
  int a = 0, b = 1;
  private_deque<int> d;
  d.push_bottom(&a);
  steal_box<int> box;
  ASSERT_TRUE(d.post_request(&box));
  d.push_bottom(&b);  // push polls
  EXPECT_EQ(box.answer.load(), &a);
  EXPECT_EQ(d.pop_bottom(), &b);
}

// Concurrent stress: every task consumed exactly once by the owner or by
// one of the requesting thieves.
TEST(PrivateDequeStress, ExactlyOnceUnderConcurrentRequests) {
  constexpr int kTotal = 3000;
  constexpr int kThieves = 3;
  std::vector<int> arena(kTotal);
  for (int i = 0; i < kTotal; ++i) arena[static_cast<std::size_t>(i)] = i;
  std::vector<std::atomic<int>> taken(kTotal);
  for (auto& t : taken) t.store(0);
  private_deque<int> d;
  std::atomic<bool> done{false};
  std::atomic<int> consumed{0};

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      steal_box<int> box;
      while (!done.load(std::memory_order_acquire)) {
        box.answer.store(steal_box<int>::pending(),
                         std::memory_order_relaxed);
        if (!d.post_request(&box)) {
          std::this_thread::yield();
          continue;
        }
        int spins = 0;
        bool retracted = false;
        while (true) {
          int* answer = box.answer.load(std::memory_order_acquire);
          if (answer != steal_box<int>::pending()) {
            if (answer != nullptr) {
              taken[static_cast<std::size_t>(*answer)].fetch_add(1);
              consumed.fetch_add(1);
            }
            break;
          }
          if (!retracted && ++spins > 200) {
            if (d.retract_request(&box)) break;
            retracted = true;
          }
          std::this_thread::yield();
        }
      }
    });
  }

  xoshiro256 rng(3);
  int pushed = 0;
  while (consumed.load(std::memory_order_relaxed) < kTotal) {
    if (pushed < kTotal && rng.bounded(3) != 0) {
      d.push_bottom(&arena[static_cast<std::size_t>(pushed)]);
      ++pushed;
    } else if (int* t = d.pop_bottom()) {
      taken[static_cast<std::size_t>(*t)].fetch_add(1);
      consumed.fetch_add(1);
    } else if (pushed == kTotal) {
      d.poll();
      std::this_thread::yield();
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();
  for (int i = 0; i < kTotal; ++i) {
    EXPECT_EQ(taken[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  }
}

}  // namespace
}  // namespace lcws
