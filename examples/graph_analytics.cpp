// Graph-analytics workload (the PBBS intro's graph processing): build an
// R-MAT power-law graph, then run BFS, maximal matching, maximal
// independent set and spanning forest on it, under a scheduler chosen on
// the command line.
//
//   ./graph_analytics [edges] [workers] [scheduler]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "pbbs/benchmarks/bfs.h"
#include "pbbs/benchmarks/maximal_matching.h"
#include "pbbs/benchmarks/min_spanning_forest.h"
#include "pbbs/benchmarks/mis.h"
#include "pbbs/benchmarks/spanning_forest.h"
#include "sched/dispatch.h"
#include "support/timing.h"

using namespace lcws;
using namespace lcws::pbbs;

namespace {

template <typename Sched>
void analytics(Sched& sched, std::size_t edges) {
  std::printf("scheduler: %s, workers: %zu\n", Sched::name(),
              sched.num_workers());

  const auto bfs_in = bfs_bench::make("rMatGraph", edges);
  std::printf("graph: %zu vertices, %zu arcs\n", bfs_in.g->num_vertices(),
              bfs_in.g->num_arcs());

  stopwatch sw;
  const auto bfs_out = bfs_bench::run(sched, bfs_in);
  std::size_t reached = 0;
  std::uint32_t max_depth = 0;
  for (const auto d : bfs_out.distance) {
    if (d != bfs_bench::unreached) {
      ++reached;
      max_depth = std::max(max_depth, d);
    }
  }
  std::printf("BFS:            %.3f s  (%zu reached, depth %u, valid=%d)\n",
              sw.elapsed_seconds(), reached, max_depth,
              static_cast<int>(bfs_bench::check(bfs_in, bfs_out)));

  auto mm_in = maximal_matching_bench::make("rMatGraph", edges);
  sw.reset();
  const auto mm_out = maximal_matching_bench::run(sched, mm_in);
  std::printf("matching:       %.3f s  (%zu edges, valid=%d)\n",
              sw.elapsed_seconds(), mm_out.matched_edges.size(),
              static_cast<int>(maximal_matching_bench::check(mm_in, mm_out)));

  auto mis_in = mis_bench::make("rMatGraph", edges);
  sw.reset();
  const auto mis_out = mis_bench::run(sched, mis_in);
  std::size_t members = 0;
  for (const auto b : mis_out.in_set) members += b;
  std::printf("MIS:            %.3f s  (%zu members, valid=%d)\n",
              sw.elapsed_seconds(), members,
              static_cast<int>(mis_bench::check(mis_in, mis_out)));

  auto sf_in = spanning_forest_bench::make("rMatGraph", edges);
  sw.reset();
  const auto sf_out = spanning_forest_bench::run(sched, sf_in);
  std::printf("spanningForest: %.3f s  (%zu edges, valid=%d)\n",
              sw.elapsed_seconds(), sf_out.forest_edges.size(),
              static_cast<int>(spanning_forest_bench::check(sf_in, sf_out)));

  auto msf_in = min_spanning_forest_bench::make("rMatGraph", edges);
  sw.reset();
  const auto msf_out = min_spanning_forest_bench::run(sched, msf_in);
  std::printf("minSpanForest:  %.3f s  (%zu edges, valid=%d)\n",
              sw.elapsed_seconds(), msf_out.forest_edges.size(),
              static_cast<int>(
                  min_spanning_forest_bench::check(msf_in, msf_out)));

  const auto totals = sched.profile().totals;
  std::printf("sync profile: fences=%llu cas=%llu steals=%llu signals=%llu\n",
              static_cast<unsigned long long>(totals.fences),
              static_cast<unsigned long long>(totals.cas),
              static_cast<unsigned long long>(totals.steals),
              static_cast<unsigned long long>(totals.signals_sent));
}

sched_kind parse_kind(const char* name) {
  for (const sched_kind kind : all_sched_kinds) {
    if (std::strcmp(name, to_string(kind)) == 0) return kind;
  }
  return sched_kind::signal;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t edges =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 400000;
  const std::size_t workers =
      argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 4;
  const sched_kind kind = argc > 3 ? parse_kind(argv[3]) : sched_kind::signal;
  with_scheduler(kind, workers,
                 [edges](auto& sched) { analytics(sched, edges); });
  return 0;
}
