// Text-processing pipeline (the PBBS intro's text workloads): generate a
// trigram corpus, count words concurrently, build an inverted index over
// documents, and report the most frequent words — comparing the
// synchronization profile of WS vs signal-based LCWS on the same pipeline.
//
//   ./wordcount_pipeline [n_words] [workers]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "pbbs/benchmarks/inverted_index.h"
#include "pbbs/benchmarks/word_counts.h"
#include "sched/scheduler.h"
#include "support/timing.h"

using namespace lcws;
using namespace lcws::pbbs;

namespace {

template <typename Sched>
void pipeline(std::size_t n_words, std::size_t workers) {
  Sched sched(workers);
  std::printf("--- %s (%zu workers) ---\n", Sched::name(), workers);

  // Word counts.
  const auto wc_input = word_counts_bench::make("trigramSeq", n_words);
  stopwatch sw;
  auto wc = word_counts_bench::run(sched, wc_input);
  const double wc_time = sw.elapsed_seconds();
  if (!word_counts_bench::check(wc_input, wc)) {
    std::fprintf(stderr, "wordCounts validation FAILED\n");
    std::exit(1);
  }
  std::sort(wc.counts.begin(), wc.counts.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::printf("wordCounts: %zu distinct words in %.3f s; top:",
              wc.counts.size(), wc_time);
  for (std::size_t i = 0; i < std::min<std::size_t>(5, wc.counts.size());
       ++i) {
    std::printf(" %.*s(%llu)", static_cast<int>(wc.counts[i].first.size()),
                wc.counts[i].first.data(),
                static_cast<unsigned long long>(wc.counts[i].second));
  }
  std::printf("\n");

  // Inverted index over documents.
  const auto ii_input = inverted_index_bench::make("wikipedia", n_words);
  sw.reset();
  const auto index = inverted_index_bench::run(sched, ii_input);
  const double ii_time = sw.elapsed_seconds();
  if (!inverted_index_bench::check(ii_input, index)) {
    std::fprintf(stderr, "invertedIndex validation FAILED\n");
    std::exit(1);
  }
  std::size_t postings = 0;
  for (const auto& p : index.index) postings += p.doc_ids.size();
  std::printf("invertedIndex: %zu words, %zu postings over %zu docs in %.3f "
              "s\n",
              index.index.size(), postings, ii_input.docs->docs.size(),
              ii_time);

  const auto totals = sched.profile().totals;
  std::printf("sync profile: fences=%llu cas=%llu steals=%llu "
              "exposures=%llu signals=%llu\n\n",
              static_cast<unsigned long long>(totals.fences),
              static_cast<unsigned long long>(totals.cas),
              static_cast<unsigned long long>(totals.steals),
              static_cast<unsigned long long>(totals.exposures),
              static_cast<unsigned long long>(totals.signals_sent));
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n_words =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 200000;
  const std::size_t workers =
      argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 4;
  pipeline<ws_scheduler>(n_words, workers);
  pipeline<signal_scheduler>(n_words, workers);
  return 0;
}
