// Quickstart: construct a scheduler, fork-join with pardo, and use the
// parallel toolkit — then peek at the synchronization profile that makes
// LCWS interesting.
//
//   ./quickstart [workers] [scheduler]
//
// scheduler is one of: ws, uslcws, signal, conservative, expose_half
// (default: signal — the paper's headline variant).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <vector>

#include "parallel/parallel_for.h"
#include "parallel/reduce.h"
#include "parallel/sort.h"
#include "sched/dispatch.h"
#include "support/timing.h"

using namespace lcws;

namespace {

sched_kind parse_kind(const char* name) {
  for (const sched_kind kind : all_sched_kinds) {
    if (std::strcmp(name, to_string(kind)) == 0) return kind;
  }
  std::fprintf(stderr, "unknown scheduler '%s', using 'signal'\n", name);
  return sched_kind::signal;
}

template <typename Sched>
void demo(Sched& sched) {
  std::printf("scheduler: %s, workers: %zu\n", Sched::name(),
              sched.num_workers());

  // 1. Raw fork-join: compute two things at once.
  long sum_a = 0, sum_b = 0;
  sched.pardo(
      [&] {
        for (int i = 0; i < 1000; ++i) sum_a += i;
      },
      [&] {
        for (int i = 1000; i < 2000; ++i) sum_b += i;
      });
  std::printf("pardo sums: %ld + %ld = %ld\n", sum_a, sum_b, sum_a + sum_b);

  // 2. Parallel loops and reductions over a vector.
  std::vector<std::uint64_t> v(2'000'000);
  sched.run([&] {
    par::parallel_for(sched, 0, v.size(),
                      [&](std::size_t i) { v[i] = i * i % 1000; });
  });
  const auto total = sched.run(
      [&] { return par::sum<std::uint64_t>(sched, v.begin(), v.size()); });
  std::printf("parallel sum: %llu\n",
              static_cast<unsigned long long>(total));

  // 3. Parallel sort, timed.
  stopwatch sw;
  sched.run([&] { par::sort(sched, v); });
  std::printf("sorted %zu elements in %.3f s (is_sorted=%d)\n", v.size(),
              sw.elapsed_seconds(),
              static_cast<int>(std::is_sorted(v.begin(), v.end())));

  // 4. The point of the paper: how much synchronization did all that cost?
  const auto totals = sched.profile().totals;
  std::printf(
      "profile: %llu tasks, %llu fences, %llu CAS, %llu steals, %llu "
      "exposures, %llu signals\n",
      static_cast<unsigned long long>(totals.tasks_executed),
      static_cast<unsigned long long>(totals.fences),
      static_cast<unsigned long long>(totals.cas),
      static_cast<unsigned long long>(totals.steals),
      static_cast<unsigned long long>(totals.exposures),
      static_cast<unsigned long long>(totals.signals_sent));
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t workers =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 4;
  const sched_kind kind =
      argc > 2 ? parse_kind(argv[2]) : sched_kind::signal;
  with_scheduler(kind, workers, [](auto& sched) { demo(sched); });
  return 0;
}
