// Computational-geometry workload (the PBBS intro's geometry domain):
// convex hull and all-nearest-neighbours over three point distributions,
// contrasting every scheduler variant's wall-clock on the same inputs —
// a miniature version of the paper's Section 5 sweep.
//
//   ./geometry_suite [points] [workers]
#include <cstdio>
#include <cstdlib>

#include "pbbs/benchmarks/convex_hull.h"
#include "pbbs/benchmarks/nearest_neighbors.h"
#include "sched/dispatch.h"
#include "support/timing.h"

using namespace lcws;
using namespace lcws::pbbs;

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 200000;
  const std::size_t workers =
      argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 4;

  const auto hull_in = convex_hull_bench::make("2DinSphere", n);
  const auto knn_in = nearest_neighbors_bench::make("2DinCube", n / 2);

  std::printf("%-14s %-14s %-14s\n", "scheduler", "hull (s)", "knn (s)");
  for (const sched_kind kind : all_sched_kinds) {
    with_scheduler(kind, workers, [&](auto& sched) {
      stopwatch sw;
      const auto hull = convex_hull_bench::run(sched, hull_in);
      const double hull_time = sw.elapsed_seconds();
      if (!convex_hull_bench::check(hull_in, hull)) {
        std::fprintf(stderr, "hull validation FAILED under %s\n",
                     to_string(kind));
        std::exit(1);
      }
      sw.reset();
      const auto knn = nearest_neighbors_bench::run(sched, knn_in);
      const double knn_time = sw.elapsed_seconds();
      if (!nearest_neighbors_bench::check(knn_in, knn)) {
        std::fprintf(stderr, "knn validation FAILED under %s\n",
                     to_string(kind));
        std::exit(1);
      }
      std::printf("%-14s %-14.3f %-14.3f  (hull size %zu)\n",
                  to_string(kind), hull_time, knn_time, hull.hull.size());
    });
  }
  return 0;
}
