#!/usr/bin/env bash
# Tier-1 gate: build and run the full test suite under both presets
# (release and ThreadSanitizer). Usage: scripts/check.sh [ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"

for preset in default tsan; do
  echo "== preset: ${preset} =="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}" -j "${jobs}" "$@"
done
