#!/usr/bin/env bash
# Tier-1 gate: build and run the full test suite under both presets
# (release and ThreadSanitizer), then an AddressSanitizer+UBSan pass over
# the hardening suites (exception propagation, fault injection + graceful
# degradation, watchdog, shutdown/quiescence, health monitor, deque
# overflow) where memory errors would hide behind rare interleavings.
#
# Slow stress sweeps carry the `stress` ctest label; pass LCWS_QUICK=1 to
# exclude them (`ctest -LE stress`) for a fast local iteration loop, and
# LCWS_FI_SEEDS=<n> to deepen the fault-injection sweep for soak runs.
# Usage: scripts/check.sh [--soak] [ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"

# --soak: the CI nightly job, runnable locally — ONLY the stress-labeled
# sweeps (fault injection, worker-loss crashes), under ThreadSanitizer,
# at 4x the acceptance seed depth (override with LCWS_FI_SEEDS).
if [[ "${1:-}" == "--soak" ]]; then
  shift
  export LCWS_FI_SEEDS="${LCWS_FI_SEEDS:-256}"
  echo "== soak: stress suites under tsan, LCWS_FI_SEEDS=${LCWS_FI_SEEDS} =="
  cmake --preset tsan
  cmake --build --preset tsan -j "${jobs}"
  exec ctest --preset tsan -j "${jobs}" -L stress --output-on-failure "$@"
fi

label_filter=()
if [[ "${LCWS_QUICK:-0}" != "0" ]]; then
  label_filter=(-LE stress)
fi

for preset in default tsan; do
  echo "== preset: ${preset} =="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}" -j "${jobs}" "${label_filter[@]}" "$@"
done

# Perf gate: release microbenches (micro_idle, locality, micro_deque,
# degraded_mode) against the committed BENCH_*.json baselines. Structural
# invariants are strict (including the growable deques' zero-added-fence/
# CAS proof and the wsmult deque's 0-fence/0-CAS take+steal); timing
# gates carry a generous noise margin and skip on tiny hosts.
echo "== perf gate (release benches vs committed baselines) =="
missing_baselines=()
for b in BENCH_idle.json BENCH_locality.json BENCH_deque.json \
         BENCH_degraded.json BENCH_fig3.json BENCH_fig8.json; do
  [[ -f "$b" ]] || missing_baselines+=("$b")
done
if (( ${#missing_baselines[@]} )); then
  echo "error: committed perf baselines missing: ${missing_baselines[*]}" >&2
  echo "  Regenerate with LCWS_BENCH_JSON=<file> build/bench/<bench> and" >&2
  echo "  commit the result; perf_gate.py diffs current runs against them." >&2
  exit 1
fi
python3 scripts/perf_gate.py --build-dir build

# Tracing smoke: run a real bench with LCWS_TRACE set and semantically
# validate the emitted Chrome trace (ordering, B/E balance, steal pairing)
# with trace_summary.py --check — the end-to-end path a Perfetto user
# takes, not just the unit-level trace_test coverage.
echo "== tracing smoke (LCWS_TRACE end-to-end) =="
rm -f build/trace_smoke.json
LCWS_TRACE=build/trace_smoke.json LCWS_TRACE_RING=65536 \
  build/bench/micro_idle > /dev/null
python3 scripts/trace_summary.py build/trace_smoke.json --check

echo "== preset: asan (hardening suites) =="
cmake --preset asan
cmake --build --preset asan -j "${jobs}"
ctest --preset asan -j "${jobs}" \
  -R '([Ee]xception|[Ff]ault|[Ww]atchdog|[Dd]eque|[Ss]hutdown|[Hh]ealth|[Dd]egrad|DumpOnExit|StealThrottle|Backoff|[Tt]race|PerfCounters|WorkerLoss)' \
  "${label_filter[@]}" "$@"
