#!/usr/bin/env python3
"""Performance gate: run the committed microbenches and compare against the
checked-in baselines (BENCH_idle.json, BENCH_locality.json,
BENCH_deque.json, BENCH_degraded.json, BENCH_fig3.json, BENCH_fig8.json).

Two kinds of checks, in decreasing order of trust:

  structural   invariants that hold on any host and any load: parking off
               => zero parks/wakes; locality off => zero near/remote steal
               counts; locality on => steals == steals_near + steals_remote
               (every successful steal classified exactly once). A
               violation is a logic regression, never noise.

  ratio        timing comparisons with a generous noise margin. Within one
               run: locality-on must not be grossly slower than
               locality-off for the same kernel/scheduler. Against the
               committed baseline: no cell may be more than --ratio times
               slower than the recorded number (baselines come from a
               different machine, so this only catches order-of-magnitude
               regressions — the margin is deliberately loose). A cell
               that blows the ratio gets one retry: the bench binary is
               re-run once (never just the comparison) and only a
               violation that reproduces fails the gate.

The near-steal-fraction check is skipped on hosts with fewer than two
usable CPUs (a 1-CPU container has a single flat tier: "near" and "remote"
merge and the fraction carries no signal).

Usage: scripts/perf_gate.py [--build-dir build] [--baseline-dir .]
                            [--ratio 5.0] [--skip PATTERN]
Exit status: 0 when every gate passes, 1 otherwise.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

FAILURES = []


def fail(msg):
    FAILURES.append(msg)
    print(f"FAIL: {msg}")


def note(msg):
    print(f"  ok: {msg}")


def skip(msg):
    print(f"skip: {msg}")


def load_json_lines(path):
    rows = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if line:
                    rows.append(json.loads(line))
    except FileNotFoundError:
        return []
    return rows


def run_bench(exe, env_extra):
    """Runs one bench binary with LCWS_BENCH_JSON into a temp file and
    returns the parsed rows."""
    if not os.path.exists(exe):
        fail(f"bench binary missing: {exe} (build the 'all' target first)")
        return []
    with tempfile.NamedTemporaryFile(
        mode="r", suffix=".json", prefix="lcws_gate_", delete=False
    ) as tmp:
        json_path = tmp.name
    env = dict(os.environ)
    env["LCWS_BENCH_JSON"] = json_path
    env.setdefault("LCWS_BENCH_ROUNDS", "3")
    env.update(env_extra)
    print(f"running {os.path.basename(exe)} ...")
    try:
        subprocess.run(
            [exe], env=env, check=True, stdout=subprocess.DEVNULL, timeout=1200
        )
    except (subprocess.CalledProcessError, subprocess.TimeoutExpired) as e:
        fail(f"{exe}: {e}")
        return []
    rows = load_json_lines(json_path)
    os.unlink(json_path)
    if not rows:
        fail(f"{exe}: produced no LCWS_BENCH_JSON rows")
    return rows


def key_idle(row):
    return (row.get("scheduler"), row.get("parking"))


def key_deque(row):
    return (row.get("scenario"), row.get("deque"), row.get("mode"))


def key_locality(row):
    return (row.get("benchmark"), row.get("scheduler"), row.get("locality"))


def key_degraded(row):
    # Older rows predate the scenario field: they are the signal-failure
    # sweep. Newer rows add scenario="worker_loss" (§11) under the same
    # baseline file.
    return (row.get("scenario", "signal_fail"), row.get("scheduler"),
            row.get("fail_permille"), row.get("corun"))


def key_fig(row):
    return (row.get("benchmark"), row.get("instance"), row.get("procs"),
            row.get("scheduler"))


# The fig3/fig8 harnesses sweep the full PBBS matrix by default — far too
# much for a gate. This pinned environment keeps the matrix small and
# DETERMINISTIC (same configs, procs and rounds every run), so the
# committed BENCH_fig3/BENCH_fig8 baselines key-match exactly.
FIG_GATE_ENV = {
    "LCWS_BENCH_MAXCFG": "4",
    "LCWS_BENCH_PROCS": "2,4",
    "LCWS_BENCH_ROUNDS": "1",
    "LCWS_BENCH_SCALE": "0.01",
}


def index(rows, keyfn):
    return {keyfn(r): r for r in rows}


def usable_cpus():
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


# ---- gates -----------------------------------------------------------------


def gate_idle_structural(rows):
    for r in rows:
        who = f"micro_idle {r['scheduler']} parking={r['parking']}"
        if r["parking"] == "off":
            if r.get("parks", 0) != 0 or r.get("wakes", 0) != 0:
                fail(f"{who}: parking disabled but parks/wakes nonzero")
        elif r.get("parks", 0) == 0:
            # Every scheduler parks during the 200ms idle phase.
            fail(f"{who}: parking enabled but no parks recorded")
    note(f"micro_idle structural invariants over {len(rows)} cells")


def gate_locality_structural(rows):
    for r in rows:
        who = f"{r['benchmark']} {r['scheduler']} locality={r['locality']}"
        near = r.get("steals_near", 0)
        remote = r.get("steals_remote", 0)
        steals = r.get("steals", 0)
        if r["locality"] == "off":
            if near != 0 or remote != 0:
                fail(f"{who}: locality off but near/remote steals nonzero")
        elif near + remote != steals:
            fail(
                f"{who}: steal classification leak: "
                f"steals={steals} != near={near} + remote={remote}"
            )
    note(f"locality structural invariants over {len(rows)} cells")


def gate_locality_slowdown(rows, margin):
    """Locality-on must not be grossly slower than locality-off measured in
    the same process on the same host. Skipped on 1-CPU hosts, where eight
    workers time-share one core and wall time is scheduler luck."""
    if usable_cpus() < 2:
        skip("locality slowdown gate: <2 usable CPUs, timing is luck")
        return
    by_key = index(rows, key_locality)
    checked = 0
    for (bench, sched, loc), row in by_key.items():
        if loc != "on":
            continue
        base = by_key.get((bench, sched, "off"))
        if base is None or base["seconds"] <= 0:
            continue
        checked += 1
        limit = base["seconds"] * (1.0 + margin) + 0.002
        if row["seconds"] > limit:
            fail(
                f"{bench} {sched}: locality on is {row['seconds']:.4f}s vs "
                f"off {base['seconds']:.4f}s (limit {limit:.4f}s)"
            )
    note(f"locality on-vs-off slowdown over {checked} pairs")


def gate_near_fraction(rows):
    """On a host with real topology, locality-on steals should land near
    more often than never. Aggregated across cells so sparse steal counts
    don't flake; skipped entirely on flat/1-CPU hosts."""
    if usable_cpus() < 2:
        skip("near-fraction gate: <2 usable CPUs, topology is flat")
        return
    total = sum(r.get("steals", 0) for r in rows if r["locality"] == "on")
    near = sum(r.get("steals_near", 0) for r in rows if r["locality"] == "on")
    if total < 50:
        skip(f"near-fraction gate: only {total} steals observed (<50)")
        return
    frac = near / total
    if frac <= 0.0:
        fail(f"near fraction {frac:.3f} over {total} steals: locality-aware "
             f"selection never landed a near steal")
    else:
        note(f"near fraction {frac:.3f} over {total} steals")


def gate_deque_structural(rows):
    """micro_deque's structural mode runs each scenario twice — storage
    preallocated vs growing 64 -> 65536 slots in-loop. The counter deltas
    are deterministic on any host, so these are exact-equality gates:

      * growth adds ZERO fences and ZERO CAS to the owner/thief fast path
        (grow-mode counts must be bit-identical to prealloc's);
      * the split deque's private fill+drain performs no synchronization
        at all — exactly 0 fences and 0 CAS — in both modes (the paper's
        headline property survives growability);
      * the wsmult deque is fully fence/CAS-free on BOTH scenarios: owner
        fill+drain AND thief steal must each report exactly 0 fences and
        0 CAS in both modes (the fig3-style proof that multiplicity
        removed every fence and CAS from take and steal);
      * 65536 ops from 64 slots is exactly 10 doublings: grow-mode rows
        report grows == 10, prealloc rows report grows == 0.
    """
    by_key = index(rows, key_deque)
    pairs = 0
    for (scenario, deque, mode), row in by_key.items():
        who = f"micro_deque {scenario}/{deque}/{mode}"
        if mode == "prealloc":
            if row.get("grows", 0) != 0:
                fail(f"{who}: preallocated storage grew "
                     f"({row.get('grows')} times)")
            continue
        if mode != "grow":
            continue
        if row.get("grows") != 10:
            fail(f"{who}: expected exactly 10 doublings (64 -> 65536), "
                 f"got {row.get('grows')}")
        base = by_key.get((scenario, deque, "prealloc"))
        if base is None:
            fail(f"{who}: missing prealloc twin row")
            continue
        pairs += 1
        for field in ("fences", "cas"):
            if row.get(field) != base.get(field):
                fail(f"{who}: growth changed the fast-path {field} count: "
                     f"{row.get(field)} vs prealloc {base.get(field)}")
    sync_free = [
        ("fill_drain", "split", "private work"),
        ("fill_drain", "wsmult", "owner put/take"),
        ("steal", "wsmult", "thief steal"),
    ]
    for scenario, deque, what in sync_free:
        for mode in ("prealloc", "grow"):
            row = by_key.get((scenario, deque, mode))
            if row is None:
                fail(f"micro_deque: {deque} {scenario}/{mode} row missing")
            elif row.get("fences", -1) != 0 or row.get("cas", -1) != 0:
                fail(f"micro_deque {scenario}/{deque}/{mode}: {what} must "
                     f"be synchronization-free, saw "
                     f"fences={row.get('fences')} cas={row.get('cas')}")
    note(f"micro_deque structural invariants over {pairs} mode pairs")


def gate_fig_fences(rows, light, label, floor=40):
    """The paper's headline property as a structural gate: on the same
    benchmark configuration, the synchronization-light scheduler must
    execute strictly fewer memory fences than classic WS (fig3: uslcws,
    fig8: signal). Cells where WS itself barely fenced (< floor) carry no
    signal and are skipped. The floor sits well under the ws counts the
    pinned FIG_GATE_ENV matrix produces (46+ even at gate scale) and well
    over the residual fences the light schedulers keep (0-2)."""
    by_key = index(rows, key_fig)
    checked = 0
    for (bench, inst, procs, sched), row in by_key.items():
        if sched != light:
            continue
        base = by_key.get((bench, inst, procs, "ws"))
        if base is None:
            fail(f"{label} {bench}/{inst} P={procs}: WS twin row missing")
            continue
        if base.get("fences", 0) < floor:
            continue
        checked += 1
        if row.get("fences", 0) >= base["fences"]:
            fail(
                f"{label} {bench}/{inst} P={procs}: {light} fences "
                f"{row.get('fences')} not below ws {base['fences']}"
            )
    if checked:
        note(f"{label}: {light} < ws fences over {checked} configs")
    else:
        skip(f"{label}: no config reached the {floor}-fence floor")


def gate_hw_marker(rows, label):
    """perf_counters contract: every cell carries an availability marker,
    and the numbers agree with it — real cycle counts where the kernel
    permitted the PMU, hard zeros behind an 'unavailable:' marker where it
    didn't (never zeros masquerading as measurements, never measurements
    behind an unavailable marker)."""
    checked = 0
    for r in rows:
        who = (f"{label} {r.get('benchmark')}/{r.get('instance')} "
               f"P={r.get('procs')} {r.get('scheduler')}")
        hw = r.get("hw")
        if not hw:
            fail(f"{who}: hw availability marker missing")
            continue
        known = ("available", "partial:", "unavailable:")
        if not any(hw == k or hw.startswith(k) for k in known):
            fail(f"{who}: unknown hw marker {hw!r}")
            continue
        checked += 1
        if hw == "available" and r.get("cycles", 0) <= 0:
            fail(f"{who}: hw says available but cycles == 0")
        if hw.startswith("unavailable") and r.get("cycles", 0) != 0:
            fail(f"{who}: hw says {hw} but cycles == {r.get('cycles')}")
    note(f"{label}: hw marker consistent over {checked} cells")


def gate_deque_bit_identity(rows, baseline):
    """Acceptance gate for the observability layer: with LCWS_TRACE unset,
    micro_deque's structural counters must be BIT-IDENTICAL to the
    committed baseline — tracing off means not one extra fence, CAS, grow
    or high-water-mark movement anywhere in the deque fast paths."""
    if not baseline:
        skip("deque bit-identity: no committed baseline rows")
        return
    cur = index(rows, key_deque)
    checked = 0
    for key, base in index(baseline, key_deque).items():
        row = cur.get(key)
        if row is None:
            fail(f"micro_deque {key}: baseline row missing from current run")
            continue
        for field in ("ops", "fences", "cas", "grows", "hwm"):
            if row.get(field) != base.get(field):
                fail(
                    f"micro_deque {key}: {field} drifted from committed "
                    f"baseline: {row.get(field)} vs {base.get(field)}"
                )
            else:
                checked += 1
    note(f"deque bit-identity: {checked} counter fields exactly equal")


TIMING_FIELDS = ("seconds", "idle_cpu_s", "burst_median_s",
                 "makespan_median_s", "recovery_run_s")


def baseline_ratio_violations(current, baseline, keyfn, ratio):
    """Pure comparison pass for gate_vs_baseline: returns the list of
    (key, field, current, base, limit) ratio violations, the count of
    baseline cells absent from the current run, and the number of metrics
    checked."""
    cur = index(current, keyfn)
    violations = []
    missing = 0
    checked = 0
    for key, base_row in index(baseline, keyfn).items():
        row = cur.get(key)
        if row is None:
            missing += 1
            continue
        for field in TIMING_FIELDS:
            base_v = base_row.get(field)
            cur_v = row.get(field)
            if base_v is None or cur_v is None or base_v <= 0:
                continue
            checked += 1
            limit = base_v * ratio + 0.01
            if cur_v > limit:
                violations.append((key, field, cur_v, base_v, limit))
    return violations, missing, checked


def gate_vs_baseline(current, baseline, keyfn, ratio, label, rerun=None):
    """Order-of-magnitude regression check against the committed numbers.
    Baselines were recorded on a different machine: only a blown ratio
    (default 5x) plus an absolute floor counts as a failure.

    Timing cells are the one legitimately noisy layer (a descheduled
    container can blow any single wall-clock number), so when `rerun` is
    provided a violating cell gets exactly one second chance: the whole
    bench binary is re-run — never just the gate arithmetic — and only
    violations that REPRODUCE on the fresh rows count. Structural gates
    (missing cells, counter identities, bit-identity) get no such mercy."""
    if not baseline:
        skip(f"{label}: no committed baseline rows")
        return
    violations, missing, checked = baseline_ratio_violations(
        current, baseline, keyfn, ratio)
    if missing:
        fail(f"{label}: {missing} baseline cells missing from current run "
             f"(bench matrix shrank)")
    if violations and rerun is not None:
        print(f"  retry: {label}: {len(violations)} timing cell(s) over "
              f"{ratio}x; re-running the bench once to separate a "
              f"descheduled run from a real regression")
        fresh = rerun()
        if fresh:
            fresh_v, _, _ = baseline_ratio_violations(
                fresh, baseline, keyfn, ratio)
            fresh_keys = {(v[0], v[1]) for v in fresh_v}
            reproduced = [v for v in violations
                          if (v[0], v[1]) in fresh_keys]
            recovered = len(violations) - len(reproduced)
            if recovered:
                note(f"{label}: {recovered} cell(s) recovered on retry "
                     f"(one-off timing noise)")
            violations = reproduced
    for key, field, cur_v, base_v, limit in violations:
        fail(
            f"{label} {key} {field}: {cur_v:.4f} vs baseline "
            f"{base_v:.4f} (limit {limit:.4f}, ratio {ratio}x)"
        )
    note(f"{label}: {checked} metrics within {ratio}x of baseline")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--baseline-dir", default=".",
                    help="directory holding BENCH_idle.json / "
                         "BENCH_locality.json")
    ap.add_argument("--ratio", type=float,
                    default=float(os.environ.get("LCWS_PERF_GATE_RATIO", 5.0)),
                    help="max slowdown vs committed baseline")
    ap.add_argument("--margin", type=float, default=1.0,
                    help="allowed locality-on vs -off slowdown fraction")
    args = ap.parse_args()

    bench_dir = os.path.join(args.build_dir, "bench")

    def bench(name, env_extra):
        exe = os.path.join(bench_dir, name)
        return exe, run_bench(exe, env_extra)

    idle_exe, idle_rows = bench("micro_idle", {})
    loc_exe, locality_rows = bench("locality", {})
    deque_exe, deque_rows = bench("micro_deque", {})
    deg_exe, degraded_rows = bench("degraded_mode", {})
    fig3_exe, fig3_rows = bench("fig3_uslcws_profile", FIG_GATE_ENV)
    fig8_exe, fig8_rows = bench("fig8_signal_profile", FIG_GATE_ENV)

    if idle_rows:
        gate_idle_structural(idle_rows)
        gate_vs_baseline(
            idle_rows,
            load_json_lines(os.path.join(args.baseline_dir, "BENCH_idle.json")),
            key_idle, args.ratio, "BENCH_idle",
            rerun=lambda: run_bench(idle_exe, {}))
    if locality_rows:
        gate_locality_structural(locality_rows)
        gate_locality_slowdown(locality_rows, args.margin)
        gate_near_fraction(locality_rows)
        gate_vs_baseline(
            locality_rows,
            load_json_lines(
                os.path.join(args.baseline_dir, "BENCH_locality.json")),
            key_locality, args.ratio, "BENCH_locality",
            rerun=lambda: run_bench(loc_exe, {}))
    if deque_rows:
        gate_deque_structural(deque_rows)
        gate_deque_bit_identity(
            deque_rows,
            load_json_lines(
                os.path.join(args.baseline_dir, "BENCH_deque.json")))
        gate_vs_baseline(
            deque_rows,
            load_json_lines(
                os.path.join(args.baseline_dir, "BENCH_deque.json")),
            key_deque, args.ratio, "BENCH_deque",
            rerun=lambda: run_bench(deque_exe, {}))
    if degraded_rows:
        gate_vs_baseline(
            degraded_rows,
            load_json_lines(
                os.path.join(args.baseline_dir, "BENCH_degraded.json")),
            key_degraded, args.ratio, "BENCH_degraded",
            rerun=lambda: run_bench(deg_exe, {}))
    if fig3_rows:
        gate_fig_fences(fig3_rows, "uslcws", "fig3")
        gate_hw_marker(fig3_rows, "fig3")
        gate_vs_baseline(
            fig3_rows,
            load_json_lines(os.path.join(args.baseline_dir,
                                         "BENCH_fig3.json")),
            key_fig, args.ratio, "BENCH_fig3",
            rerun=lambda: run_bench(fig3_exe, FIG_GATE_ENV))
    if fig8_rows:
        gate_fig_fences(fig8_rows, "signal", "fig8")
        gate_hw_marker(fig8_rows, "fig8")
        gate_vs_baseline(
            fig8_rows,
            load_json_lines(os.path.join(args.baseline_dir,
                                         "BENCH_fig8.json")),
            key_fig, args.ratio, "BENCH_fig8",
            rerun=lambda: run_bench(fig8_exe, FIG_GATE_ENV))

    if FAILURES:
        print(f"\nperf gate: {len(FAILURES)} failure(s)")
        return 1
    print("\nperf gate: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
