#!/usr/bin/env python3
"""Summarize (and semantically validate) an LCWS Chrome trace file.

Usage:
  python3 scripts/trace_summary.py TRACE.json [--json] [--check]

The input is the Chrome trace-event JSON emitted when a scheduler runs
with LCWS_TRACE=<file> (src/stats/trace.h). Prints, per worker:
  * utilization: time inside task slices / worker span
  * steal latency percentiles: time from a steal_attempt instant to the
    steal_success/steal_loss instant that resolves it
  * park episode count + parked time
and, pool-wide: steal totals, exposure request/answer totals, degrade /
recover / pressure / deque_grow / quiesce counts, dropped-event counts.

--json prints the same summary as one JSON object (machine consumers:
tests, CI). --check additionally enforces trace semantics and exits
nonzero on violation:
  * per-worker timestamps are non-decreasing
  * B/E slices balance per worker (tolerating ring-truncated heads:
    an E with no open B is only an error when that worker dropped no
    events)
  * every steal_success/steal_loss is preceded by a steal_attempt on
    the same worker (same tolerance)
The C++ test suite (tests/trace_test.cpp) shells out to this script, so
it validates meaning, not just JSON shape.
"""

import argparse
import json
import sys
from collections import defaultdict


def percentile(sorted_xs, q):
    if not sorted_xs:
        return 0.0
    pos = q * (len(sorted_xs) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_xs) - 1)
    frac = pos - lo
    return sorted_xs[lo] * (1 - frac) + sorted_xs[hi] * frac


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if "traceEvents" not in doc:
        raise SystemExit(f"{path}: not a Chrome trace (no traceEvents)")
    return doc


def summarize(doc, check=False):
    errors = []
    by_tid = defaultdict(list)
    for ev in doc["traceEvents"]:
        if ev.get("ph") == "M":
            continue
        by_tid[ev["tid"]].append(ev)

    dropped = doc.get("otherData", {}).get("dropped_events", [])
    workers = {}
    totals = defaultdict(int)

    for tid in sorted(by_tid):
        evs = by_tid[tid]
        truncated = bool(dropped[tid]) if tid < len(dropped) else False
        # Ordering: ring order must track time. A SIGUSR1 exposure handler
        # interrupting the owner mid-emit can reorder one record by the
        # handler's duration (see trace.h), so allow 1ms of slack; real
        # breakage (cross-worker mixups, wrap bugs) is orders larger.
        last_ts = None
        for ev in evs:
            if last_ts is not None and ev["ts"] < last_ts - 1000.0:
                errors.append(
                    f"w{tid}: timestamp regression at {ev['name']} "
                    f"({ev['ts']} < {last_ts})"
                )
            last_ts = max(ev["ts"], last_ts) if last_ts is not None else ev["ts"]

        span_begin = evs[0]["ts"] if evs else 0.0
        span_end = evs[-1]["ts"] if evs else 0.0
        span = max(span_end - span_begin, 0.0)

        # B/E slice accounting per name. Slices NEST: a worker stuck on a
        # join pops and runs other tasks inside its open task slice, so
        # each name keeps a begin-timestamp stack (Chrome semantics).
        # Busy time counts only outermost task slices — nested slices are
        # already inside the parent's wall time.
        open_begin = defaultdict(list)
        busy_us = 0.0
        park_us = 0.0
        park_episodes = 0
        tasks = 0
        attempts_open = 0
        steal_latencies = []
        last_attempt_ts = None
        counts = defaultdict(int)

        for ev in evs:
            name, ph, ts = ev["name"], ev["ph"], ev["ts"]
            if ph == "C":
                counts[f"hw_{name}_last"] = ev.get("args", {}).get("value", 0)
                continue
            counts[name] += 1
            if ph == "B":
                open_begin[name].append(ts)
            elif ph == "E":
                if open_begin[name]:
                    begin = open_begin[name].pop()
                    if name == "task":
                        tasks += 1
                        if not open_begin[name]:  # outermost slice closed
                            busy_us += ts - begin
                    elif name == "park":
                        park_us += ts - begin
                        park_episodes += 1
                elif check and not truncated:
                    errors.append(f"w{tid}: E '{name}' with no open B")
            elif name == "steal_attempt":
                attempts_open += 1
                last_attempt_ts = ts
            elif name in ("steal_success", "steal_loss"):
                if attempts_open > 0:
                    attempts_open -= 1
                    steal_latencies.append(ts - last_attempt_ts)
                elif check and not truncated:
                    errors.append(f"w{tid}: {name} with no open steal_attempt")

        if check:
            # A slice still open at the tail is fine only for the events a
            # snapshot can legitimately catch mid-flight (run/park/task at
            # the instant of the final rewrite).
            pass

        steal_latencies.sort()
        workers[tid] = {
            "events": len(evs),
            "dropped": dropped[tid] if tid < len(dropped) else 0,
            "span_us": round(span, 3),
            "task_slices": tasks,
            "busy_us": round(busy_us, 3),
            "utilization": round(busy_us / span, 4) if span > 0 else 0.0,
            "park_episodes": park_episodes,
            "park_us": round(park_us, 3),
            "steal_attempts": counts["steal_attempt"],
            "steal_successes": counts["steal_success"],
            "steal_losses": counts["steal_loss"],
            "steal_latency_us": {
                "p50": round(percentile(steal_latencies, 0.50), 3),
                "p90": round(percentile(steal_latencies, 0.90), 3),
                "p99": round(percentile(steal_latencies, 0.99), 3),
                "n": len(steal_latencies),
            },
        }
        for key in (
            "steal_attempt",
            "steal_success",
            "steal_loss",
            "exposure_request",
            "exposure_answer",
            "degrade",
            "recover",
            "pressure",
            "deque_grow",
            "quiesce",
            "unpark",
        ):
            totals[key] += counts[key]
        totals["park_episodes"] += park_episodes
        totals["tasks"] += tasks

    return {
        "scheduler": doc.get("otherData", {}).get("scheduler", "?"),
        "ring_capacity": doc.get("otherData", {}).get("ring_capacity", 0),
        "workers": workers,
        "totals": dict(totals),
        "errors": errors,
    }


def print_human(s):
    print(f"scheduler={s['scheduler']} ring_capacity={s['ring_capacity']}")
    for tid, w in s["workers"].items():
        lat = w["steal_latency_us"]
        print(
            f"  w{tid}: events={w['events']} dropped={w['dropped']} "
            f"util={w['utilization']:.2%} tasks={w['task_slices']} "
            f"parks={w['park_episodes']} park_ms={w['park_us'] / 1000:.2f} "
            f"steals={w['steal_successes']}/{w['steal_attempts']} "
            f"steal_lat_us p50={lat['p50']} p90={lat['p90']} "
            f"p99={lat['p99']} (n={lat['n']})"
        )
    t = s["totals"]
    print(
        "  pool: tasks={tasks} steals={steal_success}/{steal_attempt} "
        "exposure req/ans={exposure_request}/{exposure_answer} "
        "degrade/recover={degrade}/{recover} pressure_edges={pressure} "
        "grows={deque_grow} quiesces={quiesce} parks={park_episodes}".format(
            **{k: t.get(k, 0) for k in (
                "tasks", "steal_success", "steal_attempt",
                "exposure_request", "exposure_answer", "degrade", "recover",
                "pressure", "deque_grow", "quiesce", "park_episodes")}
        )
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace")
    ap.add_argument("--json", action="store_true", help="machine output")
    ap.add_argument(
        "--check", action="store_true",
        help="validate trace semantics; nonzero exit on violation")
    args = ap.parse_args()

    summary = summarize(load(args.trace), check=args.check)
    if args.json:
        json.dump(summary, sys.stdout, indent=2)
        print()
    else:
        print_human(summary)

    if args.check and summary["errors"]:
        for e in summary["errors"]:
            print(f"CHECK FAILED: {e}", file=sys.stderr)
        return 1
    if args.check:
        print("check: OK", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
