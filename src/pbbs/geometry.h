// 2D geometry primitives for the computational-geometry workloads.
#pragma once

#include <cmath>
#include <cstddef>

namespace lcws::pbbs {

struct point2d {
  double x = 0;
  double y = 0;

  friend point2d operator-(point2d a, point2d b) {
    return {a.x - b.x, a.y - b.y};
  }
  friend bool operator==(const point2d&, const point2d&) = default;
};

// Twice the signed area of triangle (a, b, c): > 0 iff c lies strictly to
// the left of the directed line a -> b.
inline double cross(point2d a, point2d b, point2d c) noexcept {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

inline double squared_distance(point2d a, point2d b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double distance(point2d a, point2d b) noexcept {
  return std::sqrt(squared_distance(a, b));
}

}  // namespace lcws::pbbs
