// Synthetic text corpora in the style of PBBS's trigramString inputs: word
// lengths and letters drawn from a simple Markov process, words separated
// by spaces, optionally grouped into documents (the wikipedia-like corpus
// used by invertedIndex).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/rng.h"

namespace lcws::pbbs {

// A corpus plus views of its words (views point into `text`).
struct text_corpus {
  std::string text;
  std::vector<std::string_view> words;
};

// Generates ~n_words words. The letter process is a fixed first-order
// chain: the next letter depends on the previous one, giving realistically
// skewed word frequencies (a few thousand distinct words dominate).
inline text_corpus trigram_words(std::size_t n_words,
                                 std::uint64_t seed = 10) {
  text_corpus corpus;
  corpus.text.reserve(n_words * 6);
  std::vector<std::size_t> starts;
  starts.reserve(n_words);
  xoshiro256 rng(seed);
  for (std::size_t w = 0; w < n_words; ++w) {
    starts.push_back(corpus.text.size());
    // Word length 2-7, geometric: short words dominate, so the distinct
    // vocabulary stays far smaller than the word count (as with real
    // trigram text).
    std::size_t len = 2;
    while (len < 7 && rng.bounded(2) != 0) ++len;
    char prev = static_cast<char>('a' + rng.bounded(26));
    corpus.text.push_back(prev);
    for (std::size_t k = 1; k < len; ++k) {
      // First-order chain: bias the next letter toward a deterministic
      // successor of prev so frequent digrams exist.
      const std::uint64_t r = rng.bounded(4);
      const char next =
          r == 0 ? static_cast<char>('a' + rng.bounded(26))
                 : static_cast<char>('a' + (static_cast<unsigned>(prev - 'a') *
                                                7 +
                                            static_cast<unsigned>(r)) %
                                              26);
      corpus.text.push_back(next);
      prev = next;
    }
    corpus.text.push_back(' ');
  }
  corpus.words.reserve(n_words);
  for (std::size_t w = 0; w < n_words; ++w) {
    const std::size_t start = starts[w];
    const std::size_t end =
        w + 1 < n_words ? starts[w + 1] - 1 : corpus.text.size() - 1;
    corpus.words.emplace_back(corpus.text.data() + start, end - start);
  }
  return corpus;
}

// A corpus partitioned into documents (word index ranges), wikipedia-like
// input for invertedIndex.
struct document_corpus {
  text_corpus corpus;
  std::vector<std::pair<std::size_t, std::size_t>> docs;  // [begin, end) words
};

inline document_corpus document_collection(std::size_t n_words,
                                           std::size_t words_per_doc = 200,
                                           std::uint64_t seed = 11) {
  document_corpus out;
  out.corpus = trigram_words(n_words, seed);
  for (std::size_t begin = 0; begin < n_words; begin += words_per_doc) {
    out.docs.emplace_back(begin, std::min(n_words, begin + words_per_doc));
  }
  return out;
}

}  // namespace lcws::pbbs
