#include "pbbs/runner.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "pbbs/benchmarks/bfs.h"
#include "pbbs/benchmarks/classify.h"
#include "pbbs/benchmarks/comparison_sort.h"
#include "pbbs/benchmarks/convex_hull.h"
#include "pbbs/benchmarks/histogram.h"
#include "pbbs/benchmarks/integer_sort.h"
#include "pbbs/benchmarks/inverted_index.h"
#include "pbbs/benchmarks/lrs.h"
#include "pbbs/benchmarks/maximal_matching.h"
#include "pbbs/benchmarks/min_spanning_forest.h"
#include "pbbs/benchmarks/mis.h"
#include "pbbs/benchmarks/nbody.h"
#include "pbbs/benchmarks/nearest_neighbors.h"
#include "pbbs/benchmarks/range_query.h"
#include "pbbs/benchmarks/ray_cast.h"
#include "pbbs/benchmarks/remove_duplicates.h"
#include "pbbs/benchmarks/spanning_forest.h"
#include "pbbs/benchmarks/suffix_array.h"
#include "pbbs/benchmarks/word_counts.h"
#include "sched/dispatch.h"
#include "support/timing.h"

namespace lcws::pbbs {
namespace {

// ---- input cache ----------------------------------------------------------

std::mutex g_cache_mutex;
std::map<std::string, std::shared_ptr<void>> g_input_cache;

template <typename Bench>
std::shared_ptr<const typename Bench::input> cached_input(
    const config& cfg, std::size_t size) {
  const std::string key =
      cfg.key() + "#" + std::to_string(size);
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  auto it = g_input_cache.find(key);
  if (it == g_input_cache.end()) {
    auto made = std::make_shared<typename Bench::input>(
        Bench::make(cfg.instance, size));
    it = g_input_cache.emplace(key, std::move(made)).first;
  }
  return std::static_pointer_cast<const typename Bench::input>(it->second);
}

// ---- typed execution ------------------------------------------------------

template <typename Bench>
run_result run_typed(sched_kind kind, std::size_t workers, const config& cfg,
                     std::size_t size, int rounds, bool validate) {
  const auto in = cached_input<Bench>(cfg, size);
  return with_scheduler(kind, workers, [&](auto& sched) {
    run_result result;
    sched.reset_counters();
    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(rounds));
    for (int round = 0; round < rounds; ++round) {
      stopwatch sw;
      auto out = Bench::run(sched, *in);
      times.push_back(sw.elapsed_seconds());
      if (validate && round == 0) {
        result.checked = true;
        result.ok = Bench::check(*in, out);
      }
    }
    result.profile = sched.profile();
    std::sort(times.begin(), times.end());
    result.seconds = times[times.size() / 2];
    return result;
  });
}

// Applies `fn` with the benchmark type matching `name`.
template <typename Fn>
auto dispatch_benchmark(std::string_view name, Fn&& fn) {
  if (name == integer_sort_bench::name) {
    return fn(static_cast<integer_sort_bench*>(nullptr));
  }
  if (name == comparison_sort_bench::name) {
    return fn(static_cast<comparison_sort_bench*>(nullptr));
  }
  if (name == histogram_bench::name) {
    return fn(static_cast<histogram_bench*>(nullptr));
  }
  if (name == word_counts_bench::name) {
    return fn(static_cast<word_counts_bench*>(nullptr));
  }
  if (name == inverted_index_bench::name) {
    return fn(static_cast<inverted_index_bench*>(nullptr));
  }
  if (name == remove_duplicates_bench::name) {
    return fn(static_cast<remove_duplicates_bench*>(nullptr));
  }
  if (name == bfs_bench::name) {
    return fn(static_cast<bfs_bench*>(nullptr));
  }
  if (name == maximal_matching_bench::name) {
    return fn(static_cast<maximal_matching_bench*>(nullptr));
  }
  if (name == mis_bench::name) {
    return fn(static_cast<mis_bench*>(nullptr));
  }
  if (name == min_spanning_forest_bench::name) {
    return fn(static_cast<min_spanning_forest_bench*>(nullptr));
  }
  if (name == suffix_array_bench::name) {
    return fn(static_cast<suffix_array_bench*>(nullptr));
  }
  if (name == nbody_bench::name) {
    return fn(static_cast<nbody_bench*>(nullptr));
  }
  if (name == lrs_bench::name) {
    return fn(static_cast<lrs_bench*>(nullptr));
  }
  if (name == range_query_bench::name) {
    return fn(static_cast<range_query_bench*>(nullptr));
  }
  if (name == ray_cast_bench::name) {
    return fn(static_cast<ray_cast_bench*>(nullptr));
  }
  if (name == classify_bench::name) {
    return fn(static_cast<classify_bench*>(nullptr));
  }
  if (name == spanning_forest_bench::name) {
    return fn(static_cast<spanning_forest_bench*>(nullptr));
  }
  if (name == convex_hull_bench::name) {
    return fn(static_cast<convex_hull_bench*>(nullptr));
  }
  if (name == nearest_neighbors_bench::name) {
    return fn(static_cast<nearest_neighbors_bench*>(nullptr));
  }
  throw std::invalid_argument("unknown benchmark: " + std::string(name));
}

}  // namespace

std::vector<std::string> all_benchmarks() {
  return {integer_sort_bench::name,     comparison_sort_bench::name,
          histogram_bench::name,        word_counts_bench::name,
          inverted_index_bench::name,   remove_duplicates_bench::name,
          bfs_bench::name,              maximal_matching_bench::name,
          mis_bench::name,              spanning_forest_bench::name,
          convex_hull_bench::name,      nearest_neighbors_bench::name,
          min_spanning_forest_bench::name, suffix_array_bench::name,
          nbody_bench::name,            lrs_bench::name,
          range_query_bench::name,      ray_cast_bench::name,
          classify_bench::name};
}

std::vector<config> all_configs() {
  std::vector<config> out;
  for (const auto& bench : all_benchmarks()) {
    dispatch_benchmark(bench, [&](auto* tag) {
      using Bench = std::remove_pointer_t<decltype(tag)>;
      for (const auto& instance : Bench::instances()) {
        out.push_back({bench, instance});
      }
    });
  }
  return out;
}

std::size_t default_size(std::string_view benchmark, double scale) {
  // Sized so one sequential run is O(100 ms) on a laptop core; the paper
  // uses 100M-element inputs on server machines — see DESIGN.md.
  std::size_t base = 1000000;
  if (benchmark == "integerSort" || benchmark == "histogram") {
    base = 2000000;
  } else if (benchmark == "wordCounts") {
    base = 500000;
  } else if (benchmark == "invertedIndex") {
    base = 250000;
  } else if (benchmark == "breadthFirstSearch") {
    base = 1000000;
  } else if (benchmark == "maximalMatching" ||
             benchmark == "maximalIndependentSet" ||
             benchmark == "spanningForest" ||
             benchmark == "minSpanningForest") {
    base = 500000;
  } else if (benchmark == "nearestNeighbors" ||
             benchmark == "suffixArray" ||
             benchmark == "longestRepeatedSubstring") {
    base = 300000;
  } else if (benchmark == "nBody") {
    base = 50000;
  } else if (benchmark == "rangeQuery2d") {
    base = 200000;
  } else if (benchmark == "rayCast") {
    base = 100000;
  } else if (benchmark == "classify") {
    base = 100000;
  }
  const auto scaled = static_cast<std::size_t>(
      static_cast<double>(base) * scale);
  return std::max<std::size_t>(scaled, 1024);
}

run_result run_config(sched_kind kind, std::size_t workers,
                      const config& cfg, std::size_t size, int rounds,
                      bool validate) {
  return dispatch_benchmark(cfg.benchmark, [&](auto* tag) {
    using Bench = std::remove_pointer_t<decltype(tag)>;
    return run_typed<Bench>(kind, workers, cfg, size, rounds, validate);
  });
}

void clear_input_cache() {
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  g_input_cache.clear();
}

}  // namespace lcws::pbbs
