// PBBS benchmark: invertedIndex — build word -> sorted document-id posting
// lists from a document collection.
//
// Pipeline: tokenize to (word-slot, doc) pairs in parallel (slots assigned
// by the concurrent string counter), radix-sort the pairs, then cut the
// sorted sequence into per-word postings with parallel boundary packs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "parallel/hash_table.h"
#include "parallel/integer_sort.h"
#include "parallel/pack.h"
#include "parallel/parallel_for.h"
#include "pbbs/text_gen.h"

namespace lcws::pbbs {

struct inverted_index_bench {
  static constexpr const char* name = "invertedIndex";

  struct input {
    // shared_ptr: posting words are views into the corpus text.
    std::shared_ptr<document_corpus> docs;
  };
  struct posting {
    std::string_view word;
    std::vector<std::uint32_t> doc_ids;  // ascending, unique
  };
  struct output {
    std::vector<posting> index;
  };

  static std::vector<std::string> instances() { return {"wikipedia"}; }

  static input make(std::string_view instance, std::size_t n) {
    if (instance != "wikipedia") {
      throw std::invalid_argument("invertedIndex: unknown instance " +
                                  std::string(instance));
    }
    return {std::make_shared<document_corpus>(document_collection(n))};
  }

  template <typename Sched>
  static output run(Sched& sched, const input& in) {
    const auto& corpus = in.docs->corpus;
    const auto& docs = in.docs->docs;
    const std::size_t n_words = corpus.words.size();

    par::string_counter lexicon(corpus.text,
                                std::max<std::size_t>(n_words / 4, 64));
    std::vector<std::pair<std::uint64_t, std::uint64_t>> tokens(n_words);
    output out;
    sched.run([&] {
      // Tokenize: one task per document, assigning stable word slots.
      par::parallel_for(sched, 0, docs.size(), [&](std::size_t d) {
        for (std::size_t w = docs[d].first; w < docs[d].second; ++w) {
          tokens[w] = {lexicon.add(corpus.words[w]), d};
        }
      });
      // Group by word slot; the doc component stays in document order
      // within each slot because radix sort is stable and tokens were
      // produced doc-major... but tokenization tasks interleave, so sort
      // by (slot, doc) via two stable passes: doc first, then slot.
      unsigned slot_bits = 1;
      while ((std::size_t{1} << slot_bits) < lexicon.capacity()) ++slot_bits;
      unsigned doc_bits = 1;
      while ((std::size_t{1} << doc_bits) < docs.size()) ++doc_bits;
      par::integer_sort(
          sched, tokens, [](const auto& t) { return t.second; }, doc_bits);
      par::integer_sort(
          sched, tokens, [](const auto& t) { return t.first; }, slot_bits);
      // Positions starting a new (slot, doc) combination.
      auto starts = par::pack_index(
          sched, tokens.size(),
          [&](std::size_t i) { return i == 0 || tokens[i] != tokens[i - 1]; },
          [](std::size_t i) { return i; });
      // Positions (within `starts`) beginning a new word.
      auto word_starts = par::pack_index(
          sched, starts.size(),
          [&](std::size_t k) {
            return k == 0 ||
                   tokens[starts[k]].first != tokens[starts[k - 1]].first;
          },
          [](std::size_t k) { return k; });
      out.index.resize(word_starts.size());
      par::parallel_for(sched, 0, word_starts.size(), [&](std::size_t w) {
        const std::size_t begin = word_starts[w];
        const std::size_t end =
            w + 1 < word_starts.size() ? word_starts[w + 1] : starts.size();
        posting p;
        p.word = lexicon.word_at(
            static_cast<std::size_t>(tokens[starts[begin]].first));
        p.doc_ids.reserve(end - begin);
        for (std::size_t k = begin; k < end; ++k) {
          p.doc_ids.push_back(
              static_cast<std::uint32_t>(tokens[starts[k]].second));
        }
        out.index[w] = std::move(p);
      });
    });
    return out;
  }

  static bool check(const input& in, const output& out) {
    const auto& corpus = in.docs->corpus;
    const auto& docs = in.docs->docs;
    std::map<std::string_view, std::set<std::uint32_t>> expected;
    for (std::size_t d = 0; d < docs.size(); ++d) {
      for (std::size_t w = docs[d].first; w < docs[d].second; ++w) {
        expected[corpus.words[w]].insert(static_cast<std::uint32_t>(d));
      }
    }
    if (out.index.size() != expected.size()) return false;
    for (const auto& p : out.index) {
      const auto it = expected.find(p.word);
      if (it == expected.end()) return false;
      if (!std::is_sorted(p.doc_ids.begin(), p.doc_ids.end())) return false;
      if (p.doc_ids.size() != it->second.size()) return false;
      std::size_t k = 0;
      for (const auto d : it->second) {
        if (p.doc_ids[k++] != d) return false;
      }
    }
    return true;
  }
};

}  // namespace lcws::pbbs
