// PBBS benchmark: wordCounts — count occurrences of each distinct word in
// a trigram corpus, via the concurrent string counter.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "parallel/hash_table.h"
#include "parallel/parallel_for.h"
#include "parallel/tokens.h"
#include "pbbs/text_gen.h"

namespace lcws::pbbs {

struct word_counts_bench {
  static constexpr const char* name = "wordCounts";

  struct input {
    // shared_ptr: the corpus must stay at a stable address because the
    // outputs hold views into it.
    std::shared_ptr<text_corpus> corpus;
  };
  struct output {
    std::vector<std::pair<std::string_view, std::uint64_t>> counts;
  };

  static std::vector<std::string> instances() { return {"trigramSeq"}; }

  static input make(std::string_view instance, std::size_t n) {
    if (instance != "trigramSeq") {
      throw std::invalid_argument("wordCounts: unknown instance " +
                                  std::string(instance));
    }
    return {std::make_shared<text_corpus>(trigram_words(n))};
  }

  template <typename Sched>
  static output run(Sched& sched, const input& in) {
    // The kernel tokenizes the raw text itself (as PBBS does) and counts
    // concurrently. Distinct-word count is far below total words for
    // trigram text; 1/4 is a safe overestimate.
    par::string_counter counter(
        in.corpus->text,
        std::max<std::size_t>(in.corpus->words.size() / 4, 64));
    sched.run([&] {
      const auto words = par::tokens(sched, in.corpus->text);
      par::parallel_for(sched, 0, words.size(),
                        [&](std::size_t i) { counter.add(words[i]); });
    });
    return {counter.entries()};
  }

  static bool check(const input& in, const output& out) {
    std::map<std::string_view, std::uint64_t> expected;
    for (const auto w : in.corpus->words) ++expected[w];
    if (out.counts.size() != expected.size()) return false;
    for (const auto& [w, c] : out.counts) {
      const auto it = expected.find(w);
      if (it == expected.end() || it->second != c) return false;
    }
    return true;
  }
};

}  // namespace lcws::pbbs
