// PBBS benchmark: rayCast — first-hit ray casting against a triangle mesh
// via a BVH: triangles are sorted by the Morton code of their centroids
// (parallel radix sort), the hierarchy is a fork-join median split over
// that order, and the ray batch traverses in parallel.
//
// The mesh is a synthetic rolling-hills heightfield (PBBS casts rays at
// scanned models; a heightfield reproduces the same traversal behaviour:
// coherent geometry, partial occlusion, variable hit depth).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "parallel/integer_sort.h"
#include "parallel/parallel_for.h"
#include "pbbs/geometry3d.h"
#include "support/rng.h"

namespace lcws::pbbs {

struct ray_cast_bench {
  static constexpr const char* name = "rayCast";

  struct input {
    std::vector<triangle> mesh;
    std::vector<ray> rays;
  };
  struct output {
    // First-hit parameter per ray; infinity where the ray misses.
    std::vector<double> hit_t;
  };

  static std::vector<std::string> instances() { return {"happyRays"}; }

  // n scales the ray count; the mesh holds ~n/2 triangles.
  static input make(std::string_view instance, std::size_t n) {
    if (instance != "happyRays") {
      throw std::invalid_argument("rayCast: unknown instance " +
                                  std::string(instance));
    }
    input in;
    // Heightfield: grid of (side x side) cells, two triangles each.
    std::size_t side = 2;
    while ((side + 1) * (side + 1) * 2 < n / 2) ++side;
    const auto height = [](double x, double y) {
      return 0.2 * std::sin(6.0 * x) * std::cos(5.0 * y) +
             0.1 * std::sin(17.0 * x + 3.0 * y);
    };
    const auto vertex = [&](std::size_t i, std::size_t j) {
      const double x = static_cast<double>(i) / static_cast<double>(side);
      const double y = static_cast<double>(j) / static_cast<double>(side);
      return vec3{x, y, height(x, y)};
    };
    in.mesh.reserve(side * side * 2);
    for (std::size_t i = 0; i < side; ++i) {
      for (std::size_t j = 0; j < side; ++j) {
        const vec3 v00 = vertex(i, j), v10 = vertex(i + 1, j);
        const vec3 v01 = vertex(i, j + 1), v11 = vertex(i + 1, j + 1);
        in.mesh.push_back({v00, v10, v11});
        in.mesh.push_back({v00, v11, v01});
      }
    }
    // Rays: mostly downward from above, with jittered directions.
    xoshiro256 rng(50);
    in.rays.reserve(n);
    for (std::size_t r = 0; r < n; ++r) {
      const vec3 origin{rng.uniform(), rng.uniform(), 1.0 + rng.uniform()};
      const vec3 dir{0.2 * (rng.uniform() - 0.5),
                     0.2 * (rng.uniform() - 0.5), -1.0};
      in.rays.push_back({origin, dir});
    }
    return in;
  }

  template <typename Sched>
  static output run(Sched& sched, const input& in) {
    output out;
    out.hit_t.assign(in.rays.size(),
                     std::numeric_limits<double>::infinity());
    if (in.mesh.empty()) return out;
    sched.run([&] {
      // Order triangles along a Morton curve for a compact hierarchy.
      std::vector<std::pair<std::uint64_t, std::uint32_t>> keyed(
          in.mesh.size());
      aabb scene;
      for (const auto& t : in.mesh) scene.expand(t);
      const vec3 extent = scene.hi - scene.lo;
      par::parallel_for(sched, 0, in.mesh.size(), [&](std::size_t i) {
        const vec3 c = in.mesh[i].centroid();
        const auto quant = [&](double v, double lo, double span) {
          const double f = span > 0 ? (v - lo) / span : 0.0;
          return static_cast<std::uint32_t>(
              std::min(1023.0, std::max(0.0, f * 1024.0)));
        };
        keyed[i] = {morton3(quant(c.x, scene.lo.x, extent.x),
                            quant(c.y, scene.lo.y, extent.y),
                            quant(c.z, scene.lo.z, extent.z)),
                    static_cast<std::uint32_t>(i)};
      });
      par::integer_sort(
          sched, keyed, [](const auto& p) { return p.first; }, 30);
      std::vector<std::uint32_t> order(keyed.size());
      par::parallel_for(sched, 0, keyed.size(), [&](std::size_t i) {
        order[i] = keyed[i].second;
      });
      const auto bvh =
          build(sched, in.mesh, order.data(), order.size());
      par::parallel_for(sched, 0, in.rays.size(), [&](std::size_t r) {
        double best = std::numeric_limits<double>::infinity();
        traverse(in.mesh, *bvh, in.rays[r], best);
        out.hit_t[r] = best;
      });
    });
    return out;
  }

  static bool check(const input& in, const output& out) {
    if (out.hit_t.size() != in.rays.size()) return false;
    const std::size_t samples = std::min<std::size_t>(in.rays.size(), 64);
    const std::size_t stride =
        std::max<std::size_t>(1, in.rays.size() / samples);
    for (std::size_t r = 0; r < in.rays.size(); r += stride) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& tri : in.mesh) {
        const double t = ray_triangle(in.rays[r], tri);
        if (t >= 0 && t < best) best = t;
      }
      if (std::isinf(best) != std::isinf(out.hit_t[r])) return false;
      if (!std::isinf(best) &&
          std::abs(best - out.hit_t[r]) > 1e-9 * (1.0 + best)) {
        return false;
      }
    }
    return true;
  }

 private:
  struct node {
    aabb box;
    std::vector<std::uint32_t> tris;  // leaves only
    std::unique_ptr<node> left, right;
    bool leaf = true;
  };

  static constexpr std::size_t leaf_limit = 8;
  static constexpr std::size_t parallel_limit = 2048;

  // Interleaves 10 bits per axis.
  static std::uint64_t morton3(std::uint32_t x, std::uint32_t y,
                               std::uint32_t z) noexcept {
    const auto spread = [](std::uint64_t v) {
      v &= 0x3ff;
      v = (v | (v << 16)) & 0x30000ff;
      v = (v | (v << 8)) & 0x300f00f;
      v = (v | (v << 4)) & 0x30c30c3;
      v = (v | (v << 2)) & 0x9249249;
      return v;
    };
    return spread(x) | (spread(y) << 1) | (spread(z) << 2);
  }

  template <typename Sched>
  static std::unique_ptr<node> build(Sched& sched,
                                     const std::vector<triangle>& mesh,
                                     std::uint32_t* order, std::size_t n) {
    auto nd = std::make_unique<node>();
    if (n <= leaf_limit) {
      nd->leaf = true;
      nd->tris.assign(order, order + n);
      for (const auto t : nd->tris) nd->box.expand(mesh[t]);
      return nd;
    }
    nd->leaf = false;
    const std::size_t mid = n / 2;  // median split in Morton order
    if (n >= parallel_limit) {
      sched.pardo(
          [&] { nd->left = build(sched, mesh, order, mid); },
          [&] { nd->right = build(sched, mesh, order + mid, n - mid); });
    } else {
      nd->left = build(sched, mesh, order, mid);
      nd->right = build(sched, mesh, order + mid, n - mid);
    }
    nd->box = nd->left->box;
    nd->box.expand(nd->right->box);
    return nd;
  }

  static void traverse(const std::vector<triangle>& mesh, const node& nd,
                       const ray& r, double& best) {
    if (!nd.box.hit(r, best)) return;
    if (nd.leaf) {
      for (const auto i : nd.tris) {
        const double t = ray_triangle(r, mesh[i]);
        if (t >= 0 && t < best) best = t;
      }
      return;
    }
    traverse(mesh, *nd.left, r, best);
    traverse(mesh, *nd.right, r, best);
  }
};

}  // namespace lcws::pbbs
