// PBBS benchmark: maximalMatching — deterministic-reservations greedy
// matching (Blelloch et al.): rounds of
//   reserve:  every live edge writes its index into both endpoints via
//             atomic fetch-min,
//   commit:   an edge joins the matching iff it holds both endpoints,
//   filter:   drop edges with a matched endpoint,
// until no live edges remain. The result equals the sequential greedy
// matching by edge index (determinism makes checking easy).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "parallel/pack.h"
#include "parallel/parallel_for.h"
#include "pbbs/graph.h"
#include "pbbs/graph_gen.h"

namespace lcws::pbbs {

struct maximal_matching_bench {
  static constexpr const char* name = "maximalMatching";

  struct input {
    std::shared_ptr<graph> g;
    std::vector<edge> edges;  // unique undirected edges, fixed order
  };
  struct output {
    std::vector<std::uint32_t> matched_edges;  // indices into input.edges
  };

  static std::vector<std::string> instances() {
    return {"rMatGraph", "randLocalGraph"};
  }

  static input make(std::string_view instance, std::size_t n) {
    std::shared_ptr<graph> g;
    if (instance == "rMatGraph") {
      g = std::make_shared<graph>(rmat_graph(n / 8, n));
    } else if (instance == "randLocalGraph") {
      g = std::make_shared<graph>(rand_local_graph(n / 8));
    } else {
      throw std::invalid_argument("maximalMatching: unknown instance " +
                                  std::string(instance));
    }
    auto edges = g->undirected_edges();
    return {std::move(g), std::move(edges)};
  }

  template <typename Sched>
  static output run(Sched& sched, const input& in) {
    const std::size_t n = in.g->num_vertices();
    constexpr std::uint32_t kFree = std::numeric_limits<std::uint32_t>::max();
    std::vector<std::atomic<std::uint32_t>> reservation(n);
    std::vector<std::atomic<std::uint8_t>> matched_vertex(n);
    output out;

    sched.run([&] {
      par::parallel_for(sched, 0, n, [&](std::size_t v) {
        reservation[v].store(kFree, std::memory_order_relaxed);
        matched_vertex[v].store(0, std::memory_order_relaxed);
      });
      // Live edge indices; shrinks every round.
      std::vector<std::uint32_t> live(in.edges.size());
      par::parallel_for(sched, 0, live.size(), [&](std::size_t i) {
        live[i] = static_cast<std::uint32_t>(i);
      });
      std::vector<std::atomic<std::uint8_t>> won(in.edges.size());
      par::parallel_for(sched, 0, in.edges.size(), [&](std::size_t i) {
        won[i].store(0, std::memory_order_relaxed);
      });

      while (!live.empty()) {
        // Reserve: fetch-min of the edge index on both endpoints.
        par::parallel_for(sched, 0, live.size(), [&](std::size_t k) {
          const std::uint32_t e = live[k];
          for (const vertex_id v : {in.edges[e].u, in.edges[e].v}) {
            std::uint32_t cur = reservation[v].load(std::memory_order_relaxed);
            while (e < cur && !reservation[v].compare_exchange_weak(
                                  cur, e, std::memory_order_relaxed,
                                  std::memory_order_relaxed)) {
            }
          }
        });
        // Commit: an edge that holds both endpoints matches them.
        par::parallel_for(sched, 0, live.size(), [&](std::size_t k) {
          const std::uint32_t e = live[k];
          const auto [u, v] = in.edges[e];
          if (reservation[u].load(std::memory_order_relaxed) == e &&
              reservation[v].load(std::memory_order_relaxed) == e) {
            won[e].store(1, std::memory_order_relaxed);
            matched_vertex[u].store(1, std::memory_order_relaxed);
            matched_vertex[v].store(1, std::memory_order_relaxed);
          }
        });
        // Filter dead edges and clear surviving reservations for the next
        // round.
        auto next = par::filter(sched, live.begin(), live.size(),
                                [&](std::uint32_t e) {
                                  const auto [u, v] = in.edges[e];
                                  return matched_vertex[u].load(
                                             std::memory_order_relaxed) == 0 &&
                                         matched_vertex[v].load(
                                             std::memory_order_relaxed) == 0;
                                });
        par::parallel_for(sched, 0, next.size(), [&](std::size_t k) {
          const auto [u, v] = in.edges[next[k]];
          reservation[u].store(kFree, std::memory_order_relaxed);
          reservation[v].store(kFree, std::memory_order_relaxed);
        });
        live = std::move(next);
      }
      out.matched_edges = par::pack_index(
          sched, in.edges.size(),
          [&](std::size_t e) {
            return won[e].load(std::memory_order_relaxed) != 0;
          },
          [](std::size_t e) { return static_cast<std::uint32_t>(e); });
    });
    return out;
  }

  static bool check(const input& in, const output& out) {
    // Validity: matched edges share no vertex.
    std::vector<std::uint8_t> used(in.g->num_vertices(), 0);
    for (const auto e : out.matched_edges) {
      if (e >= in.edges.size()) return false;
      const auto [u, v] = in.edges[e];
      if (used[u] || used[v]) return false;
      used[u] = used[v] = 1;
    }
    // Maximality: no remaining edge has both endpoints free.
    for (const auto& e : in.edges) {
      if (!used[e.u] && !used[e.v]) return false;
    }
    // Determinism: must equal greedy-by-index.
    std::vector<std::uint8_t> greedy_used(in.g->num_vertices(), 0);
    std::vector<std::uint32_t> greedy;
    for (std::size_t i = 0; i < in.edges.size(); ++i) {
      const auto [u, v] = in.edges[i];
      if (!greedy_used[u] && !greedy_used[v]) {
        greedy_used[u] = greedy_used[v] = 1;
        greedy.push_back(static_cast<std::uint32_t>(i));
      }
    }
    return out.matched_edges == greedy;
  }
};

}  // namespace lcws::pbbs
