// PBBS benchmark: longestRepeatedSubstring — suffix array + adjacent-LCP
// maximum. Any repeated substring's two occurrences appear adjacent (for
// its maximal length) in suffix-array order, so the LRS length is the
// maximum adjacent LCP.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "parallel/reduce.h"
#include "pbbs/benchmarks/suffix_array.h"
#include "pbbs/suffix.h"

namespace lcws::pbbs {

struct lrs_bench {
  static constexpr const char* name = "longestRepeatedSubstring";

  struct input {
    std::shared_ptr<std::string> text;
  };
  struct output {
    std::uint32_t length = 0;
    std::uint32_t pos_a = 0;  // two distinct occurrence offsets
    std::uint32_t pos_b = 0;
  };

  static std::vector<std::string> instances() { return {"trigramString"}; }

  static input make(std::string_view instance, std::size_t n) {
    if (instance != "trigramString") {
      throw std::invalid_argument(
          "longestRepeatedSubstring: unknown instance " +
          std::string(instance));
    }
    // Reuse suffixArray's generator for an identical corpus shape.
    auto sa_input = suffix_array_bench::make("trigramString", n);
    return {std::move(sa_input.text)};
  }

  template <typename Sched>
  static output run(Sched& sched, const input& in) {
    const std::string_view s(*in.text);
    output out;
    if (s.size() < 2) return out;
    sched.run([&] {
      const auto sa = build_suffix_array(sched, s);
      const auto lcp = adjacent_lcp(sched, s, sa);
      // Argmax over the LCP array (index reduction).
      std::vector<std::uint32_t> idx(lcp.size());
      par::parallel_for(sched, 0, idx.size(), [&](std::size_t j) {
        idx[j] = static_cast<std::uint32_t>(j);
      });
      const std::uint32_t best = par::reduce(
          sched, idx.begin(), idx.size(), std::uint32_t{0},
          [&](std::uint32_t a, std::uint32_t b) {
            if (lcp[a] != lcp[b]) return lcp[a] > lcp[b] ? a : b;
            return a < b ? a : b;  // deterministic tie-break
          });
      out.length = lcp[best];
      if (out.length > 0) {
        out.pos_a = sa[best - 1];
        out.pos_b = sa[best];
      }
    });
    return out;
  }

  static bool check(const input& in, const output& out) {
    const std::string_view s(*in.text);
    if (s.size() < 2) return out.length == 0;
    // The reported occurrences must be distinct and actually repeat.
    if (out.length > 0) {
      if (out.pos_a == out.pos_b) return false;
      if (out.pos_a + out.length > s.size() ||
          out.pos_b + out.length > s.size()) {
        return false;
      }
      if (s.substr(out.pos_a, out.length) !=
          s.substr(out.pos_b, out.length)) {
        return false;
      }
    }
    // Maximality: no adjacent suffix pair (in sorted order) shares a
    // longer prefix. Rebuild the suffix order sequentially-but-simply via
    // std::sort on views (the oracle, independent of the parallel code).
    std::vector<std::uint32_t> sa(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      sa[i] = static_cast<std::uint32_t>(i);
    }
    std::sort(sa.begin(), sa.end(), [&](std::uint32_t a, std::uint32_t b) {
      return s.substr(a) < s.substr(b);
    });
    std::uint32_t best = 0;
    for (std::size_t j = 1; j < sa.size(); ++j) {
      const std::size_t a = sa[j - 1], b = sa[j];
      const std::size_t limit = s.size() - std::max(a, b);
      std::size_t len = 0;
      while (len < limit && s[a + len] == s[b + len]) ++len;
      best = std::max(best, static_cast<std::uint32_t>(len));
    }
    return out.length == best;
  }
};

}  // namespace lcws::pbbs
