// PBBS benchmark: removeDuplicates — distinct elements of a sequence via
// the concurrent hash set.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "parallel/hash_table.h"
#include "parallel/parallel_for.h"
#include "pbbs/sequence_gen.h"
#include "pbbs/text_gen.h"

namespace lcws::pbbs {

struct remove_duplicates_bench {
  static constexpr const char* name = "removeDuplicates";

  struct input {
    std::vector<std::uint64_t> data;  // string instances are pre-hashed
  };
  struct output {
    std::vector<std::uint64_t> distinct;
  };

  static std::vector<std::string> instances() {
    return {"randomSeq_int", "trigramSeq_str"};
  }

  static input make(std::string_view instance, std::size_t n) {
    if (instance == "randomSeq_int") {
      // Bound n/10 forces ~10x duplication.
      return {random_seq(n, std::max<std::uint64_t>(n / 10, 16))};
    }
    if (instance == "trigramSeq_str") {
      // PBBS deduplicates strings; we dedupe their 64-bit fingerprints,
      // which exercises the identical hash-set code path.
      const auto corpus = trigram_words(n);
      std::vector<std::uint64_t> keys(corpus.words.size());
      for (std::size_t i = 0; i < keys.size(); ++i) {
        std::uint64_t h = 0xcbf29ce484222325ULL;
        for (const char c : corpus.words[i]) {
          h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
        }
        keys[i] = hash64(h);
      }
      return {std::move(keys)};
    }
    throw std::invalid_argument("removeDuplicates: unknown instance " +
                                std::string(instance));
  }

  template <typename Sched>
  static output run(Sched& sched, const input& in) {
    par::hash_set<std::uint64_t> set(in.data.size());
    sched.run([&] {
      par::parallel_for(sched, 0, in.data.size(),
                        [&](std::size_t i) { set.insert(in.data[i]); });
    });
    return {set.keys()};
  }

  static bool check(const input& in, const output& out) {
    std::set<std::uint64_t> expected(in.data.begin(), in.data.end());
    if (out.distinct.size() != expected.size()) return false;
    auto sorted = out.distinct;
    std::sort(sorted.begin(), sorted.end());
    return std::equal(sorted.begin(), sorted.end(), expected.begin());
  }
};

}  // namespace lcws::pbbs
