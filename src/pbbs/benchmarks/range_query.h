// PBBS benchmark: rangeQuery2d — batch rectangle counting queries over a
// point set, via a kd-tree built with fork-join recursion (median splits)
// and a parallel query pass. Inner nodes carry subtree counts and boxes so
// fully-covered subtrees are counted in O(1).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "parallel/parallel_for.h"
#include "pbbs/geometry.h"
#include "pbbs/point_gen.h"
#include "support/rng.h"

namespace lcws::pbbs {

struct range_query_bench {
  static constexpr const char* name = "rangeQuery2d";

  struct rect {
    double lo_x, lo_y, hi_x, hi_y;

    bool contains(point2d p) const noexcept {
      return p.x >= lo_x && p.x <= hi_x && p.y >= lo_y && p.y <= hi_y;
    }
  };

  struct input {
    std::vector<point2d> points;
    std::vector<rect> queries;
  };
  struct output {
    std::vector<std::uint64_t> counts;  // one per query
  };

  static std::vector<std::string> instances() {
    return {"2DinCube", "2Dkuzmin"};
  }

  static input make(std::string_view instance, std::size_t n) {
    input in;
    std::uint64_t seed = 40;
    if (instance == "2DinCube") {
      in.points = points_in_cube_2d(n);
    } else if (instance == "2Dkuzmin") {
      in.points = points_kuzmin_2d(n);
      seed = 41;
    } else {
      throw std::invalid_argument("rangeQuery2d: unknown instance " +
                                  std::string(instance));
    }
    // Bounding box of the data, then random sub-rectangles of mixed sizes.
    double lo_x = in.points[0].x, hi_x = in.points[0].x;
    double lo_y = in.points[0].y, hi_y = in.points[0].y;
    for (const auto& p : in.points) {
      lo_x = std::min(lo_x, p.x);
      hi_x = std::max(hi_x, p.x);
      lo_y = std::min(lo_y, p.y);
      hi_y = std::max(hi_y, p.y);
    }
    xoshiro256 rng(seed);
    const std::size_t n_queries = std::max<std::size_t>(n / 10, 16);
    in.queries.reserve(n_queries);
    for (std::size_t q = 0; q < n_queries; ++q) {
      const double w = (hi_x - lo_x) * (0.01 + 0.3 * rng.uniform());
      const double h = (hi_y - lo_y) * (0.01 + 0.3 * rng.uniform());
      const double x = lo_x + (hi_x - lo_x - w) * rng.uniform();
      const double y = lo_y + (hi_y - lo_y - h) * rng.uniform();
      in.queries.push_back({x, y, x + w, y + h});
    }
    return in;
  }

  template <typename Sched>
  static output run(Sched& sched, const input& in) {
    output out;
    out.counts.assign(in.queries.size(), 0);
    if (in.points.empty()) return out;
    sched.run([&] {
      std::vector<std::uint32_t> idx(in.points.size());
      par::parallel_for(sched, 0, idx.size(), [&](std::size_t i) {
        idx[i] = static_cast<std::uint32_t>(i);
      });
      const auto tree =
          build(sched, in.points, idx.data(), idx.size(), /*axis=*/0);
      par::parallel_for(sched, 0, in.queries.size(), [&](std::size_t q) {
        out.counts[q] = count(in.points, *tree, in.queries[q]);
      });
    });
    return out;
  }

  static bool check(const input& in, const output& out) {
    if (out.counts.size() != in.queries.size()) return false;
    // Brute force on a sample of queries.
    const std::size_t samples = std::min<std::size_t>(in.queries.size(), 64);
    const std::size_t stride =
        std::max<std::size_t>(1, in.queries.size() / samples);
    for (std::size_t q = 0; q < in.queries.size(); q += stride) {
      std::uint64_t expected = 0;
      for (const auto& p : in.points) expected += in.queries[q].contains(p);
      if (out.counts[q] != expected) return false;
    }
    return true;
  }

 private:
  struct node {
    rect box{};                    // bounding box of the subtree
    std::uint64_t count = 0;       // points in the subtree
    std::vector<std::uint32_t> points;  // leaves only
    std::unique_ptr<node> left, right;
    bool leaf = true;
  };

  static constexpr std::size_t leaf_limit = 64;
  static constexpr std::size_t parallel_limit = 4096;

  template <typename Sched>
  static std::unique_ptr<node> build(Sched& sched,
                                     const std::vector<point2d>& pts,
                                     std::uint32_t* idx, std::size_t n,
                                     int axis) {
    auto nd = std::make_unique<node>();
    nd->count = n;
    nd->box = {pts[idx[0]].x, pts[idx[0]].y, pts[idx[0]].x, pts[idx[0]].y};
    if (n <= leaf_limit) {
      nd->leaf = true;
      nd->points.assign(idx, idx + n);
      for (std::size_t i = 0; i < n; ++i) grow(nd->box, pts[idx[i]]);
      return nd;
    }
    nd->leaf = false;
    const std::size_t mid = n / 2;
    std::nth_element(idx, idx + mid, idx + n,
                     [&](std::uint32_t a, std::uint32_t b) {
                       return axis == 0 ? pts[a].x < pts[b].x
                                        : pts[a].y < pts[b].y;
                     });
    const auto build_side = [&](std::uint32_t* part, std::size_t count_part,
                                std::unique_ptr<node>& slot) {
      slot = build(sched, pts, part, count_part, 1 - axis);
    };
    if (n >= parallel_limit) {
      sched.pardo([&] { build_side(idx, mid, nd->left); },
                  [&] { build_side(idx + mid, n - mid, nd->right); });
    } else {
      build_side(idx, mid, nd->left);
      build_side(idx + mid, n - mid, nd->right);
    }
    nd->box = nd->left->box;
    grow(nd->box, nd->right->box);
    return nd;
  }

  static void grow(rect& box, point2d p) noexcept {
    box.lo_x = std::min(box.lo_x, p.x);
    box.lo_y = std::min(box.lo_y, p.y);
    box.hi_x = std::max(box.hi_x, p.x);
    box.hi_y = std::max(box.hi_y, p.y);
  }

  static void grow(rect& box, const rect& other) noexcept {
    box.lo_x = std::min(box.lo_x, other.lo_x);
    box.lo_y = std::min(box.lo_y, other.lo_y);
    box.hi_x = std::max(box.hi_x, other.hi_x);
    box.hi_y = std::max(box.hi_y, other.hi_y);
  }

  static bool disjoint(const rect& a, const rect& b) noexcept {
    return a.hi_x < b.lo_x || b.hi_x < a.lo_x || a.hi_y < b.lo_y ||
           b.hi_y < a.lo_y;
  }

  static bool covers(const rect& outer, const rect& inner) noexcept {
    return outer.lo_x <= inner.lo_x && outer.hi_x >= inner.hi_x &&
           outer.lo_y <= inner.lo_y && outer.hi_y >= inner.hi_y;
  }

  static std::uint64_t count(const std::vector<point2d>& pts, const node& nd,
                             const rect& query) {
    if (disjoint(query, nd.box)) return 0;
    if (covers(query, nd.box)) return nd.count;
    if (nd.leaf) {
      std::uint64_t c = 0;
      for (const auto i : nd.points) c += query.contains(pts[i]);
      return c;
    }
    return count(pts, *nd.left, query) + count(pts, *nd.right, query);
  }
};

}  // namespace lcws::pbbs
