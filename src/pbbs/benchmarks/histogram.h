// PBBS benchmark: histogram. Instances: 100K buckets (the configuration
// the paper calls out as USLCWS's worst case) and 256 buckets.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "parallel/histogram.h"
#include "pbbs/sequence_gen.h"

namespace lcws::pbbs {

struct histogram_bench {
  static constexpr const char* name = "histogram";

  struct input {
    std::vector<std::uint64_t> data;
    std::size_t buckets = 0;
  };
  struct output {
    std::vector<std::uint64_t> counts;
  };

  static std::vector<std::string> instances() {
    return {"randomSeq_100K_int", "randomSeq_256_int", "exptSeq_100K_int"};
  }

  static input make(std::string_view instance, std::size_t n) {
    if (instance == "randomSeq_100K_int") {
      return {random_seq(n, 100000), 100000};
    }
    if (instance == "randomSeq_256_int") return {random_seq(n, 256), 256};
    if (instance == "exptSeq_100K_int") return {expt_seq(n, 100000), 100000};
    throw std::invalid_argument("histogram: unknown instance " +
                                std::string(instance));
  }

  template <typename Sched>
  static output run(Sched& sched, const input& in) {
    auto counts = sched.run([&] {
      return par::histogram(sched, in.data.begin(), in.data.size(),
                            in.buckets);
    });
    return {std::move(counts)};
  }

  static bool check(const input& in, const output& out) {
    std::vector<std::uint64_t> expected(in.buckets, 0);
    for (const auto x : in.data) ++expected[x];
    return out.counts == expected;
  }
};

}  // namespace lcws::pbbs
