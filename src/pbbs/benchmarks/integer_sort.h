// PBBS benchmark: integerSort.
//
// Instances mirror PBBS's: randomSeq_int, exptSeq_int,
// randomSeq_int_pair_int (uniform key/value pairs), and
// randomSeq_256_int_pair_int (256 distinct keys).
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "parallel/integer_sort.h"
#include "pbbs/sequence_gen.h"

namespace lcws::pbbs {

struct integer_sort_bench {
  static constexpr const char* name = "integerSort";

  using pair_t = std::pair<std::uint64_t, std::uint64_t>;

  struct input {
    std::variant<std::vector<std::uint64_t>, std::vector<pair_t>> data;
    unsigned key_bits = 0;
  };
  struct output {
    std::variant<std::vector<std::uint64_t>, std::vector<pair_t>> sorted;
  };

  static std::vector<std::string> instances() {
    return {"randomSeq_int", "exptSeq_int", "randomSeq_int_pair_int",
            "randomSeq_256_int_pair_int", "exptSeq_int_pair_int"};
  }

  static input make(std::string_view instance, std::size_t n) {
    if (instance == "randomSeq_int") {
      return {random_seq(n, std::uint64_t{1} << 27), 27};
    }
    if (instance == "exptSeq_int") {
      return {expt_seq(n, std::uint64_t{1} << 27), 27};
    }
    if (instance == "randomSeq_int_pair_int") {
      return {random_pair_seq(n, std::uint64_t{1} << 27), 27};
    }
    if (instance == "randomSeq_256_int_pair_int") {
      return {random_pair_seq(n, 256), 8};
    }
    if (instance == "exptSeq_int_pair_int") {
      const auto keys = expt_seq(n, std::uint64_t{1} << 27);
      std::vector<pair_t> v(n);
      for (std::size_t i = 0; i < n; ++i) v[i] = {keys[i], i};
      return {std::move(v), 27};
    }
    throw std::invalid_argument("integerSort: unknown instance " +
                                std::string(instance));
  }

  template <typename Sched>
  static output run(Sched& sched, const input& in) {
    output out;
    if (const auto* flat = std::get_if<std::vector<std::uint64_t>>(&in.data)) {
      auto v = *flat;
      sched.run(
          [&] { par::integer_sort(sched, v, in.key_bits); });
      out.sorted = std::move(v);
    } else {
      auto v = std::get<std::vector<pair_t>>(in.data);
      sched.run([&] {
        par::integer_sort(sched, v,
                          [](const pair_t& p) { return p.first; },
                          in.key_bits);
      });
      out.sorted = std::move(v);
    }
    return out;
  }

  static bool check(const input& in, const output& out) {
    if (const auto* flat = std::get_if<std::vector<std::uint64_t>>(&in.data)) {
      const auto& sorted = std::get<std::vector<std::uint64_t>>(out.sorted);
      auto expected = *flat;
      std::sort(expected.begin(), expected.end());
      return sorted == expected;
    }
    const auto& pairs = std::get<std::vector<pair_t>>(in.data);
    const auto& sorted = std::get<std::vector<pair_t>>(out.sorted);
    if (sorted.size() != pairs.size()) return false;
    // Keys sorted, stability (values ascending within equal keys, because
    // make() used the index as value), permutation preserved.
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      if (sorted[i - 1].first > sorted[i].first) return false;
      if (sorted[i - 1].first == sorted[i].first &&
          sorted[i - 1].second >= sorted[i].second) {
        return false;
      }
    }
    auto expected = pairs;
    std::sort(expected.begin(), expected.end());
    auto got = sorted;
    std::sort(got.begin(), got.end());
    return got == expected;
  }
};

}  // namespace lcws::pbbs
