// PBBS benchmark: classify (decisionTree) — train a CART-style decision
// tree on a covtype-like table of continuous features. This is one of the
// two configurations the paper's Section 5.2 singles out as pathological
// for signal-based LCWS ("a disproportionately high number of steals"):
// split evaluation forks across features while node recursion forks across
// children, creating many small irregular tasks.
//
// Data is synthetic: labels come from a hidden random tree over the
// features plus label noise, so a correct learner provably can (and a
// broken one provably cannot) reach high training accuracy.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "parallel/pack.h"
#include "parallel/parallel_for.h"
#include "support/rng.h"

namespace lcws::pbbs {

struct classify_bench {
  static constexpr const char* name = "classify";

  static constexpr std::size_t n_features = 10;
  static constexpr std::size_t n_classes = 4;
  static constexpr std::size_t n_thresholds = 8;  // split candidates/feature
  static constexpr unsigned max_depth = 8;
  static constexpr std::size_t min_node = 64;

  struct input {
    std::vector<float> features;       // row-major n x n_features
    std::vector<std::uint8_t> labels;  // [0, n_classes)
    std::size_t rows = 0;

    float at(std::size_t row, std::size_t feature) const noexcept {
      return features[row * n_features + feature];
    }
  };

  // Flat tree: node 0 is the root; leaves have feature == -1.
  struct tree_node {
    std::int32_t feature = -1;
    float threshold = 0;
    std::int32_t left = -1;   // feature value <  threshold
    std::int32_t right = -1;  // feature value >= threshold
    std::uint8_t leaf_class = 0;
  };
  struct output {
    std::vector<tree_node> tree;

    std::uint8_t predict(const input& in, std::size_t row) const {
      std::int32_t node = 0;
      while (tree[static_cast<std::size_t>(node)].feature >= 0) {
        const auto& nd = tree[static_cast<std::size_t>(node)];
        node = in.at(row, static_cast<std::size_t>(nd.feature)) <
                       nd.threshold
                   ? nd.left
                   : nd.right;
      }
      return tree[static_cast<std::size_t>(node)].leaf_class;
    }
  };

  static std::vector<std::string> instances() { return {"covtype_like"}; }

  static input make(std::string_view instance, std::size_t n) {
    if (instance != "covtype_like") {
      throw std::invalid_argument("classify: unknown instance " +
                                  std::string(instance));
    }
    input in;
    in.rows = std::max<std::size_t>(n, 256);
    in.features.resize(in.rows * n_features);
    in.labels.resize(in.rows);
    xoshiro256 rng(60);
    for (auto& f : in.features) f = static_cast<float>(rng.uniform());
    // Hidden depth-4 tree labels the data.
    struct hidden {
      std::size_t feature;
      float threshold;
    };
    std::array<hidden, 15> gates;  // complete binary tree, 4 levels
    for (auto& g : gates) {
      g = {rng.bounded(n_features),
           0.2f + 0.6f * static_cast<float>(rng.uniform())};
    }
    std::array<std::uint8_t, 16> leaf_class;
    for (auto& c : leaf_class) {
      c = static_cast<std::uint8_t>(rng.bounded(n_classes));
    }
    for (std::size_t r = 0; r < in.rows; ++r) {
      std::size_t node = 0;
      for (int level = 0; level < 4; ++level) {
        const auto& g = gates[node];
        node = 2 * node + (in.at(r, g.feature) < g.threshold ? 1 : 2);
      }
      std::uint8_t label = leaf_class[node - 15];
      if (rng.bounded(20) == 0) {  // 5% label noise
        label = static_cast<std::uint8_t>(rng.bounded(n_classes));
      }
      in.labels[r] = label;
    }
    return in;
  }

  template <typename Sched>
  static output run(Sched& sched, const input& in) {
    output out;
    out.tree.reserve(512);
    sched.run([&] {
      std::vector<std::uint32_t> rows(in.rows);
      par::parallel_for(sched, 0, in.rows, [&](std::size_t r) {
        rows[r] = static_cast<std::uint32_t>(r);
      });
      build(sched, in, std::move(rows), 0, out.tree);
    });
    return out;
  }

  static bool check(const input& in, const output& out) {
    if (out.tree.empty()) return false;
    // Structural sanity: children indices in range, thresholds in (0,1).
    for (const auto& nd : out.tree) {
      if (nd.feature >= 0) {
        if (nd.left < 0 || nd.right < 0 ||
            nd.left >= static_cast<std::int32_t>(out.tree.size()) ||
            nd.right >= static_cast<std::int32_t>(out.tree.size())) {
          return false;
        }
      } else if (nd.leaf_class >= n_classes) {
        return false;
      }
    }
    // Learnability: the hidden tree is depth 4 over axis-aligned splits,
    // so a depth-8 CART must beat the majority class decisively despite
    // the 5% label noise.
    std::vector<std::size_t> class_count(n_classes, 0);
    for (const auto c : in.labels) ++class_count[c];
    const double majority =
        static_cast<double>(
            *std::max_element(class_count.begin(), class_count.end())) /
        static_cast<double>(in.rows);
    std::size_t correct = 0;
    for (std::size_t r = 0; r < in.rows; ++r) {
      correct += out.predict(in, r) == in.labels[r];
    }
    const double accuracy =
        static_cast<double>(correct) / static_cast<double>(in.rows);
    return accuracy >= 0.80 && accuracy > majority + 0.02;
  }

 private:
  struct split_score {
    double gain = -1;
    std::size_t feature = 0;
    float threshold = 0;
  };

  static double gini(const std::array<std::size_t, n_classes>& counts,
                     std::size_t total) {
    if (total == 0) return 0;
    double impurity = 1.0;
    for (const auto c : counts) {
      const double p = static_cast<double>(c) / static_cast<double>(total);
      impurity -= p * p;
    }
    return impurity;
  }

  // Appends the subtree over `rows` to `tree`, returning its root index.
  // Children of one node are built with pardo; split evaluation forks over
  // features.
  template <typename Sched>
  static std::int32_t build(Sched& sched, const input& in,
                            std::vector<std::uint32_t> rows, unsigned depth,
                            std::vector<tree_node>& tree) {
    std::array<std::size_t, n_classes> counts{};
    for (const auto r : rows) ++counts[in.labels[r]];
    const std::uint8_t majority = static_cast<std::uint8_t>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
    const bool pure = counts[majority] == rows.size();

    if (pure || depth >= max_depth || rows.size() < min_node) {
      tree.push_back({-1, 0, -1, -1, majority});
      return static_cast<std::int32_t>(tree.size() - 1);
    }

    // Evaluate candidate splits: every feature in parallel, a quantile
    // grid of thresholds per feature.
    const double parent_impurity = gini(counts, rows.size());
    std::vector<split_score> best_per_feature(n_features);
    par::parallel_for(
        sched, 0, n_features,
        [&](std::size_t f) {
          split_score best;
          for (std::size_t t = 1; t <= n_thresholds; ++t) {
            const float threshold =
                static_cast<float>(t) / (n_thresholds + 1);
            std::array<std::size_t, n_classes> left{};
            std::size_t n_left = 0;
            for (const auto r : rows) {
              if (in.at(r, f) < threshold) {
                ++left[in.labels[r]];
                ++n_left;
              }
            }
            const std::size_t n_right = rows.size() - n_left;
            if (n_left == 0 || n_right == 0) continue;
            std::array<std::size_t, n_classes> right{};
            for (std::size_t c = 0; c < n_classes; ++c) {
              right[c] = counts[c] - left[c];
            }
            const double weighted =
                (static_cast<double>(n_left) * gini(left, n_left) +
                 static_cast<double>(n_right) * gini(right, n_right)) /
                static_cast<double>(rows.size());
            const double gain = parent_impurity - weighted;
            if (gain > best.gain) best = {gain, f, threshold};
          }
          best_per_feature[f] = best;
        },
        1);
    split_score best;
    for (const auto& s : best_per_feature) {
      if (s.gain > best.gain ||
          (s.gain == best.gain && s.feature < best.feature)) {
        best = s;
      }
    }
    if (best.gain <= 1e-12) {
      tree.push_back({-1, 0, -1, -1, majority});
      return static_cast<std::int32_t>(tree.size() - 1);
    }

    auto left_rows = par::filter(sched, rows.begin(), rows.size(),
                                 [&](std::uint32_t r) {
                                   return in.at(r, best.feature) <
                                          best.threshold;
                                 });
    auto right_rows = par::filter(sched, rows.begin(), rows.size(),
                                  [&](std::uint32_t r) {
                                    return in.at(r, best.feature) >=
                                           best.threshold;
                                  });
    rows.clear();
    rows.shrink_to_fit();

    const auto index = static_cast<std::int32_t>(tree.size());
    tree.push_back({static_cast<std::int32_t>(best.feature), best.threshold,
                    -1, -1, majority});
    // Children must append to `tree` sequentially (shared vector), so
    // build them into private vectors in parallel and splice. Splicing
    // renumbers child indices by a fixed offset.
    std::vector<tree_node> left_sub, right_sub;
    sched.pardo(
        [&] {
          left_sub = build_subtree(sched, in, std::move(left_rows),
                                   depth + 1);
        },
        [&] {
          right_sub = build_subtree(sched, in, std::move(right_rows),
                                    depth + 1);
        });
    const auto splice = [&tree](std::vector<tree_node>& sub) {
      const auto offset = static_cast<std::int32_t>(tree.size());
      for (auto nd : sub) {
        if (nd.feature >= 0) {
          nd.left += offset;
          nd.right += offset;
        }
        tree.push_back(nd);
      }
      return offset;  // subtree root was local index 0
    };
    tree[static_cast<std::size_t>(index)].left = splice(left_sub);
    tree[static_cast<std::size_t>(index)].right = splice(right_sub);
    return index;
  }

  template <typename Sched>
  static std::vector<tree_node> build_subtree(Sched& sched, const input& in,
                                              std::vector<std::uint32_t> rows,
                                              unsigned depth) {
    std::vector<tree_node> sub;
    build(sched, in, std::move(rows), depth, sub);
    return sub;
  }
};

}  // namespace lcws::pbbs
