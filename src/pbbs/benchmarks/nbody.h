// PBBS benchmark: nBody — one force-evaluation step of a 2D Barnes-Hut
// simulation: build a quadtree over the bodies in parallel (quadrant
// partition with parallel filters, fork-join recursion), compute centres
// of mass bottom-up, then evaluate the softened gravitational force on
// every body with the theta opening criterion.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "parallel/pack.h"
#include "parallel/parallel_for.h"
#include "pbbs/geometry.h"
#include "pbbs/point_gen.h"

namespace lcws::pbbs {

struct nbody_bench {
  static constexpr const char* name = "nBody";

  // Opening criterion and Plummer softening.
  static constexpr double theta = 0.4;
  static constexpr double softening2 = 1e-8;

  struct input {
    std::vector<point2d> pos;
    std::vector<double> mass;
  };
  struct output {
    std::vector<point2d> force;  // per unit mass of the subject body
  };

  static std::vector<std::string> instances() {
    return {"2DinCube", "2Dkuzmin"};
  }

  static input make(std::string_view instance, std::size_t n) {
    input in;
    if (instance == "2DinCube") {
      in.pos = points_in_cube_2d(n);
    } else if (instance == "2Dkuzmin") {
      in.pos = points_kuzmin_2d(n);
    } else {
      throw std::invalid_argument("nBody: unknown instance " +
                                  std::string(instance));
    }
    in.mass.assign(in.pos.size(), 1.0);
    return in;
  }

  template <typename Sched>
  static output run(Sched& sched, const input& in) {
    const std::size_t n = in.pos.size();
    output out;
    out.force.assign(n, point2d{});
    if (n < 2) return out;

    sched.run([&] {
      // Bounding square.
      double min_x = in.pos[0].x, max_x = in.pos[0].x;
      double min_y = in.pos[0].y, max_y = in.pos[0].y;
      for (const auto& p : in.pos) {
        min_x = std::min(min_x, p.x);
        max_x = std::max(max_x, p.x);
        min_y = std::min(min_y, p.y);
        max_y = std::max(max_y, p.y);
      }
      const double half =
          0.5 * std::max(max_x - min_x, max_y - min_y) + 1e-12;
      const point2d centre{(min_x + max_x) / 2, (min_y + max_y) / 2};

      std::vector<std::uint32_t> all(n);
      par::parallel_for(sched, 0, n, [&](std::size_t i) {
        all[i] = static_cast<std::uint32_t>(i);
      });
      const auto root = build(sched, in, std::move(all), centre, half);

      par::parallel_for(sched, 0, n, [&](std::size_t i) {
        out.force[i] = accumulate_force(in, *root, i);
      });
    });
    return out;
  }

  // Exact check on a sample: softened direct sum vs tree result. Net
  // forces can nearly cancel (a body at the centre of a uniform cloud),
  // which makes per-body relative error meaningless; the tolerance is
  // therefore anchored to the sample's mean force magnitude as well (the
  // absolute multipole error scales with the field strength, not with the
  // residual after cancellation).
  static bool check(const input& in, const output& out) {
    const std::size_t n = in.pos.size();
    if (out.force.size() != n) return false;
    if (n < 2) return true;
    const std::size_t samples = std::min<std::size_t>(n, 64);
    const std::size_t stride = std::max<std::size_t>(1, n / samples);
    std::vector<point2d> exact;
    std::vector<std::size_t> idx;
    double mean_mag = 0;
    for (std::size_t i = 0; i < n; i += stride) {
      point2d f{};
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        add_pair_force(in.pos[i], in.pos[j], in.mass[j], f);
      }
      exact.push_back(f);
      idx.push_back(i);
      mean_mag += std::sqrt(f.x * f.x + f.y * f.y);
    }
    mean_mag /= static_cast<double>(exact.size());
    for (std::size_t k = 0; k < exact.size(); ++k) {
      const double err = distance(exact[k], out.force[idx[k]]);
      const double mag = std::sqrt(exact[k].x * exact[k].x +
                                   exact[k].y * exact[k].y);
      if (err > 0.05 * mag + 0.01 * mean_mag + 1e-9) return false;
    }
    return true;
  }

 private:
  struct node {
    point2d centre;
    double half = 0;
    double mass = 0;
    point2d com;
    std::vector<std::uint32_t> bodies;        // leaves only
    std::unique_ptr<node> child[4];           // internal only
    bool leaf = true;
  };

  static constexpr std::size_t leaf_limit = 16;
  static constexpr std::size_t parallel_build_limit = 2048;

  static void add_pair_force(point2d subject, point2d source, double mass,
                             point2d& acc) {
    const double dx = source.x - subject.x;
    const double dy = source.y - subject.y;
    const double d2 = dx * dx + dy * dy + softening2;
    const double inv = mass / (d2 * std::sqrt(d2));
    acc.x += dx * inv;
    acc.y += dy * inv;
  }

  template <typename Sched>
  static std::unique_ptr<node> build(Sched& sched, const input& in,
                                     std::vector<std::uint32_t> bodies,
                                     point2d centre, double half) {
    auto nd = std::make_unique<node>();
    nd->centre = centre;
    nd->half = half;
    if (bodies.size() <= leaf_limit) {
      nd->leaf = true;
      for (const auto b : bodies) {
        nd->mass += in.mass[b];
        nd->com.x += in.mass[b] * in.pos[b].x;
        nd->com.y += in.mass[b] * in.pos[b].y;
      }
      if (nd->mass > 0) {
        nd->com.x /= nd->mass;
        nd->com.y /= nd->mass;
      }
      nd->bodies = std::move(bodies);
      return nd;
    }
    nd->leaf = false;
    // Quadrant of a body: bit0 = east, bit1 = north.
    const auto quadrant = [&](std::uint32_t b) {
      return (in.pos[b].x >= centre.x ? 1 : 0) +
             (in.pos[b].y >= centre.y ? 2 : 0);
    };
    std::vector<std::uint32_t> parts[4];
    if (bodies.size() >= parallel_build_limit) {
      for (int q = 0; q < 4; ++q) {
        parts[q] = par::filter(sched, bodies.begin(), bodies.size(),
                               [&](std::uint32_t b) {
                                 return quadrant(b) == q;
                               });
      }
    } else {
      for (const auto b : bodies) {
        parts[quadrant(b)].push_back(b);
      }
    }
    bodies.clear();
    bodies.shrink_to_fit();
    const double h2 = half / 2;
    const point2d centres[4] = {{centre.x - h2, centre.y - h2},
                                {centre.x + h2, centre.y - h2},
                                {centre.x - h2, centre.y + h2},
                                {centre.x + h2, centre.y + h2}};
    const auto build_child = [&](int q) {
      if (!parts[q].empty()) {
        nd->child[q] = build(sched, in, std::move(parts[q]), centres[q], h2);
      }
    };
    // 4-way fork as two nested binary forks.
    sched.pardo(
        [&] {
          sched.pardo([&] { build_child(0); }, [&] { build_child(1); });
        },
        [&] {
          sched.pardo([&] { build_child(2); }, [&] { build_child(3); });
        });
    for (const auto& c : nd->child) {
      if (c) {
        nd->mass += c->mass;
        nd->com.x += c->mass * c->com.x;
        nd->com.y += c->mass * c->com.y;
      }
    }
    if (nd->mass > 0) {
      nd->com.x /= nd->mass;
      nd->com.y /= nd->mass;
    }
    return nd;
  }

  static point2d accumulate_force(const input& in, const node& nd,
                                  std::size_t subject) {
    point2d acc{};
    walk(in, nd, subject, acc);
    return acc;
  }

  static void walk(const input& in, const node& nd, std::size_t subject,
                   point2d& acc) {
    if (nd.leaf) {
      for (const auto b : nd.bodies) {
        if (b != subject) {
          add_pair_force(in.pos[subject], in.pos[b], in.mass[b], acc);
        }
      }
      return;
    }
    const double d2 = squared_distance(in.pos[subject], nd.com);
    const double size = 2 * nd.half;
    if (size * size < theta * theta * d2) {
      add_pair_force(in.pos[subject], nd.com, nd.mass, acc);
      return;
    }
    for (const auto& c : nd.child) {
      if (c) walk(in, *c, subject, acc);
    }
  }
};

}  // namespace lcws::pbbs
