// PBBS benchmark: comparisonSort (doubles under std::less).
#pragma once

#include <algorithm>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "parallel/sort.h"
#include "pbbs/sequence_gen.h"

namespace lcws::pbbs {

struct comparison_sort_bench {
  static constexpr const char* name = "comparisonSort";

  struct input {
    std::vector<double> data;
  };
  struct output {
    std::vector<double> sorted;
  };

  static std::vector<std::string> instances() {
    return {"randomSeq_double", "exptSeq_double", "almostSortedSeq_double"};
  }

  static input make(std::string_view instance, std::size_t n) {
    if (instance == "randomSeq_double") return {random_double_seq(n)};
    if (instance == "exptSeq_double") return {expt_double_seq(n)};
    if (instance == "almostSortedSeq_double") {
      const auto ints = almost_sorted_seq(n);
      std::vector<double> v(n);
      for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<double>(ints[i]);
      return {std::move(v)};
    }
    throw std::invalid_argument("comparisonSort: unknown instance " +
                                std::string(instance));
  }

  template <typename Sched>
  static output run(Sched& sched, const input& in) {
    auto v = in.data;
    sched.run([&] { par::sort(sched, v); });
    return {std::move(v)};
  }

  static bool check(const input& in, const output& out) {
    auto expected = in.data;
    std::sort(expected.begin(), expected.end());
    return out.sorted == expected;
  }
};

}  // namespace lcws::pbbs
