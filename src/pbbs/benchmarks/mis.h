// PBBS benchmark: maximalIndependentSet — rootset-based parallel MIS with
// random priorities (Luby/deterministic-reservations style): in each round
// every undecided vertex whose priority beats all undecided neighbours
// joins the set and knocks its neighbours out. Priorities are a fixed
// random permutation, so the result equals the sequential greedy MIS in
// priority order (lexicographically first MIS).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "parallel/pack.h"
#include "parallel/parallel_for.h"
#include "pbbs/graph.h"
#include "pbbs/graph_gen.h"
#include "support/rng.h"

namespace lcws::pbbs {

struct mis_bench {
  static constexpr const char* name = "maximalIndependentSet";

  enum class state : std::uint8_t { undecided = 0, in_set = 1, out = 2 };

  struct input {
    std::shared_ptr<graph> g;
    std::vector<std::uint32_t> priority;  // random permutation
  };
  struct output {
    std::vector<std::uint8_t> in_set;  // 1 iff vertex selected
  };

  static std::vector<std::string> instances() {
    return {"rMatGraph", "randLocalGraph"};
  }

  static input make(std::string_view instance, std::size_t n) {
    std::shared_ptr<graph> g;
    if (instance == "rMatGraph") {
      g = std::make_shared<graph>(rmat_graph(n / 8, n));
    } else if (instance == "randLocalGraph") {
      g = std::make_shared<graph>(rand_local_graph(n / 8));
    } else {
      throw std::invalid_argument("maximalIndependentSet: unknown instance " +
                                  std::string(instance));
    }
    std::vector<std::uint32_t> priority(g->num_vertices());
    std::iota(priority.begin(), priority.end(), 0u);
    // Fisher-Yates with the deterministic RNG.
    xoshiro256 rng(99);
    for (std::size_t i = priority.size(); i > 1; --i) {
      std::swap(priority[i - 1], priority[rng.bounded(i)]);
    }
    return {std::move(g), std::move(priority)};
  }

  template <typename Sched>
  static output run(Sched& sched, const input& in) {
    const graph& g = *in.g;
    const std::size_t n = g.num_vertices();
    std::vector<std::atomic<std::uint8_t>> st(n);
    output out;
    out.in_set.assign(n, 0);

    sched.run([&] {
      par::parallel_for(sched, 0, n, [&](std::size_t v) {
        st[v].store(static_cast<std::uint8_t>(state::undecided),
                    std::memory_order_relaxed);
      });
      std::vector<vertex_id> active(n);
      par::parallel_for(sched, 0, n, [&](std::size_t v) {
        active[v] = static_cast<vertex_id>(v);
      });
      while (!active.empty()) {
        // A vertex enters the set iff it is the priority minimum among its
        // undecided neighbourhood.
        par::parallel_for(sched, 0, active.size(), [&](std::size_t k) {
          const vertex_id v = active[k];
          if (st[v].load(std::memory_order_relaxed) !=
              static_cast<std::uint8_t>(state::undecided)) {
            return;
          }
          for (const vertex_id w : g.neighbors(v)) {
            if (st[w].load(std::memory_order_relaxed) !=
                    static_cast<std::uint8_t>(state::out) &&
                in.priority[w] < in.priority[v]) {
              return;  // a live higher-priority neighbour exists
            }
          }
          st[v].store(static_cast<std::uint8_t>(state::in_set),
                      std::memory_order_relaxed);
        });
        // Knock out neighbours of fresh set members.
        par::parallel_for(sched, 0, active.size(), [&](std::size_t k) {
          const vertex_id v = active[k];
          if (st[v].load(std::memory_order_relaxed) ==
              static_cast<std::uint8_t>(state::in_set)) {
            for (const vertex_id w : g.neighbors(v)) {
              st[w].store(static_cast<std::uint8_t>(state::out),
                          std::memory_order_relaxed);
            }
          }
        });
        active = par::filter(sched, active.begin(), active.size(),
                             [&](vertex_id v) {
                               return st[v].load(std::memory_order_relaxed) ==
                                      static_cast<std::uint8_t>(
                                          state::undecided);
                             });
      }
      par::parallel_for(sched, 0, n, [&](std::size_t v) {
        out.in_set[v] = st[v].load(std::memory_order_relaxed) ==
                        static_cast<std::uint8_t>(state::in_set);
      });
    });
    return out;
  }

  static bool check(const input& in, const output& out) {
    const graph& g = *in.g;
    // Independence.
    for (vertex_id v = 0; v < g.num_vertices(); ++v) {
      if (!out.in_set[v]) continue;
      for (const vertex_id w : g.neighbors(v)) {
        if (out.in_set[w]) return false;
      }
    }
    // Maximality: every non-member has a member neighbour.
    for (vertex_id v = 0; v < g.num_vertices(); ++v) {
      if (out.in_set[v]) continue;
      bool covered = false;
      for (const vertex_id w : g.neighbors(v)) {
        if (out.in_set[w]) {
          covered = true;
          break;
        }
      }
      if (!covered && g.degree(v) > 0) return false;
      if (g.degree(v) == 0 && !out.in_set[v]) return false;  // isolated
    }
    return true;
  }
};

}  // namespace lcws::pbbs
