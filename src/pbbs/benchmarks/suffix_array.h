// PBBS benchmark: suffixArray — parallel prefix-doubling (Manber-Myers
// with radix sorting); the construction itself lives in pbbs/suffix.h and
// is shared with longestRepeatedSubstring.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "pbbs/suffix.h"
#include "pbbs/text_gen.h"
#include "support/rng.h"

namespace lcws::pbbs {

struct suffix_array_bench {
  static constexpr const char* name = "suffixArray";

  struct input {
    std::shared_ptr<std::string> text;
  };
  struct output {
    std::vector<std::uint32_t> sa;  // suffix start offsets, sorted
  };

  static std::vector<std::string> instances() {
    return {"trigramString", "randomString"};
  }

  static input make(std::string_view instance, std::size_t n) {
    if (instance == "trigramString") {
      auto corpus = trigram_words(n / 5 + 1);
      auto text = std::make_shared<std::string>(std::move(corpus.text));
      if (text->size() > n) text->resize(n);
      return {std::move(text)};
    }
    if (instance == "randomString") {
      auto text = std::make_shared<std::string>();
      text->reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        text->push_back(static_cast<char>('a' + hash64(i ^ 0xabcdef) % 26));
      }
      return {std::move(text)};
    }
    throw std::invalid_argument("suffixArray: unknown instance " +
                                std::string(instance));
  }

  template <typename Sched>
  static output run(Sched& sched, const input& in) {
    output out;
    out.sa = build_suffix_array(sched, std::string_view(*in.text));
    return out;
  }

  static bool check(const input& in, const output& out) {
    const std::string& s = *in.text;
    const std::size_t n = s.size();
    if (out.sa.size() != n) return false;
    // Permutation check.
    std::vector<std::uint8_t> seen(n, 0);
    for (const auto i : out.sa) {
      if (i >= n || seen[i]) return false;
      seen[i] = 1;
    }
    // Adjacent suffixes must be strictly increasing.
    const std::string_view sv(s);
    for (std::size_t j = 1; j < n; ++j) {
      if (sv.substr(out.sa[j - 1]) >= sv.substr(out.sa[j])) return false;
    }
    return true;
  }
};

}  // namespace lcws::pbbs
