// PBBS benchmark: spanningForest — deterministic-reservations spanning
// forest: rounds where every live edge tries to link the components of its
// endpoints; an edge wins a round iff it reserved the (current) root of one
// endpoint's component. Uses a simple union-find with path compression
// (compression is done by the owning round's find pass, not concurrently
// mutated during reservation).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "parallel/pack.h"
#include "parallel/parallel_for.h"
#include "pbbs/graph.h"
#include "pbbs/graph_gen.h"

namespace lcws::pbbs {

struct spanning_forest_bench {
  static constexpr const char* name = "spanningForest";

  struct input {
    std::shared_ptr<graph> g;
    std::vector<edge> edges;
  };
  struct output {
    std::vector<std::uint32_t> forest_edges;  // indices into input.edges
  };

  static std::vector<std::string> instances() {
    return {"rMatGraph", "randLocalGraph"};
  }

  static input make(std::string_view instance, std::size_t n) {
    std::shared_ptr<graph> g;
    if (instance == "rMatGraph") {
      g = std::make_shared<graph>(rmat_graph(n / 8, n));
    } else if (instance == "randLocalGraph") {
      g = std::make_shared<graph>(rand_local_graph(n / 8));
    } else {
      throw std::invalid_argument("spanningForest: unknown instance " +
                                  std::string(instance));
    }
    auto edges = g->undirected_edges();
    return {std::move(g), std::move(edges)};
  }

  template <typename Sched>
  static output run(Sched& sched, const input& in) {
    const std::size_t n = in.g->num_vertices();
    constexpr std::uint32_t kFree = std::numeric_limits<std::uint32_t>::max();
    // parent[] forms the union-find forest over components; roots point to
    // themselves. Only roots are linked, and only by the edge that
    // reserved them, so a round's links never form cycles.
    std::vector<std::atomic<vertex_id>> parent(n);
    std::vector<std::atomic<std::uint32_t>> reservation(n);
    std::vector<std::atomic<std::uint8_t>> in_forest(in.edges.size());
    output out;

    auto find_root = [&](vertex_id v) {
      while (true) {
        const vertex_id p = parent[v].load(std::memory_order_relaxed);
        if (p == v) return v;
        const vertex_id gp = parent[p].load(std::memory_order_relaxed);
        // Path halving; safe because stale writes still point into the
        // same component.
        parent[v].store(gp, std::memory_order_relaxed);
        v = gp;
      }
    };

    sched.run([&] {
      par::parallel_for(sched, 0, n, [&](std::size_t v) {
        parent[v].store(static_cast<vertex_id>(v),
                        std::memory_order_relaxed);
        reservation[v].store(kFree, std::memory_order_relaxed);
      });
      par::parallel_for(sched, 0, in.edges.size(), [&](std::size_t e) {
        in_forest[e].store(0, std::memory_order_relaxed);
      });
      std::vector<std::uint32_t> live(in.edges.size());
      par::parallel_for(sched, 0, live.size(), [&](std::size_t i) {
        live[i] = static_cast<std::uint32_t>(i);
      });

      while (!live.empty()) {
        // Reserve: each live cross-component edge fetch-mins itself onto
        // the smaller of its two component roots. Links always point from
        // the smaller root to the larger, so parent chains strictly
        // increase and a round of concurrent links can never form a cycle.
        std::vector<vertex_id> root_u(live.size()), root_v(live.size());
        par::parallel_for(sched, 0, live.size(), [&](std::size_t k) {
          const auto [u, v] = in.edges[live[k]];
          root_u[k] = find_root(u);
          root_v[k] = find_root(v);
          if (root_u[k] == root_v[k]) return;  // already connected
          if (root_u[k] > root_v[k]) std::swap(root_u[k], root_v[k]);
          std::uint32_t cur =
              reservation[root_u[k]].load(std::memory_order_relaxed);
          while (live[k] < cur &&
                 !reservation[root_u[k]].compare_exchange_weak(
                     cur, live[k], std::memory_order_relaxed,
                     std::memory_order_relaxed)) {
          }
        });
        // Commit: the winning edge links root_u under root_v.
        par::parallel_for(sched, 0, live.size(), [&](std::size_t k) {
          const std::uint32_t e = live[k];
          if (root_u[k] == root_v[k]) return;
          if (reservation[root_u[k]].load(std::memory_order_relaxed) == e) {
            parent[root_u[k]].store(root_v[k], std::memory_order_relaxed);
            in_forest[e].store(1, std::memory_order_relaxed);
          }
        });
        // Clear the reservations we used and drop settled edges.
        par::parallel_for(sched, 0, live.size(), [&](std::size_t k) {
          if (root_u[k] != root_v[k]) {
            reservation[root_u[k]].store(kFree, std::memory_order_relaxed);
          }
        });
        live = par::filter(
            sched, live.begin(), live.size(), [&](std::uint32_t e) {
              return in_forest[e].load(std::memory_order_relaxed) == 0 &&
                     find_root(in.edges[e].u) != find_root(in.edges[e].v);
            });
      }
      out.forest_edges = par::pack_index(
          sched, in.edges.size(),
          [&](std::size_t e) {
            return in_forest[e].load(std::memory_order_relaxed) != 0;
          },
          [](std::size_t e) { return static_cast<std::uint32_t>(e); });
    });
    return out;
  }

  static bool check(const input& in, const output& out) {
    // The forest must be acyclic, span every component, and contain
    // exactly n - #components edges. Verify with a sequential union-find.
    const std::size_t n = in.g->num_vertices();
    std::vector<vertex_id> uf(n);
    std::iota(uf.begin(), uf.end(), 0u);
    auto find = [&](vertex_id v) {
      while (uf[v] != v) {
        uf[v] = uf[uf[v]];
        v = uf[v];
      }
      return v;
    };
    for (const auto e : out.forest_edges) {
      if (e >= in.edges.size()) return false;
      const auto ru = find(in.edges[e].u);
      const auto rv = find(in.edges[e].v);
      if (ru == rv) return false;  // cycle
      uf[ru] = rv;
    }
    // Spanning: every input edge's endpoints are now connected.
    for (const auto& e : in.edges) {
      if (find(e.u) != find(e.v)) return false;
    }
    return true;
  }
};

}  // namespace lcws::pbbs
