// PBBS benchmark: nearestNeighbors — all-points 1-nearest-neighbour via a
// uniform grid: bucket the points in parallel (counting sort by cell),
// then for each point search its cell and expanding rings of neighbouring
// cells until the best distance proves no farther ring can win.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "parallel/integer_sort.h"
#include "parallel/parallel_for.h"
#include "parallel/scan.h"
#include "pbbs/geometry.h"
#include "pbbs/point_gen.h"

namespace lcws::pbbs {

struct nearest_neighbors_bench {
  static constexpr const char* name = "nearestNeighbors";

  struct input {
    std::vector<point2d> points;
  };
  struct output {
    std::vector<std::uint32_t> neighbor;  // index of the nearest other point
  };

  static std::vector<std::string> instances() {
    return {"2DinCube", "2Dkuzmin", "2DinSphere"};
  }

  static input make(std::string_view instance, std::size_t n) {
    if (instance == "2DinCube") return {points_in_cube_2d(n)};
    if (instance == "2Dkuzmin") return {points_kuzmin_2d(n)};
    if (instance == "2DinSphere") return {points_in_sphere_2d(n)};
    throw std::invalid_argument("nearestNeighbors: unknown instance " +
                                std::string(instance));
  }

  template <typename Sched>
  static output run(Sched& sched, const input& in) {
    const auto& pts = in.points;
    const std::size_t n = pts.size();
    output out;
    out.neighbor.assign(n, 0);
    if (n < 2) return out;

    sched.run([&] {
      // Bounding box (sequential reductions are fine: 4 scans of n).
      double min_x = pts[0].x, max_x = pts[0].x;
      double min_y = pts[0].y, max_y = pts[0].y;
      for (const auto& p : pts) {
        min_x = std::min(min_x, p.x);
        max_x = std::max(max_x, p.x);
        min_y = std::min(min_y, p.y);
        max_y = std::max(max_y, p.y);
      }
      // ~1 point per cell on average.
      const std::size_t side = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::sqrt(static_cast<double>(n))));
      const double cell_w = (max_x - min_x) / static_cast<double>(side) + 1e-12;
      const double cell_h = (max_y - min_y) / static_cast<double>(side) + 1e-12;
      const auto cell_of = [&](point2d p) {
        auto cx = static_cast<std::size_t>((p.x - min_x) / cell_w);
        auto cy = static_cast<std::size_t>((p.y - min_y) / cell_h);
        cx = std::min(cx, side - 1);
        cy = std::min(cy, side - 1);
        return cy * side + cx;
      };

      // Bucket: stable radix sort of (cell, index) pairs, then cell
      // offsets via a parallel histogram + scan.
      std::vector<std::pair<std::uint64_t, std::uint32_t>> tagged(n);
      par::parallel_for(sched, 0, n, [&](std::size_t i) {
        tagged[i] = {cell_of(pts[i]), static_cast<std::uint32_t>(i)};
      });
      unsigned cell_bits = 1;
      while ((std::size_t{1} << cell_bits) < side * side) ++cell_bits;
      par::integer_sort(
          sched, tagged, [](const auto& t) { return t.first; }, cell_bits);
      const std::size_t cells = side * side;
      // Offsets by binary search over the sorted tags.
      std::vector<std::size_t> cell_begin(cells + 1);
      par::parallel_for(sched, 0, cells + 1, [&](std::size_t c) {
        cell_begin[c] = static_cast<std::size_t>(
            std::lower_bound(tagged.begin(), tagged.end(), c,
                             [](const auto& t, std::size_t cell) {
                               return t.first < cell;
                             }) -
            tagged.begin());
      });

      const auto ring_min_distance = [&](std::size_t ring) {
        return ring == 0 ? 0.0
                         : (static_cast<double>(ring) - 1.0) *
                               std::min(cell_w, cell_h);
      };

      par::parallel_for(sched, 0, n, [&](std::size_t i) {
        const point2d p = pts[i];
        const std::size_t cell = cell_of(p);
        const std::size_t cx = cell % side;
        const std::size_t cy = cell / side;
        double best = std::numeric_limits<double>::infinity();
        std::uint32_t best_idx = static_cast<std::uint32_t>(i == 0 ? 1 : 0);
        for (std::size_t ring = 0; ring < side; ++ring) {
          // Stop once no point in this ring or beyond can beat `best`.
          const double ring_min = ring_min_distance(ring);
          if (best < ring_min * ring_min && ring > 0) break;
          const std::ptrdiff_t r = static_cast<std::ptrdiff_t>(ring);
          bool any_cell = false;
          for (std::ptrdiff_t dy = -r; dy <= r; ++dy) {
            for (std::ptrdiff_t dx = -r; dx <= r; ++dx) {
              if (std::max(std::abs(dx), std::abs(dy)) != r) continue;
              const std::ptrdiff_t x = static_cast<std::ptrdiff_t>(cx) + dx;
              const std::ptrdiff_t y = static_cast<std::ptrdiff_t>(cy) + dy;
              if (x < 0 || y < 0 || x >= static_cast<std::ptrdiff_t>(side) ||
                  y >= static_cast<std::ptrdiff_t>(side)) {
                continue;
              }
              any_cell = true;
              const std::size_t c = static_cast<std::size_t>(y) * side +
                                    static_cast<std::size_t>(x);
              for (std::size_t k = cell_begin[c]; k < cell_begin[c + 1];
                   ++k) {
                const std::uint32_t j = tagged[k].second;
                if (j == i) continue;
                const double d = squared_distance(p, pts[j]);
                if (d < best) {
                  best = d;
                  best_idx = j;
                }
              }
            }
          }
          if (!any_cell && ring > 0 &&
              best < std::numeric_limits<double>::infinity()) {
            break;
          }
        }
        out.neighbor[i] = best_idx;
      });
    });
    return out;
  }

  // Exact check on a sample (brute force over all points), plus a global
  // sanity pass that each reported neighbour is a valid distinct index.
  static bool check(const input& in, const output& out) {
    const auto& pts = in.points;
    const std::size_t n = pts.size();
    if (out.neighbor.size() != n) return false;
    if (n < 2) return true;
    for (std::size_t i = 0; i < n; ++i) {
      if (out.neighbor[i] >= n || out.neighbor[i] == i) return false;
    }
    const std::size_t samples = std::min<std::size_t>(n, 200);
    const std::size_t stride = std::max<std::size_t>(1, n / samples);
    for (std::size_t i = 0; i < n; i += stride) {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        best = std::min(best, squared_distance(pts[i], pts[j]));
      }
      const double got = squared_distance(pts[i], pts[out.neighbor[i]]);
      if (got > best * (1.0 + 1e-9) + 1e-18) return false;
    }
    return true;
  }
};

}  // namespace lcws::pbbs
