// PBBS benchmark: minSpanningForest — parallel Boruvka.
//
// Rounds: every component finds its minimum-weight outgoing edge via an
// atomic fetch-min of (weight, edge-index) packed into one 64-bit word on
// the component root; winners link smaller root under larger root (the
// same acyclic-orientation trick as spanningForest); settled edges are
// filtered out. Distinct weights (index-salted) make the MSF unique, so
// checking against sequential Kruskal is exact.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "parallel/pack.h"
#include "parallel/parallel_for.h"
#include "pbbs/graph.h"
#include "pbbs/graph_gen.h"
#include "support/rng.h"

namespace lcws::pbbs {

struct min_spanning_forest_bench {
  static constexpr const char* name = "minSpanningForest";

  struct input {
    std::shared_ptr<graph> g;
    std::vector<edge> edges;
    std::vector<std::uint32_t> weight;  // distinct per edge
  };
  struct output {
    std::vector<std::uint32_t> forest_edges;  // indices into input.edges
  };

  static std::vector<std::string> instances() {
    return {"rMatGraph", "randLocalGraph"};
  }

  static input make(std::string_view instance, std::size_t n) {
    std::shared_ptr<graph> g;
    if (instance == "rMatGraph") {
      g = std::make_shared<graph>(rmat_graph(n / 8, n));
    } else if (instance == "randLocalGraph") {
      g = std::make_shared<graph>(rand_local_graph(n / 8));
    } else {
      throw std::invalid_argument("minSpanningForest: unknown instance " +
                                  std::string(instance));
    }
    auto edges = g->undirected_edges();
    // Distinct weights: random high bits, edge index low bits.
    std::vector<std::uint32_t> weight(edges.size());
    for (std::size_t i = 0; i < weight.size(); ++i) {
      weight[i] = static_cast<std::uint32_t>((hash64(i ^ 0x5EED) % 4096)
                                                 << 20 |
                                             (i & 0xFFFFF));
    }
    return {std::move(g), std::move(edges), std::move(weight)};
  }

  template <typename Sched>
  static output run(Sched& sched, const input& in) {
    const std::size_t n = in.g->num_vertices();
    constexpr std::uint64_t kNoEdge = ~std::uint64_t{0};
    std::vector<std::atomic<vertex_id>> parent(n);
    std::vector<std::atomic<std::uint64_t>> best(n);  // (weight<<32)|edge
    std::vector<std::atomic<std::uint8_t>> in_forest(in.edges.size());
    output out;

    auto find_root = [&](vertex_id v) {
      while (true) {
        const vertex_id p = parent[v].load(std::memory_order_relaxed);
        if (p == v) return v;
        const vertex_id gp = parent[p].load(std::memory_order_relaxed);
        parent[v].store(gp, std::memory_order_relaxed);
        v = gp;
      }
    };
    auto fetch_min = [&](std::atomic<std::uint64_t>& slot,
                         std::uint64_t value) {
      std::uint64_t cur = slot.load(std::memory_order_relaxed);
      while (value < cur &&
             !slot.compare_exchange_weak(cur, value,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
      }
    };

    sched.run([&] {
      par::parallel_for(sched, 0, n, [&](std::size_t v) {
        parent[v].store(static_cast<vertex_id>(v),
                        std::memory_order_relaxed);
        best[v].store(kNoEdge, std::memory_order_relaxed);
      });
      par::parallel_for(sched, 0, in.edges.size(), [&](std::size_t e) {
        in_forest[e].store(0, std::memory_order_relaxed);
      });
      std::vector<std::uint32_t> live(in.edges.size());
      par::parallel_for(sched, 0, live.size(), [&](std::size_t i) {
        live[i] = static_cast<std::uint32_t>(i);
      });

      while (!live.empty()) {
        // Each live edge offers itself to both endpoint components.
        std::vector<vertex_id> root_u(live.size()), root_v(live.size());
        par::parallel_for(sched, 0, live.size(), [&](std::size_t k) {
          const std::uint32_t e = live[k];
          root_u[k] = find_root(in.edges[e].u);
          root_v[k] = find_root(in.edges[e].v);
          if (root_u[k] == root_v[k]) return;
          const std::uint64_t packed =
              (static_cast<std::uint64_t>(in.weight[e]) << 32) | e;
          fetch_min(best[root_u[k]], packed);
          fetch_min(best[root_v[k]], packed);
        });
        // Boruvka commit. An edge joins the forest iff it is the minimum
        // edge of one of its endpoint components AND it wins the CAS that
        // links the smaller root under the larger. The CAS lets each root
        // link at most once per round (a losing edge stays live and is
        // retried next round), and the strictly increasing orientation
        // keeps each round's links acyclic. By the cut property (weights
        // are distinct) every edge added this way is in the unique MSF.
        par::parallel_for(sched, 0, live.size(), [&](std::size_t k) {
          const std::uint32_t e = live[k];
          vertex_id a = root_u[k], b = root_v[k];
          if (a == b) return;
          if (a > b) std::swap(a, b);
          const std::uint64_t packed =
              (static_cast<std::uint64_t>(in.weight[e]) << 32) | e;
          const bool min_of_a =
              best[a].load(std::memory_order_relaxed) == packed;
          const bool min_of_b =
              best[b].load(std::memory_order_relaxed) == packed;
          if (!min_of_a && !min_of_b) return;
          vertex_id expected_root = a;
          if (parent[a].compare_exchange_strong(expected_root, b,
                                                std::memory_order_relaxed,
                                                std::memory_order_relaxed)) {
            in_forest[e].store(1, std::memory_order_relaxed);
          }
        });
        live = par::filter(sched, live.begin(), live.size(),
                           [&](std::uint32_t e) {
                             return in_forest[e].load(
                                        std::memory_order_relaxed) == 0 &&
                                    find_root(in.edges[e].u) !=
                                        find_root(in.edges[e].v);
                           });
        // Reset the best slots of surviving roots for the next round.
        par::parallel_for(sched, 0, live.size(), [&](std::size_t k) {
          const auto [u, v] = in.edges[live[k]];
          best[find_root(u)].store(kNoEdge, std::memory_order_relaxed);
          best[find_root(v)].store(kNoEdge, std::memory_order_relaxed);
        });
      }
      out.forest_edges = par::pack_index(
          sched, in.edges.size(),
          [&](std::size_t e) {
            return in_forest[e].load(std::memory_order_relaxed) != 0;
          },
          [](std::size_t e) { return static_cast<std::uint32_t>(e); });
    });
    return out;
  }

  static bool check(const input& in, const output& out) {
    // Sequential Kruskal; weights are distinct, so the MSF is unique and
    // must match the parallel result exactly (as sets).
    std::vector<std::uint32_t> order(in.edges.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return in.weight[a] < in.weight[b];
              });
    std::vector<vertex_id> uf(in.g->num_vertices());
    std::iota(uf.begin(), uf.end(), 0u);
    auto find = [&](vertex_id v) {
      while (uf[v] != v) {
        uf[v] = uf[uf[v]];
        v = uf[v];
      }
      return v;
    };
    std::vector<std::uint32_t> expected;
    for (const auto e : order) {
      const auto ru = find(in.edges[e].u);
      const auto rv = find(in.edges[e].v);
      if (ru != rv) {
        uf[ru] = rv;
        expected.push_back(e);
      }
    }
    auto got = out.forest_edges;
    std::sort(got.begin(), got.end());
    std::sort(expected.begin(), expected.end());
    return got == expected;
  }
};

}  // namespace lcws::pbbs
