// PBBS benchmark: breadthFirstSearch — frontier-based parallel BFS with
// CAS-claimed parents.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "parallel/pack.h"
#include "parallel/parallel_for.h"
#include "pbbs/graph.h"
#include "pbbs/graph_gen.h"

namespace lcws::pbbs {

struct bfs_bench {
  static constexpr const char* name = "breadthFirstSearch";

  static constexpr std::uint32_t unreached =
      std::numeric_limits<std::uint32_t>::max();

  struct input {
    std::shared_ptr<graph> g;
    vertex_id source = 0;
    // backForwardBFS (the direction-optimizing variant the paper names in
    // §5.2): switch to bottom-up sweeps when the frontier is large.
    bool back_forward = false;
  };
  struct output {
    std::vector<std::uint32_t> distance;  // unreached where not reachable
  };

  static std::vector<std::string> instances() {
    return {"rMatGraph", "randLocalGraph", "3Dgrid",
            "backForwardBFS_rMatGraph", "backForwardBFS_3Dgrid"};
  }

  static input make(std::string_view instance, std::size_t n) {
    if (instance == "rMatGraph") {
      return {std::make_shared<graph>(rmat_graph(n / 8, n)), 0, false};
    }
    if (instance == "randLocalGraph") {
      return {std::make_shared<graph>(rand_local_graph(n / 8)), 0, false};
    }
    if (instance == "3Dgrid") {
      return {std::make_shared<graph>(grid3d_graph(n / 4)), 0, false};
    }
    if (instance == "backForwardBFS_rMatGraph") {
      return {std::make_shared<graph>(rmat_graph(n / 8, n)), 0, true};
    }
    if (instance == "backForwardBFS_3Dgrid") {
      return {std::make_shared<graph>(grid3d_graph(n / 4)), 0, true};
    }
    throw std::invalid_argument("breadthFirstSearch: unknown instance " +
                                std::string(instance));
  }

  template <typename Sched>
  static output run(Sched& sched, const input& in) {
    const graph& g = *in.g;
    const std::size_t n = g.num_vertices();
    std::vector<std::atomic<std::uint32_t>> dist(n);
    output out;
    out.distance.assign(n, unreached);
    if (n == 0) return out;

    sched.run([&] {
      par::parallel_for(sched, 0, n, [&](std::size_t v) {
        dist[v].store(unreached, std::memory_order_relaxed);
      });
      dist[in.source].store(0, std::memory_order_relaxed);
      std::vector<vertex_id> frontier{in.source};
      std::uint32_t level = 0;
      while (!frontier.empty()) {
        ++level;
        if (in.back_forward && frontier.size() > n / 20) {
          // Bottom-up sweep: every unreached vertex adopts the new level
          // if any neighbour sits on the current frontier. No CAS needed —
          // each vertex writes only its own distance.
          std::vector<vertex_id> next = par::pack_index(
              sched, n,
              [&](std::size_t v) {
                if (dist[v].load(std::memory_order_relaxed) != unreached) {
                  return false;
                }
                for (const vertex_id w : g.neighbors(
                         static_cast<vertex_id>(v))) {
                  if (dist[w].load(std::memory_order_relaxed) == level - 1) {
                    dist[v].store(level, std::memory_order_relaxed);
                    return true;
                  }
                }
                return false;
              },
              [](std::size_t v) { return static_cast<vertex_id>(v); });
          frontier = std::move(next);
          continue;
        }
        // Degree-prefix offsets for this frontier's edge expansion.
        std::vector<std::size_t> degrees(frontier.size());
        par::parallel_for(sched, 0, frontier.size(), [&](std::size_t f) {
          degrees[f] = g.degree(frontier[f]);
        });
        std::vector<std::size_t> offsets(frontier.size());
        const std::size_t total =
            par::scan_add(sched, degrees.begin(), offsets.begin(),
                          frontier.size(), std::size_t{0});
        // Claim next-level vertices with CAS; unclaimed slots stay as a
        // sentinel and are packed out.
        std::vector<vertex_id> next(total, static_cast<vertex_id>(-1));
        par::parallel_for(sched, 0, frontier.size(), [&](std::size_t f) {
          const vertex_id v = frontier[f];
          std::size_t slot = offsets[f];
          for (const vertex_id w : g.neighbors(v)) {
            std::uint32_t expected = unreached;
            if (dist[w].load(std::memory_order_relaxed) == unreached &&
                dist[w].compare_exchange_strong(expected, level,
                                                std::memory_order_relaxed,
                                                std::memory_order_relaxed)) {
              next[slot] = w;
            }
            ++slot;
          }
        });
        frontier = par::filter(sched, next.begin(), next.size(),
                               [](vertex_id w) {
                                 return w != static_cast<vertex_id>(-1);
                               });
      }
      par::parallel_for(sched, 0, n, [&](std::size_t v) {
        out.distance[v] = dist[v].load(std::memory_order_relaxed);
      });
    });
    return out;
  }

  static bool check(const input& in, const output& out) {
    const graph& g = *in.g;
    std::vector<std::uint32_t> expected(g.num_vertices(), unreached);
    std::queue<vertex_id> q;
    expected[in.source] = 0;
    q.push(in.source);
    while (!q.empty()) {
      const vertex_id v = q.front();
      q.pop();
      for (const vertex_id w : g.neighbors(v)) {
        if (expected[w] == unreached) {
          expected[w] = expected[v] + 1;
          q.push(w);
        }
      }
    }
    return out.distance == expected;
  }
};

}  // namespace lcws::pbbs
