// PBBS benchmark: convexHull — parallel 2D quickhull.
//
// Find the x-extremes, split the points into the two half-planes, then
// recursively: pick the farthest point from the chord, filter the points
// outside the two new chords in parallel, recurse on both sides with
// pardo.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "parallel/pack.h"
#include "parallel/parallel_for.h"
#include "parallel/reduce.h"
#include "pbbs/geometry.h"
#include "pbbs/point_gen.h"

namespace lcws::pbbs {

struct convex_hull_bench {
  static constexpr const char* name = "convexHull";

  struct input {
    std::vector<point2d> points;
  };
  struct output {
    std::vector<std::uint32_t> hull;  // indices, counter-clockwise
  };

  static std::vector<std::string> instances() {
    return {"2DinSphere", "2DinCube", "2Dkuzmin"};
  }

  static input make(std::string_view instance, std::size_t n) {
    if (instance == "2DinSphere") return {points_in_sphere_2d(n)};
    if (instance == "2DinCube") return {points_in_cube_2d(n)};
    if (instance == "2Dkuzmin") return {points_kuzmin_2d(n)};
    throw std::invalid_argument("convexHull: unknown instance " +
                                std::string(instance));
  }

  template <typename Sched>
  static output run(Sched& sched, const input& in) {
    const auto& pts = in.points;
    const std::size_t n = pts.size();
    output out;
    if (n < 3) {
      for (std::uint32_t i = 0; i < n; ++i) out.hull.push_back(i);
      return out;
    }
    sched.run([&] {
      // Extremes by x (ties by y): a parallel index reduction.
      const auto cmp_idx = [&](std::uint32_t a, std::uint32_t b) {
        if (pts[a].x != pts[b].x) return pts[a].x < pts[b].x;
        return pts[a].y < pts[b].y;
      };
      std::vector<std::uint32_t> idx(n);
      par::parallel_for(sched, 0, n, [&](std::size_t i) {
        idx[i] = static_cast<std::uint32_t>(i);
      });
      const std::uint32_t leftmost = par::reduce(
          sched, idx.begin(), n, std::uint32_t{0},
          [&](std::uint32_t a, std::uint32_t b) {
            return cmp_idx(a, b) ? a : b;
          });
      const std::uint32_t rightmost = par::reduce(
          sched, idx.begin(), n, leftmost,
          [&](std::uint32_t a, std::uint32_t b) {
            return cmp_idx(a, b) ? b : a;
          });
      // Split into strictly-above / strictly-below the chord.
      auto upper = par::filter(sched, idx.begin(), n, [&](std::uint32_t i) {
        return cross(pts[leftmost], pts[rightmost], pts[i]) > 0;
      });
      auto lower = par::filter(sched, idx.begin(), n, [&](std::uint32_t i) {
        return cross(pts[rightmost], pts[leftmost], pts[i]) > 0;
      });
      std::vector<std::uint32_t> upper_hull, lower_hull;
      sched.pardo(
          [&] {
            upper_hull = quickhull(sched, pts, std::move(upper), leftmost,
                                   rightmost);
          },
          [&] {
            lower_hull = quickhull(sched, pts, std::move(lower), rightmost,
                                   leftmost);
          });
      out.hull.reserve(upper_hull.size() + lower_hull.size() + 2);
      out.hull.push_back(leftmost);
      // quickhull returns the chain strictly between its endpoints, in
      // order from `a` to `b`; `upper` is the left->right chain seen CCW
      // from below... assemble CCW: left, lower chain, right, upper chain.
      out.hull.insert(out.hull.end(), lower_hull.rbegin(), lower_hull.rend());
      out.hull.push_back(rightmost);
      out.hull.insert(out.hull.end(), upper_hull.rbegin(), upper_hull.rend());
    });
    return out;
  }

  static bool check(const input& in, const output& out) {
    const auto& pts = in.points;
    const std::size_t h = out.hull.size();
    if (pts.size() < 3) return h == pts.size();
    if (h < 3) return false;
    // Convexity and orientation: every consecutive triple turns the same
    // way (allowing collinear).
    for (std::size_t i = 0; i < h; ++i) {
      const auto a = pts[out.hull[i]];
      const auto b = pts[out.hull[(i + 1) % h]];
      const auto c = pts[out.hull[(i + 2) % h]];
      if (cross(a, b, c) < -1e-12) return false;
    }
    // Containment: no input point lies strictly outside any hull edge.
    for (std::size_t i = 0; i < h; ++i) {
      const auto a = pts[out.hull[i]];
      const auto b = pts[out.hull[(i + 1) % h]];
      for (const auto& p : pts) {
        if (cross(a, b, p) < -1e-9) return false;
      }
    }
    return true;
  }

 private:
  // Points strictly left of chord a->b, returns the hull chain between a
  // and b (exclusive) ordered from b-side to a-side recursion; assembled
  // by the caller.
  template <typename Sched>
  static std::vector<std::uint32_t> quickhull(
      Sched& sched, const std::vector<point2d>& pts,
      std::vector<std::uint32_t> candidates, std::uint32_t a,
      std::uint32_t b) {
    if (candidates.empty()) return {};
    if (candidates.size() <= 256) {
      return quickhull_seq(pts, std::move(candidates), a, b);
    }
    // Farthest point from the chord.
    const std::uint32_t far = par::reduce(
        sched, candidates.begin(), candidates.size(), candidates[0],
        [&](std::uint32_t x, std::uint32_t y) {
          const double cx = cross(pts[a], pts[b], pts[x]);
          const double cy = cross(pts[a], pts[b], pts[y]);
          return cx >= cy ? x : y;
        });
    auto left = par::filter(sched, candidates.begin(), candidates.size(),
                            [&](std::uint32_t i) {
                              return cross(pts[a], pts[far], pts[i]) > 0;
                            });
    auto right = par::filter(sched, candidates.begin(), candidates.size(),
                             [&](std::uint32_t i) {
                               return cross(pts[far], pts[b], pts[i]) > 0;
                             });
    candidates.clear();
    candidates.shrink_to_fit();
    std::vector<std::uint32_t> left_chain, right_chain;
    sched.pardo(
        [&] { left_chain = quickhull(sched, pts, std::move(left), a, far); },
        [&] {
          right_chain = quickhull(sched, pts, std::move(right), far, b);
        });
    // Chain ordered from a to b: left chain, far, right chain.
    std::vector<std::uint32_t> chain;
    chain.reserve(left_chain.size() + right_chain.size() + 1);
    chain.insert(chain.end(), left_chain.begin(), left_chain.end());
    chain.push_back(far);
    chain.insert(chain.end(), right_chain.begin(), right_chain.end());
    return chain;
  }

  static std::vector<std::uint32_t> quickhull_seq(
      const std::vector<point2d>& pts, std::vector<std::uint32_t> candidates,
      std::uint32_t a, std::uint32_t b) {
    if (candidates.empty()) return {};
    std::uint32_t far = candidates[0];
    double best = cross(pts[a], pts[b], pts[far]);
    for (const auto i : candidates) {
      const double c = cross(pts[a], pts[b], pts[i]);
      if (c > best) {
        best = c;
        far = i;
      }
    }
    std::vector<std::uint32_t> left, right;
    for (const auto i : candidates) {
      if (cross(pts[a], pts[far], pts[i]) > 0) left.push_back(i);
      if (cross(pts[far], pts[b], pts[i]) > 0) right.push_back(i);
    }
    auto chain = quickhull_seq(pts, std::move(left), a, far);
    chain.push_back(far);
    const auto rchain = quickhull_seq(pts, std::move(right), far, b);
    chain.insert(chain.end(), rchain.begin(), rchain.end());
    return chain;
  }
};

}  // namespace lcws::pbbs
