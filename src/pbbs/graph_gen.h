// PBBS-style graph input instances: rMatGraph (power-law), randLocalGraph
// (uniform-ish with locality), and 3Dgrid (mesh). Deterministic in the
// seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pbbs/graph.h"
#include "support/rng.h"

namespace lcws::pbbs {

// Recursive-matrix (R-MAT) generator with the usual (a,b,c,d) skew,
// yielding a power-law degree distribution like PBBS's rMatGraph inputs.
inline graph rmat_graph(std::size_t n_target, std::size_t m,
                        std::uint64_t seed = 20, double a = 0.5,
                        double b = 0.1, double c = 0.1) {
  // Round vertices up to a power of two for the quadrant recursion.
  std::size_t n = 1;
  while (n < n_target) n <<= 1;
  xoshiro256 rng(seed);
  std::vector<edge> edges;
  edges.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    std::size_t u = 0, v = 0;
    for (std::size_t bit = n >> 1; bit > 0; bit >>= 1) {
      const double r = rng.uniform();
      if (r < a) {
        // top-left: nothing set
      } else if (r < a + b) {
        v |= bit;
      } else if (r < a + b + c) {
        u |= bit;
      } else {
        u |= bit;
        v |= bit;
      }
    }
    edges.push_back({static_cast<vertex_id>(u), static_cast<vertex_id>(v)});
  }
  return graph::from_edges(n, std::move(edges));
}

// Each vertex gets `degree` edges to targets within a local window (PBBS's
// randLocalGraph flavour: near-uniform degrees, good locality).
inline graph rand_local_graph(std::size_t n, std::size_t degree = 8,
                              std::uint64_t seed = 21) {
  xoshiro256 rng(seed);
  std::vector<edge> edges;
  edges.reserve(n * degree);
  const std::size_t window = std::max<std::size_t>(16, n / 16);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t k = 0; k < degree; ++k) {
      const std::size_t offset = 1 + rng.bounded(window);
      const std::size_t v = (u + offset) % n;
      edges.push_back({static_cast<vertex_id>(u), static_cast<vertex_id>(v)});
    }
  }
  return graph::from_edges(n, std::move(edges));
}

// 3D grid/torus: vertex (x,y,z) connects to its 6 lattice neighbours
// (PBBS's 3Dgrid inputs). n is rounded down to a cube.
inline graph grid3d_graph(std::size_t n_target) {
  std::size_t side = 1;
  while ((side + 1) * (side + 1) * (side + 1) <= n_target) ++side;
  const std::size_t n = side * side * side;
  const auto id = [side](std::size_t x, std::size_t y, std::size_t z) {
    return static_cast<vertex_id>((x * side + y) * side + z);
  };
  std::vector<edge> edges;
  edges.reserve(3 * n);
  for (std::size_t x = 0; x < side; ++x) {
    for (std::size_t y = 0; y < side; ++y) {
      for (std::size_t z = 0; z < side; ++z) {
        edges.push_back({id(x, y, z), id((x + 1) % side, y, z)});
        edges.push_back({id(x, y, z), id(x, (y + 1) % side, z)});
        edges.push_back({id(x, y, z), id(x, y, (z + 1) % side)});
      }
    }
  }
  return graph::from_edges(n, std::move(edges));
}

}  // namespace lcws::pbbs
