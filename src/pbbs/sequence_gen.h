// PBBS-style sequence input instances.
//
// PBBS names its inputs after the generator that produced them; we keep the
// same vocabulary: randomSeq (uniform), exptSeq (exponentially distributed
// — a few very frequent values, a long tail), almostSortedSeq (sorted with
// sparse random swaps), and bounded-range variants used by histogram and
// the pair-sorting instances. All generators are deterministic functions of
// (seed, i) so instances are reproducible regardless of scheduling.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "support/rng.h"

namespace lcws::pbbs {

// Uniform 64-bit values in [0, bound) (bound == 0: full range).
inline std::vector<std::uint64_t> random_seq(std::size_t n,
                                             std::uint64_t bound = 0,
                                             std::uint64_t seed = 1) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t r = hash64(seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    v[i] = bound == 0 ? r : r % bound;
  }
  return v;
}

// Exponentially distributed keys as in PBBS's exptSeq: value v appears with
// probability ~ 2^-v scaled into [0, bound).
inline std::vector<std::uint64_t> expt_seq(std::size_t n,
                                           std::uint64_t bound = 1u << 27,
                                           std::uint64_t seed = 2) {
  std::vector<std::uint64_t> v(n);
  const double lambda = 16.0 / static_cast<double>(bound);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t r = hash64(seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    const double u = static_cast<double>(r >> 11) * 0x1.0p-53;
    const double e = -std::log(1.0 - u) / lambda;
    std::uint64_t x = static_cast<std::uint64_t>(e);
    if (x >= bound) x = bound - 1;
    v[i] = x;
  }
  return v;
}

// Sorted sequence with ~sqrt(n) random transpositions (PBBS
// almostSortedSeq).
inline std::vector<std::uint64_t> almost_sorted_seq(std::size_t n,
                                                    std::uint64_t seed = 3) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i;
  xoshiro256 rng(seed);
  const std::size_t swaps = static_cast<std::size_t>(
      std::sqrt(static_cast<double>(n)));
  for (std::size_t s = 0; s < swaps && n > 1; ++s) {
    std::swap(v[rng.bounded(n)], v[rng.bounded(n)]);
  }
  return v;
}

// Uniform doubles in [0, 1).
inline std::vector<double> random_double_seq(std::size_t n,
                                             std::uint64_t seed = 4) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<double>(
               hash64(seed ^ (0x9e3779b97f4a7c15ULL * (i + 1))) >> 11) *
           0x1.0p-53;
  }
  return v;
}

// Exponentially distributed doubles.
inline std::vector<double> expt_double_seq(std::size_t n,
                                           std::uint64_t seed = 5) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u =
        static_cast<double>(
            hash64(seed ^ (0x9e3779b97f4a7c15ULL * (i + 1))) >> 11) *
        0x1.0p-53;
    v[i] = -std::log(1.0 - u);
  }
  return v;
}

// Key/value pairs with keys drawn uniformly from [0, key_bound).
inline std::vector<std::pair<std::uint64_t, std::uint64_t>> random_pair_seq(
    std::size_t n, std::uint64_t key_bound, std::uint64_t seed = 6) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t r = hash64(seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    v[i] = {key_bound == 0 ? r : r % key_bound, i};
  }
  return v;
}

}  // namespace lcws::pbbs
