// Compressed-sparse-row graphs for the PBBS graph workloads.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace lcws::pbbs {

using vertex_id = std::uint32_t;

struct edge {
  vertex_id u;
  vertex_id v;

  friend bool operator==(const edge&, const edge&) = default;
};

// Undirected graph in CSR form; every edge {u,v} appears as both (u,v) and
// (v,u) in the adjacency structure.
class graph {
 public:
  graph() = default;

  // Builds from an undirected edge list (self-loops and duplicates are
  // removed). Sequential; generation is not part of any timed region.
  static graph from_edges(std::size_t n, std::vector<edge> edges) {
    // Symmetrize, canonicalize, dedupe.
    std::vector<edge> sym;
    sym.reserve(edges.size() * 2);
    for (const auto& e : edges) {
      if (e.u == e.v || e.u >= n || e.v >= n) continue;
      sym.push_back({e.u, e.v});
      sym.push_back({e.v, e.u});
    }
    std::sort(sym.begin(), sym.end(), [](const edge& a, const edge& b) {
      return a.u != b.u ? a.u < b.u : a.v < b.v;
    });
    sym.erase(std::unique(sym.begin(), sym.end()), sym.end());

    graph g;
    g.offsets_.assign(n + 1, 0);
    for (const auto& e : sym) ++g.offsets_[e.u + 1];
    for (std::size_t i = 1; i <= n; ++i) g.offsets_[i] += g.offsets_[i - 1];
    g.adjacency_.resize(sym.size());
    for (std::size_t i = 0; i < sym.size(); ++i) {
      g.adjacency_[i] = sym[i].v;  // sym is sorted by u, then v
    }
    return g;
  }

  std::size_t num_vertices() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  // Directed arc count (2x the undirected edge count).
  std::size_t num_arcs() const noexcept { return adjacency_.size(); }

  std::span<const vertex_id> neighbors(vertex_id v) const noexcept {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  std::size_t degree(vertex_id v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  // Unique undirected edges (u < v), for the edge-centric workloads.
  std::vector<edge> undirected_edges() const {
    std::vector<edge> out;
    out.reserve(num_arcs() / 2);
    for (vertex_id u = 0; u < num_vertices(); ++u) {
      for (const vertex_id v : neighbors(u)) {
        if (u < v) out.push_back({u, v});
      }
    }
    return out;
  }

 private:
  std::vector<std::size_t> offsets_;
  std::vector<vertex_id> adjacency_;
};

}  // namespace lcws::pbbs
