// Reusable parallel suffix-array construction (prefix doubling) and LCP
// computation — shared by the suffixArray and longestRepeatedSubstring
// workloads.
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "parallel/integer_sort.h"
#include "parallel/parallel_for.h"
#include "parallel/scan.h"

namespace lcws::pbbs {

// Manber-Myers prefix doubling with radix sorting: O(n log^2 n) work.
template <typename Sched>
std::vector<std::uint32_t> build_suffix_array(Sched& sched,
                                              std::string_view s) {
  const std::size_t n = s.size();
  std::vector<std::uint32_t> sa(n);
  if (n == 0) return sa;

  std::vector<std::uint32_t> rank(n), next_rank(n);
  std::vector<std::pair<std::uint64_t, std::uint32_t>> keyed(n);
  par::parallel_for(sched, 0, n, [&](std::size_t i) {
    rank[i] = static_cast<unsigned char>(s[i]);
    sa[i] = static_cast<std::uint32_t>(i);
  });

  unsigned rank_bits = 9;  // > 8 bits of char ranks (+1 shift below)
  for (std::size_t k = 1;; k <<= 1) {
    // Key: (rank[i], rank[i+k]+1) packed; +1 reserves 0 for "past the
    // end", which sorts before every real rank.
    par::parallel_for(sched, 0, n, [&](std::size_t i) {
      const std::uint64_t hi = rank[i];
      const std::uint64_t lo = i + k < n ? rank[i + k] + 1 : 0;
      keyed[i] = {(hi << rank_bits) | lo, static_cast<std::uint32_t>(i)};
    });
    par::integer_sort(
        sched, keyed, [](const auto& p) { return p.first; }, 2 * rank_bits);
    // Re-rank: position of each distinct key among the sorted keys.
    std::vector<std::uint32_t> boundary(n);
    par::parallel_for(sched, 0, n, [&](std::size_t j) {
      boundary[j] = j > 0 && keyed[j].first != keyed[j - 1].first;
    });
    std::vector<std::uint32_t> class_of(n);
    const std::uint32_t classes =
        static_cast<std::uint32_t>(par::scan_exclusive(
            sched, boundary.begin(), class_of.begin(), n, std::uint32_t{0},
            [](std::uint32_t a, std::uint32_t b) { return a + b; })) +
        1;
    par::parallel_for(sched, 0, n, [&](std::size_t j) {
      next_rank[keyed[j].second] = class_of[j] + boundary[j];
      sa[j] = keyed[j].second;
    });
    std::swap(rank, next_rank);
    if (classes == n) break;  // all suffixes distinguished
    // The low field holds rank+1 <= classes, so 2^rank_bits must exceed
    // `classes`; the high field (<= classes-1) then fits too.
    rank_bits = 1;
    while ((std::uint64_t{1} << rank_bits) < std::uint64_t{classes} + 1) {
      ++rank_bits;
    }
    if (k >= n) break;  // defensive: cannot refine further
  }
  return sa;
}

// LCP of adjacent suffix-array entries by direct comparison: lcp[j] =
// lcp(s[sa[j-1]..], s[sa[j]..]), lcp[0] = 0. Worst case O(n * max_lcp)
// work, fine for natural-text workloads (short average LCP) and trivially
// parallel; Kasai's O(n) algorithm is inherently sequential.
template <typename Sched>
std::vector<std::uint32_t> adjacent_lcp(Sched& sched, std::string_view s,
                                        const std::vector<std::uint32_t>& sa) {
  std::vector<std::uint32_t> lcp(sa.size(), 0);
  par::parallel_for(sched, 1, sa.size(), [&](std::size_t j) {
    const std::size_t a = sa[j - 1];
    const std::size_t b = sa[j];
    const std::size_t limit = s.size() - std::max(a, b);
    std::size_t len = 0;
    while (len < limit && s[a + len] == s[b + len]) ++len;
    lcp[j] = static_cast<std::uint32_t>(len);
  });
  return lcp;
}

}  // namespace lcws::pbbs
