// 3D geometry primitives for the rayCast workload: vectors, axis-aligned
// boxes with slab-test ray intersection, and Möller-Trumbore ray-triangle
// intersection.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

namespace lcws::pbbs {

struct vec3 {
  double x = 0, y = 0, z = 0;

  friend vec3 operator+(vec3 a, vec3 b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend vec3 operator-(vec3 a, vec3 b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend vec3 operator*(vec3 a, double s) {
    return {a.x * s, a.y * s, a.z * s};
  }
  friend bool operator==(const vec3&, const vec3&) = default;
};

inline double dot(vec3 a, vec3 b) noexcept {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

inline vec3 cross3(vec3 a, vec3 b) noexcept {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}

struct triangle {
  vec3 a, b, c;

  vec3 centroid() const noexcept {
    return {(a.x + b.x + c.x) / 3, (a.y + b.y + c.y) / 3,
            (a.z + b.z + c.z) / 3};
  }
};

struct ray {
  vec3 origin;
  vec3 direction;  // need not be normalized
};

// Axis-aligned bounding box.
struct aabb {
  vec3 lo{std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::infinity()};
  vec3 hi{-std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()};

  void expand(vec3 p) noexcept {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }

  void expand(const aabb& other) noexcept {
    expand(other.lo);
    expand(other.hi);
  }

  void expand(const triangle& t) noexcept {
    expand(t.a);
    expand(t.b);
    expand(t.c);
  }

  // Slab test: does the ray hit the box at parameter t in [0, t_max)?
  bool hit(const ray& r, double t_max) const noexcept {
    double t0 = 0, t1 = t_max;
    const double o[3] = {r.origin.x, r.origin.y, r.origin.z};
    const double d[3] = {r.direction.x, r.direction.y, r.direction.z};
    const double l[3] = {lo.x, lo.y, lo.z};
    const double h[3] = {hi.x, hi.y, hi.z};
    for (int axis = 0; axis < 3; ++axis) {
      if (d[axis] == 0.0) {
        if (o[axis] < l[axis] || o[axis] > h[axis]) return false;
        continue;
      }
      const double inv = 1.0 / d[axis];
      double near = (l[axis] - o[axis]) * inv;
      double far = (h[axis] - o[axis]) * inv;
      if (near > far) std::swap(near, far);
      t0 = std::max(t0, near);
      t1 = std::min(t1, far);
      if (t0 > t1) return false;
    }
    return true;
  }
};

// Möller-Trumbore; returns the hit parameter t >= 0 or a negative value on
// miss.
inline double ray_triangle(const ray& r, const triangle& tri) noexcept {
  constexpr double eps = 1e-12;
  const vec3 e1 = tri.b - tri.a;
  const vec3 e2 = tri.c - tri.a;
  const vec3 p = cross3(r.direction, e2);
  const double det = dot(e1, p);
  if (std::abs(det) < eps) return -1.0;
  const double inv_det = 1.0 / det;
  const vec3 s = r.origin - tri.a;
  const double u = dot(s, p) * inv_det;
  if (u < 0.0 || u > 1.0) return -1.0;
  const vec3 q = cross3(s, e1);
  const double v = dot(r.direction, q) * inv_det;
  if (v < 0.0 || u + v > 1.0) return -1.0;
  const double t = dot(e2, q) * inv_det;
  return t >= 0.0 ? t : -1.0;
}

}  // namespace lcws::pbbs
