// PBBS-style point-set input instances for convexHull and
// nearestNeighbors: 2DinCube (uniform in the unit square), 2DinSphere
// (uniform in the unit disc), and 2Dkuzmin (heavily clustered radial
// distribution).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <numbers>
#include <vector>

#include "pbbs/geometry.h"
#include "support/rng.h"

namespace lcws::pbbs {

inline std::vector<point2d> points_in_cube_2d(std::size_t n,
                                              std::uint64_t seed = 30) {
  xoshiro256 rng(seed);
  std::vector<point2d> pts(n);
  for (auto& p : pts) p = {rng.uniform(), rng.uniform()};
  return pts;
}

inline std::vector<point2d> points_in_sphere_2d(std::size_t n,
                                                std::uint64_t seed = 31) {
  xoshiro256 rng(seed);
  std::vector<point2d> pts(n);
  for (auto& p : pts) {
    // Uniform in the disc: radius = sqrt(u).
    const double r = std::sqrt(rng.uniform());
    const double theta = 2.0 * std::numbers::pi * rng.uniform();
    p = {r * std::cos(theta), r * std::sin(theta)};
  }
  return pts;
}

// Kuzmin disc: density falls off sharply with radius, producing the dense
// central cluster PBBS's 2Dkuzmin inputs have.
inline std::vector<point2d> points_kuzmin_2d(std::size_t n,
                                             std::uint64_t seed = 32) {
  xoshiro256 rng(seed);
  std::vector<point2d> pts(n);
  for (auto& p : pts) {
    const double u = rng.uniform();
    // Inverse CDF of the Kuzmin profile: r = sqrt(1/(1-u)^2 - 1).
    const double denom = 1.0 - 0.999 * u;
    const double r = std::sqrt(1.0 / (denom * denom) - 1.0);
    const double theta = 2.0 * std::numbers::pi * rng.uniform();
    p = {r * std::cos(theta), r * std::sin(theta)};
  }
  return pts;
}

}  // namespace lcws::pbbs
