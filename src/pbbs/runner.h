// Benchmark-configuration runner: the glue between the PBBS-style workload
// modules and the figure harnesses.
//
// Section 5 of the paper defines a *benchmark configuration* as the triple
// <benchmark, input_instance, number_of_processors>; every figure
// aggregates over all configurations. This runner enumerates the
// configurations, generates (and caches) inputs, and executes one
// configuration under a given scheduler, returning wall-clock time plus
// the synchronization-operation profile.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "sched/policies.h"
#include "stats/counters.h"

namespace lcws::pbbs {

struct config {
  std::string benchmark;
  std::string instance;

  std::string key() const { return benchmark + "/" + instance; }
};

struct run_result {
  double seconds = 0;       // median over rounds of the timed kernel
  bool checked = false;     // whether the output was validated
  bool ok = false;          // validation verdict (when checked)
  stats::profile profile;   // counters aggregated over all rounds
};

// Every <benchmark, instance> pair in the suite.
std::vector<config> all_configs();

// The benchmarks in the suite (names).
std::vector<std::string> all_benchmarks();

// Default input size for a benchmark, scaled by `scale` (1.0 = default).
// Chosen so a single run takes fractions of a second on a laptop core.
std::size_t default_size(std::string_view benchmark, double scale = 1.0);

// Runs one configuration: builds (or reuses) the input, executes `rounds`
// timed repetitions under a fresh scheduler of `kind` with `workers`
// workers, optionally validating the first round's output.
run_result run_config(sched_kind kind, std::size_t workers,
                      const config& cfg, std::size_t size, int rounds = 3,
                      bool validate = false);

// Drops all cached inputs (tests use this to bound memory).
void clear_input_cache();

}  // namespace lcws::pbbs
