#include "support/topology.h"

#include <sys/utsname.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

namespace lcws {
namespace {

// Trims ASCII whitespace from both ends.
std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

// Splits "key : value" cpuinfo/meminfo lines.
bool split_kv(const std::string& line, std::string& key, std::string& value) {
  const auto colon = line.find(':');
  if (colon == std::string::npos) return false;
  key = trim(line.substr(0, colon));
  value = trim(line.substr(colon + 1));
  return true;
}

// First line of a sysfs file, trimmed; empty when unreadable.
std::string read_line(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::string line;
  std::getline(in, line);
  return trim(line);
}

// Parses a sysfs integer attribute; `fallback` when absent/garbled.
int read_int(const std::string& path, int fallback) {
  const std::string s = read_line(path);
  if (s.empty()) return fallback;
  try {
    return std::stoi(s);
  } catch (...) {
    return fallback;
  }
}

// Parses a sysfs cpulist ("0-3,8,10-11") into CPU ids; empty on failure.
std::vector<int> parse_cpulist(const std::string& list) {
  std::vector<int> out;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = trim(item);
    if (item.empty()) continue;
    const auto dash = item.find('-');
    try {
      if (dash == std::string::npos) {
        out.push_back(std::stoi(item));
      } else {
        const int lo = std::stoi(item.substr(0, dash));
        const int hi = std::stoi(item.substr(dash + 1));
        for (int c = lo; c <= hi && c - lo < 4096; ++c) out.push_back(c);
      }
    } catch (...) {
      return {};
    }
  }
  return out;
}

// Group id normalization: the smallest CPU in the group's cpulist, or
// `fallback` when the attribute is missing.
int group_of(const std::string& path, int fallback) {
  const auto cpus = parse_cpulist(read_line(path));
  if (cpus.empty()) return fallback;
  return *std::min_element(cpus.begin(), cpus.end());
}

bool exists(const std::string& path) {
  std::ifstream in(path);
  return static_cast<bool>(in);
}

// Last-level-cache domain of one CPU: the shared_cpu_list of the highest
// populated cache index (index3 = L3, else index2 = L2), normalized to its
// smallest member; falls back to the die, then -1.
int llc_group(const std::string& cpu_dir) {
  for (const char* index : {"index3", "index2"}) {
    const std::string shared =
        cpu_dir + "/cache/" + index + "/shared_cpu_list";
    if (exists(shared)) return group_of(shared, -1);
  }
  const std::string die = cpu_dir + "/topology/die_cpus_list";
  if (exists(die)) return group_of(die, -1);
  return -1;
}

// Drops degenerate cluster groups: a "cluster" equal to its core (nothing
// between core and LLC) or spanning at least its LLC (kernels report the
// whole package when clustering is unsupported) would break the tier
// ordering smt < core < llc, so it is treated as absent.
void normalize_clusters(cpu_topology& topo) {
  std::map<int, std::size_t> cluster_size, core_size, llc_size;
  for (const auto& c : topo.cpus) {
    if (c.cluster >= 0) ++cluster_size[c.cluster];
    if (c.smt_group >= 0) ++core_size[c.smt_group];
    if (c.llc >= 0) ++llc_size[c.llc];
  }
  for (auto& c : topo.cpus) {
    if (c.cluster < 0) continue;
    const std::size_t size = cluster_size[c.cluster];
    const bool degenerate_core =
        c.smt_group >= 0 && size <= core_size[c.smt_group];
    const bool degenerate_llc = c.llc >= 0 && size >= llc_size[c.llc];
    if (degenerate_core || degenerate_llc) c.cluster = -1;
  }
}

}  // namespace

const char* to_string(locality_tier tier) noexcept {
  switch (tier) {
    case locality_tier::smt: return "smt";
    case locality_tier::core: return "core";
    case locality_tier::llc: return "llc";
    case locality_tier::socket: return "socket";
    case locality_tier::remote: return "remote";
  }
  return "?";
}

const cpu_topology::cpu_info* cpu_topology::find(int cpu) const noexcept {
  // cpus is sorted by id; binary search keeps classify() cheap.
  const auto it = std::lower_bound(
      cpus.begin(), cpus.end(), cpu,
      [](const cpu_info& info, int c) { return info.cpu < c; });
  if (it == cpus.end() || it->cpu != cpu) return nullptr;
  return &*it;
}

std::size_t cpu_topology::socket_count() const {
  std::set<int> ids;
  for (const auto& c : cpus) {
    if (c.socket >= 0) ids.insert(c.socket);
  }
  return ids.size();
}

std::size_t cpu_topology::core_count() const {
  std::set<int> ids;
  for (const auto& c : cpus) {
    if (c.smt_group >= 0) ids.insert(c.smt_group);
  }
  return ids.size();
}

std::size_t cpu_topology::node_count() const {
  std::set<int> ids;
  for (const auto& c : cpus) {
    if (c.node >= 0) ids.insert(c.node);
  }
  return ids.size();
}

cpu_topology probe_topology() { return probe_topology("/sys"); }

cpu_topology probe_topology(const std::string& sysfs_root) {
  cpu_topology topo;
  const std::string cpu_root = sysfs_root + "/devices/system/cpu";

  // Enumerate online CPUs: the `online` cpulist when present, else scan
  // for cpuN/topology directories (some fixture/container trees omit the
  // aggregate files).
  std::vector<int> online = parse_cpulist(read_line(cpu_root + "/online"));
  if (online.empty()) {
    for (int c = 0; c < 4096; ++c) {
      const std::string dir = cpu_root + "/cpu" + std::to_string(c);
      if (!exists(dir + "/topology/core_id") &&
          !exists(dir + "/topology/thread_siblings_list")) {
        if (c > 0) break;  // cpu0 may lack an online file but must exist
        continue;
      }
      online.push_back(c);
    }
  }
  std::sort(online.begin(), online.end());
  online.erase(std::unique(online.begin(), online.end()), online.end());

  for (const int c : online) {
    const std::string dir = cpu_root + "/cpu" + std::to_string(c);
    const std::string topo_dir = dir + "/topology";
    cpu_topology::cpu_info info;
    info.cpu = c;
    info.smt_group = group_of(topo_dir + "/thread_siblings_list",
                              group_of(topo_dir + "/core_cpus_list", -1));
    info.cluster = group_of(topo_dir + "/cluster_cpus_list", -1);
    info.llc = llc_group(dir);
    info.socket = read_int(topo_dir + "/physical_package_id", -1);
    if (info.smt_group >= 0 || info.socket >= 0 || info.llc >= 0) {
      topo.from_sysfs = true;
    }
    topo.cpus.push_back(info);
  }

  if (!topo.from_sysfs) {
    // Flat fallback: every level unknown; classify() lands everything in
    // the remote tier and victim selection degrades to success-weighted
    // uniform sampling.
    topo.cpus.clear();
    unsigned n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
    for (unsigned c = 0; c < n; ++c) {
      cpu_topology::cpu_info info;
      info.cpu = static_cast<int>(c);
      topo.cpus.push_back(info);
    }
    return topo;
  }

  // NUMA nodes.
  const std::string node_root = sysfs_root + "/devices/system/node";
  for (int n = 0; n < 1024; ++n) {
    const std::string list =
        read_line(node_root + "/node" + std::to_string(n) + "/cpulist");
    if (list.empty()) {
      if (n > 0) break;
      continue;  // node0 can be absent on some single-node containers
    }
    const std::vector<int> node_cpus = parse_cpulist(list);
    for (auto& info : topo.cpus) {
      if (std::find(node_cpus.begin(), node_cpus.end(), info.cpu) !=
          node_cpus.end()) {
        info.node = n;
      }
    }
  }

  normalize_clusters(topo);
  return topo;
}

locality_tier classify(const cpu_topology& topo, int cpu_a,
                       int cpu_b) noexcept {
  if (cpu_a == cpu_b && cpu_a >= 0) return locality_tier::smt;
  const auto* a = topo.find(cpu_a);
  const auto* b = topo.find(cpu_b);
  if (a == nullptr || b == nullptr) return locality_tier::remote;
  // NUMA boundary dominates: a different node is remote even inside one
  // package (sub-NUMA clustering).
  const bool same_node = a->node < 0 || b->node < 0 || a->node == b->node;
  if (!same_node) return locality_tier::remote;
  if (a->smt_group >= 0 && a->smt_group == b->smt_group) {
    return locality_tier::smt;
  }
  if (a->cluster >= 0 && a->cluster == b->cluster) return locality_tier::core;
  if (a->llc >= 0 && a->llc == b->llc) return locality_tier::llc;
  if (a->socket >= 0 && a->socket == b->socket) return locality_tier::socket;
  return locality_tier::remote;
}

std::vector<int> pin_order(const cpu_topology& topo, pin_mode mode) {
  if (mode == pin_mode::off || topo.cpus.empty()) return {};
  // Compact order: hierarchy-major, so consecutive CPUs share the deepest
  // possible level (SMT siblings adjacent, then cores, LLCs, sockets).
  std::vector<cpu_topology::cpu_info> sorted = topo.cpus;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) {
                     return std::tie(a.node, a.socket, a.llc, a.cluster,
                                     a.smt_group, a.cpu) <
                            std::tie(b.node, b.socket, b.llc, b.cluster,
                                     b.smt_group, b.cpu);
                   });
  if (mode == pin_mode::compact) {
    std::vector<int> out;
    out.reserve(sorted.size());
    for (const auto& c : sorted) out.push_back(c.cpu);
    return out;
  }
  // Scatter: breadth-first over the same order — the first thread of every
  // core across all sockets (round-robin), then the second threads, and so
  // on. P <= core-count workers land one-per-core with full memory
  // bandwidth instead of stacking SMT siblings.
  std::map<int, std::vector<int>> by_core;  // smt group -> cpus, compact order
  std::vector<int> core_order;              // first-appearance order
  for (const auto& c : sorted) {
    const int group = c.smt_group >= 0 ? c.smt_group : c.cpu;
    auto [it, inserted] = by_core.try_emplace(group);
    if (inserted) core_order.push_back(group);
    it->second.push_back(c.cpu);
  }
  // Round-robin cores across sockets: interleave by socket bucket.
  std::map<int, std::vector<int>> socket_cores;  // socket -> core groups
  std::vector<int> socket_order;
  for (const int group : core_order) {
    const auto* info = topo.find(by_core[group].front());
    const int socket = info != nullptr ? info->socket : -1;
    auto [it, inserted] = socket_cores.try_emplace(socket);
    if (inserted) socket_order.push_back(socket);
    it->second.push_back(group);
  }
  std::vector<int> interleaved_cores;
  for (std::size_t i = 0; !socket_order.empty(); ++i) {
    bool any = false;
    for (const int socket : socket_order) {
      auto& cores = socket_cores[socket];
      if (i < cores.size()) {
        interleaved_cores.push_back(cores[i]);
        any = true;
      }
    }
    if (!any) break;
  }
  std::vector<int> out;
  out.reserve(topo.cpus.size());
  for (std::size_t rank = 0; out.size() < topo.cpus.size(); ++rank) {
    bool any = false;
    for (const int group : interleaved_cores) {
      const auto& threads = by_core[group];
      if (rank < threads.size()) {
        out.push_back(threads[rank]);
        any = true;
      }
    }
    if (!any) break;
  }
  return out;
}

victim_table build_victim_table(const cpu_topology& topo,
                                const std::vector<int>& cpu_of_worker,
                                std::size_t self) {
  victim_table table;
  const std::size_t n = cpu_of_worker.size();
  table.tier_of.assign(n, static_cast<unsigned char>(locality_tier::remote));
  if (self < n) {
    table.tier_of[self] = static_cast<unsigned char>(locality_tier::smt);
  }
  std::array<std::vector<std::uint32_t>, kNumLocalityTiers> buckets;
  const int self_cpu = self < n ? cpu_of_worker[self] : -1;
  for (std::size_t v = 0; v < n; ++v) {
    if (v == self) continue;
    locality_tier tier = locality_tier::remote;
    if (self_cpu >= 0 && cpu_of_worker[v] >= 0) {
      tier = classify(topo, self_cpu, cpu_of_worker[v]);
    }
    table.tier_of[v] = static_cast<unsigned char>(tier);
    buckets[static_cast<std::size_t>(tier)].push_back(
        static_cast<std::uint32_t>(v));
  }
  table.order.reserve(n == 0 ? 0 : n - 1);
  for (std::size_t t = 0; t < kNumLocalityTiers; ++t) {
    table.tier_begin[t] = static_cast<std::uint32_t>(table.order.size());
    table.order.insert(table.order.end(), buckets[t].begin(),
                       buckets[t].end());
  }
  table.tier_begin[kNumLocalityTiers] =
      static_cast<std::uint32_t>(table.order.size());
  return table;
}

machine_info probe_machine() { return probe_machine("/proc", "/sys"); }

machine_info probe_machine(const std::string& proc_root,
                           const std::string& sysfs_root) {
  machine_info info;
  info.logical_cpus = std::thread::hardware_concurrency();
  if (info.logical_cpus == 0) info.logical_cpus = 1;

  std::ifstream cpuinfo(proc_root + "/cpuinfo");
  std::set<std::string> physical_ids;
  std::set<std::pair<std::string, std::string>> cores;  // (physical id, core id)
  std::string current_physical_id;
  std::string line, key, value;
  while (std::getline(cpuinfo, line)) {
    if (!split_kv(line, key, value)) continue;
    if (key == "model name" && info.cpu_model.empty()) {
      info.cpu_model = value;
    } else if (key == "physical id") {
      current_physical_id = value;
      physical_ids.insert(value);
    } else if (key == "core id") {
      cores.insert({current_physical_id, value});
    }
  }
  info.sockets = physical_ids.size();
  info.physical_cores = cores.size();

  // Prefer sysfs: /proc/cpuinfo omits `physical id`/`core id` on ARM and
  // in many containers, which used to report 0 sockets / 0 cores.
  const cpu_topology topo = probe_topology(sysfs_root);
  if (topo.from_sysfs) {
    if (const std::size_t s = topo.socket_count(); s > 0) info.sockets = s;
    if (const std::size_t c = topo.core_count(); c > 0) {
      info.physical_cores = c;
    }
    if (!topo.cpus.empty()) info.logical_cpus = topo.cpus.size();
  }
  if (info.sockets == 0) info.sockets = 1;
  if (info.physical_cores == 0) info.physical_cores = info.logical_cpus;

  std::ifstream meminfo(proc_root + "/meminfo");
  while (std::getline(meminfo, line)) {
    if (!split_kv(line, key, value)) continue;
    if (key == "MemTotal") {
      std::istringstream iss(value);
      std::size_t kib = 0;
      iss >> kib;
      info.memory_bytes = kib * 1024;
      break;
    }
  }

  utsname uts{};
  if (uname(&uts) == 0) {
    info.os = std::string(uts.sysname) + " " + uts.release;
  }
  return info;
}

std::string format_machine(const machine_info& info) {
  std::ostringstream out;
  out << "CPU:    " << (info.cpu_model.empty() ? "unknown" : info.cpu_model)
      << "\n";
  out << "Topo:   " << info.sockets << " socket(s), " << info.physical_cores
      << " core(s), " << info.logical_cpus << " hardware thread(s)\n";
  out << "Memory: " << (info.memory_bytes >> 20) << " MiB\n";
  out << "OS:     " << (info.os.empty() ? "unknown" : info.os) << "\n";
  return out.str();
}

}  // namespace lcws
