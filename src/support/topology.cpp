#include "support/topology.h"

#include <sys/utsname.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

namespace lcws {
namespace {

// Trims ASCII whitespace from both ends.
std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

// Splits "key : value" cpuinfo/meminfo lines.
bool split_kv(const std::string& line, std::string& key, std::string& value) {
  const auto colon = line.find(':');
  if (colon == std::string::npos) return false;
  key = trim(line.substr(0, colon));
  value = trim(line.substr(colon + 1));
  return true;
}

}  // namespace

machine_info probe_machine() {
  machine_info info;
  info.logical_cpus = std::thread::hardware_concurrency();
  if (info.logical_cpus == 0) info.logical_cpus = 1;

  std::ifstream cpuinfo("/proc/cpuinfo");
  std::set<std::string> physical_ids;
  std::set<std::pair<std::string, std::string>> cores;  // (physical id, core id)
  std::string current_physical_id;
  std::string line, key, value;
  while (std::getline(cpuinfo, line)) {
    if (!split_kv(line, key, value)) continue;
    if (key == "model name" && info.cpu_model.empty()) {
      info.cpu_model = value;
    } else if (key == "physical id") {
      current_physical_id = value;
      physical_ids.insert(value);
    } else if (key == "core id") {
      cores.insert({current_physical_id, value});
    }
  }
  info.sockets = physical_ids.size();
  info.physical_cores = cores.size();

  std::ifstream meminfo("/proc/meminfo");
  while (std::getline(meminfo, line)) {
    if (!split_kv(line, key, value)) continue;
    if (key == "MemTotal") {
      std::istringstream iss(value);
      std::size_t kib = 0;
      iss >> kib;
      info.memory_bytes = kib * 1024;
      break;
    }
  }

  utsname uts{};
  if (uname(&uts) == 0) {
    info.os = std::string(uts.sysname) + " " + uts.release;
  }
  return info;
}

std::string format_machine(const machine_info& info) {
  std::ostringstream out;
  out << "CPU:    " << (info.cpu_model.empty() ? "unknown" : info.cpu_model)
      << "\n";
  out << "Topo:   " << info.sockets << " socket(s), " << info.physical_cores
      << " core(s), " << info.logical_cpus << " hardware thread(s)\n";
  out << "Memory: " << (info.memory_bytes >> 20) << " MiB\n";
  out << "OS:     " << (info.os.empty() ? "unknown" : info.os) << "\n";
  return out.str();
}

}  // namespace lcws
