// Thread identity, naming and (best-effort) pinning.
//
// Every scheduler worker registers itself here so that the split deque's
// SIGUSR1 exposure handler — which runs with no arguments on whatever
// thread the kernel delivers to — can find the per-thread scheduler state.
#pragma once

#include <pthread.h>
#include <sched.h>

#include <cstddef>
#include <string>

namespace lcws {

// Scheduling identifier of the calling thread within its worker pool, or
// npos_worker when the thread is not a pool worker (e.g. the main thread
// before it enters a pool).
inline constexpr std::size_t npos_worker = static_cast<std::size_t>(-1);

// Thread-local worker id, set by the worker pool on entry.
std::size_t this_worker_id() noexcept;
void set_this_worker_id(std::size_t id) noexcept;

// Best-effort: pins the calling thread to the given logical CPU. Returns
// false (without failing the program) when pinning is not possible — e.g.
// inside containers with restricted affinity masks.
bool pin_this_thread(std::size_t cpu) noexcept;

// Saved CPU-affinity mask, so a pool that pins its constructing thread
// (locality-aware pinning, DESIGN.md §7) can put it back at destruction —
// the caller's thread outlives the pool and must not stay pinned.
struct saved_affinity {
  cpu_set_t set;
  bool valid = false;
};

saved_affinity save_this_thread_affinity() noexcept;
void restore_this_thread_affinity(const saved_affinity& saved) noexcept;

// Best-effort thread naming for debuggers/profilers (<=15 chars on Linux).
void name_this_thread(const std::string& name) noexcept;

}  // namespace lcws
