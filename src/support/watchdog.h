// Stall watchdog: turns scheduler hangs into diagnosable reports.
//
// A fork-join runtime that deadlocks — a lost wakeup, a dropped exposure
// signal whose victim never re-exposes, a join spinning on a task nobody
// will ever run — presents as a silent hang: every worker parked or
// spinning, zero CPU signal, nothing on stderr. This monitor converts that
// into a hard failure with a state dump.
//
// The monitor thread samples a caller-supplied progress token (the
// scheduler sums its tasks-executed/push/pop/steal counters) once per
// deadline while *armed* (the scheduler arms around each run()). If the
// token is unchanged across a full deadline, it calls the dump callback
// (per-worker deque indices, parked/targeted flags, counter snapshot) and
// hands the report to the stall handler — by default: print and abort.
//
// Caveat, by design: the token only moves when the scheduler schedules, so
// a single sequential task that legitimately runs longer than the deadline
// is indistinguishable from a hang. The watchdog is therefore opt-in
// (LCWS_WATCHDOG_MS, unset by default) and the deadline should exceed the
// longest expected task. Detection latency is between one and two
// deadlines (the first sample after arming establishes the baseline).
//
// The monitor reads only relaxed atomics through its callbacks, so it
// perturbs none of the paper's fence/CAS/steal counters and is
// TSan-clean.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "stats/trace.h"

namespace lcws {

class watchdog {
 public:
  using progress_fn = std::function<std::uint64_t()>;
  using dump_fn = std::function<std::string()>;
  using stall_fn = std::function<void(const std::string&)>;
  using cancel_fn = std::function<void(const std::string&)>;

  // `progress` must be monotone while work is happening; `dump` renders the
  // state report; `on_stall` receives it (default: stderr + abort; tests
  // substitute a recorder). Callbacks run on the monitor thread.
  //
  // `cancel` (optional) arms the §11 escalation ladder: the *first* frozen
  // window dumps and calls `cancel` (the scheduler cancels the active run
  // cooperatively — pardo boundaries throw, the tree collapses, run()
  // returns); only a *second* consecutive frozen window — the cancel
  // itself produced no progress, so the hang is not cooperative-cancelable
  // — falls through to `on_stall` (default: abort). Without `cancel` the
  // ladder degenerates to the legacy dump-and-abort on the first stall.
  watchdog(std::chrono::milliseconds deadline, progress_fn progress,
           dump_fn dump, stall_fn on_stall = {}, cancel_fn cancel = {})
      : deadline_(deadline),
        progress_(std::move(progress)),
        dump_(std::move(dump)),
        on_stall_(on_stall ? std::move(on_stall) : default_stall),
        cancel_(std::move(cancel)),
        monitor_([this] { monitor_loop(); }) {}

  watchdog(const watchdog&) = delete;
  watchdog& operator=(const watchdog&) = delete;

  ~watchdog() {
    {
      std::lock_guard<std::mutex> lock(m_);
      stop_ = true;
    }
    cv_.notify_all();
    monitor_.join();
  }

  // Start watching (a computation is beginning). Resets the baseline so a
  // stalled *previous* run cannot bleed a stale token into this one.
  void arm() {
    {
      std::lock_guard<std::mutex> lock(m_);
      armed_ = true;
      rebaseline_ = true;
    }
    cv_.notify_all();
  }

  // Stop watching (the computation finished; idleness is now legitimate).
  void disarm() {
    std::lock_guard<std::mutex> lock(m_);
    armed_ = false;
  }

  std::chrono::milliseconds deadline() const noexcept { return deadline_; }

  // Number of stalls reported so far (only observable when the stall
  // handler returns, i.e. under a test handler).
  std::uint64_t stalls_reported() const noexcept {
    return stalls_.load(std::memory_order_relaxed);
  }

  // Number of cancel-rung escalations issued (first frozen window with a
  // cancel_fn attached).
  std::uint64_t cancels_issued() const noexcept {
    return cancels_.load(std::memory_order_relaxed);
  }

  // Parses LCWS_WATCHDOG_MS: a positive integer enables the watchdog with
  // that deadline; unset/zero/garbage disables it.
  static std::optional<std::chrono::milliseconds> env_deadline() noexcept {
    const char* s = std::getenv("LCWS_WATCHDOG_MS");
    if (s == nullptr || *s == '\0') return std::nullopt;
    char* end = nullptr;
    const unsigned long long ms = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0' || ms == 0) return std::nullopt;
    return std::chrono::milliseconds(ms);
  }

 private:
  static void default_stall(const std::string& report) {
    // Serialize against concurrent LCWS_DUMP_ON_EXIT / other pools'
    // watchdogs so the report (which now carries per-worker trace tails)
    // lands on stderr as one contiguous block.
    std::lock_guard<std::mutex> lock(trace::dump_mutex());
    std::fprintf(stderr,
                 "lcws: watchdog: no scheduler progress for a full "
                 "deadline; worker state follows\n%s",
                 report.c_str());
    std::fflush(stderr);
    std::abort();
  }

  void monitor_loop() {
    std::unique_lock<std::mutex> lock(m_);
    std::uint64_t baseline = 0;
    bool have_baseline = false;
    // Escalation rung for the current stall episode: 0 = none, 1 = the
    // cancel rung fired. Any progress resets it — a later, distinct stall
    // gets a fresh cancel attempt before the abort rung.
    int rung = 0;
    while (!stop_) {
      cv_.wait_for(lock, deadline_, [this] { return stop_ || rebaseline_; });
      if (stop_) break;
      if (rebaseline_) {
        rebaseline_ = false;
        have_baseline = false;
        rung = 0;
      }
      if (!armed_) {
        have_baseline = false;
        rung = 0;
        continue;
      }
      lock.unlock();
      const std::uint64_t token = progress_();
      lock.lock();
      if (stop_) break;
      if (!armed_ || rebaseline_) continue;  // disarmed/re-armed mid-sample
      if (have_baseline && token == baseline) {
        if (cancel_ && rung == 0) {
          // First rung: dump + cooperative cancel. If cancellation bites,
          // the collapsing tree moves the token and the next sample
          // resets the ladder; if not, the next frozen window aborts.
          rung = 1;
          lock.unlock();
          const std::string report = dump_();
          cancels_.fetch_add(1, std::memory_order_relaxed);
          cancel_(report);
          lock.lock();
        } else {
          lock.unlock();
          const std::string report = dump_();
          stalls_.fetch_add(1, std::memory_order_relaxed);
          on_stall_(report);  // default never returns
          lock.lock();
          have_baseline = false;  // test handlers return: fresh window
          rung = 0;
        }
      } else {
        baseline = token;
        have_baseline = true;
        rung = 0;
      }
    }
  }

  const std::chrono::milliseconds deadline_;
  const progress_fn progress_;
  const dump_fn dump_;
  const stall_fn on_stall_;
  const cancel_fn cancel_;

  std::mutex m_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool armed_ = false;
  bool rebaseline_ = false;
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> cancels_{0};
  std::thread monitor_;  // last: starts after every field it reads
};

}  // namespace lcws
