#include "support/health.h"

#include <sched.h>
#include <sys/resource.h>
#include <sys/time.h>

#include <cstdlib>
#include <sstream>

namespace lcws::health {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) noexcept {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  return (end == s) ? fallback : static_cast<std::uint64_t>(v);
}

std::uint32_t env_u32(const char* name, std::uint32_t fallback) noexcept {
  return static_cast<std::uint32_t>(env_u64(name, fallback));
}

bool env_truthy(const char* name) noexcept {
  const char* s = std::getenv(name);
  return s != nullptr && *s != '\0' && !(s[0] == '0' && s[1] == '\0');
}

}  // namespace

config config::from_env() noexcept {
  config c;
  c.enabled = !env_truthy("LCWS_DEGRADE_OFF");
  c.fail_streak = env_u32("LCWS_DEGRADE_FAIL_STREAK", c.fail_streak);
  if (c.fail_streak == 0) c.fail_streak = 1;
  c.fail_permille =
      10 * env_u32("LCWS_DEGRADE_FAIL_PCT", c.fail_permille / 10);
  c.min_window = env_u32("LCWS_DEGRADE_MIN_WINDOW", c.min_window);
  c.probe_period = env_u32("LCWS_DEGRADE_PROBE_PERIOD", c.probe_period);
  if (c.probe_period == 0) c.probe_period = 1;
  c.recover_streak = env_u32("LCWS_DEGRADE_RECOVER", c.recover_streak);
  if (c.recover_streak == 0) c.recover_streak = 1;
  c.rtt_deadline_ns =
      1000 * env_u64("LCWS_DEGRADE_RTT_US", c.rtt_deadline_ns / 1000);
  c.csw_per_sec = env_u64("LCWS_DEGRADE_CSW_PER_SEC", c.csw_per_sec);
  c.steal_budget = env_u32("LCWS_DEGRADE_STEAL_BUDGET", c.steal_budget);
  if (c.steal_budget == 0) c.steal_budget = 1;
  c.budget_window_ns = 1000 * env_u64("LCWS_DEGRADE_BUDGET_WINDOW_US",
                                      c.budget_window_ns / 1000);
  c.worker_lost_ns =
      1000 * 1000 * env_u64("LCWS_WORKER_LOST_MS", c.worker_lost_ns / 1000000);
  return c;
}

void monitor::sample_preemption(std::size_t self,
                                std::uint64_t now_ns) noexcept {
  auto& s = slots_[self].get();
  if (s.last_sample_ns != 0 &&
      now_ns - s.last_sample_ns < cfg_.sample_period_ns) {
    return;
  }
#if defined(__linux__) && defined(RUSAGE_THREAD)
  struct rusage ru {};
  if (getrusage(RUSAGE_THREAD, &ru) != 0) return;
  const std::uint64_t nivcsw = static_cast<std::uint64_t>(ru.ru_nivcsw);
  if (s.last_sample_ns != 0 && now_ns > s.last_sample_ns) {
    const std::uint64_t elapsed = now_ns - s.last_sample_ns;
    const std::uint64_t delta = nivcsw - s.last_nivcsw;
    // Involuntary switches per second over the sampling interval.
    const std::uint64_t rate = delta * 1'000'000'000ull / elapsed;
    const bool futile =
        s.steal_ewma_permille.load(std::memory_order_relaxed) <=
        cfg_.futile_steal_permille;
    // Preempted hard, or preempted at all while every steal comes up
    // empty: either way this worker is fighting for a CPU it should cede.
    const bool pressured = rate >= cfg_.csw_per_sec ||
                           (futile && rate >= cfg_.csw_per_sec / 4 &&
                            cfg_.csw_per_sec >= 4);
    // Timeline-mark pressure *edges* only (the sampler runs steadily while
    // idle; steady-state would flood the trace ring).
    if (pressured != s.pressure.load(std::memory_order_relaxed)) {
      trace::emit(trace::event::pressure, pressured ? 1 : 0);
    }
    s.pressure.store(pressured, std::memory_order_relaxed);
  }
  s.last_nivcsw = nivcsw;
#endif
#if defined(__linux__)
  const int cpu = sched_getcpu();
  if (cpu >= 0) {
    if (s.last_cpu >= 0 && cpu != s.last_cpu) {
      s.migrations.store(s.migrations.load(std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
    }
    s.last_cpu = cpu;
  }
#endif
  s.last_sample_ns = now_ns;
}

std::string monitor::debug_string(std::size_t worker) const {
  const auto& s = slots_[worker].get();
  std::ostringstream out;
  out << "degraded=" << s.degraded.load(std::memory_order_relaxed)
      << " fail_streak=" << s.fail_streak.load(std::memory_order_relaxed)
      << " fail_ewma_pm=" << s.ewma_permille.load(std::memory_order_relaxed)
      << " rtt_ewma_us="
      << s.rtt_ewma_ns.load(std::memory_order_relaxed) / 1000
      << " degrades=" << s.degrades.load(std::memory_order_relaxed)
      << " recovers=" << s.recovers.load(std::memory_order_relaxed)
      << " pressure=" << s.pressure.load(std::memory_order_relaxed)
      << " steal_ewma_pm="
      << s.steal_ewma_permille.load(std::memory_order_relaxed)
      << " victim_steal_ewma_pm="
      << s.victim_steal_ewma_permille.load(std::memory_order_relaxed)
      << " migrations=" << s.migrations.load(std::memory_order_relaxed);
  if (cfg_.worker_lost_ns != 0) {
    out << " lost=" << s.lost.load(std::memory_order_relaxed)
        << " hb_ns=" << s.hb_ns.load(std::memory_order_relaxed);
  }
  return out.str();
}

}  // namespace lcws::health
