// Deterministic, splittable pseudo-random number generation.
//
// Work-stealing victim selection and the PBBS input-instance generators both
// need fast, reproducible randomness. std::mt19937 is too heavy for the
// steal loop (its state does not fit a cache line); we use splitmix64 for
// seeding/hashing and xoshiro256** for bulk generation, both public-domain
// algorithms by Blackman & Vigna.
#pragma once

#include <cstdint>
#include <limits>

namespace lcws {

// splitmix64: also usable as a strong 64-bit mixing/hash function.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Stateless hash of a 64-bit value (one splitmix64 round).
constexpr std::uint64_t hash64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

// xoshiro256**: 256-bit state, period 2^256-1, passes BigCrush.
class xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    // Seed the full state through splitmix64 as the authors recommend.
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound) without modulo bias worth caring about for
  // victim selection (Lemire's multiply-shift reduction).
  constexpr std::uint64_t bounded(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace lcws
