// Runtime health monitoring for graceful degradation (DESIGN.md §6).
//
// The Signal schedulers (Section 4 of the paper) depend on timely POSIX
// signal delivery — exactly what the kernel does not guarantee under the
// multiprogrammed co-run regime the paper evaluates in §5. This monitor
// gives the scheduler eyes: per-victim evidence about signal delivery
// (send failures, exposure round-trip latency) drives a small hysteresis
// state machine (healthy -> degraded -> healthy), and per-worker
// preemption sampling (getrusage involuntary context switches, steal-
// success EWMA) reports oversubscription pressure that the idle paths use
// to yield and park earlier.
//
// Cost contract: when degradation is disabled (LCWS_DEGRADE_OFF=1) the
// scheduler consults only `enabled()` — a plain bool — and the protocol
// hot paths are bit-for-bit the legacy ones: no new fences, no new CAS.
// When enabled, the healthy-path overhead is one extra relaxed load per
// exposure request / local pop; all bookkeeping writes live on the slow
// paths (failed sends, RTT resolution, idle sampling).
//
// Concurrency: each victim has one cache-aligned slot. Evidence fields are
// relaxed atomics updated by whichever thief observed the outcome — lost
// updates under write races only delay a transition by an observation,
// which hysteresis absorbs anyway. State transitions go through
// compare_exchange so exactly one thief wins a trip/restore and reports it
// (the scheduler counts degrade_events/recover_events off that return).
// `note_handler_ran` is called from the SIGUSR1 handler: a single relaxed
// load+store on the handler thread's own slot — async-signal-safe.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "stats/trace.h"
#include "support/align.h"

namespace lcws::health {

// Tunables, resolved once per monitor from LCWS_DEGRADE_* (see from_env).
struct config {
  // Master switch: false compiles the monitor down to `enabled()` checks.
  bool enabled = true;
  // Trip when this many consecutive sends to one victim fail outright...
  std::uint32_t fail_streak = 4;
  // ...or when the failure EWMA crosses fail_permille after at least
  // min_window observations (send outcomes + RTT resolutions).
  std::uint32_t fail_permille = 500;
  std::uint32_t min_window = 8;
  // While degraded, every probe_period-th exposure request for the victim
  // is sent down the signal path as a probe.
  std::uint32_t probe_period = 8;
  // Restore after this many consecutive successful probes.
  std::uint32_t recover_streak = 3;
  // An armed exposure request whose handler has not run after this long
  // counts as timed-out evidence (EWMA only — oversubscription makes slow
  // delivery legitimate, so timeouts never feed the hard streak).
  std::uint64_t rtt_deadline_ns = 100ull * 1000 * 1000;  // 100ms
  // Pressure: involuntary context switches per second above this rate.
  std::uint64_t csw_per_sec = 200;
  // Pressure corroboration: steal-success EWMA at or below this permille
  // counts as futile stealing (combined with a quarter of the csw rate).
  std::uint32_t futile_steal_permille = 10;
  // Preemption is sampled (getrusage) at most once per this interval.
  std::uint64_t sample_period_ns = 10ull * 1000 * 1000;  // 10ms
  // Oversubscription-aware stealing: at most steal_budget failed attempts
  // per budget_window before the idle loop escalates to sched_yield.
  std::uint32_t steal_budget = 64;
  std::uint64_t budget_window_ns = 1ull * 1000 * 1000;  // 1ms
  // Worker-loss detection (DESIGN.md §11): a worker that misses this much
  // of heartbeats while a run is active is declared lost. 0 (the default)
  // disables the layer entirely — no beats, no polling, no recovery.
  // Opt-in for the same reason as the watchdog: the heartbeat only moves
  // at scheduling boundaries, so the deadline must exceed the longest
  // single task. LCWS_WORKER_LOST_MS.
  std::uint64_t worker_lost_ns = 0;

  // Reads LCWS_DEGRADE_OFF, LCWS_DEGRADE_FAIL_STREAK,
  // LCWS_DEGRADE_FAIL_PCT (percent, converted to permille),
  // LCWS_DEGRADE_MIN_WINDOW, LCWS_DEGRADE_PROBE_PERIOD,
  // LCWS_DEGRADE_RECOVER, LCWS_DEGRADE_RTT_US, LCWS_DEGRADE_CSW_PER_SEC,
  // LCWS_DEGRADE_STEAL_BUDGET, LCWS_DEGRADE_BUDGET_WINDOW_US,
  // LCWS_WORKER_LOST_MS.
  static config from_env() noexcept;
};

// Outcome of an evidence update: `degraded`/`recovered`/`worker_lost` is
// returned to exactly one caller per transition, so that caller can count
// the event (and, for worker_lost, run the recovery protocol).
enum class transition : unsigned char {
  none,
  degraded,
  recovered,
  worker_lost,
};

class monitor {
 public:
  monitor(std::size_t num_workers, const config& cfg)
      : cfg_(cfg), slots_(num_workers) {}

  monitor(const monitor&) = delete;
  monitor& operator=(const monitor&) = delete;

  const config& cfg() const noexcept { return cfg_; }
  bool enabled() const noexcept { return cfg_.enabled; }

  // Whether §11 worker-loss detection is armed (LCWS_WORKER_LOST_MS > 0).
  // Independent of enabled(): LCWS_DEGRADE_OFF kills the signal-path
  // degradation machinery, not crash containment.
  bool loss_detection() const noexcept { return cfg_.worker_lost_ns != 0; }

  // ---- worker-loss heartbeat (DESIGN.md §11) ------------------------------

  // Owner-only: stamps this worker's heartbeat. Called at scheduling
  // boundaries (find_task) — one relaxed store to the worker's own slot,
  // and only when loss detection is armed, so the disarmed hot path is
  // bit-for-bit legacy.
  void beat(std::size_t self, std::uint64_t now_ns) noexcept {
    slots_[self]->hb_ns.store(now_ns, std::memory_order_relaxed);
  }

  std::uint64_t last_beat_ns(std::size_t worker) const noexcept {
    return slots_[worker]->hb_ns.load(std::memory_order_relaxed);
  }

  // One relaxed load: has `worker` been declared lost? Loss is irrevocable
  // for the pool's lifetime — a wedged thread never resumes and an exited
  // one never returns, so there is no un-lose edge to race with.
  bool is_lost(std::size_t worker) const noexcept {
    return slots_[worker]->lost.load(std::memory_order_relaxed);
  }

  // Pool-wide: any worker ever declared lost? One relaxed load; lets the
  // steal path pay a single branch instead of a per-victim check.
  bool any_lost() const noexcept {
    return num_lost_.load(std::memory_order_relaxed) != 0;
  }

  std::uint64_t lost_count() const noexcept {
    return num_lost_.load(std::memory_order_relaxed);
  }

  // Detector side, called from live workers' idle paths while a run is
  // active. A worker whose heartbeat is older than worker_lost_ns —
  // measured from max(last beat, run_epoch_ns), so beats from *before*
  // this run can't read as stale at its start — is declared lost; the CAS
  // hands `worker_lost` to exactly one detector, which runs recovery.
  transition poll_worker_lost(std::size_t worker, std::uint64_t now_ns,
                              std::uint64_t run_epoch_ns) noexcept {
    auto& s = slots_[worker].get();
    if (s.lost.load(std::memory_order_relaxed)) return transition::none;
    std::uint64_t ref = s.hb_ns.load(std::memory_order_relaxed);
    if (run_epoch_ns > ref) ref = run_epoch_ns;
    if (now_ns <= ref || now_ns - ref < cfg_.worker_lost_ns) {
      return transition::none;
    }
    bool expected = false;
    if (!s.lost.compare_exchange_strong(expected, true,
                                        std::memory_order_relaxed)) {
      return transition::none;  // another detector won
    }
    num_lost_.fetch_add(1, std::memory_order_relaxed);
    trace::emit(trace::event::worker_lost, worker);
    return transition::worker_lost;
  }

  // Test hook: declare `worker` lost directly (same CAS arbitration).
  transition force_lost(std::size_t worker) noexcept {
    auto& s = slots_[worker].get();
    bool expected = false;
    if (!s.lost.compare_exchange_strong(expected, true,
                                        std::memory_order_relaxed)) {
      return transition::none;
    }
    num_lost_.fetch_add(1, std::memory_order_relaxed);
    trace::emit(trace::event::worker_lost, worker);
    return transition::worker_lost;
  }

  // ---- signal-path state machine (per victim) ----------------------------

  // One relaxed load; the scheduler's only healthy-hot-path query.
  bool is_degraded(std::size_t victim) const noexcept {
    return slots_[victim]->degraded.load(std::memory_order_relaxed);
  }

  // A send to `victim` succeeded. `attempts` > 1 means the internal retry
  // budget was consumed — weak evidence that delivery is struggling.
  void note_send_ok(std::size_t victim, int attempts = 1) noexcept {
    auto& s = slots_[victim].get();
    s.fail_streak.store(0, std::memory_order_relaxed);
    observe(s, attempts > 1 ? 400u : 0u);
  }

  // A send to `victim` failed past its retry budget. Returns `degraded`
  // to the single caller whose evidence tripped the state machine.
  transition note_send_failure(std::size_t victim) noexcept {
    auto& s = slots_[victim].get();
    const std::uint32_t streak =
        s.fail_streak.load(std::memory_order_relaxed) + 1;
    s.fail_streak.store(streak, std::memory_order_relaxed);
    observe(s, 1000u);
    if (streak >= cfg_.fail_streak || ewma_tripped(s)) {
      return trip(victim, s);
    }
    return transition::none;
  }

  // ---- probing / recovery -------------------------------------------------

  // While degraded: should this exposure request probe the signal path
  // (true every probe_period-th call) instead of going user-space?
  bool should_probe(std::size_t victim) noexcept {
    auto& s = slots_[victim].get();
    const std::uint32_t n =
        s.fallbacks_since_probe.load(std::memory_order_relaxed) + 1;
    if (n >= cfg_.probe_period) {
      s.fallbacks_since_probe.store(0, std::memory_order_relaxed);
      return true;
    }
    s.fallbacks_since_probe.store(n, std::memory_order_relaxed);
    return false;
  }

  // A probe send succeeded / failed. Enough consecutive successes restore
  // the signal path; the restoring caller sees `recovered`.
  transition note_probe_ok(std::size_t victim) noexcept {
    auto& s = slots_[victim].get();
    const std::uint32_t ok = s.ok_streak.load(std::memory_order_relaxed) + 1;
    s.ok_streak.store(ok, std::memory_order_relaxed);
    observe(s, 0u);
    if (ok >= cfg_.recover_streak) return restore(victim, s);
    return transition::none;
  }

  void note_probe_failure(std::size_t victim) noexcept {
    auto& s = slots_[victim].get();
    s.ok_streak.store(0, std::memory_order_relaxed);
    observe(s, 1000u);
  }

  // ---- exposure round-trip latency ---------------------------------------

  // Called by the victim's SIGUSR1 handler (via the exposure trampoline):
  // single-writer tick on the handler thread's own slot. Async-signal-safe.
  void note_handler_ran(std::size_t self) noexcept {
    auto& t = slots_[self]->handler_ticks;
    t.store(t.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
  }

  // Arms an RTT measurement for `victim` right after a successful send.
  // At most one in flight per victim; re-arming while armed is a no-op.
  void arm_rtt(std::size_t victim, std::uint64_t now_ns) noexcept {
    auto& s = slots_[victim].get();
    std::uint64_t expected = 0;
    if (s.rtt_armed_ns.compare_exchange_strong(expected, now_ns,
                                               std::memory_order_relaxed)) {
      s.rtt_ticks_at_send.store(
          s.handler_ticks.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
  }

  // Resolves a pending RTT measurement: success (handler ran since the
  // send — EWMA the latency) or timeout past the deadline (EWMA-only
  // failure evidence). Cheap no-op when nothing is armed or pending.
  transition poll_rtt(std::size_t victim, std::uint64_t now_ns) noexcept {
    auto& s = slots_[victim].get();
    const std::uint64_t armed = s.rtt_armed_ns.load(std::memory_order_relaxed);
    if (armed == 0) return transition::none;
    const bool handler_ran =
        s.handler_ticks.load(std::memory_order_relaxed) !=
        s.rtt_ticks_at_send.load(std::memory_order_relaxed);
    if (!handler_ran && now_ns - armed < cfg_.rtt_deadline_ns) {
      return transition::none;  // still in flight
    }
    // Claim the resolution (one thief wins; losers see 0 and move on).
    std::uint64_t expected = armed;
    if (!s.rtt_armed_ns.compare_exchange_strong(expected, 0,
                                                std::memory_order_relaxed)) {
      return transition::none;
    }
    if (handler_ran) {
      const std::uint64_t rtt = now_ns - armed;
      const std::uint64_t prev = s.rtt_ewma_ns.load(std::memory_order_relaxed);
      // Signed step: (rtt - prev) wraps when the new sample is below the
      // EWMA, and dividing the wrapped unsigned value would catapult the
      // average toward 2^64 instead of decaying it.
      s.rtt_ewma_ns.store(
          prev == 0 ? rtt
                    : prev + static_cast<std::uint64_t>(
                                 static_cast<std::int64_t>(rtt - prev) / 8),
          std::memory_order_relaxed);
      observe(s, 0u);
      return transition::none;
    }
    // Timed out. Never feeds the hard streak (slow delivery is legitimate
    // under oversubscription); only sustained-majority EWMA evidence trips.
    observe(s, 1000u);
    if (!s.degraded.load(std::memory_order_relaxed) && ewma_tripped(s)) {
      return trip(victim, s);
    }
    return transition::none;
  }

  std::uint64_t rtt_ewma_ns(std::size_t victim) const noexcept {
    return slots_[victim]->rtt_ewma_ns.load(std::memory_order_relaxed);
  }

  // ---- oversubscription pressure (per worker, owner-driven) ---------------

  // Thief-written, per-*victim* steal-success EWMA (permille, shift-3
  // smoothing): how often does stealing from `victim` pay off, for anyone?
  // The locality-aware victim selector (sched/victim_select.h) weighs its
  // within-tier choice by this. Not gated on enabled(): locality weighting
  // works with the degradation layer off. Thieves race on the slot; lost
  // updates cost one observation, which the EWMA absorbs.
  void note_victim_steal(std::size_t victim, bool success) noexcept {
    auto& s = slots_[victim].get();
    const std::uint32_t prev =
        s.victim_steal_ewma_permille.load(std::memory_order_relaxed);
    const std::uint32_t obs = success ? 1000u : 0u;
    s.victim_steal_ewma_permille.store(
        prev + (static_cast<std::int32_t>(obs - prev) / 8),
        std::memory_order_relaxed);
  }

  // One relaxed load; the selector's within-tier weight.
  std::uint32_t victim_steal_ewma_permille(std::size_t victim) const noexcept {
    return slots_[victim]->victim_steal_ewma_permille.load(
        std::memory_order_relaxed);
  }

  // Owner-only: folds one steal attempt's outcome into the worker's
  // steal-success EWMA (permille, shift-8 smoothing).
  void note_steal_outcome(std::size_t self, bool success) noexcept {
    auto& s = slots_[self].get();
    const std::uint32_t prev =
        s.steal_ewma_permille.load(std::memory_order_relaxed);
    const std::uint32_t obs = success ? 1000u : 0u;
    s.steal_ewma_permille.store(prev + (static_cast<std::int32_t>(obs - prev) / 8),
                                std::memory_order_relaxed);
  }

  // Owner-only, rate-limited (sample_period): reads this thread's
  // involuntary-context-switch count and CPU placement, and re-evaluates
  // the worker's pressure flag. Call from idle paths only.
  void sample_preemption(std::size_t self, std::uint64_t now_ns) noexcept;

  // One relaxed load: is this worker under preemption pressure?
  bool pressure(std::size_t self) const noexcept {
    return slots_[self]->pressure.load(std::memory_order_relaxed);
  }

  // ---- introspection / test hooks ----------------------------------------

  std::uint64_t degrade_count() const noexcept {
    std::uint64_t n = 0;
    for (const auto& s : slots_) {
      n += s->degrades.load(std::memory_order_relaxed);
    }
    return n;
  }
  std::uint64_t recover_count() const noexcept {
    std::uint64_t n = 0;
    for (const auto& s : slots_) {
      n += s->recovers.load(std::memory_order_relaxed);
    }
    return n;
  }

  // Test hook: force a victim's state (counts the transition like a real
  // trip/restore would).
  transition force_degraded(std::size_t victim, bool degraded) noexcept {
    return degraded ? trip(victim, slots_[victim].get())
                    : restore(victim, slots_[victim].get());
  }

  // Relaxed-read snapshot of one worker's slot for dump_worker_state /
  // post-mortems. Safe to call from a monitor thread mid-hang.
  std::string debug_string(std::size_t worker) const;

 private:
  struct slot {
    // Signal-path state machine (written by thieves targeting this victim).
    std::atomic<bool> degraded{false};
    std::atomic<std::uint32_t> fail_streak{0};
    std::atomic<std::uint32_t> ok_streak{0};
    std::atomic<std::uint32_t> ewma_permille{0};
    std::atomic<std::uint32_t> observations{0};
    std::atomic<std::uint32_t> fallbacks_since_probe{0};
    std::atomic<std::uint64_t> degrades{0};
    std::atomic<std::uint64_t> recovers{0};
    // Exposure round-trip measurement.
    std::atomic<std::uint64_t> handler_ticks{0};  // victim's handler bumps
    std::atomic<std::uint64_t> rtt_armed_ns{0};   // 0 = nothing in flight
    std::atomic<std::uint64_t> rtt_ticks_at_send{0};
    std::atomic<std::uint64_t> rtt_ewma_ns{0};
    // Oversubscription pressure (owner-written, others read `pressure`).
    std::atomic<bool> pressure{false};
    std::atomic<std::uint32_t> steal_ewma_permille{0};
    // Per-victim steal-yield seen by thieves (victim_select.h weighting).
    // Starts at the neutral midpoint so unexplored victims compete evenly.
    std::atomic<std::uint32_t> victim_steal_ewma_permille{500};
    std::atomic<std::uint64_t> migrations{0};  // sched_getcpu drift; owner
                                               // writes, dumps read relaxed
    // §11 worker-loss: heartbeat stamped by the owner at scheduling
    // boundaries; `lost` CAS-set once by the winning detector.
    std::atomic<std::uint64_t> hb_ns{0};
    std::atomic<bool> lost{false};
    std::uint64_t last_sample_ns = 0;   // owner-only
    std::uint64_t last_nivcsw = 0;      // owner-only
    int last_cpu = -1;                  // owner-only
  };

  // Shift-8 EWMA over observation weights (0 = clean, 1000 = failure).
  void observe(slot& s, std::uint32_t weight) noexcept {
    const std::uint32_t prev = s.ewma_permille.load(std::memory_order_relaxed);
    s.ewma_permille.store(
        prev + (static_cast<std::int32_t>(weight - prev) / 8),
        std::memory_order_relaxed);
    const std::uint32_t n = s.observations.load(std::memory_order_relaxed);
    if (n < cfg_.min_window) {
      s.observations.store(n + 1, std::memory_order_relaxed);
    }
  }

  bool ewma_tripped(const slot& s) const noexcept {
    return s.observations.load(std::memory_order_relaxed) >= cfg_.min_window &&
           s.ewma_permille.load(std::memory_order_relaxed) >=
               cfg_.fail_permille;
  }

  // The compare_exchange picks the single winning thief; that winner also
  // emits the timeline event (trace.h), so degrade/recover events appear
  // exactly once per transition — same contract as the counters.
  transition trip(std::size_t victim, slot& s) noexcept {
    bool expected = false;
    if (!s.degraded.compare_exchange_strong(expected, true,
                                            std::memory_order_relaxed)) {
      return transition::none;  // another thief already tripped it
    }
    s.ok_streak.store(0, std::memory_order_relaxed);
    s.fallbacks_since_probe.store(0, std::memory_order_relaxed);
    s.degrades.store(s.degrades.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
    trace::emit(trace::event::degrade, victim);
    return transition::degraded;
  }

  transition restore(std::size_t victim, slot& s) noexcept {
    bool expected = true;
    if (!s.degraded.compare_exchange_strong(expected, false,
                                            std::memory_order_relaxed)) {
      return transition::none;
    }
    // Fresh start for the healthy phase's evidence.
    s.fail_streak.store(0, std::memory_order_relaxed);
    s.ok_streak.store(0, std::memory_order_relaxed);
    s.ewma_permille.store(0, std::memory_order_relaxed);
    s.observations.store(0, std::memory_order_relaxed);
    s.recovers.store(s.recovers.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
    trace::emit(trace::event::recover, victim);
    return transition::recovered;
  }

  const config cfg_;
  std::vector<cache_aligned<slot>> slots_;
  // §11: pool-wide lost-worker count, read (relaxed) as the steal path's
  // single any_lost() branch. Own line so the common all-alive case never
  // shares a cache line with transitioning state.
  alignas(cache_line_size) std::atomic<std::uint64_t> num_lost_{0};
};

// Oversubscription-aware steal budgeting: at most `budget` failed attempts
// per `window_ns` before the caller should sched_yield. Owner-only (one
// instance per worker, consulted from its own idle loop) — plain fields,
// no atomics.
class steal_throttle {
 public:
  steal_throttle(std::uint32_t budget, std::uint64_t window_ns) noexcept
      : budget_(budget), window_ns_(window_ns) {}

  // Records one failed steal round at `now_ns`; true when the budget for
  // the current window is exhausted (caller should yield the CPU).
  bool note_attempt(std::uint64_t now_ns) noexcept {
    if (now_ns - window_start_ns_ >= window_ns_) {
      window_start_ns_ = now_ns;
      attempts_ = 0;
    }
    return ++attempts_ > budget_;
  }

  void reset(std::uint64_t now_ns) noexcept {
    window_start_ns_ = now_ns;
    attempts_ = 0;
  }

  std::uint32_t attempts_in_window() const noexcept { return attempts_; }

 private:
  std::uint32_t budget_;
  std::uint64_t window_ns_;
  std::uint64_t window_start_ns_ = 0;
  std::uint32_t attempts_ = 0;
};

}  // namespace lcws::health
