// Cache-line alignment utilities.
//
// The schedulers in this library keep one deque and one counter block per
// worker; false sharing between adjacent workers' state would dwarf the
// synchronization costs the LCWS paper measures, so everything per-worker is
// padded to a cache-line (actually destructive-interference) boundary.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace lcws {

// Fixed at 64 bytes (the line size of every x86/ARM part the paper
// targets) rather than std::hardware_destructive_interference_size, whose
// value shifts with compiler tuning flags and would make the library's ABI
// depend on them.
inline constexpr std::size_t cache_line_size = 64;

// A value padded up to its own cache line. Access through get()/operator*.
template <typename T>
struct alignas(cache_line_size) cache_aligned {
  T value{};

  cache_aligned() = default;
  template <typename... Args>
  explicit cache_aligned(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& get() noexcept { return value; }
  const T& get() const noexcept { return value; }
  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

static_assert(alignof(cache_aligned<int>) >= 64);

// Rounds n up to the next multiple of `align` (a power of two).
constexpr std::size_t round_up_pow2(std::size_t n, std::size_t align) noexcept {
  return (n + align - 1) & ~(align - 1);
}

// True iff n is a power of two (n > 0).
constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

// Smallest power of two >= n (n >= 1).
constexpr std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace lcws
