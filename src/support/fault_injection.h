// Deterministic fault injection for the scheduler's rare paths.
//
// The protocols this library reproduces are correct only across
// interleavings that almost never happen on a healthy machine: a steal CAS
// that loses, an exposure signal that the kernel drops or delays, a
// pthread_kill that fails, a condition variable that wakes spuriously.
// This hook layer makes those events *forceable and repeatable* so tests
// can sweep them instead of hoping a stress run stumbles into them.
//
// Design:
//   * Zero-cost unless compiled in. Without LCWS_FAULT_INJECTION every
//     entry point is a constexpr no-op (`inject` returns a compile-time
//     false), so the `if (fi::inject(...))` guards at the named sites fold
//     away entirely — the production library carries no branches, no
//     globals, no symbols.
//   * Deterministic per (seed, worker). Each thread draws from a private
//     splitmix64 stream seeded from the configured seed mixed with its
//     worker id, so a given seed produces the same per-worker fault
//     schedule run over run (modulo OS interleaving, which the faults
//     themselves perturb — that is the point).
//   * Async-signal-safe. `inject` is called from the SIGUSR1 exposure
//     handler (drop/delay sites), so it touches only lock-free atomics and
//     this thread's own TLS: no locks, no allocation, no errno.
//
// Named sites (where the guards live):
//   steal_cas      scheduler.h   deque_steal/mailbox_steal: the attempt
//                                fails as if it lost the CAS race
//   exposure_drop  signal_support.cpp  handler returns without exposing
//                                      (models a lost/ignored signal)
//   exposure_delay signal_support.cpp  handler spins before exposing
//                                      (widens the §4 pop/expose race)
//   signal_send    signal_support.cpp  pthread_kill reports failure
//   spurious_wake  parking_lot.h  park() returns immediately, permitless,
//                                 as if the OS woke the cv spuriously
//   deque_grow     split/abp/chase_lev deque grow(): the owner stalls
//                  between copying slots and publishing the new buffer,
//                  widening the thief-versus-growth race the reclamation
//                  scheme must survive
//   wsmult_dup     wsmult_deque take/steal: the extractor stalls between
//                  reading the task pointer and writing its index
//                  advancement, widening the multiplicity window so
//                  duplicate extractions (normally vanishingly rare)
//                  actually happen and the claim words must resolve them
//   worker_crash   scheduler.h worker_loop: the worker dies at the loop
//                  top, a scheduling boundary where its deque is provably
//                  empty — either exits abruptly or wedges forever.
//                  Drives the §11 worker-loss recovery protocol: heartbeat
//                  detection, deque adoption and join repair must carry the
//                  run to an answer (result or worker_lost_error), never a
//                  hang. Worker 0 (the run() caller) is never crashed.
//   worker_crash_midtask
//                  scheduler.h worker_loop: the worker wedges *between
//                  claiming a stolen task and executing it* — the one
//                  boundary where the corpse strands a live joiner, forcing
//                  the §11 join-repair path. Split from worker_crash so a
//                  directed test can arm it alone at rate 1000: the first
//                  top-level steal then wedges its thief deterministically,
//                  with no loop-top death racing to fire first.
#pragma once

#include <cstdint>

namespace lcws::fi {

enum class site : unsigned {
  steal_cas = 0,
  exposure_drop,
  exposure_delay,
  signal_send,
  spurious_wake,
  deque_grow,
  wsmult_dup,
  worker_crash,
  worker_crash_midtask,
  num_sites,  // sentinel
};

inline constexpr unsigned num_sites = static_cast<unsigned>(site::num_sites);

// Bitmask helpers for configure()'s site_mask.
constexpr std::uint32_t site_bit(site s) noexcept {
  return std::uint32_t{1} << static_cast<unsigned>(s);
}
inline constexpr std::uint32_t all_sites = (std::uint32_t{1} << num_sites) - 1;

#ifdef LCWS_FAULT_INJECTION

// Whether this binary was built with the hooks compiled in.
constexpr bool compiled_in() noexcept { return true; }

// Arms the hooks: every site in `site_mask` fires with probability
// rate_permille/1000 per visit, on a per-thread stream derived from `seed`.
// Safe to call between runs; not while a computation is in flight.
void configure(std::uint64_t seed, std::uint32_t rate_permille,
               std::uint32_t site_mask = all_sites) noexcept;

// Disarms all sites (every inject() returns false until reconfigured).
void disable() noexcept;

// True between configure() and disable().
bool armed() noexcept;

// The decision point, called at each named site. True => inject the fault.
bool inject(site s) noexcept;

// Number of faults actually injected at `s` since the last configure().
std::uint64_t injected_count(site s) noexcept;

#else  // !LCWS_FAULT_INJECTION — everything folds to nothing.

constexpr bool compiled_in() noexcept { return false; }
inline void configure(std::uint64_t, std::uint32_t,
                      std::uint32_t = all_sites) noexcept {}
inline void disable() noexcept {}
constexpr bool armed() noexcept { return false; }
constexpr bool inject(site) noexcept { return false; }
constexpr std::uint64_t injected_count(site) noexcept { return 0; }

#endif

}  // namespace lcws::fi
