// Exponential backoff for contended spin loops.
//
// On the oversubscribed configurations the paper cares about (more workers
// than cores) a thief that spins without yielding starves the very victim it
// is waiting on, so the backoff escalates from pause instructions to
// yield().
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace lcws {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // Fallback: compiler barrier only.
  asm volatile("" ::: "memory");
#endif
}

class backoff {
 public:
  // spins_before_yield: number of escalation steps taken before switching
  // from pause loops to thread yields.
  explicit backoff(std::uint32_t spins_before_yield = 10) noexcept
      : yield_threshold_(spins_before_yield) {}

  void pause() noexcept {
    if (step_ < yield_threshold_) {
      for (std::uint32_t i = 0; i < (1u << step_); ++i) cpu_relax();
      ++step_;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { step_ = 0; }

  // Jumps straight past the pause stages: every subsequent pause() yields.
  // Used when external evidence (preemption pressure from the health
  // monitor) already proves that spinning can only starve the victim.
  void escalate() noexcept { step_ = yield_threshold_; }

  std::uint32_t step() const noexcept { return step_; }

 private:
  std::uint32_t step_ = 0;
  std::uint32_t yield_threshold_;
};

}  // namespace lcws
