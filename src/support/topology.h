// Hardware topology probe.
//
// Two consumers:
//   * bench/table1_machines reproduces the paper's Table 1 (the machines
//     used in the evaluation) by reporting the local host's CPU model,
//     core/thread counts and memory — so EXPERIMENTS.md can record
//     paper-vs-local hardware (probe_machine / format_machine).
//   * the locality-aware victim-selection layer (DESIGN.md §7) needs the
//     *full* per-CPU hierarchy — SMT sibling, cluster, last-level cache,
//     socket and NUMA node per logical CPU — to pin workers and order
//     steal victims by distance (probe_topology / classify / pin_order /
//     build_victim_table).
//
// The hierarchy comes from sysfs (/sys/devices/system/cpu/cpu*/topology,
// .../cache, /sys/devices/system/node); every path takes an overridable
// root so tests can parse fixture trees. Hosts without sysfs (or with a
// stripped container mount) fall back to a flat single-tier topology —
// every function degrades, none fail.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lcws {

struct machine_info {
  std::string cpu_model;        // e.g. "AMD Opteron 6272"
  std::size_t logical_cpus;     // threads visible to the OS
  std::size_t physical_cores;   // best-effort (core id count); >= 1
  std::size_t sockets;          // best-effort; >= 1
  std::size_t memory_bytes;     // MemTotal; 0 if unknown
  std::string os;               // kernel identification
};

// Probes sysfs (preferred), /proc/cpuinfo, /proc/meminfo and uname. Never
// throws; missing information is left zero/empty, except sockets and
// physical_cores which are clamped to >= 1 (ARM and container kernels omit
// the `physical id`/`core id` cpuinfo lines, which used to report 0).
machine_info probe_machine();

// Fixture-rooted variant for tests: `proc_root` replaces "/proc",
// `sysfs_root` replaces "/sys".
machine_info probe_machine(const std::string& proc_root,
                           const std::string& sysfs_root);

// Human-readable one-paragraph rendering, in the shape of the paper's
// Table 1 row.
std::string format_machine(const machine_info& info);

// ---- locality hierarchy ----------------------------------------------------

// Steal-victim distance tiers, nearest first. `smt` is a victim on the
// same physical core (an SMT sibling, or a worker sharing our logical CPU
// under oversubscription); `core` is the same cluster/module (e.g. an AMD
// CCX or Arm DynamIQ cluster — empty on machines that don't expose one);
// `llc` shares the last-level cache; `socket` shares the package and NUMA
// node; everything else — other package or other NUMA node — is `remote`.
enum class locality_tier : unsigned char {
  smt = 0,
  core = 1,
  llc = 2,
  socket = 3,
  remote = 4,
};
inline constexpr std::size_t kNumLocalityTiers = 5;

// Tiers at or below this share a cache with the thief: the steals_near /
// steals_remote counter split (stats/counters.h).
inline constexpr locality_tier kNearestRemoteTier = locality_tier::socket;

const char* to_string(locality_tier tier) noexcept;

// Per-CPU hierarchy. Group ids are normalized to the smallest CPU number
// in the group (globally unique, no per-level namespace juggling); -1
// means the level is unknown/not exposed.
struct cpu_topology {
  struct cpu_info {
    int cpu = -1;
    int smt_group = -1;  // physical core (thread_siblings / core_cpus)
    int cluster = -1;    // cluster/module (cluster_cpus); -1 if absent or
                         // degenerate (== core or >= LLC span)
    int llc = -1;        // last-level cache domain (cache/index3|2, or die)
    int socket = -1;     // physical_package_id
    int node = -1;       // NUMA node
  };

  std::vector<cpu_info> cpus;  // online CPUs, ascending cpu id
  bool from_sysfs = false;     // false: flat fallback topology

  const cpu_info* find(int cpu) const noexcept;
  std::size_t socket_count() const;
  std::size_t core_count() const;  // distinct smt groups
  std::size_t node_count() const;
};

// Parses the full hierarchy from sysfs. Falls back to a flat topology
// (hardware_concurrency CPUs, every level unknown) when sysfs is absent.
cpu_topology probe_topology();
cpu_topology probe_topology(const std::string& sysfs_root);

// Distance tier between two logical CPUs (same CPU classifies as smt).
// Unknown CPUs classify as remote.
locality_tier classify(const cpu_topology& topo, int cpu_a,
                       int cpu_b) noexcept;

// Worker-pinning placement policies (LCWS_PIN).
enum class pin_mode : unsigned char {
  compact,  // fill SMT siblings, then cores, then LLCs, then sockets
  scatter,  // one thread per core first, round-robin across sockets
  off,      // no pinning: victim tables collapse to a single flat tier
};

// CPU ids in worker-assignment order for the given policy (worker i is
// pinned to order[i % order.size()]). Empty when mode is `off` or the
// topology has no CPUs.
std::vector<int> pin_order(const cpu_topology& topo, pin_mode mode);

// One worker's distance-ordered victim table, precomputed so the steal hot
// path is allocation-free: `order` lists every other worker nearest-first,
// `tier_begin[t]..tier_begin[t+1]` brackets tier t inside it, and
// `tier_of[v]` is victim v's tier (self maps to smt, vacuously).
struct victim_table {
  std::vector<std::uint32_t> order;
  std::array<std::uint32_t, kNumLocalityTiers + 1> tier_begin{};
  std::vector<unsigned char> tier_of;

  bool empty() const noexcept { return order.empty(); }
};

// Builds worker `self`'s table from the per-worker CPU assignment
// (cpu_of_worker[i] == -1 when worker i is unpinned, which lands every
// victim in the remote tier — the selector then degenerates to uniform
// sampling plus success weighting).
victim_table build_victim_table(const cpu_topology& topo,
                                const std::vector<int>& cpu_of_worker,
                                std::size_t self);

}  // namespace lcws
