// Hardware topology probe.
//
// bench/table1_machines reproduces the paper's Table 1 (the machines used in
// the evaluation) by reporting the local host's CPU model, core/thread
// counts and memory — so EXPERIMENTS.md can record paper-vs-local hardware.
#pragma once

#include <cstddef>
#include <string>

namespace lcws {

struct machine_info {
  std::string cpu_model;        // e.g. "AMD Opteron 6272"
  std::size_t logical_cpus;     // threads visible to the OS
  std::size_t physical_cores;   // best-effort (core id count); 0 if unknown
  std::size_t sockets;          // best-effort; 0 if unknown
  std::size_t memory_bytes;     // MemTotal; 0 if unknown
  std::string os;               // kernel identification
};

// Probes /proc/cpuinfo, /proc/meminfo and uname. Never throws; missing
// information is left zero/empty.
machine_info probe_machine();

// Human-readable one-paragraph rendering, in the shape of the paper's
// Table 1 row.
std::string format_machine(const machine_info& info);

}  // namespace lcws
