// Sense-reversing spin barrier.
//
// Used by the benchmark harnesses to start all workers' measurement windows
// together and by tests that need deterministic phase structure. Unlike
// std::barrier it spins with backoff (and therefore also behaves sanely when
// oversubscribed, thanks to the yield escalation in backoff).
#pragma once

#include <atomic>
#include <cstddef>

#include "support/backoff.h"

namespace lcws {

class spin_barrier {
 public:
  explicit spin_barrier(std::size_t participants) noexcept
      : participants_(participants) {}

  spin_barrier(const spin_barrier&) = delete;
  spin_barrier& operator=(const spin_barrier&) = delete;

  // Blocks until `participants` threads have arrived.
  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        participants_) {
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      backoff bo;
      while (sense_.load(std::memory_order_acquire) != my_sense) bo.pause();
    }
  }

  std::size_t participants() const noexcept { return participants_; }

 private:
  const std::size_t participants_;
  std::atomic<std::size_t> arrived_{0};
  std::atomic<bool> sense_{false};
};

}  // namespace lcws
