#include "support/fault_injection.h"

#include "support/rng.h"
#include "support/threads.h"

#include <atomic>

namespace lcws::fi {

// Always present so linking against a mixed-mode object set can ask which
// flavour it got, even when the hooks themselves are compiled away.
const char* build_mode() noexcept {
#ifdef LCWS_FAULT_INJECTION
  return "fault-injection";
#else
  return "production";
#endif
}

#ifdef LCWS_FAULT_INJECTION

namespace {

// Global arm state. `generation` doubles as the on/off switch (0 = never
// configured) and as the epoch that tells per-thread streams to re-seed.
std::atomic<std::uint64_t> g_seed{0};
std::atomic<std::uint32_t> g_rate_permille{0};
std::atomic<std::uint32_t> g_site_mask{0};
std::atomic<std::uint64_t> g_generation{0};
std::atomic<std::uint64_t> g_injected[num_sites] = {};

// Per-thread splitmix64 stream. The exposure signal handler shares this
// state with its host thread; an interrupt mid-draw can at worst replay one
// draw, which perturbs the schedule but never corrupts the state machine.
struct tl_stream {
  std::uint64_t state = 0;
  std::uint64_t generation = 0;
};
thread_local tl_stream tl;

}  // namespace

void configure(std::uint64_t seed, std::uint32_t rate_permille,
               std::uint32_t site_mask) noexcept {
  g_seed.store(seed, std::memory_order_relaxed);
  g_rate_permille.store(rate_permille > 1000 ? 1000 : rate_permille,
                        std::memory_order_relaxed);
  g_site_mask.store(site_mask & all_sites, std::memory_order_relaxed);
  for (auto& c : g_injected) c.store(0, std::memory_order_relaxed);
  // The release publishes the new parameters to threads that observe the
  // bumped generation.
  g_generation.fetch_add(1, std::memory_order_release);
}

void disable() noexcept {
  g_rate_permille.store(0, std::memory_order_relaxed);
  g_site_mask.store(0, std::memory_order_relaxed);
  g_generation.fetch_add(1, std::memory_order_release);
}

bool armed() noexcept {
  return g_generation.load(std::memory_order_relaxed) != 0 &&
         g_rate_permille.load(std::memory_order_relaxed) != 0;
}

bool inject(site s) noexcept {
  const std::uint64_t gen = g_generation.load(std::memory_order_acquire);
  if (gen == 0) return false;
  const std::uint32_t mask = g_site_mask.load(std::memory_order_relaxed);
  if ((mask & site_bit(s)) == 0) return false;
  const std::uint32_t rate = g_rate_permille.load(std::memory_order_relaxed);
  if (rate == 0) return false;
  if (tl.generation != gen) {
    // Re-seed for the new configuration: seed x worker id keeps streams
    // independent across workers yet reproducible run over run.
    tl.generation = gen;
    tl.state = hash64(g_seed.load(std::memory_order_relaxed) ^
                      hash64(0xfa017ULL + this_worker_id()));
  }
  // splitmix64 step.
  std::uint64_t z = (tl.state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const bool hit = (z % 1000) < rate;
  if (hit) {
    g_injected[static_cast<unsigned>(s)].fetch_add(
        1, std::memory_order_relaxed);
  }
  return hit;
}

std::uint64_t injected_count(site s) noexcept {
  return g_injected[static_cast<unsigned>(s)].load(std::memory_order_relaxed);
}

#endif  // LCWS_FAULT_INJECTION

}  // namespace lcws::fi
