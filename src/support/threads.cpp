#include "support/threads.h"

#include <sched.h>

#include <cstring>

namespace lcws {
namespace {
thread_local std::size_t tl_worker_id = npos_worker;
}  // namespace

std::size_t this_worker_id() noexcept { return tl_worker_id; }

void set_this_worker_id(std::size_t id) noexcept { tl_worker_id = id; }

bool pin_this_thread(std::size_t cpu) noexcept {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

saved_affinity save_this_thread_affinity() noexcept {
  saved_affinity out;
  CPU_ZERO(&out.set);
  out.valid = pthread_getaffinity_np(pthread_self(), sizeof(out.set),
                                     &out.set) == 0;
  return out;
}

void restore_this_thread_affinity(const saved_affinity& saved) noexcept {
  if (!saved.valid) return;
  pthread_setaffinity_np(pthread_self(), sizeof(saved.set), &saved.set);
}

void name_this_thread(const std::string& name) noexcept {
  char buf[16];
  std::strncpy(buf, name.c_str(), sizeof(buf) - 1);
  buf[sizeof(buf) - 1] = '\0';
  pthread_setname_np(pthread_self(), buf);
}

}  // namespace lcws
