// Adaptive worker parking (elastic idling).
//
// The paper's premise (Section 1.1) is that scheduler overhead matters most
// when the runtime does *not* own the machine: co-running runtimes,
// oversubscription, "a fraction of the machine". In that regime a thief
// that busy-spins through its backoff steals cycles from the very victim
// it is waiting on. This primitive lets a worker that has repeatedly failed
// to find work *park* — block on a per-worker condition variable — until a
// producer wakes it, so idle workers cost (almost) no CPU.
//
// Protocol (per worker slot):
//   parker:   announce()            -- publish intent; seq_cst RMW barrier
//             <final sweep for work>-- runs after the barrier, so any work
//                                      pushed before a producer could have
//                                      observed the announcement is found
//             park(timeout) or cancel()
//   producer: if (sleepers() != 0) unpark_one() / unpark(victim)
//
// Wakeups are delivered as sticky *permits* (binary-semaphore style): an
// unpark that races with the parker between its announcement and its wait
// leaves a permit that the wait consumes immediately, so an unpark is never
// lost once the waker has claimed the announcement. The residual window —
// a producer whose sleepers() read misses an in-flight announcement (the
// classic store-buffer/Dekker interleaving, since producers deliberately do
// NOT fence their hot path) — is closed by the timed backstop: park() is
// always a bounded wait, so a missed wake costs bounded latency, never
// progress. Callers adapt the timeout (double on fruitless episodes) to
// keep the idle duty cycle low.
//
// None of this synchronization is routed through the stats::op_counters
// instrumentation: the paper's figures profile the *work-stealing protocol*
// (fences/CAS/steals/exposures), and parking must not perturb them. The
// scheduler counts parks/wakes/idle-time through dedicated counters
// instead, and the whole subsystem can be disabled at runtime
// (LCWS_NO_PARKING=1 or a constructor knob) so the figure harnesses can
// assert counter-faithfulness.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "stats/trace.h"
#include "support/align.h"
#include "support/fault_injection.h"

namespace lcws {

// Runtime kill-switch plumbing: schedulers take a parking_mode knob whose
// default defers to the LCWS_NO_PARKING environment variable.
enum class parking_mode {
  env_default,  // parked unless LCWS_NO_PARKING is set to something truthy
  disabled,
  enabled,
};

inline bool parking_enabled(parking_mode mode) noexcept {
  switch (mode) {
    case parking_mode::disabled: return false;
    case parking_mode::enabled: return true;
    case parking_mode::env_default: break;
  }
  const char* s = std::getenv("LCWS_NO_PARKING");
  return s == nullptr || s[0] == '\0' || s[0] == '0';
}

class parking_lot {
 public:
  explicit parking_lot(std::size_t num_slots) {
    slots_.reserve(num_slots);
    for (std::size_t i = 0; i < num_slots; ++i) {
      slots_.push_back(std::make_unique<slot>());
    }
  }

  parking_lot(const parking_lot&) = delete;
  parking_lot& operator=(const parking_lot&) = delete;

  std::size_t num_slots() const noexcept { return slots_.size(); }

  // Number of workers currently between announce() and wake/cancel.
  // Producers read this (relaxed — one plain load on the hot path) to skip
  // the wake machinery entirely while nobody is parked.
  std::size_t sleepers() const noexcept {
    const auto n = nsleepers_.load(std::memory_order_relaxed);
    return n > 0 ? static_cast<std::size_t>(n) : 0;
  }

  // Relaxed peek at one slot's announcement (true between announce() and
  // the wake/cancel/park that retires it). Callers may use it only as a
  // hint — e.g. a mailbox thief skipping a victim that, being parked, is
  // provably out of work; a stale read just costs one redundant probe.
  bool is_announced(std::size_t i) const noexcept {
    return slots_[i]->announced.load(std::memory_order_relaxed);
  }

  // Publishes slot `i`'s intent to park. The seq_cst RMW is the parker's
  // half of the Dekker handshake: the caller's subsequent sweep for work
  // cannot be satisfied by pre-announcement state alone.
  void announce(std::size_t i) noexcept {
    slots_[i]->announced.store(true, std::memory_order_relaxed);
    nsleepers_.fetch_add(1, std::memory_order_seq_cst);
  }

  // Retires an announcement without sleeping (the final sweep found work,
  // or the pool is shutting down). A wake that already claimed the
  // announcement leaves a sticky permit, consumed by the next park().
  void cancel(std::size_t i) noexcept {
    if (slots_[i]->announced.exchange(false, std::memory_order_acq_rel)) {
      nsleepers_.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  // Blocks slot `i` (previously announced) until a permit arrives or
  // `timeout` expires. Returns true iff woken by a permit. Always retires
  // the announcement on return.
  bool park(std::size_t i, std::chrono::microseconds timeout) {
    slot& s = *slots_[i];
    // Trace the episode on the parker's own ring (trace.h; no-op when
    // tracing is off). Like the stats contract above, this never touches
    // the paper's op counters.
    trace::emit(trace::event::park_begin);
    bool woken = false;
    if (fi::inject(fi::site::spurious_wake)) {
      // Injected fault: the wait "returns" instantly without a permit, as
      // a spurious OS wakeup would. A pending permit is left sticky for
      // the next park; the retire path below runs unchanged.
    } else {
      // EINTR / spurious-wake budget: the deadline is computed once, as an
      // absolute time point, before the first wait. A signal (SIGUSR1
      // exposure traffic lands on these threads constantly) or a spurious
      // futex wake interrupts the underlying wait; the predicated
      // wait_until then re-arms against the *same* deadline — the
      // remaining timeout, never a fresh full budget. (wait_for(pred)
      // would recompute its deadline relative to each re-entry on some
      // implementations; wait_until makes the re-arm contract explicit.)
      const auto deadline = std::chrono::steady_clock::now() + timeout;
      std::unique_lock<std::mutex> lock(s.m);
      woken = s.cv.wait_until(lock, deadline, [&] { return s.permit; });
      s.permit = false;
    }
    // On timeout the announcement is still ours to retire; on a wake the
    // waker already claimed it (and decremented). The exchange arbitrates
    // the race where a waker claims concurrently with our timeout: its
    // permit then simply rides into our next park.
    if (s.announced.exchange(false, std::memory_order_acq_rel)) {
      nsleepers_.fetch_sub(1, std::memory_order_relaxed);
    }
    trace::emit(trace::event::park_end, woken ? 1 : 0);
    return woken;
  }

  // ---- worker-loss fencing (DESIGN.md §11) --------------------------------

  // Fences slot `i` out of the lot: a worker declared lost must never be
  // counted as a wakeable sleeper again (a permit delivered to a corpse is
  // a wake another — live — worker needed). Retires any announcement it
  // left behind so sleepers() stays honest, and marks the slot so every
  // unpark path skips it from now on. Idempotent; called by the recovery
  // winner, raced harmlessly by late detectors.
  void mark_dead(std::size_t i) noexcept {
    slot& s = *slots_[i];
    s.dead.store(true, std::memory_order_relaxed);
    if (s.announced.exchange(false, std::memory_order_acq_rel)) {
      nsleepers_.fetch_sub(1, std::memory_order_relaxed);
    }
    // A wedged-in-park corpse still holds a timed wait; hand it a permit so
    // the underlying cv wait drains promptly (it re-checks its loop exit
    // conditions on return — shutdown, lost-self — and halts).
    deliver_permit(s);
  }

  bool is_dead(std::size_t i) const noexcept {
    return slots_[i]->dead.load(std::memory_order_relaxed);
  }

  // Wakes one announced/parked worker, scanning from `hint`. Returns true
  // iff a worker was claimed and given a permit.
  bool unpark_one(std::size_t hint = 0) {
    if (nsleepers_.load(std::memory_order_seq_cst) <= 0) return false;
    const std::size_t n = slots_.size();
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = (hint + k) % n;
      slot& s = *slots_[i];
      if (s.dead.load(std::memory_order_relaxed)) continue;
      if (!s.announced.load(std::memory_order_relaxed)) continue;
      if (!s.announced.exchange(false, std::memory_order_acq_rel)) continue;
      nsleepers_.fetch_sub(1, std::memory_order_relaxed);
      trace::emit(trace::event::unpark, i);
      deliver_permit(s);
      return true;
    }
    return false;
  }

  // Targeted wake (mailbox steal requests): always delivers a permit, even
  // if `i` is not currently announced — a victim mid-announce then consumes
  // it instantly and re-checks its request box before sleeping.
  void unpark(std::size_t i) {
    slot& s = *slots_[i];
    if (s.announced.exchange(false, std::memory_order_acq_rel)) {
      nsleepers_.fetch_sub(1, std::memory_order_relaxed);
    }
    trace::emit(trace::event::unpark, i);
    deliver_permit(s);
  }

  // Wakes every announced worker (run start, shutdown, completion of a
  // stolen job that a joiner may be parked on). Returns the number woken.
  std::size_t unpark_all() {
    std::size_t woken = 0;
    for (auto& sp : slots_) {
      slot& s = *sp;
      if (s.dead.load(std::memory_order_relaxed)) continue;
      if (!s.announced.load(std::memory_order_relaxed)) continue;
      if (!s.announced.exchange(false, std::memory_order_acq_rel)) continue;
      nsleepers_.fetch_sub(1, std::memory_order_relaxed);
      std::size_t i = static_cast<std::size_t>(&sp - slots_.data());
      trace::emit(trace::event::unpark, i);
      deliver_permit(s);
      ++woken;
    }
    return woken;
  }

 private:
  struct alignas(cache_line_size) slot {
    std::mutex m;
    std::condition_variable cv;
    bool permit = false;  // guarded by m; sticky until consumed by park()
    std::atomic<bool> announced{false};
    std::atomic<bool> dead{false};  // §11: fenced out by mark_dead()
  };

  static void deliver_permit(slot& s) {
    {
      std::lock_guard<std::mutex> lock(s.m);
      s.permit = true;
    }
    s.cv.notify_one();
  }

  std::vector<std::unique_ptr<slot>> slots_;
  // Own line: read (relaxed) on every producer hot path, written only
  // around actual park/wake transitions.
  alignas(cache_line_size) std::atomic<std::int64_t> nsleepers_{0};
};

}  // namespace lcws
