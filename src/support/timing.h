// Monotonic wall-clock timing helpers for the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace lcws {

// A simple start/elapsed stopwatch over steady_clock.
class stopwatch {
 public:
  stopwatch() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  std::uint64_t elapsed_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Monotonic now() in nanoseconds, for code that timestamps events (health
// monitoring, steal-budget windows) rather than measuring an interval.
inline std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Times a callable, returning seconds.
template <typename F>
double time_seconds(F&& f) {
  stopwatch sw;
  f();
  return sw.elapsed_seconds();
}

}  // namespace lcws
