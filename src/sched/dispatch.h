// Runtime selection over the compile-time scheduler policies.
//
// Benchmark harnesses sweep over sched_kind; algorithms are templates over
// the concrete scheduler type so their hot paths stay devirtualized. This
// adapter instantiates the visitor once per policy.
#pragma once

#include <cstddef>
#include <utility>

#include "sched/policies.h"
#include "sched/scheduler.h"
#include "sched/victim_select.h"
#include "support/parking_lot.h"

namespace lcws {

// Constructs a scheduler of the requested kind with `num_workers` workers
// and invokes visitor(sched). The scheduler is torn down before returning.
// `deque_capacity` sets each worker's initial deque size (growth tests use
// tiny values to force doubling); `parking` forwards the elastic-idling
// knob (default: LCWS_NO_PARKING env); `locality` the victim-selection one
// (default: LCWS_LOCALITY_OFF env). Usage:
//   with_scheduler(kind, p, [&](auto& sched) { ... });
template <typename Visitor>
decltype(auto) with_scheduler(sched_kind kind, std::size_t num_workers,
                              std::size_t deque_capacity,
                              parking_mode parking, locality_mode locality,
                              Visitor&& visitor) {
  // Generated from the LCWS_SCHED_KINDS x-macro (policies.h): one case
  // per policy, so a new scheduler kind needs no edit here.
  switch (kind) {
#define LCWS_SCHED_KIND_CASE(kind_, policy)                             \
  case sched_kind::kind_: {                                             \
    scheduler<policy> sched(num_workers, deque_capacity, parking,       \
                            locality);                                  \
    return std::forward<Visitor>(visitor)(sched);                       \
  }
    LCWS_SCHED_KINDS(LCWS_SCHED_KIND_CASE)
#undef LCWS_SCHED_KIND_CASE
  }
  // Unreachable for in-range kinds; keeps -Wreturn-type quiet for
  // out-of-range casts.
  lace_scheduler sched(num_workers, deque_capacity, parking, locality);
  return std::forward<Visitor>(visitor)(sched);
}

template <typename Visitor>
decltype(auto) with_scheduler(sched_kind kind, std::size_t num_workers,
                              parking_mode parking, locality_mode locality,
                              Visitor&& visitor) {
  return with_scheduler(kind, num_workers, default_deque_capacity, parking,
                        locality, std::forward<Visitor>(visitor));
}

// The visitor is a callable, never convertible to std::size_t, so this
// capacity-only overload cannot collide with the parking one above.
template <typename Visitor>
decltype(auto) with_scheduler(sched_kind kind, std::size_t num_workers,
                              std::size_t deque_capacity,
                              Visitor&& visitor) {
  return with_scheduler(kind, num_workers, deque_capacity,
                        parking_mode::env_default,
                        locality_mode::env_default,
                        std::forward<Visitor>(visitor));
}

template <typename Visitor>
decltype(auto) with_scheduler(sched_kind kind, std::size_t num_workers,
                              parking_mode parking, Visitor&& visitor) {
  return with_scheduler(kind, num_workers, parking,
                        locality_mode::env_default,
                        std::forward<Visitor>(visitor));
}

template <typename Visitor>
decltype(auto) with_scheduler(sched_kind kind, std::size_t num_workers,
                              Visitor&& visitor) {
  return with_scheduler(kind, num_workers, parking_mode::env_default,
                        locality_mode::env_default,
                        std::forward<Visitor>(visitor));
}

}  // namespace lcws
