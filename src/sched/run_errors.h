// Structured run-termination errors (DESIGN.md §11).
//
// A run() that cannot produce its value still always returns control: a
// dead worker's in-flight join is repaired with worker_lost_error, and a
// cooperatively cancelled tree collapses with run_cancelled_error. Both
// travel the ordinary exception path — captured into the job at the point
// of failure, drained join by join, rethrown at the spawn site — so user
// code catches them exactly where it would catch its own exceptions.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>

namespace lcws {

// A worker thread was declared lost (missed LCWS_WORKER_LOST_MS of
// heartbeats while runnable) and the recovery protocol repaired the run by
// completing the task it abandoned with this error. Carries the dead
// worker's id and the pool's final per-worker state dump at detection time
// — the post-mortem a service wants in its logs when it sheds the request
// and carries on.
class worker_lost_error : public std::runtime_error {
 public:
  worker_lost_error(std::size_t worker, std::string dump)
      : std::runtime_error("lcws: worker " + std::to_string(worker) +
                           " lost (missed heartbeats); run repaired"),
        worker_(worker),
        dump_(std::move(dump)) {}

  std::size_t worker() const noexcept { return worker_; }

  // dump_worker_state() snapshot taken by the detecting worker.
  const std::string& worker_dump() const noexcept { return dump_; }

 private:
  std::size_t worker_;
  std::string dump_;
};

// The active run was cancelled (cancel_run(), a run_for deadline, or the
// watchdog's cancel rung) and this branch of the tree observed the token
// at a spawn boundary. pardo's drain-before-rethrow contract makes the
// collapse safe: every sibling finishes (or cancels) before any frame
// unwinds.
class run_cancelled_error : public std::runtime_error {
 public:
  run_cancelled_error()
      : std::runtime_error("lcws: run cancelled") {}
  explicit run_cancelled_error(const std::string& why)
      : std::runtime_error("lcws: run cancelled: " + why) {}
};

}  // namespace lcws
