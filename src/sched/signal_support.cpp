#include "sched/signal_support.h"

#include <errno.h>
#include <signal.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "stats/counters.h"
#include "support/backoff.h"
#include "support/fault_injection.h"

namespace lcws::detail {
namespace {

struct hook_slot {
  exposure_hook hook = nullptr;
  void* context = nullptr;
};

thread_local hook_slot tl_hook;

std::atomic<unsigned long long> g_handler_runs{0};

void exposure_signal_handler(int /*signo*/) {
  // No errno-touching calls in here; the hooks only operate on lock-free
  // atomics of this thread's own deque, and the fault-injection probes on
  // atomics and this thread's own TLS.
  g_handler_runs.fetch_add(1, std::memory_order_relaxed);
  if (fi::inject(fi::site::exposure_drop)) {
    // Injected fault: the signal is delivered but the exposure is lost —
    // models a handler pre-empted by thread exit or a swallowed signal.
    // The protocol must survive on truthfulness grounds alone: the victim
    // keeps its work and executes it itself.
    return;
  }
  if (fi::inject(fi::site::exposure_delay)) {
    // Injected fault: stretch the window between signal delivery and the
    // exposure store, widening the §4 pop_bottom/expose race that the
    // decrement-first pop exists to close. A bounded busy spin is the only
    // async-signal-safe delay.
    for (int i = 0; i < 20000; ++i) cpu_relax();
  }
  const hook_slot slot = tl_hook;
  if (slot.hook != nullptr) slot.hook(slot.context);
}

}  // namespace

int exposure_signal() noexcept { return SIGUSR1; }

void install_exposure_handler() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction action {};
    action.sa_handler = &exposure_signal_handler;
    sigemptyset(&action.sa_mask);
    // SA_RESTART: an exposure request must not make syscalls in user tasks
    // fail with EINTR.
    action.sa_flags = SA_RESTART;
    if (sigaction(exposure_signal(), &action, nullptr) != 0) {
      std::perror("lcws: sigaction(SIGUSR1)");
      std::abort();
    }
  });
}

void set_exposure_hook(exposure_hook hook, void* context) noexcept {
  tl_hook = hook_slot{hook, context};
}

void clear_exposure_hook() noexcept { tl_hook = hook_slot{}; }

namespace {

// Total pthread_kill attempts per exposure request (LCWS_SIGNAL_RETRIES
// counts the *re*tries on top of the first attempt). Resolved once.
int send_attempt_budget() noexcept {
  static const int budget = [] {
    if (const char* s = std::getenv("LCWS_SIGNAL_RETRIES")) {
      const long n = std::strtol(s, nullptr, 10);
      if (n >= 0 && n <= 64) return static_cast<int>(n) + 1;
    }
    return 3;  // 1 attempt + 2 retries
  }();
  return budget;
}

}  // namespace

bool send_exposure_request(pthread_t target, int* attempts_out) noexcept {
  // pthread_kill returns the error instead of setting errno, so the send
  // itself is errno-clean; the backoff below may yield(), whose syscall
  // can clobber errno, so save/restore it — this path runs on thief
  // threads, potentially between a user task's syscall and its errno
  // check.
  const int saved_errno = errno;
  const int budget = send_attempt_budget();
  backoff bo(/*spins_before_yield=*/4);
  int attempts = 0;
  for (;;) {
    const int rc = fi::inject(fi::site::signal_send)
                       ? EAGAIN
                       : pthread_kill(target, exposure_signal());
    ++attempts;
    if (rc == 0) {
      if (attempts_out != nullptr) *attempts_out = attempts;
      errno = saved_errno;
      return true;
    }
    // ESRCH is permanent — the target thread is gone — so it skips the
    // retries; transient failures (e.g. EAGAIN when the kernel's signal
    // queue is full) back off exponentially until the budget is spent.
    if (rc == ESRCH || attempts >= budget) break;
    bo.pause();
  }
  if (attempts_out != nullptr) *attempts_out = attempts;
  // Not silent: the caller observes `false` (and un-targets the victim or
  // degrades it), and the profile records the delivery failure.
  stats::count_signal_failed();
  errno = saved_errno;
  return false;
}

scoped_exposure_block::scoped_exposure_block() noexcept {
  sigset_t block;
  sigemptyset(&block);
  sigaddset(&block, exposure_signal());
  pthread_sigmask(SIG_BLOCK, &block, &old_mask_);
}

scoped_exposure_block::~scoped_exposure_block() noexcept {
  pthread_sigmask(SIG_SETMASK, &old_mask_, nullptr);
}

unsigned long long handler_invocations() noexcept {
  return g_handler_runs.load(std::memory_order_relaxed);
}

}  // namespace lcws::detail
