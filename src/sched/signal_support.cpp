#include "sched/signal_support.h"

#include <signal.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace lcws::detail {
namespace {

struct hook_slot {
  exposure_hook hook = nullptr;
  void* context = nullptr;
};

thread_local hook_slot tl_hook;

std::atomic<unsigned long long> g_handler_runs{0};

void exposure_signal_handler(int /*signo*/) {
  // No errno-touching calls in here; the hooks only operate on lock-free
  // atomics of this thread's own deque.
  const hook_slot slot = tl_hook;
  if (slot.hook != nullptr) slot.hook(slot.context);
  g_handler_runs.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

int exposure_signal() noexcept { return SIGUSR1; }

void install_exposure_handler() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction action {};
    action.sa_handler = &exposure_signal_handler;
    sigemptyset(&action.sa_mask);
    // SA_RESTART: an exposure request must not make syscalls in user tasks
    // fail with EINTR.
    action.sa_flags = SA_RESTART;
    if (sigaction(exposure_signal(), &action, nullptr) != 0) {
      std::perror("lcws: sigaction(SIGUSR1)");
      std::abort();
    }
  });
}

void set_exposure_hook(exposure_hook hook, void* context) noexcept {
  tl_hook = hook_slot{hook, context};
}

void clear_exposure_hook() noexcept { tl_hook = hook_slot{}; }

bool send_exposure_request(pthread_t target) noexcept {
  return pthread_kill(target, exposure_signal()) == 0;
}

unsigned long long handler_invocations() noexcept {
  return g_handler_runs.load(std::memory_order_relaxed);
}

}  // namespace lcws::detail
