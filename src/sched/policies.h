// The five scheduling policies of the paper, expressed as compile-time
// policy classes consumed by scheduler<Policy>.
//
// Three behavioural families exist:
//   * ws          — the baseline: fully concurrent ABP deque, no exposure.
//   * user_space  — USLCWS (Section 3): split deque; exposure requests are
//                   flags that the victim notices on its next get_task.
//   * signal      — Signal / Conservative / ExposeHalf (Section 4): split
//                   deque; exposure requests are SIGUSR1s handled in
//                   constant time.
// The signal-family policies differ only in which pop_bottom variant is
// safe for them, which exposure routine the handler runs, and an extra
// predicate gating notifications (Conservative's has_two_tasks).
#pragma once

#include "deque/abp_deque.h"
#include "deque/job.h"
#include "deque/private_deque.h"
#include "deque/split_deque.h"
#include "deque/wsmult_deque.h"

namespace lcws {

enum class sched_family { ws, user_space, signal, mailbox };

// Baseline Work Stealing (Parlay's default scheduler shape).
struct ws_policy {
  static constexpr sched_family family = sched_family::ws;
  static constexpr const char* name = "ws";
  using deque_type = abp_deque<job>;

  static job* pop_local(deque_type& d) { return d.pop_bottom(); }
};

// USLCWS, Listing 1.
struct uslcws_policy {
  static constexpr sched_family family = sched_family::user_space;
  static constexpr const char* name = "uslcws";
  static constexpr bool unexposes = false;  // LCWS never unexposes (§2)
  using deque_type = split_deque<job>;

  // Exposure only ever happens from the owner's own get_task, never
  // concurrently with pop_bottom, so the original Listing 2 pop is correct.
  static job* pop_local(deque_type& d) { return d.pop_bottom_original(); }
  static std::int64_t expose(deque_type& d) noexcept { return d.expose_one(); }
};

// Lace-style scheduler (van Dijk & van de Pol, Euro-Par '14 workshops; the
// paper's Section 2 contrast): flag-polled exposure like USLCWS, but when
// the owner's private part runs dry it *unexposes* half of the still-
// unstolen public work back into the fence-free private part.
struct lace_policy {
  static constexpr sched_family family = sched_family::user_space;
  static constexpr const char* name = "lace";
  static constexpr bool unexposes = true;
  using deque_type = split_deque<job>;

  static job* pop_local(deque_type& d) { return d.pop_bottom_original(); }
  static std::int64_t expose(deque_type& d) noexcept { return d.expose_one(); }
};

// Signal-based LCWS, Section 4 (the "truthful" implementation).
struct signal_policy {
  static constexpr sched_family family = sched_family::signal;
  static constexpr const char* name = "signal";
  using deque_type = split_deque<job>;

  // The handler may expose the last private task mid-pop, hence the
  // Section 4 decrement-first pop.
  static job* pop_local(deque_type& d) { return d.pop_bottom_signal_safe(); }
  static std::int64_t expose(deque_type& d) noexcept { return d.expose_one(); }
  static bool should_signal(const deque_type&) noexcept { return true; }
};

// Conservative Exposure, Section 4.1.1: never exposes the last private
// task, which removes the race and lets the original pop_bottom stand;
// thieves additionally refrain from signalling victims with fewer than two
// private tasks.
struct conservative_policy {
  static constexpr sched_family family = sched_family::signal;
  static constexpr const char* name = "conservative";
  using deque_type = split_deque<job>;

  static job* pop_local(deque_type& d) { return d.pop_bottom_original(); }
  static std::int64_t expose(deque_type& d) noexcept {
    return d.expose_conservative();
  }
  static bool should_signal(const deque_type& d) noexcept {
    return d.has_two_tasks();
  }
};

// Expose Half, Section 4.1.2: on request, publish round(r/2) of the r
// private tasks (r >= 3), via the double2int rounding trick.
struct expose_half_policy {
  static constexpr sched_family family = sched_family::signal;
  static constexpr const char* name = "expose_half";
  using deque_type = split_deque<job>;

  static job* pop_local(deque_type& d) { return d.pop_bottom_signal_safe(); }
  static std::int64_t expose(deque_type& d) noexcept { return d.expose_half(); }
  static bool should_signal(const deque_type&) noexcept { return true; }
};

// WS-mult (DESIGN.md §9): fully fence-free work stealing with
// multiplicity after Castañeda & Piña (PAPERS.md). Behaviourally in the
// ws family — a fully concurrent deque, no exposure protocol — but both
// the owner and thief paths are fence- AND CAS-free; exactly-once
// execution is restored by the slot-claim exchange inside the deque, so
// the scheduler sees only exclusively-owned tasks.
struct wsmult_policy {
  static constexpr sched_family family = sched_family::ws;
  static constexpr const char* name = "wsmult";
  using deque_type = wsmult_deque<job>;

  static job* pop_local(deque_type& d) { return d.pop_bottom(); }
};

// Private deques with explicit steal-request mailboxes (Acar et al.,
// PPoPP '13) — the related-work baseline of the paper's Section 2. Not an
// LCWS variant: included for the comparison benches.
struct private_deques_policy {
  static constexpr sched_family family = sched_family::mailbox;
  static constexpr const char* name = "private_deques";
  using deque_type = private_deque<job>;

  static job* pop_local(deque_type& d) { return d.pop_bottom(); }
};

// Single source of truth for the runtime scheduler kinds: one X-macro
// entry per policy, in the (stable) historical enum order. Everything
// downstream — the sched_kind enum, to_string, all_sched_kinds, and the
// with_scheduler dispatch switch — is generated from this list, so adding
// the ninth policy is a one-line change here (plus its policy struct).
// X is applied as X(kind_token, policy_type).
#define LCWS_SCHED_KINDS(X)              \
  X(ws, ws_policy)                       \
  X(uslcws, uslcws_policy)               \
  X(signal, signal_policy)               \
  X(conservative, conservative_policy)   \
  X(expose_half, expose_half_policy)     \
  X(private_deques, private_deques_policy) \
  X(lace, lace_policy)                   \
  X(wsmult, wsmult_policy)

// Runtime selector used by harnesses and the type-erased dispatcher.
enum class sched_kind {
#define LCWS_SCHED_KIND_ENUM(kind, policy) kind,
  LCWS_SCHED_KINDS(LCWS_SCHED_KIND_ENUM)
#undef LCWS_SCHED_KIND_ENUM
};

constexpr const char* to_string(sched_kind kind) noexcept {
  switch (kind) {
#define LCWS_SCHED_KIND_NAME(kind_, policy) \
  case sched_kind::kind_:                   \
    return policy::name;
    LCWS_SCHED_KINDS(LCWS_SCHED_KIND_NAME)
#undef LCWS_SCHED_KIND_NAME
  }
  return "?";
}

inline constexpr sched_kind all_sched_kinds[] = {
#define LCWS_SCHED_KIND_ENTRY(kind, policy) sched_kind::kind,
    LCWS_SCHED_KINDS(LCWS_SCHED_KIND_ENTRY)
#undef LCWS_SCHED_KIND_ENTRY
};

// The four LCWS variants (everything but the baseline).
inline constexpr sched_kind lcws_sched_kinds[] = {
    sched_kind::uslcws, sched_kind::signal, sched_kind::conservative,
    sched_kind::expose_half};

}  // namespace lcws
