// Fork–join work-stealing scheduler, parameterized by one of the five
// policies in policies.h.
//
// Shape follows Parlay's scheduler (the paper's host runtime): the
// constructing thread is worker 0 and participates in every computation;
// P-1 additional workers are spawned once and persist. A fork (`pardo`)
// pushes the right branch as a stack-allocated job onto the forker's deque,
// runs the left branch inline, then joins by executing whatever work the
// scheduler hands it until the right branch is done (help-first join).
//
// The per-family scheduling logic — Listing 1 (USLCWS) and Listing 3
// (signal-based) of the paper — lives in get_local()/try_steal() below and
// is selected with `if constexpr` so each instantiation pays only for its
// own protocol.
//
// Idle workers adaptively *park* (support/parking_lot.h) instead of
// spinning forever: after kParkAfterFailures fruitless find-task rounds
// (i.e. past the backoff's pause→yield escalation) a worker announces
// itself, makes one final sweep over every deque, and blocks on its
// condition variable with an adaptive timed backstop. Producers wake
// sleepers along a semi-sleeping (ABP-style) wake chain:
//   * push               -> unpark_one   (new — possibly private — work)
//   * user-space expose  -> unpark_one   (work just became stealable)
//   * successful steal   -> unpark_one   (chain: more work is likely)
//   * stolen-job done    -> unpark_all   (its joiner may be parked)
//   * run()/shutdown     -> unpark_all
// Signal-family exposure runs inside a SIGUSR1 handler where waking is not
// async-signal-safe; there the requesting thief (awake by definition)
// steals the exposed task and the chain wake propagates from that steal.
// Mailbox requests never wake their victim: a parked mailbox victim is
// provably empty (it answers pending requests before sleeping and only the
// owner pushes), so the thief's bounded retract answers faster than a wake
// round-trip would — and waking provably-empty victims chain-reacts into a
// wake storm when the whole pool idles.
// Parking is gated by LCWS_NO_PARKING / a constructor knob and never
// touches the paper's fence/CAS/steal/exposure counters (see DESIGN.md).
//
// Hardening (DESIGN.md "Failure model & hardening"):
//   * Exceptions: a task that throws is captured in its job and rethrown
//     at the spawning pardo after the join has drained — user exceptions
//     surface at the spawn site in every family and never unwind a worker
//     loop or the (noexcept) signal-handler exposure path.
//   * Watchdog: LCWS_WATCHDOG_MS=<n> arms a monitor thread that dumps
//     per-worker state (dump_worker_state()) and aborts when no task-level
//     progress happens for a full deadline while a run() is active.
//   * Fault injection: under LCWS_FAULT_INJECTION the fi:: sites in
//     deque_steal/mailbox_steal (forced steal failure), signal_support.cpp
//     (dropped/delayed/unsendable exposure signals) and parking_lot.h
//     (spurious wakeups) can be armed deterministically; zero-cost
//     otherwise.
//
// Graceful degradation (DESIGN.md §6, support/health.h):
//   * Signal fallback: a per-victim health monitor watches exposure-signal
//     delivery (send failures, handler round-trip latency). When it trips,
//     thieves route that victim's exposure requests through the USLCWS
//     user-space flag (the victim polls it in get_local, exactly Listing
//     1's protocol) and probe the signal path every few requests; sustained
//     probe success restores it. Transitions and routed requests are
//     counted (degrade_events / recover_events / fallback_exposures), and
//     the signal-family balance widens to
//     exposure_requests == signals_sent + signals_failed +
//     fallback_exposures.
//   * Oversubscription-aware stealing: idle workers sample involuntary
//     context switches (getrusage) and their steal-success EWMA; under
//     preemption pressure they burn a bounded steal-attempt budget per
//     deadline window, then escalate the shared backoff straight to
//     sched_yield and park after a quarter of the usual fruitless rounds.
//   * LCWS_DEGRADE_OFF=1 disables the whole layer; the hot paths are then
//     bit-for-bit the legacy protocol (no new fences, CAS, or atomics).
//   * LCWS_DUMP_ON_EXIT emits dump_worker_state() at destruction ("1" or
//     "stderr" to stderr, anything else appends to that file path).
//
// Locality-aware victim selection (DESIGN.md §7, sched/victim_select.h):
//   * Workers are pinned to CPUs (LCWS_PIN=compact|scatter|off) and each
//     carries a distance-ordered victim table built at construction from
//     the sysfs topology (support/topology.h). steal_once picks a tier
//     with geometric bias toward near victims, then a victim within the
//     tier by power-of-two-choices on the health monitor's per-victim
//     steal-success EWMA; every LCWS_EXPLORE_PERIOD-th pick is uniform so
//     remote victims (and the §6 probe cadence) are never starved.
//   * Successful steals are classified near/remote + per tier
//     (stats/counters.h): steals == steals_near + steals_remote while the
//     layer is on.
//   * LCWS_LOCALITY_OFF=1 (or the constructor knob) removes the layer:
//     no pinning, and victim choice is the legacy uniform rng draw
//     bit-for-bit.
//   * LCWS_SEED=<n> reseeds the per-worker xoshiro streams (reproducible
//     victim-selection experiments); unset keeps the historical seeds.
//
// Worker-loss containment & cancellation (DESIGN.md §11):
//   * LCWS_WORKER_LOST_MS=<n> arms heartbeat detection: each worker stamps
//     its health slot at scheduling boundaries (find_task); live workers'
//     idle paths poll their peers and a worker silent for a full deadline
//     while a run is active is declared lost (CAS-arbitrated — exactly one
//     detector wins). The winner fences the corpse out of the steal paths
//     and the parking lot, adopts its public deque through the ordinary
//     thief pop_top (so every counter identity holds unmodified), counts
//     unreachable private work as tasks_orphaned, and — once the progress
//     token has been flat for a further full deadline, proving no live
//     worker still executes a descendant — repairs the one join the corpse
//     stranded by completing its in-flight stolen job with
//     worker_lost_error. run() always returns. Worker 0 (the run() driver)
//     is never declared lost.
//   * Cooperative cancellation: cancel_run() — or run_for()'s deadline, or
//     LCWS_RUN_TIMEOUT_MS wrapping every run() — sets a per-run token that
//     every pardo checks; forks then throw run_cancelled_error, the tree
//     collapses through the ordinary drain-then-rethrow joins, and the
//     pool stays reusable. With LCWS_WATCHDOG_MS armed the first frozen
//     deadline now dumps and *cancels* (escalation rung 1); only a second
//     consecutive frozen window aborts.
#pragma once

#include <pthread.h>

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "deque/job.h"
#include "deque/reclaim.h"
#include "sched/policies.h"
#include "sched/run_errors.h"
#include "sched/signal_support.h"
#include "sched/victim_select.h"
#include "stats/counters.h"
#include "stats/perf_counters.h"
#include "stats/trace.h"
#include "support/align.h"
#include "support/backoff.h"
#include "support/fault_injection.h"
#include "support/health.h"
#include "support/parking_lot.h"
#include "support/rng.h"
#include "support/threads.h"
#include "support/timing.h"
#include "support/watchdog.h"

namespace lcws {

template <typename Policy>
class scheduler {
 public:
  using policy_type = Policy;
  using deque_type = typename Policy::deque_type;
  static constexpr sched_family family = Policy::family;

  // deque_capacity bounds each worker's deque (see split_deque.h for the
  // capacity contract); the default is ample for fork-join computations.
  // `parking` is the elastic-idling kill-switch (default: on unless
  // LCWS_NO_PARKING is set in the environment); `locality` the victim-
  // selection one (default: on unless LCWS_LOCALITY_OFF is set).
  explicit scheduler(std::size_t num_workers,
                     std::size_t deque_capacity = default_deque_capacity,
                     parking_mode parking = parking_mode::env_default,
                     locality_mode locality = locality_mode::env_default)
      : nworkers_(num_workers == 0 ? 1 : num_workers),
        targeted_(nworkers_),
        counters_(nworkers_),
        lot_(nworkers_),
        parking_(parking_enabled(parking) && nworkers_ > 1),
        loc_cfg_(locality_config::from_env()),
        locality_(locality_enabled(locality, loc_cfg_) && nworkers_ > 1),
        seed_(env_seed()),
        health_(nworkers_, health::config::from_env()),
        dump_on_exit_([] {
          const char* s = std::getenv("LCWS_DUMP_ON_EXIT");
          return s == nullptr ? std::string() : std::string(s);
        }()),
        owner_(std::this_thread::get_id()) {
    // Observability (DESIGN.md §10): per-worker trace rings (LCWS_TRACE)
    // and hardware-counter slots, both sized before any worker runs so the
    // hot paths never allocate.
    tracer_.init(nworkers_, trace::config::from_env());
    hw_slots_ = std::vector<cache_aligned<hw_slot>>(nworkers_);
    workers_.reserve(nworkers_);
    for (std::size_t i = 0; i < nworkers_; ++i) {
      workers_.push_back(std::make_unique<worker_state>(
          this, i, deque_capacity, worker_rng_seed(seed_, i)));
    }
    // Locality layer: probe the hierarchy, settle the worker->CPU plan and
    // precompute each worker's distance-ordered victim table — all before
    // any thread runs, so the steal hot path never builds or allocates.
    cpu_of_worker_.assign(nworkers_, -1);
    if (locality_) {
      topo_ = probe_topology();
      const std::vector<int> order = pin_order(topo_, loc_cfg_.pin);
      if (!order.empty()) {
        for (std::size_t i = 0; i < nworkers_; ++i) {
          cpu_of_worker_[i] = order[i % order.size()];
        }
      }
      for (std::size_t i = 0; i < nworkers_; ++i) {
        workers_[i]->victims.build(
            build_victim_table(topo_, cpu_of_worker_, i),
            loc_cfg_.explore_period);
      }
      // Pin worker 0 (the constructing thread) here; spawned workers pin
      // themselves on entry. The caller's thread outlives the pool, so its
      // original mask is saved and restored at destruction.
      if (cpu_of_worker_[0] >= 0) {
        saved_affinity_ = save_this_thread_affinity();
        pin_this_thread(static_cast<std::size_t>(cpu_of_worker_[0]));
      }
    }
    if constexpr (family == sched_family::signal) {
      detail::install_exposure_handler();
    }
    register_worker(0);  // the constructing thread is worker 0
    threads_.reserve(nworkers_ - 1);
    for (std::size_t i = 1; i < nworkers_; ++i) {
      threads_.emplace_back([this, i] { worker_loop(i); });
    }
    // Thieves read victims' pthread handles; wait until every worker has
    // published its own.
    while (ready_.load(std::memory_order_acquire) + 1 < nworkers_) {
      std::this_thread::yield();
    }
    // Opt-in stall watchdog (LCWS_WATCHDOG_MS): armed around each run(),
    // reads only relaxed atomics, aborts with a per-worker dump on a stall.
    if (const auto deadline = watchdog::env_deadline()) {
      dog_ = std::make_unique<watchdog>(
          *deadline, [this] { return progress_token(); },
          [this] { return dump_worker_state(); }, watchdog::stall_fn{},
          // §11 escalation rung 1: a frozen window cancels the active run
          // cooperatively before the (second-window) abort.
          [this](const std::string&) { cancel_run(/*from_deadline=*/true); });
    }
  }

  scheduler(const scheduler&) = delete;
  scheduler& operator=(const scheduler&) = delete;

  ~scheduler() {
    dog_.reset();  // the monitor reads worker state; stop it first
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_.store(true, std::memory_order_release);
    }
    idle_cv_.notify_all();
    lot_.unpark_all();  // parked workers must observe shutdown_
    for (auto& t : threads_) t.join();
    finalize_worker_hw(0);
    // Post-mortem knob: all workers have joined, so the state below is the
    // pool's final quiescent snapshot.
    if (!dump_on_exit_.empty()) emit_exit_dump();
    if (tracer_.enabled()) tracer_.write_chrome_json(Policy::name);
    unregister_worker();
    // Un-pin the constructing thread: it outlives this pool.
    restore_this_thread_affinity(saved_affinity_);
  }

  std::size_t num_workers() const noexcept { return nworkers_; }
  static constexpr const char* name() noexcept { return Policy::name; }

  // Runs `f` as the root of a parallel computation on worker 0 (the thread
  // that constructed this scheduler), waking the other workers for its
  // duration. Returns f's result. With LCWS_RUN_TIMEOUT_MS set, every
  // top-level run carries that deadline (see run_for).
  template <typename F>
  decltype(auto) run(F&& f) {
    assert(std::this_thread::get_id() == owner_ &&
           "scheduler::run must be called from the constructing thread");
    if (active_.load(std::memory_order_relaxed)) {
      return std::forward<F>(f)();  // nested run: already inside a root
    }
    if (run_timeout_ms_ != 0) {
      return run_for(std::chrono::milliseconds(run_timeout_ms_),
                     std::forward<F>(f));
    }
    return run_root(std::forward<F>(f));
  }

  // run() with a deadline (§11): if the computation is still in flight
  // after `limit`, the run is cancelled cooperatively — every pardo from
  // then on throws run_cancelled_error, the tree collapses through the
  // ordinary drain-then-rethrow joins, and that error surfaces here. The
  // pool remains fully reusable afterwards. Nested calls inherit the
  // enclosing run's deadline (no second timer is armed).
  template <typename Rep, typename Period, typename F>
  decltype(auto) run_for(std::chrono::duration<Rep, Period> limit, F&& f) {
    assert(std::this_thread::get_id() == owner_ &&
           "scheduler::run_for must be called from the constructing thread");
    if (active_.load(std::memory_order_relaxed)) {
      return std::forward<F>(f)();  // nested: the outer deadline governs
    }
    run_deadline_timer timer(
        this, std::chrono::duration_cast<std::chrono::nanoseconds>(limit));
    return run_root(std::forward<F>(f));
  }

  // Cooperatively cancels the active run (§11). Safe from any thread —
  // including the run_for timer and the watchdog monitor. Returns true iff
  // this call performed the cancelling edge (one per run; later calls and
  // calls between runs are no-ops). The collapse itself is cooperative:
  // in-flight tasks run to their next pardo, which refuses the fork by
  // throwing run_cancelled_error.
  bool cancel_run(bool from_deadline = false) {
    if (!active_.load(std::memory_order_relaxed)) return false;
    bool expected = false;
    if (!cancelled_.compare_exchange_strong(expected, true,
                                            std::memory_order_relaxed)) {
      return false;
    }
    // Callers are often off-pool threads whose TLS counter block is the
    // unaggregated fallback; count on worker 0's block instead.
    ++counters_[0].get().runs_cancelled;
    trace::emit(trace::event::cancel, from_deadline ? 1 : 0);
    // Parked workers hold no tasks, but their joiners' wake chain must not
    // stall the collapse.
    if (parking_) stats::count_wake(lot_.unpark_all());
    return true;
  }

  // Whether the active run has been cancelled (relaxed peek; test hook).
  bool run_cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  // The top-level run body shared by run()/run_for().
  template <typename F>
  decltype(auto) run_root(F&& f) {
    // Stale targeted_ flags must not leak across computations: a flag left
    // true when the previous run drained would suppress this run's first
    // signal (signal family) or trigger a spurious exposure on the first
    // multi-task pop (user-space family). No computation is in flight, so
    // relaxed stores suffice.
    for (auto& flag : targeted_) {
      flag->store(false, std::memory_order_relaxed);
    }
    // Fresh §11 per-run state: the cancellation token rearms, and the run
    // epoch floors every heartbeat comparison so beats from *before* this
    // run can never read as stale at its start.
    cancelled_.store(false, std::memory_order_relaxed);
    run_epoch_ns_.store(monotonic_ns(), std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      active_.store(true, std::memory_order_release);
    }
    idle_cv_.notify_all();
    // Workers idling between runs may be in a timed park rather than the
    // inactive wait; hand each a permit so the computation starts promptly.
    if (parking_) stats::count_wake(lot_.unpark_all());
    if (dog_) dog_->arm();
    // The guard also fires when f throws: every pardo drains its sibling
    // before rethrowing, so by the time an exception reaches here no task
    // of this computation is in flight and deactivating is safe. It is
    // also the trace/hw flush point: worker 0 samples its counters and the
    // rings are rewritten to LCWS_TRACE on every top-level run() exit.
    struct deactivate {
      scheduler* pool;
      ~deactivate() {
        if (pool->dog_ != nullptr) pool->dog_->disarm();
        trace::emit(trace::event::run_end);
        pool->active_.store(false, std::memory_order_release);
        pool->sample_hw(0);
        if (pool->tracer_.enabled()) {
          pool->tracer_.write_chrome_json(Policy::name);
        }
      }
    } guard{this};
    trace::emit(trace::event::run_begin);
    return std::forward<F>(f)();
  }

  // One-shot §11 deadline: a scoped timer thread that cancels the active
  // run if it outlives `limit`. The destructor always stops the timer
  // before run_for returns (or unwinds), so a deadline can never leak into
  // a later run.
  class run_deadline_timer {
   public:
    run_deadline_timer(scheduler* pool, std::chrono::nanoseconds limit)
        : pool_(pool), t_([this, limit] {
            std::unique_lock<std::mutex> lock(m_);
            if (!cv_.wait_for(lock, limit, [this] { return stop_; })) {
              pool_->cancel_run(/*from_deadline=*/true);
            }
          }) {}
    ~run_deadline_timer() {
      {
        std::lock_guard<std::mutex> lock(m_);
        stop_ = true;
      }
      cv_.notify_all();
      t_.join();
    }

   private:
    scheduler* pool_;
    std::mutex m_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread t_;  // last: starts after every field it reads
  };

 public:
  // Fork–join: schedules `right` for potential theft, runs `left` inline,
  // then joins. Callable from worker 0 or from inside any task. When called
  // outside run(), wraps itself in one.
  //
  // Exception semantics: if either branch throws, the other still runs to
  // completion (the join *always* drains — right_job lives on this stack
  // frame and may be executing on a thief, so unwinding early would be
  // use-after-free). The exception then rethrows here, at the spawn site;
  // when both branches throw, the left one wins and the right one is
  // dropped. Nested pardos propagate the same way, so an exception deep in
  // a stolen subtree climbs join by join to the original caller.
  template <typename L, typename R>
  void pardo(L&& left, R&& right) {
    if (!active_.load(std::memory_order_relaxed)) [[unlikely]] {
      run([&] { pardo(left, right); });
      return;
    }
    const std::size_t self = this_worker_id();
    assert(self < nworkers_ && "pardo called from a non-worker thread");
    // Cancellation point (§11): a cancelled run refuses every further fork
    // so the tree collapses instead of growing. One relaxed load of a
    // read-mostly flag that shares its line with active_ (already loaded
    // above), so the uncancelled hot path pays no extra cache traffic.
    if (cancelled_.load(std::memory_order_relaxed)) [[unlikely]] {
      throw run_cancelled_error();
    }
    // Overload backpressure (DESIGN.md §8): past the soft cap this worker
    // already holds more spawnable work than the pool can plausibly drain,
    // so serializing the fork bounds memory instead of growing the deque
    // without limit. Inline branches never touch the deque or the join
    // protocol, so every counter identity is unchanged. Disabled in fixed-
    // capacity mode (legacy behaviour: grow until the deque throws).
    if (growth_cfg_.soft_cap != 0 && !growth_cfg_.fixed &&
        static_cast<std::uint64_t>(workers_[self]->deque.size_estimate()) >=
            growth_cfg_.soft_cap) [[unlikely]] {
      pardo_serial(left, right);
      return;
    }
    lambda_job<std::remove_reference_t<R>> right_job(right);
    push(self, &right_job);
    if constexpr (std::is_nothrow_invocable_v<L&>) {
      left();
      join(self, right_job);
    } else {
      std::exception_ptr left_ex;
      try {
        left();
      } catch (...) {
        left_ex = std::current_exception();
      }
      join(self, right_job);
      if (left_ex != nullptr) std::rethrow_exception(left_ex);
    }
    right_job.rethrow_if_exception();
  }

  // Serialized fork for the soft-cap overload path: both branches always
  // run (matching pardo's drain-before-rethrow contract) and when both
  // throw, the left exception wins — exactly pardo's semantics, minus the
  // deque round trip.
  template <typename L, typename R>
  void pardo_serial(L&& left, R&& right) {
    stats::count_spawn_inline();
    std::exception_ptr left_ex;
    try {
      left();
    } catch (...) {
      left_ex = std::current_exception();
    }
    std::exception_ptr right_ex;
    try {
      right();
    } catch (...) {
      right_ex = std::current_exception();
    }
    if (left_ex != nullptr) std::rethrow_exception(left_ex);
    if (right_ex != nullptr) std::rethrow_exception(right_ex);
  }

  // ---- instrumentation ----------------------------------------------------

  // Aggregated synchronization-operation profile. Only meaningful while no
  // computation is running.
  stats::profile profile() const {
    stats::profile p = stats::aggregate(counters_);
    p.hw = collect_hw();
    return p;
  }

  // Pool-wide hardware-counter totals (perf_counters.h). Workers publish
  // cumulative readings into their slot at cold boundaries (park entry,
  // between-runs idle, run exit, shutdown); this sums the latest samples.
  stats::hw_profile collect_hw() const {
    stats::hw_profile hw;
    if (!hw_enabled_) return hw;  // status stays "unavailable:off"
    int best = 0;
    int err = 0;
    for (std::size_t i = 0; i < nworkers_; ++i) {
      const hw_slot& s = hw_slots_[i].get();
      hw.cycles += s.cycles.get();
      hw.instructions += s.instructions.get();
      hw.cache_references += s.cache_references.get();
      hw.cache_misses += s.cache_misses.get();
      hw.task_clock_ns += s.task_clock_ns.get();
      const int code = s.state.load(std::memory_order_relaxed);
      if (code > best) best = code;
      const int e = s.err.load(std::memory_order_relaxed);
      if (e != 0 && err == 0) err = e;
    }
    switch (best) {
      case kHwFull:
        hw.available = true;
        hw.status = "available";
        break;
      case kHwCpuOnly:
        hw.available = true;
        hw.status = "partial:no-cache-counters";
        break;
      case kHwClockOnly:
        hw.available = true;
        hw.status =
            std::string("partial:task-clock-only:") + stats::errno_name(err);
        break;
      default:
        hw.status = std::string("unavailable:") +
                    (err != 0 ? stats::errno_name(err) : "not-sampled");
        break;
    }
    return hw;
  }

  // Whether per-worker perf_event sampling was requested (LCWS_PERF).
  bool hw_counters_enabled() const noexcept { return hw_enabled_; }

  // The trace layer (test/diagnostic; enabled iff LCWS_TRACE was set).
  const trace::tracer& tracer() const noexcept { return tracer_; }

  // Zeroes all counters (call while no computation is running).
  void reset_counters() noexcept {
    for (auto& block : counters_) block.get() = stats::op_counters{};
  }

  // Whether elastic idling is in effect for this pool.
  bool parking_active() const noexcept { return parking_; }

  // Whether the LCWS_WATCHDOG_MS stall watchdog is attached.
  bool watchdog_active() const noexcept { return dog_ != nullptr; }

  // Monotone token that advances whenever scheduler-level work happens
  // (tasks executed, deque traffic). The watchdog samples it; a full
  // deadline without movement while a run() is active is declared a stall.
  std::uint64_t progress_token() const noexcept {
    std::uint64_t token = 0;
    for (const auto& block : counters_) {
      const auto& c = block.get();
      token += c.tasks_executed.get() + c.pushes.get() +
               c.pops_private.get() + c.pops_public.get() + c.steals.get();
    }
    return token;
  }

  // Human-readable per-worker snapshot: deque indices, targeted/parked
  // flags and key counters. Reads only relaxed atomics, so it is safe to
  // call from the watchdog's monitor thread mid-hang (values are racy
  // estimates — exactly what a post-mortem needs).
  std::string dump_worker_state() const {
    std::ostringstream out;
    out << "scheduler=" << Policy::name << " workers=" << nworkers_
        << " active=" << active_.load(std::memory_order_relaxed)
        << " shutdown=" << shutdown_.load(std::memory_order_relaxed)
        << " parking=" << parking_ << " locality=" << locality_
        << " deque_fixed=" << growth_cfg_.fixed
        << " soft_cap=" << growth_cfg_.soft_cap
        << " cancelled=" << cancelled_.load(std::memory_order_relaxed)
        << " lost=" << health_.lost_count() << " repairs_pending="
        << pending_repairs_.load(std::memory_order_relaxed) << "\n";
    for (std::size_t i = 0; i < nworkers_; ++i) {
      const auto& c = counters_[i].get();
      out << "  w" << i << ": deque{" << workers_[i]->deque.debug_string()
          << "} targeted=" << targeted_[i]->load(std::memory_order_relaxed)
          << " announced=" << lot_.is_announced(i)
          << " tasks=" << c.tasks_executed.get()
          << " grows=" << c.deque_grows.get()
          << " hwm=" << c.deque_hwm.get()
          << " spawns_inline=" << c.spawns_inline.get()
          << " steals=" << c.steals.get() << "/" << c.steal_attempts.get();
      if (locality_) {
        out << " cpu=" << cpu_of_worker_[i]
            << " near/remote=" << c.steals_near.get() << "/"
            << c.steals_remote.get();
      }
      out << " exposures=" << c.exposures.get()
          << " idle_loops=" << c.idle_loops.get()
          << " parks=" << c.parks.get() << " stuck_job="
          << (workers_[i]->current_job.load(std::memory_order_relaxed) !=
              nullptr);
      if (health_.enabled()) {
        out << " health{" << health_.debug_string(i) << "}";
      }
      if (hw_enabled_) {
        const hw_slot& s = hw_slots_[i].get();
        out << " hw{state=" << s.state.load(std::memory_order_relaxed)
            << " err=" << stats::errno_name(s.err.load(std::memory_order_relaxed))
            << " cycles=" << s.cycles.get()
            << " cache_misses=" << s.cache_misses.get() << "}";
      }
      out << "\n";
      if (tracer_.enabled()) {
        out << "    trace tail (newest last, of "
            << tracer_.worker_ring(i)->emitted() << " events):\n"
            << tracer_.tail_string(i, 16);
      }
    }
    return out.str();
  }

  // Whether the §6 degradation layer is active (LCWS_DEGRADE_OFF unset).
  bool degradation_active() const noexcept { return health_.enabled(); }

  // Whether §7 locality-aware victim selection is in effect for this pool.
  bool locality_active() const noexcept { return locality_; }

  // The CPU worker `worker` was pinned to (-1: unpinned / locality off).
  int pinned_cpu_of(std::size_t worker) const noexcept {
    return cpu_of_worker_[worker];
  }

  // Distance tier of `victim` as seen from `self` (test/diagnostic; only
  // meaningful while locality is active).
  locality_tier tier_between(std::size_t self,
                             std::size_t victim) const noexcept {
    return workers_[self]->victims.tier_of(victim);
  }

  // Relaxed snapshot of one victim's signal-path state (test/diagnostic).
  bool is_degraded(std::size_t worker) const noexcept {
    return health_.enabled() && health_.is_degraded(worker);
  }

  // ---- §11 worker-loss introspection / hooks ------------------------------

  // Whether LCWS_WORKER_LOST_MS armed heartbeat loss detection.
  bool loss_detection_active() const noexcept {
    return health_.loss_detection();
  }

  // Workers declared lost so far (0 on a healthy pool).
  std::uint64_t lost_workers() const noexcept { return health_.lost_count(); }

  bool is_lost(std::size_t worker) const noexcept {
    return health_.loss_detection() && health_.is_lost(worker);
  }

  // Direct access to the health monitor (force_lost/force_degraded and the
  // other test hooks).
  health::monitor& health_monitor() noexcept { return health_; }

  // Test/bench hook: ask worker `w` to exit its scheduling loop at its next
  // boundary — a deterministic stand-in for the fi worker_crash site. With
  // loss detection armed the pool then detects and fences it like any real
  // loss; without, the pool simply runs short-handed (the exiting worker
  // holds no work at a boundary). Worker 0 drives run() and never dies.
  void debug_lose_worker(std::size_t w) noexcept {
    if (w == 0 || w >= nworkers_) return;
    workers_[w]->die.store(true, std::memory_order_relaxed);
    lot_.unpark(w);  // a parked worker must wake to observe the request
  }

  // Test/diagnostic access.
  deque_type& deque_of(std::size_t worker) noexcept {
    return workers_[worker]->deque;
  }
  // The pool's reclamation domain (DESIGN.md §8; test/diagnostic).
  reclaim_domain& reclaim() noexcept { return reclaim_; }
  // The growth/backpressure policy in effect (snapshotted from the
  // environment at construction).
  const deque_growth& growth_config() const noexcept { return growth_cfg_; }
  bool is_targeted(std::size_t worker) const noexcept {
    return targeted_[worker]->load(std::memory_order_relaxed);
  }
  void set_targeted(std::size_t worker, bool value) noexcept {  // test hook
    targeted_[worker]->store(value, std::memory_order_relaxed);
  }

 private:
  // Park after this many consecutive fruitless find-task rounds — past the
  // backoff's pause->yield escalation (10 doubling pause steps), so a
  // worker has yielded the CPU plenty before it commits to sleeping. The
  // threshold is calibrated to the cost of one round: a mailbox round spins
  // up to 512 iterations (with yields) waiting for the victim's answer,
  // ~100x the cost of a deque probe, so the mailbox family parks after
  // proportionally fewer rounds.
  static constexpr std::uint32_t kParkAfterFailures =
      family == sched_family::mailbox ? 4 : 32;
  // Adaptive backstop bounds: first park waits kParkMinUs; fruitless
  // episodes double it up to kParkMaxUs; any delivered permit resets it.
  // The backstop also bounds the cost of the one theoretical lost-wake
  // interleaving (see parking_lot.h): the ceiling is the worst-case extra
  // latency of a missed wake, while every spurious timed wakeup costs a
  // probe sweep — 20ms keeps long-idle workers under 50 wakeups/s each.
  static constexpr std::uint32_t kParkMinUs = 100;
  static constexpr std::uint32_t kParkMaxUs = 20000;

  struct worker_state {
    worker_state(scheduler* p, std::size_t i, std::size_t deque_capacity,
                 std::uint64_t rng_seed)
        : pool(p),
          id(i),
          reader(p->reclaim_.register_reader()),
          deque(deque_capacity, &p->reclaim_, p->growth_cfg_),
          rng(rng_seed),
          throttle(p->health_.cfg().steal_budget,
                   p->health_.cfg().budget_window_ns) {}
    scheduler* const pool;     // back-pointer for the exposure trampoline
    const std::size_t id;
    // Reclamation reader slot (DESIGN.md §8): registered before any run()
    // — and therefore before any growth — per reclaim_domain's contract.
    const std::size_t reader;
    deque_type deque;
    xoshiro256 rng;            // victim selection; owner-only
    pthread_t handle{};        // published before ready_ increments
    steal_box<job> mail;       // mailbox family: this worker's answer box
    health::steal_throttle throttle;  // §6 steal budget; owner-only
    victim_selector victims;   // §7 distance-ordered table; owner-only
    std::uint32_t park_timeout_us = kParkMinUs;  // adaptive; owner-only
    stats::perf_group hw;      // §10 per-thread counters; owner-only
    // §11 worker-loss containment. current_job publishes the stolen task
    // this worker is executing (null otherwise): the one join it would
    // strand by dying, which recovery must repair. Cleared strictly before
    // the job's done is published, so a detector that reads non-null knows
    // the joiner is still waiting. gasped is the crash sites' last-gasp
    // release edge (recovery acquire-loads it before touching anything the
    // corpse wrote); die is the debug_lose_worker request flag.
    std::atomic<job*> current_job{nullptr};
    std::atomic<bool> gasped{false};
    std::atomic<bool> die{false};
    // Owner-only rate limiter for the busy-path detection poll in
    // find_task (a saturated pool never takes the idle-path pollers).
    std::uint64_t last_loss_poll_ns = 0;
  };

  // §11 join-repair bookkeeping (cold; guarded by repair_mutex_): one entry
  // per lost worker that died holding a stolen job.
  struct repair {
    job* stuck;                     // the corpse's in-flight stolen job
    std::size_t lost;               // which worker died
    std::string dump;               // pool state at detection (for the error)
    std::uint64_t last_token;       // progress token at last observation
    std::uint64_t stable_since_ns;  // when the token last moved
    bool repaired = false;
  };

  // Availability codes published per worker in hw_slot::state.
  static constexpr int kHwFull = 3;       // cycles+instructions+cache
  static constexpr int kHwCpuOnly = 2;    // cycles+instructions
  static constexpr int kHwClockOnly = 1;  // task-clock software event only

  // Cumulative hardware readings, overwritten by the owning worker at cold
  // sample points and read (racily, by design) by profile() and the dumps.
  struct hw_slot {
    stats::relaxed_counter cycles;
    stats::relaxed_counter instructions;
    stats::relaxed_counter cache_references;
    stats::relaxed_counter cache_misses;
    stats::relaxed_counter task_clock_ns;
    std::atomic<int> state{0};  // kHw* code; 0 = nothing opened
    std::atomic<int> err{0};    // errno from the hw-group open failure
  };

  // A found task plus its provenance: stolen tasks drive the wake chain
  // (and their completion may unblock a parked joiner).
  struct found_task {
    job* task = nullptr;
    bool stolen = false;
    explicit operator bool() const noexcept { return task != nullptr; }
  };

  // ---- registration -------------------------------------------------------

  void register_worker(std::size_t id) {
    set_this_worker_id(id);
    stats::set_local_counters(&counters_[id].get());
    trace::set_local_ring(tracer_.worker_ring(id));
    if (hw_enabled_) {
      // perf_event groups count the opening thread, so each worker opens
      // its own on entry; availability (or the errno) is published for
      // collect_hw()/dump_worker_state.
      auto& ws = *workers_[id];
      ws.hw.open(stats::perf_env_force_errno());
      auto& slot = hw_slots_[id].get();
      const std::string st = ws.hw.status();
      slot.state.store(st == "available"                   ? kHwFull
                       : st == "partial:no-cache-counters" ? kHwCpuOnly
                       : ws.hw.is_open()                   ? kHwClockOnly
                                                           : 0,
                       std::memory_order_relaxed);
      slot.err.store(ws.hw.error(), std::memory_order_relaxed);
    }
    workers_[id]->handle = pthread_self();
    if constexpr (family == sched_family::signal) {
      detail::set_exposure_hook(&exposure_trampoline, workers_[id].get());
    }
  }

  void unregister_worker() noexcept {
    if constexpr (family == sched_family::signal) {
      detail::clear_exposure_hook();
    }
    trace::set_local_ring(nullptr);
    stats::set_local_counters(nullptr);
    set_this_worker_id(npos_worker);
  }

  // Publishes the worker's cumulative hardware readings into its slot.
  // Called only at cold boundaries (park entry, between-runs idle, run
  // exit, shutdown) — one read() syscall each, never per task or steal.
  void sample_hw(std::size_t self) noexcept {
    if (!hw_enabled_) return;
    const stats::hw_values v = workers_[self]->hw.read();
    if (!v.any()) return;
    hw_slot& s = hw_slots_[self].get();
    s.cycles = v.cycles;
    s.instructions = v.instructions;
    s.cache_references = v.cache_references;
    s.cache_misses = v.cache_misses;
    s.task_clock_ns = v.task_clock_ns;
    if (v.cpu_valid) trace::emit(trace::event::hw_cycles, v.cycles);
    if (v.cache_valid) {
      trace::emit(trace::event::hw_cache_misses, v.cache_misses);
    }
  }

  // Final sample + fd teardown on the worker's own thread (worker_loop
  // exit; the destructor does worker 0 after the others joined).
  void finalize_worker_hw(std::size_t self) noexcept {
    sample_hw(self);
    workers_[self]->hw.close();
  }

  // SIGUSR1 lands here on the victim's thread (signal family only):
  // transfer work to the public part in constant time (Section 4). The
  // health tick is a relaxed load+store on this thread's own slot —
  // async-signal-safe — and lets thieves measure the exposure round trip.
  static void exposure_trampoline(void* ctx) noexcept {
    auto* ws = static_cast<worker_state*>(ctx);
    Policy::expose(ws->deque);
    // Relaxed stores into this thread's own ring are async-signal-safe;
    // see trace.h for the mid-emit reentrancy contract.
    trace::emit(trace::event::exposure_answer, ws->id);
    if (ws->pool->health_.enabled()) {
      ws->pool->health_.note_handler_ran(ws->id);
    }
  }

  // ---- wake chain ---------------------------------------------------------

  // One relaxed load when nobody sleeps keeps producers fence-free.
  void wake_one(std::size_t self) {
    if (lot_.unpark_one(self + 1 < nworkers_ ? self + 1 : 0)) {
      stats::count_wake();
    }
  }

  // ---- per-family deque protocol -----------------------------------------

  void push(std::size_t self, job* task) {
    workers_[self]->deque.push_bottom(task);
    if constexpr (family == sched_family::signal) {
      // A fresh push means there is (new) work that could be exposed, so
      // notifications become useful again (Section 4: the flag is reset
      // when the target pushes a new task).
      auto& flag = targeted_[self].get();
      if (flag.load(std::memory_order_relaxed)) {
        flag.store(false, std::memory_order_relaxed);
      }
    }
    // Wake-chain root: fresh (possibly still private) work can satisfy a
    // parked thief — it will probe, request exposure if needed, and steal.
    if (parking_ && lot_.sleepers() != 0) wake_one(self);
  }

  // Local half of Listing 1 / Listing 3's get_task: own private part, then
  // own public part.
  job* get_local(std::size_t self) {
    auto& d = workers_[self]->deque;
    if constexpr (family == sched_family::ws) {
      return d.pop_bottom();
    } else if constexpr (family == sched_family::user_space) {
      // Listing 1 lines 7-17.
      job* task = Policy::pop_local(d);
      if (task == nullptr) {
        if constexpr (Policy::unexposes) {
          // Lace-style: reclaim still-unstolen public work back into the
          // private part, then retry the fence-free pop.
          if (d.unexpose_half() > 0) task = Policy::pop_local(d);
        }
      }
      if (task != nullptr) {
        auto& flag = targeted_[self].get();
        if (flag.load(std::memory_order_relaxed)) {
          flag.store(false, std::memory_order_relaxed);
          const bool exposed = Policy::expose(d) > 0;
          trace::emit(trace::event::exposure_answer, self);
          // The exposed task is stealable right now; hand it to a sleeper.
          if (exposed && parking_ && lot_.sleepers() != 0) wake_one(self);
        }
        return task;
      }
      task = d.pop_public_bottom();
      if (task != nullptr) return task;
      targeted_[self]->store(false, std::memory_order_relaxed);
      return nullptr;
    } else if constexpr (family == sched_family::mailbox) {
      // pop_bottom polls and answers a pending steal request; when the
      // stack is empty the poll still runs, which keeps the victim
      // responsive while it spins in a join or idle loop.
      return d.pop_bottom();
    } else {  // signal family
      job* task = Policy::pop_local(d);
      if (task != nullptr) {
        if (health_.enabled() && health_.is_degraded(self)) [[unlikely]] {
          answer_fallback_request(self, d);
        }
        return task;
      }
      task = d.pop_public_bottom();
      if (task != nullptr) {
        // A task left the public part: allow new notifications.
        targeted_[self]->store(false, std::memory_order_relaxed);
        return task;
      }
      if (health_.enabled() && health_.is_degraded(self)) [[unlikely]] {
        // Going idle: answer (and clear) any pending fallback request now.
        // A request can land just after our last private pop — without this
        // the flag would stay set across the park, and a set flag gates
        // future requests, which would starve the probe cadence and make
        // recovery unreachable.
        answer_fallback_request(self, d);
      }
      return nullptr;
    }
  }

  // Thief half: one steal attempt against `victim`.
  job* try_steal(std::size_t self, std::size_t victim) {
    if constexpr (family == sched_family::mailbox) {
      return mailbox_steal(self, victim);
    } else {
      (void)self;
      return deque_steal(victim);
    }
  }

  // Mailbox protocol (private_deques): post a request, spin for the
  // answer, retract on timeout. The victim answers at its next scheduling
  // point — which may be far away if it is inside a long sequential task
  // (the documented weakness of the approach). `self` is threaded down from
  // find_task so the steal loop never re-reads this_worker_id()'s TLS.
  job* mailbox_steal(std::size_t self, std::size_t victim) {
    // A parked victim is provably empty (it drains its stack and answers
    // pending requests before sleeping; only the owner pushes), so posting
    // to one could only spin out the retract timeout below. Skip in O(1).
    // The peek is a stale-tolerant hint: a victim waking concurrently is
    // simply probed again next round.
    if (parking_ && lot_.is_announced(victim)) return nullptr;
    if (fi::inject(fi::site::steal_cas)) {
      // Injected fault: the request CAS "loses" to another thief.
      stats::count_steal_attempt();
      return nullptr;
    }
    auto& box = workers_[self]->mail;
    box.answer.store(steal_box<job>::pending(), std::memory_order_relaxed);
    auto& d = workers_[victim]->deque;
    stats::count_steal_attempt();
    if (!d.post_request(&box)) return nullptr;  // victim busy with another
    stats::count_exposure_request();
    trace::emit(trace::event::exposure_request, victim);
    // No wake for the victim: a parked mailbox victim is provably empty
    // (it answers pending requests and drains its own stack before
    // sleeping, and only the owner pushes), so waking it could only buy a
    // faster "no work" answer than the retract timeout below — not worth
    // two context switches. Waking victims here also feeds back: each
    // woken victim's own probe posts a request that wakes the next
    // sleeper, a self-sustaining storm when the whole pool is idle.
    bool retracted = false;
    for (int spin = 0;; ++spin) {
      job* answer = box.answer.load(std::memory_order_acquire);
      if (answer != steal_box<job>::pending()) {
        if (answer != nullptr) stats::count_steal_success();
        return answer;
      }
      if (!retracted && spin > 512) {
        if (d.retract_request(&box)) return nullptr;
        retracted = true;  // victim is answering: the box fills imminently
      }
      if ((spin & 15) == 15) {
        std::this_thread::yield();
      } else {
        cpu_relax();
      }
    }
  }

  job* deque_steal(std::size_t victim) {
    auto& d = workers_[victim]->deque;
    if (fi::inject(fi::site::steal_cas)) {
      // Injected fault: behave exactly as a pop_top that lost its CAS race
      // — attempt made, nothing taken, thief retries elsewhere. The deque
      // is untouched, so the pushes == pops + steals balance is preserved.
      stats::count_steal_attempt();
      stats::count_steal_abort();
      return nullptr;
    }
    const auto result = d.pop_top();
    if (result.status == steal_status::stolen) {
      if constexpr (family == sched_family::signal) {
        // A task left the victim's public part: allow new notifications.
        targeted_[victim]->store(false, std::memory_order_relaxed);
      }
      return result.task;
    }
    if (result.status == steal_status::private_work) {
      if constexpr (family == sched_family::user_space) {
        // Listing 1 line 22: ask the victim to expose on its next
        // scheduling round.
        auto& flag = targeted_[victim].get();
        if (!flag.load(std::memory_order_relaxed)) {
          stats::count_exposure_request();
          trace::emit(trace::event::exposure_request, victim);
          flag.store(true, std::memory_order_relaxed);
        }
      } else if constexpr (family == sched_family::signal) {
        // Listing 3 lines 8-11 (plus Conservative's has_two_tasks gate).
        // The victim provably has private work, so it is running, never
        // parked — no wake needed; the handler's exposure is harvested by
        // this (awake) thief on a later round.
        auto& flag = targeted_[victim].get();
        const bool pending = flag.load(std::memory_order_relaxed);
        if (!pending && Policy::should_signal(d)) {
          if (!health_.enabled()) {
            // Legacy path, bit-for-bit (LCWS_DEGRADE_OFF).
            flag.store(true, std::memory_order_relaxed);
            stats::count_exposure_request();
            trace::emit(trace::event::exposure_request, victim);
            if (detail::send_exposure_request(workers_[victim]->handle)) {
              stats::count_signal_sent();
            } else {
              // Delivery failed even after send_exposure_request's retry
              // budget (counted in signals_failed). Leaving the flag set
              // would permanently suppress signalling this victim; clear
              // it so a later thief can try again.
              flag.store(false, std::memory_order_relaxed);
            }
          } else {
            request_exposure_monitored(victim, flag);
          }
        } else if (pending && health_.enabled() &&
                   health_.is_degraded(victim) && Policy::should_signal(d)) {
          // The victim is degraded and a request is already pending. That
          // flag may be stale — set in the race window after the victim's
          // last poll, so nobody will ever answer it. Re-requesting keeps
          // the probe cadence (and thus recovery) alive; accounting stays
          // balanced because each re-request resolves to exactly one of
          // fallback_exposures / signals_sent / signals_failed like any
          // other request.
          request_exposure_monitored(victim, flag);
        }
      }
    }
    return nullptr;
  }

  // ---- graceful degradation (signal family; DESIGN.md §6) -----------------

  // Counts a state-machine transition on the observing thief's block.
  // Exactly one caller per transition sees a non-none value (the monitor's
  // compare_exchange picks the winner), so the counters stay exact.
  static void note_transition(health::transition t) noexcept {
    if (t == health::transition::degraded) {
      stats::count_degrade_event();
    } else if (t == health::transition::recovered) {
      stats::count_recover_event();
    }
  }

  // One exposure request with the health monitor in the loop. Accounting
  // invariant: every request resolves to exactly one of signals_sent,
  // signals_failed or fallback_exposures.
  //
  //   healthy --send fails (streak/EWMA)--> degraded
  //   degraded: requests set the user-space flag (fallback_exposures);
  //             every probe_period-th request probes the signal path
  //   degraded --recover_streak successful probes--> healthy
  void request_exposure_monitored(std::size_t victim,
                                  std::atomic<bool>& flag) {
    const std::uint64_t now = monotonic_ns();
    // Resolve a pending round-trip measurement first: a timed-out handler
    // is (EWMA) evidence even when sends keep succeeding.
    note_transition(health_.poll_rtt(victim, now));
    flag.store(true, std::memory_order_relaxed);
    stats::count_exposure_request();
    trace::emit(trace::event::exposure_request, victim);
    if (!health_.is_degraded(victim)) {
      int attempts = 1;
      if (detail::send_exposure_request(workers_[victim]->handle,
                                        &attempts)) {
        stats::count_signal_sent();
        health_.note_send_ok(victim, attempts);
        health_.arm_rtt(victim, now);
        return;
      }
      const health::transition t = health_.note_send_failure(victim);
      note_transition(t);
      if (t == health::transition::degraded) {
        // This very request converts in place: the flag stays set and the
        // victim answers it through the user-space poll in get_local.
        return;
      }
      // Still healthy: legacy behavior — clear so a later thief retries.
      flag.store(false, std::memory_order_relaxed);
      return;
    }
    // Degraded: the request rides the user-space flag. Periodically probe
    // the signal path so sustained recovery can restore it.
    if (health_.should_probe(victim)) {
      int attempts = 1;
      if (detail::send_exposure_request(workers_[victim]->handle,
                                        &attempts)) {
        stats::count_signal_sent();
        note_transition(health_.note_probe_ok(victim));
        health_.arm_rtt(victim, now);
      } else {
        // Probe failed (already in signals_failed); the flag stays set —
        // the user-space poll still answers this request.
        health_.note_probe_failure(victim);
      }
      return;
    }
    stats::count_fallback_exposure();
  }

  // Degraded-mode victim side: the USLCWS poll (Listing 1 lines 12-16)
  // grafted onto the signal family — requests routed user-space are
  // answered here, at task granularity, instead of by the SIGUSR1 handler.
  void answer_fallback_request(std::size_t self, deque_type& d) {
    auto& flag = targeted_[self].get();
    if (!flag.load(std::memory_order_relaxed)) return;
    flag.store(false, std::memory_order_relaxed);
    // A probe signal may still be in flight; its handler would run this
    // same exposure reentrantly on this thread — harmless for the deque
    // (same-value stores) but it would double-count exposure stats. Block
    // it for the duration (cold path: degraded victims only).
    detail::scoped_exposure_block guard;
    const bool exposed = Policy::expose(d) > 0;
    trace::emit(trace::event::exposure_answer, self);
    // The exposed task is stealable right now; hand it to a sleeper.
    if (exposed && parking_ && lot_.sleepers() != 0) wake_one(self);
  }

  // Oversubscription-aware idle step (health enabled): sample preemption
  // at the park boundary and periodically thereafter; under pressure burn
  // the steal-attempt budget, then cede the CPU outright — a preempted
  // victim cannot expose anything while we spin over it. Returns true when
  // it yielded (the caller skips its backoff pause).
  bool idle_pressure_step(std::size_t self, std::uint32_t failures,
                          backoff& bo) {
    if (failures == kParkAfterFailures || (failures & 1023u) == 0) {
      health_.sample_preemption(self, monotonic_ns());
    }
    if (health_.pressure(self) &&
        workers_[self]->throttle.note_attempt(monotonic_ns())) {
      bo.escalate();
      std::this_thread::yield();
      return true;
    }
    return false;
  }

  // Degraded workers park earlier: under preemption pressure a quarter of
  // the usual fruitless-round budget — the CPU is provably contended, so
  // ceding it beats spinning for work that cannot appear any faster.
  std::uint32_t park_threshold(std::size_t self) const {
    if (health_.enabled() && health_.pressure(self)) {
      return kParkAfterFailures >= 4 ? kParkAfterFailures / 4 : 1;
    }
    return kParkAfterFailures;
  }

  // ---- worker-loss containment (DESIGN.md §11) ----------------------------

  // Idle-path detection round, rate-limited to every 64th fruitless
  // iteration (spinning idlers poll often; park entries call loss_poll
  // unconditionally so a mostly-parked pool still detects within its
  // ≤20ms backstop cadence). No-op unless LCWS_WORKER_LOST_MS is armed.
  void loss_idle_step(std::size_t self, std::uint32_t failures) {
    if (!health_.loss_detection()) return;
    if ((failures & 63u) != 0) return;
    loss_poll(self);
  }

  // One full detection/repair round: beat, poll every peer's heartbeat
  // (worker 0 — the run() driver — is never declared lost), keep dead
  // readers' reclamation slots moving, and advance any pending join
  // repairs. Callers gate on loss_detection().
  void loss_poll(std::size_t self) {
    const std::uint64_t now = monotonic_ns();
    health_.beat(self, now);  // idling is liveness too
    if (active_.load(std::memory_order_relaxed) && nworkers_ > 1) {
      const std::uint64_t epoch =
          run_epoch_ns_.load(std::memory_order_relaxed);
      for (std::size_t w = 1; w < nworkers_; ++w) {
        if (w == self) continue;
        if (health_.poll_worker_lost(w, now, epoch) ==
            health::transition::worker_lost) {
          recover_lost_worker(self, w);
        }
      }
    }
    if (health_.any_lost()) {
      // Quiesce on the corpses' behalf: a worker dead at a scheduling
      // boundary provably holds no deque-buffer pointer, and its frozen
      // reader slot would otherwise stall buffer reclamation for the rest
      // of the pool's lifetime.
      for (std::size_t w = 1; w < nworkers_; ++w) {
        if (health_.is_lost(w)) reclaim_.quiesce(workers_[w]->reader);
      }
      poll_repairs(now);
    }
  }

  // The detection winner's recovery protocol. By the §11 fault model the
  // corpse died at a scheduling boundary (loop top, park entry, or between
  // claiming a stolen task and executing it), so its own pardo frames have
  // all unwound: every task still in its deque was pushed by frames that
  // no longer exist — nobody live joins them — and the only join it can
  // strand is the stolen job recorded in current_job.
  void recover_lost_worker(std::size_t self, std::size_t lost) {
    stats::count_worker_lost();
    auto& ws = *workers_[lost];
    // Pair with the crash sites' last-gasp release store: everything the
    // corpse wrote before dying (deque state, current_job) is visible now.
    (void)ws.gasped.load(std::memory_order_acquire);
    // Fence it out: no wake permits (a permit delivered to a corpse is a
    // wake a live worker needed), no stale exposure suppression, no future
    // steals or signals (steal_from's any_lost gate).
    lot_.mark_dead(lost);
    targeted_[lost]->store(false, std::memory_order_relaxed);
    // Adopt the public deque through the ordinary thief pop_top, executing
    // each task here (their joiners are live and waiting): every pop
    // counts as a normal steal, so pushes == pops + steals + orphaned
    // needs no special case. Mailbox victims have no thief-side drain (the
    // owner answers requests), so everything they held is orphaned.
    std::uint64_t orphaned = 0;
    if constexpr (family != sched_family::mailbox) {
      for (;;) {
        const auto r = ws.deque.pop_top();
        if (r.status == steal_status::stolen) {
          run_task(self, {r.task, true});
          continue;
        }
        if (r.status == steal_status::aborted) continue;  // raced a thief
        break;  // empty or private_work: nothing more is reachable
      }
      stats::count_deque_adopted();
      trace::emit(trace::event::adopt, lost);
      const std::int64_t left = ws.deque.size_estimate();
      orphaned = left > 0 ? static_cast<std::uint64_t>(left) : 0;
    } else {
      const std::int64_t left = ws.deque.size_estimate();
      orphaned = left > 0 ? static_cast<std::uint64_t>(left) : 0;
    }
    if (orphaned != 0) stats::count_tasks_orphaned(orphaned);
    // The stranded join, if any. Non-null means done was never published,
    // so the joiner still waits; queue the repair — completing it *now*
    // would let the joiner's frame unwind while live workers may still be
    // executing the job's stolen descendants (use-after-free of every
    // frame below it). poll_repairs releases it only after quiescence.
    if (job* stuck = ws.current_job.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lk(repair_mutex_);
      repairs_.push_back(repair{stuck, lost, dump_worker_state(),
                                progress_token(), monotonic_ns()});
      pending_repairs_.fetch_add(1, std::memory_order_relaxed);
    }
    // Wake the pool: adopted work may have spawned, and parked workers
    // must re-evaluate the new fencing.
    if (parking_) stats::count_wake(lot_.unpark_all());
  }

  // Stability-gated join repair: a stranded job is completed (with
  // worker_lost_error carrying the detection-time dump) only once the
  // progress token has been flat for a further full worker-lost deadline —
  // by then every live worker is provably idle, so no descendant of the
  // stuck job can still be executing and the joiner's unwind is safe.
  // try_lock keeps this off any hot path: one poller per round, the rest
  // skip.
  void poll_repairs(std::uint64_t now) {
    if (pending_repairs_.load(std::memory_order_relaxed) == 0) return;
    std::unique_lock<std::mutex> lk(repair_mutex_, std::try_to_lock);
    if (!lk.owns_lock()) return;
    const std::uint64_t token = progress_token();
    for (auto& r : repairs_) {
      if (r.repaired) continue;
      if (token != r.last_token) {
        r.last_token = token;
        r.stable_since_ns = now;
        continue;
      }
      if (now - r.stable_since_ns < health_.cfg().worker_lost_ns) continue;
      r.stuck->complete_abandoned(std::make_exception_ptr(
          worker_lost_error(r.lost, std::move(r.dump))));
      r.repaired = true;
      pending_repairs_.fetch_sub(1, std::memory_order_relaxed);
      // The repaired joiner may be parked; everyone re-checks.
      if (parking_) stats::count_wake(lot_.unpark_all());
    }
  }

  // fi worker_crash, wedge flavor: the thread never runs again but never
  // exits either (SIGSTOP, a pathological page fault). Publishes the
  // last-gasp release edge, then sleeps until pool shutdown — it must stay
  // joinable for the destructor, and by then the run it stranded has long
  // been repaired (run() cannot return unrepaired, and the destructor runs
  // after run() returned).
  void crash_wedge(std::size_t self) {
    workers_[self]->gasped.store(true, std::memory_order_release);
    while (!shutdown_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  // fi worker_crash, exit flavor: abrupt death at a scheduling boundary
  // (pthread_exit, a crashed-and-caught thread). The caller breaks out of
  // worker_loop immediately after.
  void crash_exit(std::size_t self) {
    workers_[self]->gasped.store(true, std::memory_order_release);
  }

  // LCWS_DUMP_ON_EXIT: post-mortem snapshot at destruction. The dump
  // mutex (trace.h) keeps each pool's report contiguous when several
  // pools are torn down concurrently (the interleaved-dump bug).
  void emit_exit_dump() const noexcept {
    try {
      const std::string report = dump_worker_state();
      std::lock_guard<std::mutex> lock(trace::dump_mutex());
      if (dump_on_exit_ == "1" || dump_on_exit_ == "stderr") {
        std::fputs(report.c_str(), stderr);
      } else if (std::FILE* f = std::fopen(dump_on_exit_.c_str(), "a")) {
        std::fputs(report.c_str(), f);
        std::fclose(f);
      }
    } catch (...) {
      // A post-mortem aid must never turn destruction into a crash.
    }
  }

  // One steal attempt against `victim` with §7 locality accounting: the
  // outcome feeds the per-victim success EWMA that the next pick weighs,
  // and successful steals are classified by the victim's distance tier.
  // With the layer off this is exactly try_steal.
  job* steal_from(std::size_t self, std::size_t victim) {
    // §11 fence: a lost worker is never a victim — its public deque was
    // adopted at detection, and signalling/posting to a corpse would leak
    // exposure requests nobody answers (mailbox thieves would spin out
    // their retract timeout on it). Cost while armed and healthy: one
    // relaxed any_lost() load; nothing at all when detection is off.
    if (health_.loss_detection() && health_.any_lost() &&
        health_.is_lost(victim)) [[unlikely]] {
      return nullptr;
    }
    trace::emit(trace::event::steal_attempt, victim);
    job* task = try_steal(self, victim);
    trace::emit(task != nullptr ? trace::event::steal_success
                                : trace::event::steal_loss,
                victim);
    if (locality_) {
      health_.note_victim_steal(victim, task != nullptr);
      if (task != nullptr) {
        const locality_tier tier = workers_[self]->victims.tier_of(victim);
        stats::count_locality_steal(static_cast<std::size_t>(tier),
                                    tier < kNearestRemoteTier);
      }
    }
    return task;
  }

  job* steal_once(std::size_t self) {
    if (nworkers_ == 1) return nullptr;
    auto& ws = *workers_[self];
    std::size_t victim;
    if (locality_) {
      // Two-level pick: near-biased tier, then success-weighted victim
      // (victim_select.h). Allocation- and fence-free; the weight functor
      // is one relaxed load per candidate.
      bool explored = false;
      victim = ws.victims.pick(
          ws.rng,
          [this](std::size_t v) {
            return health_.victim_steal_ewma_permille(v);
          },
          &explored);
      if (explored) stats::count_locality_explore();
    } else {
      // Legacy uniform choice (LCWS_LOCALITY_OFF), bit-for-bit.
      victim = ws.rng.bounded(nworkers_ - 1);
      if (victim >= self) ++victim;  // uniform over the other workers
    }
    job* task = steal_from(self, victim);
    // Steal-success EWMA feeds the §6 pressure signal (owner-only slot;
    // one relaxed load+store, nothing when degradation is off).
    if (health_.enabled()) health_.note_steal_outcome(self, task != nullptr);
    return task;
  }

  found_task find_task(std::size_t self) {
    // Quiescent point (DESIGN.md §8): between deque operations this worker
    // provably holds no deque-buffer pointer, so announce the epoch. One
    // acquire load + one release store to this worker's own slot — no
    // fence, no CAS — and it unblocks reclamation of storage retired by
    // any grown deque in the pool.
    reclaim_.quiesce(workers_[self]->reader);
    // §11 heartbeat: one clock read + one relaxed store to this worker's
    // own slot per scheduling boundary, and only when loss detection is
    // armed — the disarmed hot path is bit-for-bit legacy. The same clock
    // read rate-limits a full detection poll: a saturated pool never has
    // a fruitless round, so the idle/park pollers go silent exactly when
    // every worker always finds work (the concurrent-deque WS baseline
    // under steady load), and without this a corpse would go unnoticed
    // until the load drained.
    if (health_.loss_detection()) [[unlikely]] {
      const std::uint64_t now = monotonic_ns();
      health_.beat(self, now);
      auto& last = workers_[self]->last_loss_poll_ns;
      if (now - last >= health_.cfg().worker_lost_ns / 4) {
        last = now;
        loss_poll(self);
      }
    }
    if (job* task = get_local(self)) return {task, false};
    return {steal_once(self), true};
  }

  void execute(job* task) {
    stats::count_task_executed();
    task->execute();
  }

  // Executes a found task, driving the wake chain around stolen ones:
  // before running, a successful steal suggests more exposed work (wake one
  // thief to look); after running, the stolen job is done and its joiner —
  // possibly parked — must notice (wake everyone; steals are rare).
  void run_task(std::size_t self, const found_task& f) {
    if (f.stolen && parking_ && lot_.sleepers() != 0) wake_one(self);
    trace::emit(trace::event::task_begin, f.stolen ? 1 : 0);
    if (f.stolen) {
      // §11: publish the join this worker would strand by dying here. The
      // record is cleared strictly before done is published (job.h's split
      // execute), so a detector reading non-null knows the joiner still
      // waits; stores are to this worker's own line and steals are rare.
      auto& cur = workers_[self]->current_job;
      cur.store(f.task, std::memory_order_release);
      stats::count_task_executed();
      f.task->run_payload();
      cur.store(nullptr, std::memory_order_relaxed);
      f.task->publish_done();
    } else {
      execute(f.task);
    }
    trace::emit(trace::event::task_end);
    if (f.stolen && parking_ && lot_.sleepers() != 0) {
      stats::count_wake(lot_.unpark_all());
    }
  }

  // ---- parking ------------------------------------------------------------

  // Final pre-park sweep: own deque, then one probe of every other worker
  // in index order. Runs after the parking announcement's full barrier, so
  // any work made stealable before a producer could have observed the
  // announcement is found here. Skipped for the mailbox family, whose
  // probes cannot see private stacks anyway and would wake every other
  // (likely parked) victim just to be told "no work"; mailbox discovery
  // relies on push-wakes, targeted request-wakes and the timed backstop.
  found_task park_sweep(std::size_t self) {
    if (job* task = get_local(self)) return {task, false};
    if constexpr (family != sched_family::mailbox) {
      if (locality_) {
        // Nearest-first: the last look before sleeping probes warm caches
        // before cold ones. Covers every other worker exactly once.
        for (const std::uint32_t v : workers_[self]->victims.order()) {
          if (job* task = steal_from(self, v)) return {task, true};
        }
      } else {
        for (std::size_t v = 0; v < nworkers_; ++v) {
          if (v == self) continue;
          if (job* task = steal_from(self, v)) return {task, true};
        }
      }
    }
    return {};
  }

  // One parking episode for an idle worker: announce, sweep, sleep with an
  // adaptive timed backstop. Returns a task if the sweep found one (the
  // caller executes it). `waited` (join loop) aborts the episode when the
  // joined job completes.
  found_task park_idle(std::size_t self, const job* waited) {
    lot_.announce(self);
    if (found_task f = park_sweep(self)) {
      lot_.cancel(self);
      return f;
    }
    if (shutdown_.load(std::memory_order_acquire) ||
        !active_.load(std::memory_order_acquire) ||
        (waited != nullptr && waited->is_done())) {
      lot_.cancel(self);
      return {};
    }
    if constexpr (family == sched_family::user_space ||
                  family == sched_family::signal) {
      // Never park targeted: the sweep proved our deque empty, so a stale
      // targeted flag is vacuous — clear it so it cannot suppress
      // notifications once we hold work again.
      targeted_[self]->store(false, std::memory_order_relaxed);
    } else if constexpr (family == sched_family::mailbox) {
      // Never park targeted, mailbox edition: answer a request that landed
      // after the sweep's poll (with null — our stack is provably empty)
      // instead of leaving the thief to its retract timeout. A request
      // arriving after this gate still terminates: the thief retracts
      // after its bounded spin.
      auto& d = workers_[self]->deque;
      if (d.has_pending_request()) {
        d.poll();
        lot_.cancel(self);
        return {};
      }
    }
    auto& ws = *workers_[self];
    // Last quiesce before a potentially long sleep: a parked reader merely
    // delays reclamation, but there is no reason to park one epoch behind.
    // This is also a trace/hw boundary — the per-find_task quiesce is far
    // too hot to trace, but this cold one marks the steal->park phase
    // edge, and the perf read here costs one syscall before a sleep.
    reclaim_.quiesce(ws.reader);
    trace::emit(trace::event::quiesce, self);
    sample_hw(self);
    // §11 detection keeps its cadence through a mostly-parked pool: every
    // park entry is a poll (cold path), and the ≤20ms timed backstop below
    // bounds the gap between polls even when no wakes arrive.
    if (health_.loss_detection()) loss_poll(self);
    stats::count_park();
    stopwatch sw;
    const bool woken =
        lot_.park(self, std::chrono::microseconds(ws.park_timeout_us));
    stats::count_idle_ns(sw.elapsed_ns());
    ws.park_timeout_us =
        woken ? kParkMinUs
              : std::min(ws.park_timeout_us * 2, kParkMaxUs);
    return {};
  }

  // ---- join / worker loop --------------------------------------------------

  void join(std::size_t self, job& waited) {
    backoff bo;
    std::uint32_t failures = 0;
    // Relaxed peek while helping; the acquire that orders the joined task's
    // writes is paid once, on exit (see the fence below), instead of on
    // every spin iteration.
    while (!waited.is_done_relaxed()) {
      if (found_task f = find_task(self)) {
        run_task(self, f);
        bo.reset();
        failures = 0;
      } else {
        stats::count_idle_loop();
        ++failures;
        loss_idle_step(self, failures);
        const bool yielded =
            health_.enabled() && idle_pressure_step(self, failures, bo);
        if (parking_ && failures >= park_threshold(self)) {
          if (found_task f = park_idle(self, &waited)) {
            run_task(self, f);
            bo.reset();
            failures = 0;
          }
          // Fruitless episode: keep `failures` saturated — one probe per
          // wake, then straight back to a (longer) sleep.
        } else if (!yielded) {
          bo.pause();
        }
      }
    }
    // One acquire re-load pairs with the completing worker's release store
    // (an acquire *fence* would do the same with one fewer load, but TSan
    // cannot model fences — gcc's -Wtsan flags it — and this is the cold
    // exit path).
    (void)waited.is_done();
  }

  void worker_loop(std::size_t id) {
    register_worker(id);
    name_this_thread("lcws-w" + std::to_string(id));
    // Best-effort pinning (§7): a failure — restricted container mask,
    // offline CPU — leaves the worker floating; the victim table built
    // from the *intended* placement stays a usable heuristic.
    if (locality_ && cpu_of_worker_[id] >= 0) {
      pin_this_thread(static_cast<std::size_t>(cpu_of_worker_[id]));
    }
    ready_.fetch_add(1, std::memory_order_release);
    backoff bo;
    std::uint32_t failures = 0;
    while (true) {
      if (shutdown_.load(std::memory_order_acquire)) break;
      // §11 containment: a worker declared lost — or asked to die by
      // debug_lose_worker — must never schedule again. For a
      // misdeclared-but-alive thread this halt is what keeps the repair
      // protocol's "the corpse never resumes" assumption true.
      if (workers_[id]->die.load(std::memory_order_relaxed) ||
          (health_.loss_detection() && health_.is_lost(id))) {
        crash_exit(id);
        break;
      }
      if (!active_.load(std::memory_order_acquire)) {
        // Blocking between runs: quiesce first so storage retired by the
        // previous computation can be reclaimed while we sleep. Cold, so
        // also a trace/hw sample boundary.
        reclaim_.quiesce(workers_[id]->reader);
        trace::emit(trace::event::quiesce, id);
        sample_hw(id);
        std::unique_lock<std::mutex> lock(mutex_);
        idle_cv_.wait(lock, [this] {
          return active_.load(std::memory_order_acquire) ||
                 shutdown_.load(std::memory_order_acquire);
        });
        bo.reset();
        failures = 0;
        continue;
      }
      // fi worker_crash at the loop top: a scheduling-boundary death (the
      // deque is provably empty here, every pardo frame has unwound).
      // Even-id workers wedge (a thread that never runs again but never
      // exits), odd-id workers exit abruptly. Below the inactive-wait so
      // only workers participating in a run can die — a corpse created
      // between runs would silently shrink the pool before the computation
      // under test ever started. Gated on armed loss detection: without a
      // detector a wedge mid-computation would just hang the suite, which
      // is the failure this layer removes — not a test of it.
      if (health_.loss_detection() &&
          fi::inject(fi::site::worker_crash)) [[unlikely]] {
        if ((id & 1) == 0) crash_wedge(id);
        crash_exit(id);
        break;
      }
      if (found_task f = find_task(id)) {
        // fi worker_crash, mid-task flavor: die *between claiming a stolen
        // task and executing it* — the one boundary where the corpse
        // strands a live joiner. Publish the claim as current_job (as
        // run_task would), then wedge: the §11 repair path must finish
        // this run.
        if (f.stolen && health_.loss_detection() &&
            fi::inject(fi::site::worker_crash_midtask)) [[unlikely]] {
          workers_[id]->current_job.store(f.task, std::memory_order_release);
          crash_wedge(id);
          crash_exit(id);
          break;
        }
        run_task(id, f);
        bo.reset();
        failures = 0;
        continue;
      }
      stats::count_idle_loop();
      ++failures;
      loss_idle_step(id, failures);
      const bool yielded =
          health_.enabled() && idle_pressure_step(id, failures, bo);
      if (parking_ && failures >= park_threshold(id)) {
        if (found_task f = park_idle(id, nullptr)) {
          run_task(id, f);
          bo.reset();
          failures = 0;
        }
        continue;
      }
      if (!yielded) bo.pause();
    }
    finalize_worker_hw(id);
    unregister_worker();
  }

  const std::size_t nworkers_;
  // §8 growable-deque plumbing. Both must precede workers_ in declaration
  // order only conceptually (worker_state construction happens in the
  // constructor body, after all members are initialized): the domain hands
  // out reader slots and the policy is snapshotted from the environment
  // once, so every worker's deque shares one consistent configuration.
  reclaim_domain reclaim_;
  const deque_growth growth_cfg_ = deque_growth::from_env();
  std::vector<std::unique_ptr<worker_state>> workers_;
  std::vector<cache_aligned<std::atomic<bool>>> targeted_;
  mutable std::vector<cache_aligned<stats::op_counters>> counters_;
  std::vector<std::thread> threads_;
  parking_lot lot_;
  const bool parking_;
  const locality_config loc_cfg_;    // §7 knobs (LCWS_PIN, LCWS_EXPLORE_*)
  const bool locality_;              // §7 master switch (LCWS_LOCALITY_OFF)
  const std::optional<std::uint64_t> seed_;  // LCWS_SEED; nullopt = legacy
  cpu_topology topo_;                // probed once when locality_ is on
  std::vector<int> cpu_of_worker_;   // -1 = unpinned
  saved_affinity saved_affinity_;    // worker 0's pre-pin mask
  health::monitor health_;  // §6 degradation layer (LCWS_DEGRADE_*)
  const std::string dump_on_exit_;  // LCWS_DUMP_ON_EXIT; empty = off
  std::unique_ptr<watchdog> dog_;  // LCWS_WATCHDOG_MS; null when disabled
  trace::tracer tracer_;    // §10 event rings (LCWS_TRACE; empty = off)
  const bool hw_enabled_ = stats::perf_env_enabled();  // LCWS_PERF
  std::vector<cache_aligned<hw_slot>> hw_slots_;  // §10 per-worker samples

  std::atomic<std::size_t> ready_{0};
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> active_{false};
  // §11 per-run cancellation token; deliberately adjacent to active_ (both
  // read-mostly, loaded together at every pardo).
  std::atomic<bool> cancelled_{false};
  // Heartbeat floor for the active run: beats from before this run can
  // never read as stale at its start (see health::poll_worker_lost).
  std::atomic<std::uint64_t> run_epoch_ns_{0};
  const std::uint64_t run_timeout_ms_ = env_run_timeout_ms();
  // §11 join-repair state. Cold: touched only after a loss; idle paths
  // gate on pending_repairs_ (one relaxed load) before taking the mutex.
  std::mutex repair_mutex_;
  std::vector<repair> repairs_;
  std::atomic<std::uint64_t> pending_repairs_{0};
  std::mutex mutex_;
  std::condition_variable idle_cv_;
  const std::thread::id owner_;

  // LCWS_RUN_TIMEOUT_MS: a global deadline wrapped around every top-level
  // run(); 0 (unset/garbage) disables.
  static std::uint64_t env_run_timeout_ms() noexcept {
    const char* s = std::getenv("LCWS_RUN_TIMEOUT_MS");
    if (s == nullptr || *s == '\0') return 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    return (end == s || *end != '\0') ? 0 : static_cast<std::uint64_t>(v);
  }
};

using ws_scheduler = scheduler<ws_policy>;
using uslcws_scheduler = scheduler<uslcws_policy>;
using signal_scheduler = scheduler<signal_policy>;
using conservative_scheduler = scheduler<conservative_policy>;
using expose_half_scheduler = scheduler<expose_half_policy>;
using private_deques_scheduler = scheduler<private_deques_policy>;
using lace_scheduler = scheduler<lace_policy>;
using wsmult_scheduler = scheduler<wsmult_policy>;

}  // namespace lcws
