// Fork–join work-stealing scheduler, parameterized by one of the five
// policies in policies.h.
//
// Shape follows Parlay's scheduler (the paper's host runtime): the
// constructing thread is worker 0 and participates in every computation;
// P-1 additional workers are spawned once and persist. A fork (`pardo`)
// pushes the right branch as a stack-allocated job onto the forker's deque,
// runs the left branch inline, then joins by executing whatever work the
// scheduler hands it until the right branch is done (help-first join).
//
// The per-family scheduling logic — Listing 1 (USLCWS) and Listing 3
// (signal-based) of the paper — lives in get_local()/try_steal() below and
// is selected with `if constexpr` so each instantiation pays only for its
// own protocol.
#pragma once

#include <pthread.h>

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "deque/job.h"
#include "sched/policies.h"
#include "sched/signal_support.h"
#include "stats/counters.h"
#include "support/align.h"
#include "support/backoff.h"
#include "support/rng.h"
#include "support/threads.h"

namespace lcws {

template <typename Policy>
class scheduler {
 public:
  using policy_type = Policy;
  using deque_type = typename Policy::deque_type;
  static constexpr sched_family family = Policy::family;

  // deque_capacity bounds each worker's deque (see split_deque.h for the
  // capacity contract); the default is ample for fork-join computations.
  explicit scheduler(std::size_t num_workers,
                     std::size_t deque_capacity = default_deque_capacity)
      : nworkers_(num_workers == 0 ? 1 : num_workers),
        targeted_(nworkers_),
        counters_(nworkers_),
        owner_(std::this_thread::get_id()) {
    workers_.reserve(nworkers_);
    for (std::size_t i = 0; i < nworkers_; ++i) {
      workers_.push_back(std::make_unique<worker_state>(i, deque_capacity));
    }
    if constexpr (family == sched_family::signal) {
      detail::install_exposure_handler();
    }
    register_worker(0);  // the constructing thread is worker 0
    threads_.reserve(nworkers_ - 1);
    for (std::size_t i = 1; i < nworkers_; ++i) {
      threads_.emplace_back([this, i] { worker_loop(i); });
    }
    // Thieves read victims' pthread handles; wait until every worker has
    // published its own.
    while (ready_.load(std::memory_order_acquire) + 1 < nworkers_) {
      std::this_thread::yield();
    }
  }

  scheduler(const scheduler&) = delete;
  scheduler& operator=(const scheduler&) = delete;

  ~scheduler() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_.store(true, std::memory_order_release);
    }
    idle_cv_.notify_all();
    for (auto& t : threads_) t.join();
    unregister_worker();
  }

  std::size_t num_workers() const noexcept { return nworkers_; }
  static constexpr const char* name() noexcept { return Policy::name; }

  // Runs `f` as the root of a parallel computation on worker 0 (the thread
  // that constructed this scheduler), waking the other workers for its
  // duration. Returns f's result.
  template <typename F>
  decltype(auto) run(F&& f) {
    assert(std::this_thread::get_id() == owner_ &&
           "scheduler::run must be called from the constructing thread");
    if (active_.load(std::memory_order_relaxed)) {
      return std::forward<F>(f)();  // nested run: already inside a root
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      active_.store(true, std::memory_order_release);
    }
    idle_cv_.notify_all();
    struct deactivate {
      std::atomic<bool>& flag;
      ~deactivate() { flag.store(false, std::memory_order_release); }
    } guard{active_};
    return std::forward<F>(f)();
  }

  // Fork–join: schedules `right` for potential theft, runs `left` inline,
  // then joins. Callable from worker 0 or from inside any task. When called
  // outside run(), wraps itself in one.
  template <typename L, typename R>
  void pardo(L&& left, R&& right) {
    if (!active_.load(std::memory_order_relaxed)) [[unlikely]] {
      run([&] { pardo(left, right); });
      return;
    }
    const std::size_t self = this_worker_id();
    assert(self < nworkers_ && "pardo called from a non-worker thread");
    lambda_job<std::remove_reference_t<R>> right_job(right);
    push(self, &right_job);
    left();
    join(self, right_job);
  }

  // ---- instrumentation ----------------------------------------------------

  // Aggregated synchronization-operation profile. Only meaningful while no
  // computation is running.
  stats::profile profile() const { return stats::aggregate(counters_); }

  // Zeroes all counters (call while no computation is running).
  void reset_counters() noexcept {
    for (auto& block : counters_) block.get() = stats::op_counters{};
  }

  // Test/diagnostic access.
  deque_type& deque_of(std::size_t worker) noexcept {
    return workers_[worker]->deque;
  }
  bool is_targeted(std::size_t worker) const noexcept {
    return targeted_[worker]->load(std::memory_order_relaxed);
  }

 private:
  struct worker_state {
    worker_state(std::size_t id, std::size_t deque_capacity)
        : deque(deque_capacity), rng(hash64(0x5eed5eedULL + id)) {}
    deque_type deque;
    xoshiro256 rng;            // victim selection; owner-only
    pthread_t handle{};        // published before ready_ increments
    steal_box<job> mail;       // mailbox family: this worker's answer box
  };

  // ---- registration -------------------------------------------------------

  void register_worker(std::size_t id) {
    set_this_worker_id(id);
    stats::set_local_counters(&counters_[id].get());
    workers_[id]->handle = pthread_self();
    if constexpr (family == sched_family::signal) {
      detail::set_exposure_hook(&exposure_trampoline, &workers_[id]->deque);
    }
  }

  void unregister_worker() noexcept {
    if constexpr (family == sched_family::signal) {
      detail::clear_exposure_hook();
    }
    stats::set_local_counters(nullptr);
    set_this_worker_id(npos_worker);
  }

  // SIGUSR1 lands here on the victim's thread (signal family only):
  // transfer work to the public part in constant time (Section 4).
  static void exposure_trampoline(void* ctx) noexcept {
    Policy::expose(*static_cast<deque_type*>(ctx));
  }

  // ---- per-family deque protocol -----------------------------------------

  void push(std::size_t self, job* task) {
    workers_[self]->deque.push_bottom(task);
    if constexpr (family == sched_family::signal) {
      // A fresh push means there is (new) work that could be exposed, so
      // notifications become useful again (Section 4: the flag is reset
      // when the target pushes a new task).
      auto& flag = targeted_[self].get();
      if (flag.load(std::memory_order_relaxed)) {
        flag.store(false, std::memory_order_relaxed);
      }
    }
  }

  // Local half of Listing 1 / Listing 3's get_task: own private part, then
  // own public part.
  job* get_local(std::size_t self) {
    auto& d = workers_[self]->deque;
    if constexpr (family == sched_family::ws) {
      return d.pop_bottom();
    } else if constexpr (family == sched_family::user_space) {
      // Listing 1 lines 7-17.
      job* task = Policy::pop_local(d);
      if (task == nullptr) {
        if constexpr (Policy::unexposes) {
          // Lace-style: reclaim still-unstolen public work back into the
          // private part, then retry the fence-free pop.
          if (d.unexpose_half() > 0) task = Policy::pop_local(d);
        }
      }
      if (task != nullptr) {
        auto& flag = targeted_[self].get();
        if (flag.load(std::memory_order_relaxed)) {
          flag.store(false, std::memory_order_relaxed);
          Policy::expose(d);
        }
        return task;
      }
      task = d.pop_public_bottom();
      if (task != nullptr) return task;
      targeted_[self]->store(false, std::memory_order_relaxed);
      return nullptr;
    } else if constexpr (family == sched_family::mailbox) {
      // pop_bottom polls and answers a pending steal request; when the
      // stack is empty the poll still runs, which keeps the victim
      // responsive while it spins in a join or idle loop.
      return d.pop_bottom();
    } else {  // signal family
      job* task = Policy::pop_local(d);
      if (task != nullptr) return task;
      task = d.pop_public_bottom();
      if (task != nullptr) {
        // A task left the public part: allow new notifications.
        targeted_[self]->store(false, std::memory_order_relaxed);
        return task;
      }
      return nullptr;
    }
  }

  // Thief half: one steal attempt against `victim`.
  job* try_steal(std::size_t victim) {
    if constexpr (family == sched_family::mailbox) {
      return mailbox_steal(victim);
    } else {
      return deque_steal(victim);
    }
  }

  // Mailbox protocol (private_deques): post a request, spin for the
  // answer, retract on timeout. The victim answers at its next scheduling
  // point — which may be far away if it is inside a long sequential task
  // (the documented weakness of the approach).
  job* mailbox_steal(std::size_t victim) {
    const std::size_t self = this_worker_id();
    auto& box = workers_[self]->mail;
    box.answer.store(steal_box<job>::pending(), std::memory_order_relaxed);
    auto& d = workers_[victim]->deque;
    stats::count_steal_attempt();
    if (!d.post_request(&box)) return nullptr;  // victim busy with another
    stats::count_exposure_request();
    bool retracted = false;
    for (int spin = 0;; ++spin) {
      job* answer = box.answer.load(std::memory_order_acquire);
      if (answer != steal_box<job>::pending()) {
        if (answer != nullptr) stats::count_steal_success();
        return answer;
      }
      if (!retracted && spin > 512) {
        if (d.retract_request(&box)) return nullptr;
        retracted = true;  // victim is answering: the box fills imminently
      }
      if ((spin & 15) == 15) {
        std::this_thread::yield();
      } else {
        cpu_relax();
      }
    }
  }

  job* deque_steal(std::size_t victim) {
    auto& d = workers_[victim]->deque;
    const auto result = d.pop_top();
    if (result.status == steal_status::stolen) {
      if constexpr (family == sched_family::signal) {
        // A task left the victim's public part: allow new notifications.
        targeted_[victim]->store(false, std::memory_order_relaxed);
      }
      return result.task;
    }
    if (result.status == steal_status::private_work) {
      if constexpr (family == sched_family::user_space) {
        // Listing 1 line 22: ask the victim to expose on its next
        // scheduling round.
        auto& flag = targeted_[victim].get();
        if (!flag.load(std::memory_order_relaxed)) {
          stats::count_exposure_request();
          flag.store(true, std::memory_order_relaxed);
        }
      } else if constexpr (family == sched_family::signal) {
        // Listing 3 lines 8-11 (plus Conservative's has_two_tasks gate).
        auto& flag = targeted_[victim].get();
        if (!flag.load(std::memory_order_relaxed) &&
            Policy::should_signal(d)) {
          flag.store(true, std::memory_order_relaxed);
          stats::count_exposure_request();
          if (detail::send_exposure_request(workers_[victim]->handle)) {
            stats::count_signal_sent();
          }
        }
      }
    }
    return nullptr;
  }

  job* steal_once(std::size_t self) {
    if (nworkers_ == 1) return nullptr;
    auto& rng = workers_[self]->rng;
    std::size_t victim = rng.bounded(nworkers_ - 1);
    if (victim >= self) ++victim;  // uniform over the other workers
    return try_steal(victim);
  }

  job* find_task(std::size_t self) {
    if (job* task = get_local(self)) return task;
    return steal_once(self);
  }

  void execute(job* task) {
    stats::count_task_executed();
    task->execute();
  }

  // ---- join / worker loop --------------------------------------------------

  void join(std::size_t self, job& waited) {
    backoff bo;
    while (!waited.is_done()) {
      if (job* task = find_task(self)) {
        execute(task);
        bo.reset();
      } else {
        stats::count_idle_loop();
        bo.pause();
      }
    }
  }

  void worker_loop(std::size_t id) {
    register_worker(id);
    name_this_thread("lcws-w" + std::to_string(id));
    ready_.fetch_add(1, std::memory_order_release);
    backoff bo;
    while (true) {
      if (shutdown_.load(std::memory_order_acquire)) break;
      if (!active_.load(std::memory_order_acquire)) {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_cv_.wait(lock, [this] {
          return active_.load(std::memory_order_acquire) ||
                 shutdown_.load(std::memory_order_acquire);
        });
        continue;
      }
      if (job* task = find_task(id)) {
        execute(task);
        bo.reset();
      } else {
        stats::count_idle_loop();
        bo.pause();
      }
    }
    unregister_worker();
  }

  const std::size_t nworkers_;
  std::vector<std::unique_ptr<worker_state>> workers_;
  std::vector<cache_aligned<std::atomic<bool>>> targeted_;
  mutable std::vector<cache_aligned<stats::op_counters>> counters_;
  std::vector<std::thread> threads_;

  std::atomic<std::size_t> ready_{0};
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> active_{false};
  std::mutex mutex_;
  std::condition_variable idle_cv_;
  const std::thread::id owner_;
};

using ws_scheduler = scheduler<ws_policy>;
using uslcws_scheduler = scheduler<uslcws_policy>;
using signal_scheduler = scheduler<signal_policy>;
using conservative_scheduler = scheduler<conservative_policy>;
using expose_half_scheduler = scheduler<expose_half_policy>;
using private_deques_scheduler = scheduler<private_deques_policy>;
using lace_scheduler = scheduler<lace_policy>;

}  // namespace lcws
