// Process-wide plumbing for the signal-based LCWS schedulers (Section 4).
//
// A thief that finds only private work in a victim's deque sends the victim
// SIGUSR1 (Listing 3). The handler runs on the victim's thread and must
// transfer work to the public part of *that thread's* deque, so the hook it
// invokes is stored in thread-local state that each worker registers on
// entry.
//
// The handler is async-signal-safe by construction: the registered hooks
// only load/store lock-free std::atomic fields of the handler thread's own
// split deque (see split_deque.h). Accessing thread_local storage from a
// signal handler is unspecified by the standard but reliable on
// Linux/glibc, which is the platform the paper targets (Debian 11).
#pragma once

#include <pthread.h>
#include <signal.h>

namespace lcws::detail {

// Signature of a work-exposure hook: called with the context registered by
// the thread the signal was delivered to.
using exposure_hook = void (*)(void*) noexcept;

// The signal used for exposure requests.
int exposure_signal() noexcept;

// Installs the process-wide SIGUSR1 handler (idempotent, thread-safe).
void install_exposure_handler();

// Registers/clears the calling thread's exposure hook.
void set_exposure_hook(exposure_hook hook, void* context) noexcept;
void clear_exposure_hook() noexcept;

// Sends an exposure request to `target`. Distinguishes permanent failure
// (ESRCH: the thread already exited) from transient failure (e.g. EAGAIN,
// kernel signal queue full), retrying the latter under the shared
// exponential backoff until the LCWS_SIGNAL_RETRIES budget (default 3
// attempts total) is spent. Returns false — and records the event in the
// `signals_failed` stats counter — only when delivery definitively failed;
// callers should then clear the victim's targeted flag (or, with the
// health monitor enabled, feed the failure to the degradation state
// machine). When `attempts_out` is non-null it receives the number of
// pthread_kill attempts made — retries consumed are health-monitor
// evidence even when the send eventually succeeds.
bool send_exposure_request(pthread_t target,
                           int* attempts_out = nullptr) noexcept;

// Blocks the exposure signal for the calling thread over its scope.
// Used by the degraded-mode owner-side exposure (scheduler::get_local):
// the owner runs the same Policy::expose the SIGUSR1 handler would, and a
// late probe signal landing mid-exposure would re-enter it — harmless for
// the deque (same-value stores) but it would double-count exposure stats.
// Cold path only (degraded victims, ~one sigmask syscall pair per poll).
class scoped_exposure_block {
 public:
  scoped_exposure_block() noexcept;
  ~scoped_exposure_block() noexcept;
  scoped_exposure_block(const scoped_exposure_block&) = delete;
  scoped_exposure_block& operator=(const scoped_exposure_block&) = delete;

 private:
  sigset_t old_mask_;
};

// Test hook: number of times the handler ran in this process.
unsigned long long handler_invocations() noexcept;

}  // namespace lcws::detail
