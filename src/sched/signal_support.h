// Process-wide plumbing for the signal-based LCWS schedulers (Section 4).
//
// A thief that finds only private work in a victim's deque sends the victim
// SIGUSR1 (Listing 3). The handler runs on the victim's thread and must
// transfer work to the public part of *that thread's* deque, so the hook it
// invokes is stored in thread-local state that each worker registers on
// entry.
//
// The handler is async-signal-safe by construction: the registered hooks
// only load/store lock-free std::atomic fields of the handler thread's own
// split deque (see split_deque.h). Accessing thread_local storage from a
// signal handler is unspecified by the standard but reliable on
// Linux/glibc, which is the platform the paper targets (Debian 11).
#pragma once

#include <pthread.h>

namespace lcws::detail {

// Signature of a work-exposure hook: called with the context registered by
// the thread the signal was delivered to.
using exposure_hook = void (*)(void*) noexcept;

// The signal used for exposure requests.
int exposure_signal() noexcept;

// Installs the process-wide SIGUSR1 handler (idempotent, thread-safe).
void install_exposure_handler();

// Registers/clears the calling thread's exposure hook.
void set_exposure_hook(exposure_hook hook, void* context) noexcept;
void clear_exposure_hook() noexcept;

// Sends an exposure request to `target`. Distinguishes permanent failure
// (ESRCH: the thread already exited) from transient failure (e.g. EAGAIN,
// kernel signal queue full), retrying the latter once after a short
// backoff. Returns false — and records the event in the `signals_failed`
// stats counter — only when delivery definitively failed; callers should
// then clear the victim's targeted flag so a later thief can retry.
bool send_exposure_request(pthread_t target) noexcept;

// Test hook: number of times the handler ran in this process.
unsigned long long handler_invocations() noexcept;

}  // namespace lcws::detail
