// Locality-aware, success-weighted victim selection (DESIGN.md §7).
//
// The paper makes each steal cheap; this layer makes each steal *aim
// well*. Uniform-random victim choice crosses a cache or NUMA boundary on
// most attempts of a multi-socket machine, dragging cold task state with
// it — Suksompong, Leiserson & Schardl's localized-work-stealing analysis
// and Gu, Napier & Sun's cache-complexity results (PAPERS.md) both argue
// the miss traffic, not the steal count, is what hurts. So each worker
// carries a distance-ordered victim table (support/topology.h) and picks
// in two levels:
//
//   1. Tier: geometric bias toward near tiers — one RNG draw, one bit per
//      non-empty tier: stay with probability 1/2, else escalate, with the
//      farthest non-empty tier absorbing the remainder.
//   2. Victim within the tier: power-of-two-choices on the health
//      monitor's per-victim steal-success EWMA (support/health.h) — two
//      uniform candidates, keep the historically better one. O(1), no
//      weight prefix sums, and stale EWMAs only cost one pick.
//
// Every explore_period-th pick bypasses both levels and samples uniformly
// over *all* victims, so remote or cold victims are never starved and the
// §6 degradation machinery keeps seeing every victim's signal path.
//
// Cost contract: pick() is allocation- and fence-free — a few xoshiro
// draws plus relaxed EWMA loads through the caller's weight functor. The
// table is built at pool construction (never on the steal path), and
// LCWS_LOCALITY_OFF=1 (or the constructor knob) removes the layer
// entirely: the scheduler then runs the legacy uniform choice bit-for-bit.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "support/rng.h"
#include "support/topology.h"

namespace lcws {

// Constructor knob mirroring parking_mode: default defers to the
// LCWS_LOCALITY_OFF environment variable.
enum class locality_mode {
  env_default,
  disabled,
  enabled,
};

// Tunables, resolved once per scheduler from the environment.
struct locality_config {
  // Master switch (LCWS_LOCALITY_OFF truthy => false).
  bool enabled = true;
  // Worker pinning policy (LCWS_PIN=compact|scatter|off). Scatter is the
  // default: one worker per physical core first, so a partially-filled
  // pool keeps full per-core bandwidth; compact maximizes shared caches
  // between neighbors and is what bench/locality measures.
  pin_mode pin = pin_mode::scatter;
  // Every explore_period-th pick is uniform over all victims.
  std::uint32_t explore_period = 16;

  static locality_config from_env() noexcept {
    locality_config c;
    if (const char* s = std::getenv("LCWS_LOCALITY_OFF")) {
      if (*s != '\0' && !(s[0] == '0' && s[1] == '\0')) c.enabled = false;
    }
    if (const char* s = std::getenv("LCWS_PIN")) {
      const std::string_view v(s);
      if (v == "compact") {
        c.pin = pin_mode::compact;
      } else if (v == "scatter") {
        c.pin = pin_mode::scatter;
      } else if (v == "off" || v == "0") {
        c.pin = pin_mode::off;
      }
    }
    if (const char* s = std::getenv("LCWS_EXPLORE_PERIOD")) {
      const long v = std::atol(s);
      if (v > 0) c.explore_period = static_cast<std::uint32_t>(v);
    }
    return c;
  }
};

inline bool locality_enabled(locality_mode mode,
                             const locality_config& cfg) noexcept {
  switch (mode) {
    case locality_mode::disabled: return false;
    case locality_mode::enabled: return true;
    case locality_mode::env_default: break;
  }
  return cfg.enabled;
}

// ---- reproducible seeding (LCWS_SEED) --------------------------------------

// Optional base seed for the per-worker xoshiro256 streams, so victim-
// selection experiments are reproducible and sweepable. Unset => nullopt
// and the historical fixed seed is used.
inline std::optional<std::uint64_t> env_seed() noexcept {
  const char* s = std::getenv("LCWS_SEED");
  if (s == nullptr || *s == '\0') return std::nullopt;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 0);
  if (end == s) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

// Per-worker stream seed: golden-ratio stride over the user seed keeps the
// streams decorrelated; without a user seed this is bit-identical to the
// historical hash64(0x5eed5eed + worker).
inline std::uint64_t worker_rng_seed(const std::optional<std::uint64_t>& user,
                                     std::size_t worker) noexcept {
  if (user.has_value()) {
    return hash64(*user + 0x9e3779b97f4a7c15ULL * (worker + 1));
  }
  return hash64(0x5eed5eedULL + worker);
}

// ---- the selector ----------------------------------------------------------

// One per worker, owner-only (no atomics): built once at pool
// construction, consulted from the owner's steal loop.
class victim_selector {
 public:
  victim_selector() = default;

  void build(victim_table table, std::uint32_t explore_period) {
    table_ = std::move(table);
    explore_period_ = explore_period == 0 ? 1 : explore_period;
  }

  bool empty() const noexcept { return table_.empty(); }

  // Distance tier of a victim *worker* (not CPU) relative to this worker.
  locality_tier tier_of(std::size_t victim) const noexcept {
    return static_cast<locality_tier>(table_.tier_of[victim]);
  }

  // Victims nearest-first; park_idle's final sweep probes in this order so
  // the last pre-sleep look also favors warm caches.
  const std::vector<std::uint32_t>& order() const noexcept {
    return table_.order;
  }

  std::size_t tier_size(locality_tier t) const noexcept {
    const auto i = static_cast<std::size_t>(t);
    return table_.tier_begin[i + 1] - table_.tier_begin[i];
  }

  // Picks a victim worker id. `weight(v)` returns victim v's steal-success
  // EWMA (any monotone goodness score); `explored` (optional) reports
  // whether this pick was a uniform exploration round.
  template <typename Rng, typename WeightFn>
  std::size_t pick(Rng& rng, WeightFn&& weight,
                   bool* explored = nullptr) noexcept {
    const auto& ord = table_.order;
    if (++seq_ >= explore_period_) {
      // Uniform over all victims: the starvation-freedom escape hatch.
      seq_ = 0;
      if (explored != nullptr) *explored = true;
      return ord[rng.bounded(ord.size())];
    }
    if (explored != nullptr) *explored = false;
    // Level 1: geometric tier bias, one bit per non-empty tier.
    std::uint64_t bits = rng();
    std::size_t begin = 0;
    std::size_t end = 0;
    for (std::size_t t = 0; t < kNumLocalityTiers; ++t) {
      const std::size_t b = table_.tier_begin[t];
      const std::size_t e = table_.tier_begin[t + 1];
      if (b == e) continue;
      begin = b;
      end = e;
      if ((bits & 1) != 0) break;  // stay at this tier
      bits >>= 1;                  // escalate outward
    }
    const std::size_t size = end - begin;
    if (size == 1) return ord[begin];
    // Level 2: success-weighted power-of-two-choices within the tier.
    const std::size_t a = begin + rng.bounded(size);
    const std::size_t b = begin + rng.bounded(size);
    return weight(ord[a]) >= weight(ord[b]) ? ord[a] : ord[b];
  }

 private:
  victim_table table_;
  std::uint32_t explore_period_ = 16;
  std::uint32_t seq_ = 0;
};

}  // namespace lcws
