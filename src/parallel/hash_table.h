// Concurrent open-addressing hash structures for the PBBS-style workloads:
//   * hash_set<K>    — insert-only set of integer keys (removeDuplicates),
//   * string_counter — word -> count map over a text corpus (wordCounts,
//     invertedIndex), counting with relaxed atomic increments.
//
// Fixed capacity (2x expected size), linear probing, CAS on an atomic key
// slot to claim; both structures tolerate fully concurrent inserts from
// scheduler tasks.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "support/align.h"
#include "support/rng.h"

namespace lcws::par {

// Insert-only concurrent set of 64-bit keys. One key value must be
// reserved as "empty" (default ~0).
template <typename K = std::uint64_t>
class hash_set {
 public:
  static constexpr K empty_key = static_cast<K>(-1);

  explicit hash_set(std::size_t expected)
      : mask_(next_pow2(2 * expected + 16) - 1), slots_(mask_ + 1) {
    for (auto& s : slots_) s.store(empty_key, std::memory_order_relaxed);
  }

  // Returns true iff the key was newly inserted.
  bool insert(K key) {
    std::size_t i = hash64(static_cast<std::uint64_t>(key)) & mask_;
    while (true) {
      K cur = slots_[i].load(std::memory_order_relaxed);
      if (cur == key) return false;
      if (cur == empty_key) {
        if (slots_[i].compare_exchange_strong(cur, key,
                                              std::memory_order_relaxed,
                                              std::memory_order_relaxed)) {
          return true;
        }
        if (cur == key) return false;  // lost the slot to an equal insert
        // Lost to a different key: fall through and keep probing.
      }
      i = (i + 1) & mask_;
    }
  }

  bool contains(K key) const {
    std::size_t i = hash64(static_cast<std::uint64_t>(key)) & mask_;
    while (true) {
      const K cur = slots_[i].load(std::memory_order_relaxed);
      if (cur == key) return true;
      if (cur == empty_key) return false;
      i = (i + 1) & mask_;
    }
  }

  std::size_t capacity() const noexcept { return slots_.size(); }

  // Extraction of all present keys (quiescent phases only).
  std::vector<K> keys() const {
    std::vector<K> out;
    for (const auto& s : slots_) {
      const K k = s.load(std::memory_order_relaxed);
      if (k != empty_key) out.push_back(k);
    }
    return out;
  }

 private:
  const std::size_t mask_;
  std::vector<std::atomic<K>> slots_;
};

// Concurrent word -> count map over substrings of one corpus. A word is
// identified by (offset, length) within the corpus, packed into a single
// atomic 64-bit key (40 offset bits, 24 length bits) so a slot is claimed
// with one CAS and readers never observe half-published keys.
class string_counter {
 public:
  string_counter(std::string_view corpus, std::size_t expected)
      : corpus_(corpus),
        mask_(next_pow2(2 * expected + 16) - 1),
        keys_(mask_ + 1),
        counts_(mask_ + 1) {
    for (auto& k : keys_) k.store(kEmpty, std::memory_order_relaxed);
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  }

  // Adds one occurrence of `word`, which must point into the corpus.
  // Returns the slot index (stable for equal words).
  std::size_t add(std::string_view word) {
    const std::uint64_t key = pack(word);
    std::size_t i = hash_bytes(word) & mask_;
    while (true) {
      std::uint64_t cur = keys_[i].load(std::memory_order_relaxed);
      if (cur == kEmpty) {
        if (keys_[i].compare_exchange_strong(cur, key,
                                             std::memory_order_relaxed,
                                             std::memory_order_relaxed)) {
          counts_[i].fetch_add(1, std::memory_order_relaxed);
          return i;
        }
        // cur now holds the winner's key; fall through to compare it.
      }
      if (cur == key || unpack(cur) == word) {
        counts_[i].fetch_add(1, std::memory_order_relaxed);
        return i;
      }
      i = (i + 1) & mask_;
    }
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  // Returns the slot holding `word`, or npos if absent.
  std::size_t find(std::string_view word) const {
    const std::uint64_t key = pack(word);
    std::size_t i = hash_bytes(word) & mask_;
    while (true) {
      const std::uint64_t cur = keys_[i].load(std::memory_order_relaxed);
      if (cur == kEmpty) return npos;
      if (cur == key || unpack(cur) == word) return i;
      i = (i + 1) & mask_;
    }
  }

  // Occurrence count for a word (0 if absent).
  std::uint64_t count(std::string_view word) const {
    const std::size_t i = find(word);
    return i == npos ? 0 : counts_[i].load(std::memory_order_relaxed);
  }

  // The word stored in an occupied slot (empty view otherwise).
  std::string_view word_at(std::size_t slot) const {
    const std::uint64_t cur = keys_[slot].load(std::memory_order_relaxed);
    return cur == kEmpty ? std::string_view{} : unpack(cur);
  }

  // (word, count) dump; quiescent phases only.
  std::vector<std::pair<std::string_view, std::uint64_t>> entries() const {
    std::vector<std::pair<std::string_view, std::uint64_t>> out;
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      const std::uint64_t cur = keys_[i].load(std::memory_order_relaxed);
      if (cur != kEmpty) {
        out.emplace_back(unpack(cur),
                         counts_[i].load(std::memory_order_relaxed));
      }
    }
    return out;
  }

  std::size_t capacity() const noexcept { return keys_.size(); }

 private:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};
  static constexpr unsigned kLenBits = 24;

  std::uint64_t pack(std::string_view word) const noexcept {
    const auto offset = static_cast<std::uint64_t>(word.data() -
                                                   corpus_.data());
    return (offset << kLenBits) | static_cast<std::uint64_t>(word.size());
  }

  std::string_view unpack(std::uint64_t key) const noexcept {
    const std::uint64_t offset = key >> kLenBits;
    const std::uint64_t len = key & ((std::uint64_t{1} << kLenBits) - 1);
    return corpus_.substr(static_cast<std::size_t>(offset),
                          static_cast<std::size_t>(len));
  }

  static std::uint64_t hash_bytes(std::string_view s) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a, then mixed
    for (const char c : s) {
      h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    }
    return hash64(h);
  }

  const std::string_view corpus_;
  const std::size_t mask_;
  std::vector<std::atomic<std::uint64_t>> keys_;
  std::vector<std::atomic<std::uint64_t>> counts_;
};

}  // namespace lcws::par
