// Deterministic parallel random-data generation: element i is a pure
// function of (seed, i), so results are independent of scheduling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "parallel/parallel_for.h"
#include "support/rng.h"

namespace lcws::par {

// v[i] = hash64(seed, i) reduced to [0, bound); bound == 0 means full range.
template <typename Sched, typename U>
void random_fill(Sched& sched, std::vector<U>& v, std::uint64_t seed,
                 std::uint64_t bound = 0) {
  parallel_for(sched, 0, v.size(), [&](std::size_t i) {
    const std::uint64_t r = hash64(seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    v[i] = static_cast<U>(bound == 0 ? r : r % bound);
  });
}

// Deterministic double in [0, 1) per index.
inline double random_double(std::uint64_t seed, std::uint64_t i) noexcept {
  return static_cast<double>(hash64(seed ^ (0x9e3779b97f4a7c15ULL * (i + 1))) >>
                             11) *
         0x1.0p-53;
}

}  // namespace lcws::par
