// Parallel exclusive scan (prefix sums), blocked two-pass algorithm:
//   pass 1: per-block sums in parallel,
//   middle: sequential exclusive scan over the (few) block sums,
//   pass 2: per-block exclusive scan seeded with the block offset.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "parallel/parallel_for.h"

namespace lcws::par {

// Exclusive scan of in[0, n) into out[0, n) (in == out allowed); returns
// the grand total. `combine` must be associative with identity `identity`,
// and callable both as combine(T, element) and combine(T, T) — the second
// form combines per-block partial sums.
template <typename Sched, typename InIt, typename OutIt, typename T,
          typename Combine>
T scan_exclusive(Sched& sched, InIt in, OutIt out, std::size_t n, T identity,
                 Combine combine, std::size_t grain = 0) {
  if (n == 0) return identity;
  if (grain == 0) {
    grain = std::max<std::size_t>(
        default_grain(n, sched.num_workers()), 64);
  }
  const std::size_t nblocks = (n + grain - 1) / grain;
  if (nblocks == 1) {
    T acc = identity;
    for (std::size_t i = 0; i < n; ++i) {
      const T next = combine(acc, in[i]);
      out[i] = acc;
      acc = next;
    }
    return acc;
  }

  std::vector<T> block_sums(nblocks);
  parallel_for(
      sched, 0, nblocks,
      [&](std::size_t b) {
        const std::size_t lo = b * grain;
        const std::size_t hi = std::min(n, lo + grain);
        T acc = identity;
        for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, in[i]);
        block_sums[b] = acc;
      },
      1);

  T total = identity;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const T next = combine(total, block_sums[b]);
    block_sums[b] = total;
    total = next;
  }

  parallel_for(
      sched, 0, nblocks,
      [&](std::size_t b) {
        const std::size_t lo = b * grain;
        const std::size_t hi = std::min(n, lo + grain);
        T acc = block_sums[b];
        for (std::size_t i = lo; i < hi; ++i) {
          const T next = combine(acc, in[i]);
          out[i] = acc;
          acc = next;
        }
      },
      1);
  return total;
}

// Exclusive prefix sums with +.
template <typename Sched, typename InIt, typename OutIt, typename T>
T scan_add(Sched& sched, InIt in, OutIt out, std::size_t n, T identity = T{}) {
  return scan_exclusive(sched, in, out, n, identity, std::plus<T>{});
}

}  // namespace lcws::par
