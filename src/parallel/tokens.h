// Parallel tokenization: split a text into delimiter-separated tokens (the
// first stage of PBBS's text workloads). Token boundaries are found with
// two parallel packs (starts and ends), which pair up positionally because
// starts and ends strictly alternate.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "parallel/pack.h"
#include "parallel/parallel_for.h"

namespace lcws::par {

// Splits `text` at characters where is_delim(c) holds; returns views into
// `text` (which must outlive the result). Empty tokens never occur.
template <typename Sched, typename Pred>
std::vector<std::string_view> tokens(Sched& sched, std::string_view text,
                                     Pred is_delim) {
  const std::size_t n = text.size();
  if (n == 0) return {};
  // Position i starts a token iff it is a non-delimiter preceded by a
  // delimiter (or the text start); it ends one (exclusive) iff it is a
  // delimiter preceded by a non-delimiter. One virtual end at n.
  auto starts = pack_index(
      sched, n,
      [&](std::size_t i) {
        return !is_delim(text[i]) && (i == 0 || is_delim(text[i - 1]));
      },
      [](std::size_t i) { return i; });
  auto ends = pack_index(
      sched, n,
      [&](std::size_t i) {
        return is_delim(text[i]) && i > 0 && !is_delim(text[i - 1]);
      },
      [](std::size_t i) { return i; });
  if (ends.size() < starts.size()) ends.push_back(n);  // text ends mid-token

  std::vector<std::string_view> out(starts.size());
  parallel_for(sched, 0, starts.size(), [&](std::size_t k) {
    out[k] = text.substr(starts[k], ends[k] - starts[k]);
  });
  return out;
}

// Whitespace tokenizer.
template <typename Sched>
std::vector<std::string_view> tokens(Sched& sched, std::string_view text) {
  return tokens(sched, text, [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  });
}

}  // namespace lcws::par
