// Parallel reduction and map-reduce.
#pragma once

#include <cstddef>
#include <functional>
#include <iterator>
#include <utility>

#include "parallel/parallel_for.h"

namespace lcws::par {

namespace detail {

template <typename Sched, typename It, typename T, typename Map,
          typename Combine>
T map_reduce_rec(Sched& sched, It first, std::size_t lo, std::size_t hi,
                 const T& identity, const Map& map, const Combine& combine,
                 std::size_t grain) {
  if (hi - lo <= grain) {
    T acc = identity;
    for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, map(first[i]));
    return acc;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  T left{}, right{};
  sched.pardo(
      [&] {
        left = map_reduce_rec(sched, first, lo, mid, identity, map, combine,
                              grain);
      },
      [&] {
        right = map_reduce_rec(sched, first, mid, hi, identity, map, combine,
                               grain);
      });
  return combine(left, right);
}

}  // namespace detail

// reduce(combine(map(x_i))) over [first, first + n). `combine` must be
// associative with identity `identity`.
template <typename Sched, typename It, typename T, typename Map,
          typename Combine>
T map_reduce(Sched& sched, It first, std::size_t n, T identity, Map&& map,
             Combine&& combine, std::size_t grain = 0) {
  if (n == 0) return identity;
  if (grain == 0) grain = default_grain(n, sched.num_workers());
  return detail::map_reduce_rec(sched, first, 0, n, identity, map, combine,
                                grain);
}

// Plain reduction with an associative operator.
template <typename Sched, typename It, typename T, typename Combine>
T reduce(Sched& sched, It first, std::size_t n, T identity,
         Combine&& combine, std::size_t grain = 0) {
  using value_type = typename std::iterator_traits<It>::value_type;
  return map_reduce(
      sched, first, n, identity, [](const value_type& x) { return T(x); },
      std::forward<Combine>(combine), grain);
}

// Convenience: parallel sum.
template <typename T, typename Sched, typename It>
T sum(Sched& sched, It first, std::size_t n) {
  return reduce(sched, first, n, T{}, std::plus<T>{});
}

// Parallel count of elements satisfying a predicate.
template <typename Sched, typename It, typename Pred>
std::size_t count_if(Sched& sched, It first, std::size_t n, Pred&& pred) {
  using value_type = typename std::iterator_traits<It>::value_type;
  return map_reduce(
      sched, first, n, std::size_t{0},
      [&](const value_type& x) -> std::size_t { return pred(x) ? 1 : 0; },
      std::plus<std::size_t>{});
}

// Parallel max (returns identity on empty input).
template <typename Sched, typename It, typename T>
T max_value(Sched& sched, It first, std::size_t n, T identity) {
  return reduce(sched, first, n, identity,
                [](const T& a, const T& b) { return a < b ? b : a; });
}

}  // namespace lcws::par
