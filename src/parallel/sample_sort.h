// Parallel sample sort — the algorithm PBBS's comparisonSort actually
// ships: pick oversampled pivots, classify elements into buckets with a
// branch-light binary search, scatter by bucket using per-block offsets
// (the counting-scatter pattern shared with integer_sort), then sort each
// bucket independently in parallel. Better cache behaviour than merge
// sort on large inputs; offered as an alternative backend and ablation.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "parallel/parallel_for.h"
#include "support/rng.h"

namespace lcws::par {

namespace detail {
inline constexpr std::size_t sample_sort_base = 8192;
inline constexpr std::size_t sample_oversample = 8;
}  // namespace detail

namespace detail {

// depth guards against degenerate pivot sets (e.g. all-equal inputs put
// everything in one bucket, which would otherwise recurse forever).
template <typename Sched, typename It, typename Cmp>
void sample_sort_impl(Sched& sched, It first, std::size_t n, Cmp cmp,
                      int depth) {
  using T = typename std::iterator_traits<It>::value_type;
  if (n <= detail::sample_sort_base || depth >= 8) {
    std::sort(first, first + static_cast<std::ptrdiff_t>(n), cmp);
    return;
  }

  // Buckets ~ sqrt(n / base) * workers, clamped to something sane.
  std::size_t buckets = 2;
  while (buckets * buckets * detail::sample_sort_base < n && buckets < 256) {
    buckets <<= 1;
  }

  // Oversample, sort the sample, pick evenly spaced pivots.
  const std::size_t sample_size = buckets * detail::sample_oversample;
  std::vector<T> sample(sample_size);
  xoshiro256 rng(0x5a3317e);
  for (std::size_t i = 0; i < sample_size; ++i) {
    sample[i] = first[rng.bounded(n)];
  }
  std::sort(sample.begin(), sample.end(), cmp);
  std::vector<T> pivots(buckets - 1);
  for (std::size_t b = 0; b + 1 < buckets; ++b) {
    pivots[b] = sample[(b + 1) * detail::sample_oversample];
  }

  // Classify in parallel blocks, counting per block per bucket.
  const std::size_t nblocks = std::max<std::size_t>(
      1, std::min((n + 8191) / 8192, 8 * sched.num_workers()));
  const std::size_t block = (n + nblocks - 1) / nblocks;
  std::vector<std::uint32_t> bucket_of(n);
  std::vector<std::uint64_t> counts(nblocks * buckets, 0);
  parallel_for(
      sched, 0, nblocks,
      [&](std::size_t b) {
        auto* local = &counts[b * buckets];
        const std::size_t lo = b * block;
        const std::size_t hi = std::min(n, lo + block);
        for (std::size_t i = lo; i < hi; ++i) {
          const auto it = std::upper_bound(pivots.begin(), pivots.end(),
                                           first[i], cmp);
          const auto bucket = static_cast<std::uint32_t>(it - pivots.begin());
          bucket_of[i] = bucket;
          ++local[bucket];
        }
      },
      1);

  // Column-major exclusive scan for stable global offsets, then scatter.
  std::vector<std::uint64_t> bucket_start(buckets + 1, 0);
  std::uint64_t running = 0;
  for (std::size_t bucket = 0; bucket < buckets; ++bucket) {
    bucket_start[bucket] = running;
    for (std::size_t b = 0; b < nblocks; ++b) {
      std::uint64_t& c = counts[b * buckets + bucket];
      const std::uint64_t tmp = c;
      c = running;
      running += tmp;
    }
  }
  bucket_start[buckets] = running;

  std::vector<T> scratch(n);
  parallel_for(
      sched, 0, nblocks,
      [&](std::size_t b) {
        auto* local = &counts[b * buckets];
        const std::size_t lo = b * block;
        const std::size_t hi = std::min(n, lo + block);
        for (std::size_t i = lo; i < hi; ++i) {
          scratch[local[bucket_of[i]]++] = first[i];
        }
      },
      1);

  // Sort each bucket independently (recursing for oversized buckets).
  parallel_for(
      sched, 0, buckets,
      [&](std::size_t bucket) {
        const std::size_t lo = bucket_start[bucket];
        const std::size_t hi = bucket_start[bucket + 1];
        sample_sort_impl(sched,
                         scratch.begin() + static_cast<std::ptrdiff_t>(lo),
                         hi - lo, cmp, depth + 1);
      },
      1);
  parallel_for(sched, 0, n, [&](std::size_t i) { first[i] = scratch[i]; });
}

}  // namespace detail

template <typename Sched, typename It, typename Cmp = std::less<>>
void sample_sort(Sched& sched, It first, std::size_t n, Cmp cmp = {}) {
  detail::sample_sort_impl(sched, first, n, cmp, 0);
}

template <typename Sched, typename T, typename Cmp = std::less<>>
void sample_sort(Sched& sched, std::vector<T>& v, Cmp cmp = {}) {
  sample_sort(sched, v.begin(), v.size(), cmp);
}

}  // namespace lcws::par
