// Parallel pack/filter: keep the elements selected by a predicate or flag
// array, preserving order. Built on scan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "parallel/parallel_for.h"
#include "parallel/scan.h"

namespace lcws::par {

// Returns the elements of in[0, n) whose pred(value) holds, in order.
template <typename Sched, typename It, typename Pred>
auto filter(Sched& sched, It in, std::size_t n, Pred pred) {
  using value_type = std::remove_cvref_t<decltype(in[0])>;
  std::vector<std::size_t> offsets(n);
  // Scan of 0/1 selection flags computed on the fly.
  std::vector<std::uint8_t> keep(n);
  parallel_for(sched, 0, n,
               [&](std::size_t i) { keep[i] = pred(in[i]) ? 1 : 0; });
  const std::size_t total = scan_exclusive(
      sched, keep.begin(), offsets.begin(), n, std::size_t{0},
      [](std::size_t a, auto b) { return a + static_cast<std::size_t>(b); });
  std::vector<value_type> out(total);
  parallel_for(sched, 0, n, [&](std::size_t i) {
    if (keep[i]) out[offsets[i]] = in[i];
  });
  return out;
}

// Like filter, but selects by index: keeps i where pred(i).
template <typename Sched, typename Pred, typename Gen>
auto pack_index(Sched& sched, std::size_t n, Pred pred, Gen gen) {
  using value_type = decltype(gen(std::size_t{0}));
  std::vector<std::uint8_t> keep(n);
  parallel_for(sched, 0, n,
               [&](std::size_t i) { keep[i] = pred(i) ? 1 : 0; });
  std::vector<std::size_t> offsets(n);
  const std::size_t total = scan_exclusive(
      sched, keep.begin(), offsets.begin(), n, std::size_t{0},
      [](std::size_t a, auto b) { return a + static_cast<std::size_t>(b); });
  std::vector<value_type> out(total);
  parallel_for(sched, 0, n, [&](std::size_t i) {
    if (keep[i]) out[offsets[i]] = gen(i);
  });
  return out;
}

}  // namespace lcws::par
