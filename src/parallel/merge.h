// Parallel merge of two sorted ranges by recursive dual binary search.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>

namespace lcws::par {

namespace detail {

template <typename Sched, typename ItA, typename ItB, typename ItOut,
          typename Cmp>
void merge_rec(Sched& sched, ItA a, std::size_t na, ItB b, std::size_t nb,
               ItOut out, Cmp cmp, std::size_t grain) {
  if (na + nb <= grain) {
    std::merge(a, a + na, b, b + nb, out, cmp);
    return;
  }
  if (na < nb) {
    // Recurse on the larger side so the split keeps shrinking.
    merge_rec(sched, b, nb, a, na, out, cmp, grain);
    return;
  }
  // Split a at its midpoint; find b's matching position.
  const std::size_t ma = na / 2;
  const std::size_t mb = static_cast<std::size_t>(
      std::lower_bound(b, b + nb, a[ma], cmp) - b);
  sched.pardo(
      [&] { merge_rec(sched, a, ma, b, mb, out, cmp, grain); },
      [&] {
        // a[ma] goes into the right half (stability: equal b's went left).
        merge_rec(sched, a + ma, na - ma, b + mb, nb - mb, out + ma + mb,
                  cmp, grain);
      });
}

}  // namespace detail

// Merges sorted [a, a+na) and [b, b+nb) into out (not overlapping inputs).
template <typename Sched, typename ItA, typename ItB, typename ItOut,
          typename Cmp = std::less<>>
void merge(Sched& sched, ItA a, std::size_t na, ItB b, std::size_t nb,
           ItOut out, Cmp cmp = {}, std::size_t grain = 4096) {
  detail::merge_rec(sched, a, na, b, nb, out, cmp, grain);
}

}  // namespace lcws::par
