// N-way fork-join: run any number of callables in parallel, returning when
// all have finished. Built as a balanced binary pardo tree.
//
// Exception contract (inherited from scheduler::pardo): if any callable
// throws, every other callable still runs to completion — the tree's joins
// always drain before unwinding, so no job outlives its stack frame — and
// then one of the thrown exceptions (the leftmost at each join, so the
// lowest-index thrower along the surviving path) rethrows to the
// parallel_invoke caller; the others are discarded.
#pragma once

#include <cstddef>
#include <tuple>
#include <utility>

namespace lcws::par {

namespace detail {

template <typename Sched, typename Tuple>
void invoke_range(Sched& sched, Tuple& fs, std::size_t lo, std::size_t hi);

template <typename Tuple, std::size_t... Is>
void invoke_one(Tuple& fs, std::size_t index, std::index_sequence<Is...>) {
  // Dispatch the runtime index to the matching tuple element.
  ((index == Is ? (void)std::get<Is>(fs)() : (void)0), ...);
}

template <typename Sched, typename Tuple>
void invoke_range(Sched& sched, Tuple& fs, std::size_t lo, std::size_t hi) {
  constexpr std::size_t arity = std::tuple_size_v<Tuple>;
  if (hi - lo == 1) {
    invoke_one(fs, lo, std::make_index_sequence<arity>{});
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  sched.pardo([&] { invoke_range(sched, fs, lo, mid); },
              [&] { invoke_range(sched, fs, mid, hi); });
}

}  // namespace detail

template <typename Sched, typename... Fs>
void parallel_invoke(Sched& sched, Fs&&... fs) {
  static_assert(sizeof...(Fs) >= 1);
  auto tuple = std::forward_as_tuple(std::forward<Fs>(fs)...);
  detail::invoke_range(sched, tuple, 0, sizeof...(Fs));
}

}  // namespace lcws::par
