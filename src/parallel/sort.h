// Parallel comparison sort: recursive merge sort with ping-pong buffers
// and a sequential std::sort base case (PBBS's comparisonSort stand-in).
// Not stable (the parallel merge swaps range roles for balance).
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "parallel/merge.h"

namespace lcws::par {

namespace detail {

// Sorts src[0, n); the result lands in src if inplace, else in scratch.
template <typename Sched, typename It, typename Cmp>
void sort_rec(Sched& sched, It src, It scratch, std::size_t n, bool inplace,
              Cmp cmp, std::size_t grain) {
  if (n <= grain) {
    std::sort(src, src + n, cmp);
    if (!inplace) std::copy(src, src + n, scratch);
    return;
  }
  const std::size_t mid = n / 2;
  // Children deliver into the opposite buffer; the merge brings the halves
  // back into the requested destination.
  sched.pardo(
      [&] { sort_rec(sched, src, scratch, mid, !inplace, cmp, grain); },
      [&] {
        sort_rec(sched, src + mid, scratch + mid, n - mid, !inplace, cmp,
                 grain);
      });
  if (inplace) {
    merge(sched, scratch, mid, scratch + mid, n - mid, src, cmp);
  } else {
    merge(sched, src, mid, src + mid, n - mid, scratch, cmp);
  }
}

}  // namespace detail

// Sorts [first, first + n) in place.
template <typename Sched, typename It, typename Cmp = std::less<>>
void sort(Sched& sched, It first, std::size_t n, Cmp cmp = {},
          std::size_t grain = 4096) {
  if (n <= 1) return;
  using value_type = typename std::iterator_traits<It>::value_type;
  std::vector<value_type> scratch(n);
  detail::sort_rec(sched, first, scratch.begin(), n, /*inplace=*/true, cmp,
                   grain);
}

template <typename Sched, typename T, typename Cmp = std::less<>>
void sort(Sched& sched, std::vector<T>& v, Cmp cmp = {},
          std::size_t grain = 4096) {
  sort(sched, v.begin(), v.size(), cmp, grain);
}

}  // namespace lcws::par
