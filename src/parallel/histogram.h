// Parallel histogram — PBBS's histogram stand-in.
//
// Two regimes:
//   * few buckets: per-block private histograms, then a parallel
//     bucket-wise reduction (no atomics on the hot path);
//   * many buckets: direct atomic fetch_add (the per-block matrices would
//     no longer fit in cache).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "parallel/parallel_for.h"

namespace lcws::par {

// Counts occurrences of each value of key(x) in [0, buckets).
template <typename Sched, typename It, typename KeyFn>
std::vector<std::uint64_t> histogram(Sched& sched, It in, std::size_t n,
                                     std::size_t buckets, KeyFn key) {
  std::vector<std::uint64_t> out(buckets, 0);
  if (n == 0 || buckets == 0) return out;

  constexpr std::size_t kPrivateLimit = 1 << 14;
  if (buckets <= kPrivateLimit) {
    const std::size_t nblocks = std::max<std::size_t>(
        1, std::min((n + 4095) / 4096, 8 * sched.num_workers()));
    const std::size_t block = (n + nblocks - 1) / nblocks;
    std::vector<std::uint64_t> partial(nblocks * buckets, 0);
    parallel_for(
        sched, 0, nblocks,
        [&](std::size_t b) {
          auto* local = &partial[b * buckets];
          const std::size_t lo = b * block;
          const std::size_t hi = std::min(n, lo + block);
          for (std::size_t i = lo; i < hi; ++i) ++local[key(in[i])];
        },
        1);
    parallel_for(sched, 0, buckets, [&](std::size_t bucket) {
      std::uint64_t total = 0;
      for (std::size_t b = 0; b < nblocks; ++b) {
        total += partial[b * buckets + bucket];
      }
      out[bucket] = total;
    });
    return out;
  }

  std::vector<std::atomic<std::uint64_t>> atomic_out(buckets);
  parallel_for(sched, 0, buckets,
               [&](std::size_t b) { atomic_out[b].store(0, std::memory_order_relaxed); });
  parallel_for(sched, 0, n, [&](std::size_t i) {
    atomic_out[key(in[i])].fetch_add(1, std::memory_order_relaxed);
  });
  parallel_for(sched, 0, buckets, [&](std::size_t b) {
    out[b] = atomic_out[b].load(std::memory_order_relaxed);
  });
  return out;
}

template <typename Sched, typename It>
std::vector<std::uint64_t> histogram(Sched& sched, It in, std::size_t n,
                                     std::size_t buckets) {
  return histogram(sched, in, n, buckets,
                   [](auto x) { return static_cast<std::size_t>(x); });
}

}  // namespace lcws::par
