// Parallel integer (LSD radix) sort — PBBS's integerSort stand-in.
//
// Each pass sorts by 8 key bits: per-block counting in parallel, a
// column-major exclusive scan over the (blocks x 256) count matrix, then a
// stable parallel scatter where each block writes through its own offsets.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "parallel/parallel_for.h"

namespace lcws::par {

namespace detail {
inline constexpr std::size_t radix_bits = 8;
inline constexpr std::size_t radix_buckets = std::size_t{1} << radix_bits;

// Number of counting blocks: enough for parallelism, few enough that the
// count matrix stays cache-resident.
inline std::size_t radix_blocks(std::size_t n, std::size_t workers) noexcept {
  const std::size_t by_size = (n + 4095) / 4096;
  return std::max<std::size_t>(1, std::min(by_size, 8 * workers));
}
}  // namespace detail

// Sorts v by key(v[i]), an unsigned integer with at most key_bits bits.
// Stable within each pass, hence stable overall.
template <typename Sched, typename T, typename KeyFn>
void integer_sort(Sched& sched, std::vector<T>& v, KeyFn key,
                  unsigned key_bits) {
  using namespace detail;
  const std::size_t n = v.size();
  if (n <= 1) return;
  std::vector<T> buf(n);
  T* src = v.data();
  T* dst = buf.data();

  const std::size_t nblocks = radix_blocks(n, sched.num_workers());
  const std::size_t block = (n + nblocks - 1) / nblocks;
  std::vector<std::uint64_t> counts(nblocks * radix_buckets);

  const unsigned passes = (key_bits + radix_bits - 1) / radix_bits;
  for (unsigned pass = 0; pass < passes; ++pass) {
    const unsigned shift = pass * static_cast<unsigned>(radix_bits);
    // Pass 1: per-block bucket counts.
    parallel_for(
        sched, 0, nblocks,
        [&](std::size_t b) {
          auto* local = &counts[b * radix_buckets];
          std::fill(local, local + radix_buckets, 0);
          const std::size_t lo = b * block;
          const std::size_t hi = std::min(n, lo + block);
          for (std::size_t i = lo; i < hi; ++i) {
            ++local[(key(src[i]) >> shift) & (radix_buckets - 1)];
          }
        },
        1);
    // Column-major exclusive scan: bucket 0 of every block, then bucket 1
    // of every block, ... yields stable global offsets. The matrix is tiny
    // (blocks x 256), so this stays sequential.
    std::uint64_t running = 0;
    for (std::size_t bucket = 0; bucket < radix_buckets; ++bucket) {
      for (std::size_t b = 0; b < nblocks; ++b) {
        std::uint64_t& c = counts[b * radix_buckets + bucket];
        const std::uint64_t tmp = c;
        c = running;
        running += tmp;
      }
    }
    // Pass 2: scatter, each block through its own offset row.
    parallel_for(
        sched, 0, nblocks,
        [&](std::size_t b) {
          auto* local = &counts[b * radix_buckets];
          const std::size_t lo = b * block;
          const std::size_t hi = std::min(n, lo + block);
          for (std::size_t i = lo; i < hi; ++i) {
            const std::size_t bucket =
                (key(src[i]) >> shift) & (radix_buckets - 1);
            dst[local[bucket]++] = src[i];
          }
        },
        1);
    std::swap(src, dst);
  }
  if (src != v.data()) {
    parallel_for(sched, 0, n, [&](std::size_t i) { v[i] = src[i]; });
  }
}

// Convenience for plain unsigned vectors.
template <typename Sched, typename U>
void integer_sort(Sched& sched, std::vector<U>& v, unsigned key_bits) {
  integer_sort(sched, v, [](U x) { return x; }, key_bits);
}

}  // namespace lcws::par
