// collect_reduce / group_by: combine all values sharing a key — the
// primitive behind PBBS's histogram-family workloads. Keys must be small
// integers (bucket ids); the implementation reuses the per-block counting
// + column-major scan + stable scatter pattern.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "parallel/parallel_for.h"

namespace lcws::par {

// For each key k in [0, num_keys): out[k] = reduce(combine, identity,
// values of all items with key k). Deterministic: per-key reduction
// happens in item order.
template <typename Sched, typename It, typename KeyFn, typename ValFn,
          typename T, typename Combine>
std::vector<T> collect_reduce(Sched& sched, It items, std::size_t n,
                              std::size_t num_keys, KeyFn key, ValFn value,
                              T identity, Combine combine) {
  std::vector<T> out(num_keys, identity);
  if (n == 0 || num_keys == 0) return out;
  const std::size_t nblocks = std::max<std::size_t>(
      1, std::min((n + 4095) / 4096, 8 * sched.num_workers()));
  const std::size_t block = (n + nblocks - 1) / nblocks;
  // Per-block, per-key partial reductions (dense; right choice when
  // num_keys is small relative to n, as in histogram-like workloads).
  std::vector<T> partial(nblocks * num_keys, identity);
  parallel_for(
      sched, 0, nblocks,
      [&](std::size_t b) {
        auto* local = &partial[b * num_keys];
        const std::size_t lo = b * block;
        const std::size_t hi = std::min(n, lo + block);
        for (std::size_t i = lo; i < hi; ++i) {
          const std::size_t k = key(items[i]);
          local[k] = combine(local[k], value(items[i]));
        }
      },
      1);
  parallel_for(sched, 0, num_keys, [&](std::size_t k) {
    T acc = identity;
    for (std::size_t b = 0; b < nblocks; ++b) {
      acc = combine(acc, partial[b * num_keys + k]);
    }
    out[k] = acc;
  });
  return out;
}

// Groups item indices by key: result[k] lists the indices with key k, in
// ascending order (stable).
template <typename Sched, typename It, typename KeyFn>
std::vector<std::vector<std::uint32_t>> group_by(Sched& sched, It items,
                                                 std::size_t n,
                                                 std::size_t num_keys,
                                                 KeyFn key) {
  std::vector<std::vector<std::uint32_t>> out(num_keys);
  if (n == 0 || num_keys == 0) return out;
  const std::size_t nblocks = std::max<std::size_t>(
      1, std::min((n + 4095) / 4096, 8 * sched.num_workers()));
  const std::size_t block = (n + nblocks - 1) / nblocks;
  std::vector<std::uint64_t> counts(nblocks * num_keys, 0);
  parallel_for(
      sched, 0, nblocks,
      [&](std::size_t b) {
        auto* local = &counts[b * num_keys];
        const std::size_t lo = b * block;
        const std::size_t hi = std::min(n, lo + block);
        for (std::size_t i = lo; i < hi; ++i) ++local[key(items[i])];
      },
      1);
  // Per-key totals and per-block starting offsets (column-major scan).
  std::vector<std::uint64_t> totals(num_keys, 0);
  for (std::size_t k = 0; k < num_keys; ++k) {
    std::uint64_t running = 0;
    for (std::size_t b = 0; b < nblocks; ++b) {
      std::uint64_t& c = counts[b * num_keys + k];
      const std::uint64_t tmp = c;
      c = running;
      running += tmp;
    }
    totals[k] = running;
  }
  parallel_for(sched, 0, num_keys, [&](std::size_t k) {
    out[k].resize(totals[k]);
  });
  parallel_for(
      sched, 0, nblocks,
      [&](std::size_t b) {
        auto* local = &counts[b * num_keys];
        const std::size_t lo = b * block;
        const std::size_t hi = std::min(n, lo + block);
        for (std::size_t i = lo; i < hi; ++i) {
          const std::size_t k = key(items[i]);
          out[k][local[k]++] = static_cast<std::uint32_t>(i);
        }
      },
      1);
  return out;
}

}  // namespace lcws::par
