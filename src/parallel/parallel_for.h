// Granularity-controlled parallel loops over a scheduler.
//
// The toolkit mirrors Parlay's surface: every algorithm takes the scheduler
// as an explicit template parameter so the fork/join hot path stays fully
// inlined per policy, and granularity defaults keep per-task work large
// enough that scheduling overhead (the very thing the paper measures)
// stays a realistic fraction of total work.
#pragma once

#include <algorithm>
#include <cstddef>

namespace lcws::par {

// Default sequential block size for a loop of n iterations on P workers:
// enough blocks for balance (8 per worker) without drowning in tasks.
inline std::size_t default_grain(std::size_t n, std::size_t workers) noexcept {
  const std::size_t target_tasks = 8 * workers;
  return std::max<std::size_t>(1, std::min<std::size_t>(2048, n / std::max<std::size_t>(1, target_tasks)));
}

namespace detail {

template <typename Sched, typename F>
void parallel_for_rec(Sched& sched, std::size_t lo, std::size_t hi,
                      std::size_t grain, const F& f) {
  if (hi - lo <= grain) {
    for (std::size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  sched.pardo([&] { parallel_for_rec(sched, lo, mid, grain, f); },
              [&] { parallel_for_rec(sched, mid, hi, grain, f); });
}

}  // namespace detail

// Applies f(i) for every i in [lo, hi). grain == 0 picks a default.
//
// Exception contract (inherited from scheduler::pardo): if f throws for
// some i, the loop completes every other already-forked block (iterations
// are not cancelled), then rethrows one of the thrown exceptions to the
// parallel_for caller. Remaining iterations of the throwing block are
// skipped; the scheduler itself stays fully usable afterwards.
template <typename Sched, typename F>
void parallel_for(Sched& sched, std::size_t lo, std::size_t hi, F&& f,
                  std::size_t grain = 0) {
  if (hi <= lo) return;
  if (grain == 0) grain = default_grain(hi - lo, sched.num_workers());
  detail::parallel_for_rec(sched, lo, hi, grain, f);
}

// Applies f(block_lo, block_hi) over contiguous blocks of ~grain
// iterations; useful when the body wants to amortize per-call state.
template <typename Sched, typename F>
void parallel_for_blocked(Sched& sched, std::size_t lo, std::size_t hi,
                          F&& f, std::size_t grain = 0) {
  if (hi <= lo) return;
  if (grain == 0) grain = default_grain(hi - lo, sched.num_workers());
  const std::size_t nblocks = (hi - lo + grain - 1) / grain;
  parallel_for(
      sched, 0, nblocks,
      [&](std::size_t b) {
        const std::size_t block_lo = lo + b * grain;
        const std::size_t block_hi = std::min(hi, block_lo + grain);
        f(block_lo, block_hi);
      },
      1);
}

}  // namespace lcws::par
