// The split deque of Rito & Paulino (J. Scheduling 2022) as implemented by
// the LCWS paper's Listing 2, with the Section 4 signal-safety fix.
//
// Layout (indices grow from the top of the deque downward):
//
//     deq[0]                      .. deq[age.top - 1]   already stolen
//     deq[age.top]                .. deq[public_bot-1]  PUBLIC  (stealable)
//     deq[public_bot]             .. deq[bot - 1]       PRIVATE (owner only)
//     deq[bot]                                          next push slot
//
// Owner-side operations on the private part (push_bottom / pop_bottom) are
// synchronization-free: no fences, no CAS, no RMW — this is the paper's
// entire point. Synchronization is confined to:
//   * pop_public_bottom: two seq_cst fences (Listing 2 lines 12 and 27),
//   * pop_top (thief):   one CAS,
// and only runs when work has actually been exposed.
//
// Deviations from the listing, each recorded in DESIGN.md:
//   * `bot` and `public_bot` are relaxed std::atomic<int64_t> rather than
//     plain unsigned ints: thieves read public_bot and the signal handler
//     writes it, which would otherwise be a data race (UB). Relaxed atomics
//     compile to plain loads/stores, preserving "synchronization-free".
//   * Indices are signed so the Section 4 pop_bottom variant
//     (`--bot < public_bot`) behaves on an empty deque (-1 < 0).
//   * Listing 2 line 39 reads `(public_bot < bot) ? nullptr : PRIVATE_WORK`,
//     which inverts the documented meaning of pop_top ("if only the public
//     part is empty it returns PRIVATE_WORK"); we implement the documented
//     behaviour.
//
// Storage contract (DESIGN.md §8): the slot array is a growable
// deque_buffer published through an atomic pointer. A push that would run
// off the end doubles the buffer on a slow path — copy the live prefix,
// release-publish the replacement, retire the old storage through the
// reclaim_domain so an in-flight thief never touches freed memory — and
// the non-growth fast path is unchanged: push/pop still perform no fence,
// no CAS, no RMW (one extra dependent load for the buffer indirection).
// Indices reset only when the owner drains the deque completely; a steal
// removes the top element without lowering bot, so bot drifts upward by
// one per stolen task between full drains. With growth enabled that drift
// just costs doubling; under LCWS_DEQUE_FIXED the legacy bounded contract
// applies and the overflowing push throws deque_overflow_error without
// publishing anything, so the in-flight computation drains normally and
// the exception surfaces at the spawn site (see job.h).
//
// Thief-vs-growth safety: pop_top acquire-loads public_bot *before*
// loading the buffer pointer. The exposure that raised public_bot is a
// release store sequenced after any growth that made the buffer cover the
// exposed range, so the acquire gives a buffer at least that large (plus a
// defensive bounds check that degrades to `aborted`). Freeing is deferred
// through the domain's quiescence protocol; without a domain, retired
// buffers are only freed by the destructor.
//
// The exposure entry points (expose_one / expose_conservative /
// expose_half) implement update_public_bottom under the three policies of
// Sections 3, 4.1.1 and 4.1.2. They are async-signal-safe: they only load
// and store lock-free atomics belonging to the handler's own thread
// (growth happens inside push_bottom on the owner's thread, never in a
// handler, and handlers touch indices only — never the buffer pointer).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>

#include "deque/deque_common.h"
#include "deque/reclaim.h"
#include "stats/counters.h"
#include "stats/trace.h"
#include "support/align.h"
#include "support/fault_injection.h"

namespace lcws {

// Rounding trick from Section 4.1.2 (after Lua's lua_number2int): adding
// 2^52 + 2^51 forces the rounded integer into the low mantissa bits, which
// is substantially cheaper than std::round or integer division on the
// machines the paper targets. Rounds halves to even. Defined behaviour via
// memcpy rather than the listing's reinterpret_cast (strict aliasing).
inline std::int32_t double2int(double r) noexcept {
  r += 6755399441055744.0;
  std::int32_t out;
  std::memcpy(&out, &r, sizeof(out));
  return out;
}

template <typename T>
class split_deque {
  using buffer_t = deque_buffer<T>;

 public:
  explicit split_deque(std::size_t capacity = default_deque_capacity,
                       reclaim_domain* domain = nullptr,
                       deque_growth growth = deque_growth::from_env())
      : buf_(buffer_t::create(capacity == 0 ? 1 : capacity)),
        domain_(domain),
        growth_(growth),
        capacity_(capacity == 0 ? 1 : capacity) {}

  split_deque(const split_deque&) = delete;
  split_deque& operator=(const split_deque&) = delete;

  ~split_deque() {
    buffer_t* r = retired_;
    while (r != nullptr) {
      buffer_t* next = r->retired_next;
      buffer_t::destroy(r);
      r = next;
    }
    buffer_t::destroy(buf_.load(std::memory_order_relaxed));
  }

  std::size_t capacity() const noexcept {
    return capacity_.load(std::memory_order_relaxed);
  }

  // ---- owner-side, synchronization-free ---------------------------------

  // Listing 2 line 5. No fence, no CAS; growth is a slow path taken only
  // when the next slot would run off the current buffer.
  void push_bottom(T* task) {
    const auto b = bot_.load(std::memory_order_relaxed);
    buffer_t* buf = buf_.load(std::memory_order_relaxed);
    if (static_cast<std::size_t>(b) >= buf->size) [[unlikely]] {
      buf = grow(buf, b);
    }
    buf->slots()[static_cast<std::size_t>(b)].store(
        task, std::memory_order_relaxed);
    // Release (free on x86): pairs with the exposure's release chain so a
    // thief that acquire-reads public_bot past this slot sees the payload.
    bot_.store(b + 1, std::memory_order_release);
    if (b + 1 > hwm_.load(std::memory_order_relaxed)) [[unlikely]] {
      hwm_.store(b + 1, std::memory_order_relaxed);
      stats::count_deque_hwm(static_cast<std::uint64_t>(b + 1));
    }
    stats::count_push();
  }

  // Listing 2 line 6: the original pop_bottom. Correct for the schedulers
  // that never expose concurrently with it (USLCWS exposes only inside
  // get_task; Conservative Exposure never exposes the last private task).
  T* pop_bottom_original() {
    const auto b = bot_.load(std::memory_order_relaxed);
    if (b == public_bot_.load(std::memory_order_relaxed)) return nullptr;
    bot_.store(b - 1, std::memory_order_relaxed);
    stats::count_pop_private();
    return buf_.load(std::memory_order_relaxed)
        ->slots()[static_cast<std::size_t>(b - 1)]
        .load(std::memory_order_relaxed);
  }

  // Section 4's signal-safe variant: decrement *before* comparing, so an
  // exposure signal arriving mid-operation can never hand the task we are
  // taking to a thief. Still synchronization-free. On the empty paths the
  // caller must follow up with pop_public_bottom, which repairs bot.
  T* pop_bottom_signal_safe() {
    const auto b = bot_.load(std::memory_order_relaxed) - 1;
    bot_.store(b, std::memory_order_relaxed);
    if (b < public_bot_.load(std::memory_order_relaxed)) return nullptr;
    stats::count_pop_private();
    return buf_.load(std::memory_order_relaxed)
        ->slots()[static_cast<std::size_t>(b)]
        .load(std::memory_order_relaxed);
  }

  // ---- owner-side, synchronized (public part) ---------------------------

  // Listing 2 lines 9-29, plus the Section 4 amendment: reset bot to 0 when
  // the public part is empty (repairing the signal-safe pop_bottom's
  // speculative decrement). The full-drain resets double as collection
  // points for retired buffers (owner slow path; free when quiesced).
  T* pop_public_bottom() {
    auto pb = public_bot_.load(std::memory_order_relaxed);
    if (pb == 0) {
      bot_.store(0, std::memory_order_relaxed);
      if (retired_ != nullptr) collect();
      return nullptr;
    }
    --pb;
    public_bot_.store(pb, std::memory_order_relaxed);
    // Fence 1 (line 12): make the decrement visible to thieves before we
    // commit to the task, and read an up-to-date age.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    stats::count_fence();
    T* task = buf_.load(std::memory_order_relaxed)
                  ->slots()[static_cast<std::size_t>(pb)]
                  .load(std::memory_order_relaxed);
    const auto old_age = unpack_age(age_.load(std::memory_order_relaxed));
    if (pb > static_cast<std::int64_t>(old_age.top)) {
      bot_.store(pb, std::memory_order_relaxed);
      stats::count_pop_public();
      return task;
    }
    // The public part holds at most this one task: empty the deque,
    // resetting all indices, and race thieves for the task via the age CAS.
    bot_.store(0, std::memory_order_relaxed);
    const age_t new_age{old_age.tag + 1, 0};
    public_bot_.store(0, std::memory_order_relaxed);
    bool won = false;
    if (pb == static_cast<std::int64_t>(old_age.top)) {
      auto expected = pack_age(old_age);
      won = age_.compare_exchange_strong(expected, pack_age(new_age),
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed);
      stats::count_cas(won);
    }
    if (!won) {
      age_.store(pack_age(new_age), std::memory_order_release);
      task = nullptr;
    } else {
      stats::count_pop_public();
    }
    // Fence 2 (line 27): thieves must not observe the new age together with
    // a stale public_bot, which could double-execute a task.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    stats::count_fence();
    if (retired_ != nullptr) collect();
    return task;
  }

  // ---- thief side --------------------------------------------------------

  // Listing 2 lines 30-40 with the line-39 polarity fixed. The buffer
  // pointer is loaded *after* the acquire of public_bot: the release store
  // that raised public_bot is sequenced after the growth that made the
  // buffer cover the exposed range, so coherence guarantees the buffer we
  // read here is at least that large.
  steal_result<T> pop_top() {
    stats::count_steal_attempt();
    const auto old_age = unpack_age(age_.load(std::memory_order_acquire));
    const auto pb = public_bot_.load(std::memory_order_acquire);
    if (pb > static_cast<std::int64_t>(old_age.top)) {
      buffer_t* buf = buf_.load(std::memory_order_acquire);
      if (old_age.top >= buf->size) [[unlikely]] {
        // Mutually stale index/buffer snapshot (cannot happen for an
        // exposed slot per the ordering above; purely defensive). Treat as
        // a lost race rather than reading out of bounds.
        stats::count_steal_abort();
        return {steal_status::aborted, nullptr};
      }
      T* task = buf->slots()[old_age.top].load(std::memory_order_relaxed);
      age_t new_age = old_age;
      ++new_age.top;
      auto expected = pack_age(old_age);
      const bool won = age_.compare_exchange_strong(
          expected, pack_age(new_age), std::memory_order_seq_cst,
          std::memory_order_relaxed);
      stats::count_cas(won);
      if (won) {
        stats::count_steal_success();
        return {steal_status::stolen, task};
      }
      stats::count_steal_abort();
      return {steal_status::aborted, nullptr};
    }
    if (pb < bot_.load(std::memory_order_relaxed)) {
      stats::count_private_work_seen();
      return {steal_status::private_work, nullptr};
    }
    return {steal_status::empty, nullptr};
  }

  // ---- exposure policies (update_public_bottom) --------------------------
  // All three may be invoked from a SIGUSR1 handler running on the owner's
  // thread, concurrently (in the interleaving sense) with pop_bottom_*.
  // They touch only the index words — never the buffer pointer — so growth
  // cannot race them and they stay async-signal-safe.

  // Section 3 / base signal policy: expose the topmost private task, if
  // any. Requires pop_bottom_signal_safe when driven from a signal handler.
  // Returns the number of tasks exposed (0 or 1).
  std::int64_t expose_one() noexcept {
    const auto pb = public_bot_.load(std::memory_order_relaxed);
    if (pb < bot_.load(std::memory_order_relaxed)) {
      // Release: publishes the newly shared slot (and its job payload,
      // ordered by the push's release) to acquire-reading thieves.
      public_bot_.store(pb + 1, std::memory_order_release);
      stats::count_exposure();
      return 1;
    }
    return 0;
  }

  // Section 4.1.1: expose only when at least two private tasks remain, so
  // the last private task can never be yanked from under pop_bottom; the
  // original pop_bottom stays correct.
  std::int64_t expose_conservative() noexcept {
    const auto pb = public_bot_.load(std::memory_order_relaxed);
    if (pb + 1 < bot_.load(std::memory_order_relaxed)) {
      public_bot_.store(pb + 1, std::memory_order_release);
      stats::count_exposure();
      return 1;
    }
    return 0;
  }

  // Section 4.1.2: with r >= 3 private tasks, expose round(r/2) of them
  // (double2int rounding); otherwise at most one. Thieves still steal one
  // task at a time. Requires pop_bottom_signal_safe.
  std::int64_t expose_half() noexcept {
    const auto pb = public_bot_.load(std::memory_order_relaxed);
    const auto r = bot_.load(std::memory_order_relaxed) - pb;
    if (r <= 0) return 0;
    const std::int64_t n =
        r >= 3 ? static_cast<std::int64_t>(double2int(
                     static_cast<double>(r) / 2.0))
               : 1;
    public_bot_.store(pb + n, std::memory_order_release);
    stats::count_exposure(static_cast<std::uint64_t>(n));
    return n;
  }

  // Lace-style unexposure (van Dijk & van de Pol, and the contrast drawn
  // in the paper's Section 2): reclaim up to half of the public part back
  // into the private part. LCWS never does this; Lace does it when the
  // owner's private part runs dry. Each reclaimed task goes through
  // pop_public_bottom (inheriting its fence/CAS protocol against racing
  // thieves) and is re-pushed privately, preserving order.
  //
  // Precondition: the private part is empty (the only situation the Lace
  // policy reclaims in); the batch is buffered so it stays empty until the
  // re-push.
  std::int64_t unexpose_half() {
    const std::int64_t target = (public_size() + 1) / 2;
    T* buffer[64];
    std::int64_t got = 0;
    while (got < target && got < 64) {
      T* task = pop_public_bottom();
      if (task == nullptr) break;  // lost the remainder to thieves
      buffer[got++] = task;
    }
    // buffer[0] is the newest reclaimed task; push oldest-first so the
    // private part keeps the original age order.
    for (std::int64_t i = got - 1; i >= 0; --i) push_bottom(buffer[i]);
    if (got > 0) stats::count_unexposure(static_cast<std::uint64_t>(got));
    return got;
  }

  // Section 4.1.1 notification predicate: at least two tasks in the private
  // part (racy read by thieves; a stale answer only delays a signal).
  bool has_two_tasks() const noexcept {
    return public_bot_.load(std::memory_order_relaxed) + 1 <
           bot_.load(std::memory_order_relaxed);
  }

  // ---- diagnostics (racy estimates; tests use them single-threaded) ------

  std::int64_t private_size() const noexcept {
    const auto n = bot_.load(std::memory_order_relaxed) -
                   public_bot_.load(std::memory_order_relaxed);
    return n > 0 ? n : 0;
  }

  std::int64_t public_size() const noexcept {
    const auto n =
        public_bot_.load(std::memory_order_relaxed) -
        static_cast<std::int64_t>(
            unpack_age(age_.load(std::memory_order_relaxed)).top);
    return n > 0 ? n : 0;
  }

  std::int64_t size_estimate() const noexcept {
    return private_size() + public_size();
  }

  std::uint64_t grow_count() const noexcept {
    return grows_.load(std::memory_order_relaxed);
  }

  std::int64_t high_water_mark() const noexcept {
    return hwm_.load(std::memory_order_relaxed);
  }

  std::uint64_t retired_buffers() const noexcept {
    return retired_count_.load(std::memory_order_relaxed);
  }

  // Racy one-line snapshot of the index state for watchdog/post-mortem
  // dumps (relaxed loads only; values may be mutually inconsistent — in
  // particular capacity comes from a shadow word, never the buffer, so a
  // dumping watchdog thread cannot race reclamation).
  std::string debug_string() const {
    const auto a = unpack_age(age_.load(std::memory_order_relaxed));
    return "top=" + std::to_string(a.top) +
           " public_bot=" +
           std::to_string(public_bot_.load(std::memory_order_relaxed)) +
           " bot=" + std::to_string(bot_.load(std::memory_order_relaxed)) +
           " tag=" + std::to_string(a.tag) +
           " cap=" + std::to_string(capacity()) +
           " hwm=" + std::to_string(high_water_mark()) +
           " grows=" + std::to_string(grow_count()) +
           " retired=" + std::to_string(retired_buffers());
  }

 private:
  [[noreturn]] void overflow(std::size_t cap) const {
    throw deque_overflow_error("split_deque", cap, growth_.soft_cap);
  }

  // Growth slow path: double the buffer (covering index b), copy the live
  // prefix [0, b), publish, retire the old storage. Owner thread only.
  buffer_t* grow(buffer_t* old, std::int64_t b) {
    if (growth_.fixed) overflow(old->size);
    collect();
    std::size_t nsize = old->size * 2;
    while (nsize <= static_cast<std::size_t>(b)) nsize *= 2;
    buffer_t* nb = buffer_t::create(nsize);
    auto* src = old->slots();
    auto* dst = nb->slots();
    // Copy everything below bot: [0, top) is dead history and [top, b) is
    // live. Stale values in already-stolen slots are harmless — thieves
    // validate every read through the age CAS.
    for (std::int64_t i = 0; i < b; ++i) {
      dst[i].store(src[i].load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    }
    if (fi::inject(fi::site::deque_grow)) grow_race_pause();
    // Publication point: release so a thief's acquire chain through the
    // index words sees fully copied slots.
    buf_.store(nb, std::memory_order_release);
    capacity_.store(nsize, std::memory_order_relaxed);
    retire(old);
    grows_.store(grows_.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
    stats::count_deque_grow();
    trace::emit(trace::event::deque_grow, nsize);
    return nb;
  }

  // Retire after publication: the domain token drawn here is ordered after
  // the buf_ release store, which is what makes passed() imply
  // unreachability (see reclaim.h).
  void retire(buffer_t* old) noexcept {
    old->retire_token = domain_ != nullptr ? domain_->retire_token() : 0;
    old->retired_next = retired_;
    retired_ = old;
    retired_count_.store(
        retired_count_.load(std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
  }

  // Free retired buffers whose token every registered reader has passed.
  // Without a domain nothing is freed until destruction. Owner slow path.
  void collect() noexcept {
    if (domain_ == nullptr) return;
    buffer_t** link = &retired_;
    while (*link != nullptr) {
      buffer_t* r = *link;
      if (domain_->passed(r->retire_token)) {
        *link = r->retired_next;
        buffer_t::destroy(r);
        retired_count_.store(
            retired_count_.load(std::memory_order_relaxed) - 1,
            std::memory_order_relaxed);
      } else {
        link = &r->retired_next;
      }
    }
  }

  // bot and public_bot share a line deliberately: both are owner-written,
  // and the owner touches them together on every operation.
  alignas(cache_line_size) std::atomic<std::int64_t> bot_{0};
  std::atomic<std::int64_t> public_bot_{0};
  alignas(cache_line_size) std::atomic<std::uint64_t> age_{0};
  alignas(cache_line_size) std::atomic<buffer_t*> buf_;
  reclaim_domain* const domain_;
  const deque_growth growth_;
  buffer_t* retired_ = nullptr;  // owner-only intrusive list
  std::atomic<std::int64_t> hwm_{0};
  std::atomic<std::uint64_t> grows_{0};
  std::atomic<std::size_t> capacity_;  // shadow of buf_->size for dumps
  std::atomic<std::uint64_t> retired_count_{0};
};

}  // namespace lcws
