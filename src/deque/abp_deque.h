// The baseline Work Stealing deque: a bounded Arora–Blumofe–Plaxton (ABP)
// deque with an age/tag word, in the exact shape used by Parlay's default
// scheduler (the paper's "WS" baseline).
//
// The synchronization profile this baseline exhibits — and that Figures 3a
// and 8a of the paper divide by — is:
//   * push_bottom: one seq_cst fence (publishes the new bottom to thieves),
//   * pop_bottom:  one seq_cst fence (the Dekker-style owner/thief
//     handshake Attiya et al. prove unavoidable for fully concurrent
//     deques) plus a CAS when racing for the last task,
//   * pop_top:     one CAS.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "deque/deque_common.h"
#include "stats/counters.h"
#include "support/align.h"

namespace lcws {

template <typename T>
class abp_deque {
 public:
  explicit abp_deque(std::size_t capacity = default_deque_capacity)
      : slots_(capacity) {}

  abp_deque(const abp_deque&) = delete;
  abp_deque& operator=(const abp_deque&) = delete;

  std::size_t capacity() const noexcept { return slots_.size(); }

  // Owner only.
  void push_bottom(T* task) {
    const auto b = bot_.load(std::memory_order_relaxed);
    if (static_cast<std::size_t>(b) >= slots_.size()) overflow();
    slots_[static_cast<std::size_t>(b)].store(task,
                                              std::memory_order_relaxed);
    // Release: a thief that acquire-reads the new bot must see the slot
    // (and the job payload written before the push). Free on x86.
    bot_.store(b + 1, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    stats::count_fence();
    stats::count_push();
  }

  // Owner only. Returns nullptr when the deque is empty.
  T* pop_bottom() {
    auto b = bot_.load(std::memory_order_relaxed);
    if (b == 0) return nullptr;
    --b;
    bot_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    stats::count_fence();
    T* task = slots_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
    auto old_age = unpack_age(age_.load(std::memory_order_relaxed));
    if (b > static_cast<std::int64_t>(old_age.top)) {
      stats::count_pop_private();
      return task;
    }
    // Zero or one task left: reset the deque, racing thieves for the last
    // task through the age CAS.
    bot_.store(0, std::memory_order_relaxed);
    const age_t new_age{old_age.tag + 1, 0};
    if (b == static_cast<std::int64_t>(old_age.top)) {
      auto expected = pack_age(old_age);
      const bool won = age_.compare_exchange_strong(
          expected, pack_age(new_age), std::memory_order_relaxed,
          std::memory_order_relaxed);
      stats::count_cas(won);
      if (won) {
        stats::count_pop_private();
        return task;
      }
    }
    age_.store(pack_age(new_age), std::memory_order_release);
    return nullptr;
  }

  // Thieves (and, in principle, anyone). One CAS per attempt.
  steal_result<T> pop_top() {
    stats::count_steal_attempt();
    const auto old_age = unpack_age(age_.load(std::memory_order_acquire));
    const auto b = bot_.load(std::memory_order_acquire);
    if (b <= static_cast<std::int64_t>(old_age.top)) {
      return {steal_status::empty, nullptr};
    }
    T* task = slots_[old_age.top].load(std::memory_order_relaxed);
    age_t new_age = old_age;
    ++new_age.top;
    auto expected = pack_age(old_age);
    const bool won = age_.compare_exchange_strong(
        expected, pack_age(new_age), std::memory_order_seq_cst,
        std::memory_order_relaxed);
    stats::count_cas(won);
    if (won) {
      stats::count_steal_success();
      return {steal_status::stolen, task};
    }
    stats::count_steal_abort();
    return {steal_status::aborted, nullptr};
  }

  // Racy size estimate (harness/diagnostics only).
  std::int64_t size_estimate() const noexcept {
    const auto b = bot_.load(std::memory_order_relaxed);
    const auto t = static_cast<std::int64_t>(
        unpack_age(age_.load(std::memory_order_relaxed)).top);
    return b > t ? b - t : 0;
  }

  bool empty_estimate() const noexcept { return size_estimate() == 0; }

  // Racy one-line snapshot for watchdog/post-mortem dumps.
  std::string debug_string() const {
    const auto a = unpack_age(age_.load(std::memory_order_relaxed));
    return "top=" + std::to_string(a.top) +
           " bot=" + std::to_string(bot_.load(std::memory_order_relaxed)) +
           " tag=" + std::to_string(a.tag) +
           " cap=" + std::to_string(slots_.size());
  }

 private:
  [[noreturn]] void overflow() const {
    throw deque_overflow_error("abp_deque", slots_.size());
  }

  alignas(cache_line_size) std::atomic<std::int64_t> bot_{0};
  alignas(cache_line_size) std::atomic<std::uint64_t> age_{0};
  alignas(cache_line_size) std::vector<std::atomic<T*>> slots_;
};

}  // namespace lcws
