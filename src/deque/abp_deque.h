// The baseline Work Stealing deque: a bounded Arora–Blumofe–Plaxton (ABP)
// deque with an age/tag word, in the exact shape used by Parlay's default
// scheduler (the paper's "WS" baseline).
//
// The synchronization profile this baseline exhibits — and that Figures 3a
// and 8a of the paper divide by — is:
//   * push_bottom: one seq_cst fence (publishes the new bottom to thieves),
//   * pop_bottom:  one seq_cst fence (the Dekker-style owner/thief
//     handshake Attiya et al. prove unavoidable for fully concurrent
//     deques) plus a CAS when racing for the last task,
//   * pop_top:     one CAS.
//
// Storage follows the same growable-buffer scheme as split_deque
// (DESIGN.md §8): a push past the end doubles the buffer on a slow path,
// release-publishes the replacement, and retires the old storage through
// the reclaim_domain; growth adds no fences or CAS to the profile above.
// pop_top loads the buffer pointer after its acquire of bot, whose
// release store is sequenced after any growth covering [0, bot) — so the
// buffer seen always spans the index about to be read. LCWS_DEQUE_FIXED
// restores the legacy throwing bounded behaviour.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <string>

#include "deque/deque_common.h"
#include "deque/reclaim.h"
#include "stats/counters.h"
#include "stats/trace.h"
#include "support/align.h"
#include "support/fault_injection.h"

namespace lcws {

template <typename T>
class abp_deque {
  using buffer_t = deque_buffer<T>;

 public:
  explicit abp_deque(std::size_t capacity = default_deque_capacity,
                     reclaim_domain* domain = nullptr,
                     deque_growth growth = deque_growth::from_env())
      : buf_(buffer_t::create(capacity == 0 ? 1 : capacity)),
        domain_(domain),
        growth_(growth),
        capacity_(capacity == 0 ? 1 : capacity) {}

  abp_deque(const abp_deque&) = delete;
  abp_deque& operator=(const abp_deque&) = delete;

  ~abp_deque() {
    buffer_t* r = retired_;
    while (r != nullptr) {
      buffer_t* next = r->retired_next;
      buffer_t::destroy(r);
      r = next;
    }
    buffer_t::destroy(buf_.load(std::memory_order_relaxed));
  }

  std::size_t capacity() const noexcept {
    return capacity_.load(std::memory_order_relaxed);
  }

  // Owner only.
  void push_bottom(T* task) {
    const auto b = bot_.load(std::memory_order_relaxed);
    buffer_t* buf = buf_.load(std::memory_order_relaxed);
    if (static_cast<std::size_t>(b) >= buf->size) [[unlikely]] {
      buf = grow(buf, b);
    }
    buf->slots()[static_cast<std::size_t>(b)].store(
        task, std::memory_order_relaxed);
    // Release: a thief that acquire-reads the new bot must see the slot
    // (and the job payload written before the push). Free on x86.
    bot_.store(b + 1, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    stats::count_fence();
    if (b + 1 > hwm_.load(std::memory_order_relaxed)) [[unlikely]] {
      hwm_.store(b + 1, std::memory_order_relaxed);
      stats::count_deque_hwm(static_cast<std::uint64_t>(b + 1));
    }
    stats::count_push();
  }

  // Owner only. Returns nullptr when the deque is empty.
  T* pop_bottom() {
    auto b = bot_.load(std::memory_order_relaxed);
    if (b == 0) {
      if (retired_ != nullptr) collect();
      return nullptr;
    }
    --b;
    bot_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    stats::count_fence();
    T* task = buf_.load(std::memory_order_relaxed)
                  ->slots()[static_cast<std::size_t>(b)]
                  .load(std::memory_order_relaxed);
    auto old_age = unpack_age(age_.load(std::memory_order_relaxed));
    if (b > static_cast<std::int64_t>(old_age.top)) {
      stats::count_pop_private();
      return task;
    }
    // Zero or one task left: reset the deque, racing thieves for the last
    // task through the age CAS. The reset doubles as a collection point
    // for retired buffers.
    bot_.store(0, std::memory_order_relaxed);
    const age_t new_age{old_age.tag + 1, 0};
    bool won = false;
    if (b == static_cast<std::int64_t>(old_age.top)) {
      auto expected = pack_age(old_age);
      won = age_.compare_exchange_strong(expected, pack_age(new_age),
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed);
      stats::count_cas(won);
    }
    if (!won) {
      age_.store(pack_age(new_age), std::memory_order_release);
      task = nullptr;
    } else {
      stats::count_pop_private();
    }
    if (retired_ != nullptr) collect();
    return task;
  }

  // Thieves (and, in principle, anyone). One CAS per attempt. The buffer
  // pointer is loaded after the acquire of bot: the release store that
  // raised bot past old_age.top is sequenced after the growth that made
  // the buffer cover that index, so the buffer read here spans it.
  steal_result<T> pop_top() {
    stats::count_steal_attempt();
    const auto old_age = unpack_age(age_.load(std::memory_order_acquire));
    const auto b = bot_.load(std::memory_order_acquire);
    if (b <= static_cast<std::int64_t>(old_age.top)) {
      return {steal_status::empty, nullptr};
    }
    buffer_t* buf = buf_.load(std::memory_order_acquire);
    if (old_age.top >= buf->size) [[unlikely]] {
      // Defensive: mutually stale index/buffer snapshot. Treat as a lost
      // race rather than reading out of bounds.
      stats::count_steal_abort();
      return {steal_status::aborted, nullptr};
    }
    T* task = buf->slots()[old_age.top].load(std::memory_order_relaxed);
    age_t new_age = old_age;
    ++new_age.top;
    auto expected = pack_age(old_age);
    const bool won = age_.compare_exchange_strong(
        expected, pack_age(new_age), std::memory_order_seq_cst,
        std::memory_order_relaxed);
    stats::count_cas(won);
    if (won) {
      stats::count_steal_success();
      return {steal_status::stolen, task};
    }
    stats::count_steal_abort();
    return {steal_status::aborted, nullptr};
  }

  // Racy size estimate (harness/diagnostics only).
  std::int64_t size_estimate() const noexcept {
    const auto b = bot_.load(std::memory_order_relaxed);
    const auto t = static_cast<std::int64_t>(
        unpack_age(age_.load(std::memory_order_relaxed)).top);
    return b > t ? b - t : 0;
  }

  bool empty_estimate() const noexcept { return size_estimate() == 0; }

  std::uint64_t grow_count() const noexcept {
    return grows_.load(std::memory_order_relaxed);
  }

  std::int64_t high_water_mark() const noexcept {
    return hwm_.load(std::memory_order_relaxed);
  }

  std::uint64_t retired_buffers() const noexcept {
    return retired_count_.load(std::memory_order_relaxed);
  }

  // Racy one-line snapshot for watchdog/post-mortem dumps (capacity comes
  // from a shadow word so the dump never dereferences the buffer).
  std::string debug_string() const {
    const auto a = unpack_age(age_.load(std::memory_order_relaxed));
    return "top=" + std::to_string(a.top) +
           " bot=" + std::to_string(bot_.load(std::memory_order_relaxed)) +
           " tag=" + std::to_string(a.tag) +
           " cap=" + std::to_string(capacity()) +
           " hwm=" + std::to_string(high_water_mark()) +
           " grows=" + std::to_string(grow_count()) +
           " retired=" + std::to_string(retired_buffers());
  }

 private:
  [[noreturn]] void overflow(std::size_t cap) const {
    throw deque_overflow_error("abp_deque", cap, growth_.soft_cap);
  }

  buffer_t* grow(buffer_t* old, std::int64_t b) {
    if (growth_.fixed) overflow(old->size);
    collect();
    std::size_t nsize = old->size * 2;
    while (nsize <= static_cast<std::size_t>(b)) nsize *= 2;
    buffer_t* nb = buffer_t::create(nsize);
    auto* src = old->slots();
    auto* dst = nb->slots();
    for (std::int64_t i = 0; i < b; ++i) {
      dst[i].store(src[i].load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    }
    if (fi::inject(fi::site::deque_grow)) grow_race_pause();
    buf_.store(nb, std::memory_order_release);
    capacity_.store(nsize, std::memory_order_relaxed);
    retire(old);
    grows_.store(grows_.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
    stats::count_deque_grow();
    trace::emit(trace::event::deque_grow, nsize);
    return nb;
  }

  void retire(buffer_t* old) noexcept {
    old->retire_token = domain_ != nullptr ? domain_->retire_token() : 0;
    old->retired_next = retired_;
    retired_ = old;
    retired_count_.store(
        retired_count_.load(std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
  }

  void collect() noexcept {
    if (domain_ == nullptr) return;
    buffer_t** link = &retired_;
    while (*link != nullptr) {
      buffer_t* r = *link;
      if (domain_->passed(r->retire_token)) {
        *link = r->retired_next;
        buffer_t::destroy(r);
        retired_count_.store(
            retired_count_.load(std::memory_order_relaxed) - 1,
            std::memory_order_relaxed);
      } else {
        link = &r->retired_next;
      }
    }
  }

  alignas(cache_line_size) std::atomic<std::int64_t> bot_{0};
  alignas(cache_line_size) std::atomic<std::uint64_t> age_{0};
  alignas(cache_line_size) std::atomic<buffer_t*> buf_;
  reclaim_domain* const domain_;
  const deque_growth growth_;
  buffer_t* retired_ = nullptr;  // owner-only intrusive list
  std::atomic<std::int64_t> hwm_{0};
  std::atomic<std::uint64_t> grows_{0};
  std::atomic<std::size_t> capacity_;  // shadow of buf_->size for dumps
  std::atomic<std::uint64_t> retired_count_{0};
};

}  // namespace lcws
