// Private deques with explicit steal-request mailboxes — the related-work
// baseline of Acar, Charguéraud & Rainey (PPoPP '13) that the paper's
// Section 2 contrasts LCWS against.
//
// The deque is entirely private: a plain std::deque the owner uses as a
// call stack, with zero atomics on push/pop except one relaxed load that
// polls for an incoming steal request. Thieves never touch the deque;
// they post a request cell and wait for the victim to transfer a task (or
// a null "no work" answer) through it. Like USLCWS — and unlike the
// paper's signal-based LCWS — requests are only served at task
// granularity, so a long sequential task blocks load balancing (the
// weakness Acar et al. worked around with a periodic interrupter).
//
// Protocol (one outstanding request per victim):
//   thief:  box = sentinel; CAS victim.request (null -> &box); spin on box;
//           on timeout, CAS victim.request (&box -> null) to retract —
//           if that CAS fails the victim is already answering, keep
//           spinning (the answer is imminent).
//   victim: poll(): if request != null, take the oldest task (or null),
//           CAS request (r -> null); on success publish through r->box;
//           on failure (thief retracted) put the task back.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <string>

#include "deque/deque_common.h"
#include "stats/counters.h"
#include "support/align.h"

namespace lcws {

// A thief's one-shot answer box. `pending` marks "no answer yet"; the
// victim stores either a task pointer or nullptr ("no work").
template <typename T>
struct alignas(cache_line_size) steal_box {
  static T* pending() noexcept {
    return reinterpret_cast<T*>(static_cast<std::uintptr_t>(1));
  }
  std::atomic<T*> answer{pending()};
};

template <typename T>
class private_deque {
 public:
  // Storage is unbounded (std::deque); the hint, domain and growth policy
  // only keep the constructor and capacity() signatures uniform with the
  // growable deques — nothing here is ever retired or capped (this deque
  // never throws deque_overflow_error, with or without LCWS_DEQUE_FIXED).
  explicit private_deque(std::size_t capacity_hint = 0,
                         reclaim_domain* /*domain*/ = nullptr,
                         deque_growth /*growth*/ = {})
      : capacity_hint_(capacity_hint) {}

  std::size_t capacity() const noexcept { return capacity_hint_; }

  private_deque(const private_deque&) = delete;
  private_deque& operator=(const private_deque&) = delete;

  // ---- owner side ---------------------------------------------------------

  void push_bottom(T* task) {
    stack_.push_back(task);
    stats::count_push();
    poll();
  }

  T* pop_bottom() {
    poll();
    if (stack_.empty()) return nullptr;
    T* task = stack_.back();
    stack_.pop_back();
    stats::count_pop_private();
    return task;
  }

  // Serves at most one pending steal request (called from push/pop and
  // from the scheduler's idle loop).
  void poll() {
    steal_box<T>* request = request_.load(std::memory_order_acquire);
    if (request == nullptr) return;
    T* give = nullptr;
    if (!stack_.empty()) {
      give = stack_.front();  // oldest task, like a top-side steal
      stack_.pop_front();
    }
    if (request_.compare_exchange_strong(request, nullptr,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      stats::count_cas(true);
      request->answer.store(give, std::memory_order_release);
    } else {
      // The thief retracted between our load and the CAS: keep the task.
      stats::count_cas(false);
      if (give != nullptr) stack_.push_front(give);
    }
  }

  // ---- thief side -----------------------------------------------------------

  // Posts a steal request; false if another thief's request is pending.
  bool post_request(steal_box<T>* box) {
    steal_box<T>* expected = nullptr;
    const bool ok = request_.compare_exchange_strong(
        expected, box, std::memory_order_acq_rel, std::memory_order_acquire);
    stats::count_cas(ok);
    return ok;
  }

  // Attempts to withdraw a posted request; false means the victim is
  // already answering and the box will be filled shortly.
  bool retract_request(steal_box<T>* box) {
    steal_box<T>* expected = box;
    const bool ok = request_.compare_exchange_strong(
        expected, nullptr, std::memory_order_acq_rel,
        std::memory_order_acquire);
    stats::count_cas(ok);
    return ok;
  }

  // ---- diagnostics ----------------------------------------------------------

  std::size_t size() const noexcept { return stack_.size(); }
  // Owner-only (stack_ is not thread-safe); named to match the other
  // deques so the scheduler's soft-cap backpressure check is uniform.
  std::int64_t size_estimate() const noexcept {
    return static_cast<std::int64_t>(stack_.size());
  }
  bool has_pending_request() const noexcept {
    return request_.load(std::memory_order_relaxed) != nullptr;
  }

  // Watchdog/post-mortem snapshot. Deliberately reports only the atomic
  // request slot: stack_ is a plain std::deque owned by the worker, so a
  // concurrent size() from the monitor thread would be a data race.
  std::string debug_string() const {
    return std::string("mailbox pending_request=") +
           (has_pending_request() ? "1" : "0");
  }

 private:
  const std::size_t capacity_hint_;
  std::deque<T*> stack_;
  alignas(cache_line_size) std::atomic<steal_box<T>*> request_{nullptr};
};

}  // namespace lcws
