// Shared vocabulary for the work-stealing deques.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace lcws {

// Thrown by the bounded deques when a push would exceed capacity. This is
// a detectable, recoverable error (it propagates through pardo's exception
// path to the spawn site) rather than silent corruption or an abort: the
// computation's outstanding jobs still drain, and the caller can retry
// with a scheduler constructed with a larger deque_capacity.
class deque_overflow_error : public std::length_error {
 public:
  deque_overflow_error(const char* which, std::size_t capacity)
      : std::length_error(std::string("lcws: ") + which +
                          " capacity exhausted (" +
                          std::to_string(capacity) +
                          " slots); construct the scheduler with a larger "
                          "deque_capacity") {}
};

// Outcome of a thief-side pop_top.
enum class steal_status : std::uint8_t {
  stolen,        // a task was taken; pointer is valid
  empty,         // the whole deque (public and private) was empty
  aborted,       // lost a CAS race with another thief / the owner
  private_work,  // public part empty but private work exists (split deques
                 // only) — the thief should request exposure
};

template <typename T>
struct steal_result {
  steal_status status;
  T* task;  // non-null iff status == stolen
};

// The age word of ABP-style deques: a 32-bit top index plus a 32-bit tag
// that changes on every deque reset, preventing the ABA problem on the
// top-side CAS.
struct age_t {
  std::uint32_t tag;
  std::uint32_t top;

  friend bool operator==(const age_t&, const age_t&) = default;
};

constexpr std::uint64_t pack_age(age_t a) noexcept {
  return (static_cast<std::uint64_t>(a.tag) << 32) | a.top;
}

constexpr age_t unpack_age(std::uint64_t word) noexcept {
  return age_t{static_cast<std::uint32_t>(word >> 32),
               static_cast<std::uint32_t>(word)};
}

// Default per-worker deque capacity. Fork–join recursion depth is
// logarithmic in problem size, but help-first joins can stack helped tasks'
// frames, so we leave generous headroom; overflow is detected and throws
// deque_overflow_error.
inline constexpr std::size_t default_deque_capacity = std::size_t{1} << 16;

}  // namespace lcws
