// Shared vocabulary for the work-stealing deques.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace lcws {

// Forward-declared so non-growing deques (private_deque) can share the
// uniform constructor signature without pulling in reclaim.h.
class reclaim_domain;

// Default backpressure threshold (tasks outstanding in one worker's deque)
// past which the scheduler serializes spawns instead of growing further.
inline constexpr std::size_t default_deque_soft_cap = std::size_t{1} << 20;

// Growth policy, read from the environment at construction time (the same
// pattern as the health/locality knobs):
//   LCWS_DEQUE_FIXED=1      restore the legacy bounded behaviour: a push
//                           past capacity throws deque_overflow_error and
//                           the deque never grows or reallocates.
//   LCWS_DEQUE_SOFT_CAP=<n> scheduler-level high-water mark: past n
//                           outstanding tasks the owner executes spawns
//                           inline (serialization as graceful degradation)
//                           instead of pushing. 0 disables the cap.
struct deque_growth {
  bool fixed = false;
  std::size_t soft_cap = default_deque_soft_cap;

  static deque_growth from_env() noexcept {
    deque_growth g;
    const char* f = std::getenv("LCWS_DEQUE_FIXED");
    g.fixed = f != nullptr && f[0] != '\0' &&
              !(f[0] == '0' && f[1] == '\0');
    if (const char* s = std::getenv("LCWS_DEQUE_SOFT_CAP")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(s, &end, 10);
      if (end != s && *end == '\0') g.soft_cap = static_cast<std::size_t>(v);
    }
    return g;
  }
};

// Thrown on a push past capacity in fixed-capacity mode (LCWS_DEQUE_FIXED;
// growth-enabled deques grow instead of throwing). This is a detectable,
// recoverable error (it propagates through pardo's exception path to the
// spawn site) rather than silent corruption or an abort: the computation's
// outstanding jobs still drain, and the caller can retry with growth
// enabled or a larger deque_capacity. The message reports the active
// backpressure policy alongside the raw capacity.
class deque_overflow_error : public std::length_error {
 public:
  deque_overflow_error(const char* which, std::size_t capacity,
                       std::size_t soft_cap = 0)
      : std::length_error(
            std::string("lcws: ") + which + " capacity exhausted (" +
            std::to_string(capacity) +
            " slots) in fixed-capacity mode (LCWS_DEQUE_FIXED); " +
            (soft_cap == 0
                 ? std::string("no spawn soft cap was active")
                 : "the LCWS_DEQUE_SOFT_CAP=" + std::to_string(soft_cap) +
                       " backpressure threshold applies only when growth "
                       "is enabled") +
            ". Unset LCWS_DEQUE_FIXED to let the deque grow, or construct "
            "the scheduler with a larger deque_capacity") {}
};

// Bounded busy-wait used by the deque_grow fault-injection site to widen
// the thief-versus-growth race window (test builds only; the call site
// folds away without LCWS_FAULT_INJECTION).
inline void grow_race_pause() noexcept {
  volatile int sink = 0;
  for (int i = 0; i < 20000; ++i) sink = sink + 1;
}

// Outcome of a thief-side pop_top.
enum class steal_status : std::uint8_t {
  stolen,        // a task was taken; pointer is valid
  empty,         // the whole deque (public and private) was empty
  aborted,       // lost a CAS race with another thief / the owner
  private_work,  // public part empty but private work exists (split deques
                 // only) — the thief should request exposure
};

template <typename T>
struct steal_result {
  steal_status status;
  T* task;  // non-null iff status == stolen
};

// The age word of ABP-style deques: a 32-bit top index plus a 32-bit tag
// that changes on every deque reset, preventing the ABA problem on the
// top-side CAS.
struct age_t {
  std::uint32_t tag;
  std::uint32_t top;

  friend bool operator==(const age_t&, const age_t&) = default;
};

constexpr std::uint64_t pack_age(age_t a) noexcept {
  return (static_cast<std::uint64_t>(a.tag) << 32) | a.top;
}

constexpr age_t unpack_age(std::uint64_t word) noexcept {
  return age_t{static_cast<std::uint32_t>(word >> 32),
               static_cast<std::uint32_t>(word)};
}

// Default per-worker deque capacity. Fork–join recursion depth is
// logarithmic in problem size, but help-first joins can stack helped tasks'
// frames, so we leave generous headroom; overflow is detected and throws
// deque_overflow_error.
inline constexpr std::size_t default_deque_capacity = std::size_t{1} << 16;

}  // namespace lcws
