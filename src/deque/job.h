// The unit of scheduling: a type-erased, stack-allocatable job.
//
// Following Parlay's design, a fork allocates the forked branch as a
// `lambda_job` on the forking function's stack frame, pushes a pointer to it
// onto the worker's deque, and on join waits for `done`. The job object
// outlives every access because the forker cannot return before observing
// done == true.
#pragma once

#include <atomic>
#include <type_traits>
#include <utility>

namespace lcws {

class job {
 public:
  using run_fn = void (*)(job*);

  explicit job(run_fn fn) noexcept : fn_(fn) {}
  job(const job&) = delete;
  job& operator=(const job&) = delete;

  // Runs the payload, then publishes completion. The release store is the
  // last access to *this: once a joiner observes done, the frame that owns
  // this job may unwind.
  void execute() {
    fn_(this);
    done_.store(true, std::memory_order_release);
  }

  bool is_done() const noexcept {
    return done_.load(std::memory_order_acquire);
  }

  // Relaxed peek for spin loops: callers must issue an acquire fence (or an
  // is_done() re-load) after observing true and before touching anything
  // the task wrote. Lets the join loop pay its acquire once, on exit,
  // instead of on every iteration.
  bool is_done_relaxed() const noexcept {
    return done_.load(std::memory_order_relaxed);
  }

 private:
  run_fn fn_;
  std::atomic<bool> done_{false};
};

// Wraps a callable (typically a lambda capturing by reference) as a job.
template <typename F>
class lambda_job : public job {
 public:
  static_assert(std::is_invocable_v<F&>);

  explicit lambda_job(F& f) noexcept : job(&invoke), f_(f) {}

 private:
  static void invoke(job* base) {
    static_cast<lambda_job*>(base)->f_();
  }
  F& f_;
};

}  // namespace lcws
