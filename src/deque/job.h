// The unit of scheduling: a type-erased, stack-allocatable job.
//
// Following Parlay's design, a fork allocates the forked branch as a
// `lambda_job` on the forking function's stack frame, pushes a pointer to it
// onto the worker's deque, and on join waits for `done`. The job object
// outlives every access because the forker cannot return before observing
// done == true.
//
// Exception contract: a job's payload may throw. The wrapper captures the
// exception into the job (`std::exception_ptr`) *before* completion is
// published, so the thread that executes a stolen task never unwinds the
// scheduler's loop — the exception travels through the job object and
// rethrows on the joining (spawning) side. The capture lives in
// lambda_job::invoke, not job::execute, so payloads that are provably
// noexcept compile with no try/catch at all and execute() itself can stay
// on the signal-safe noexcept paths.
#pragma once

#include <atomic>
#include <exception>
#include <type_traits>
#include <utility>

namespace lcws {

class job {
 public:
  using run_fn = void (*)(job*);

  explicit job(run_fn fn) noexcept : fn_(fn) {}
  job(const job&) = delete;
  job& operator=(const job&) = delete;

  // Runs the payload, then publishes completion. The release store is the
  // last access to *this: once a joiner observes done, the frame that owns
  // this job may unwind. Payload exceptions are captured by the wrapper
  // (set_exception) before this store, so they are visible to any thread
  // that acquire-observed done.
  void execute() {
    run_payload();
    publish_done();
  }

  // Split form of execute() for callers that must interleave their own
  // bookkeeping between the payload and the completion publication (the
  // scheduler clears its §11 current-job record *before* done is visible,
  // so a crash detector that reads a non-null record knows the joiner is
  // still waiting). publish_done() must follow run_payload() exactly once.
  void run_payload() { fn_(this); }
  void publish_done() noexcept { done_.store(true, std::memory_order_release); }

  bool is_done() const noexcept {
    return done_.load(std::memory_order_acquire);
  }

  // Relaxed peek for spin loops: callers must issue an acquire fence (or an
  // is_done() re-load) after observing true and before touching anything
  // the task wrote. Lets the join loop pay its acquire once, on exit,
  // instead of on every iteration.
  bool is_done_relaxed() const noexcept {
    return done_.load(std::memory_order_relaxed);
  }

  // Records the payload's in-flight exception. Called on the executing
  // thread, from inside fn_, strictly before execute() publishes done —
  // which is what makes the plain (non-atomic) eptr_ safely readable by
  // the joiner afterwards.
  void set_exception(std::exception_ptr e) noexcept { eptr_ = std::move(e); }

  // Joiner side; only meaningful after is_done() returned true.
  bool has_exception() const noexcept { return eptr_ != nullptr; }

  // Rethrows the captured exception at the join point, if any.
  void rethrow_if_exception() {
    if (eptr_ != nullptr) std::rethrow_exception(eptr_);
  }

  // Worker-loss repair (DESIGN.md §11): completes this job *without*
  // running its payload, publishing `e` for the joiner to rethrow. Called
  // by the recovery protocol on a job whose executing worker died mid-task
  // — and only after the pool has quiesced long enough that no live worker
  // can still be executing any of the job's descendants (the joiner's
  // frame unwinds the moment done is observed, so an early completion
  // would be a use-after-free of everything below it). Same
  // write-exception-then-release-done ordering as the normal path.
  void complete_abandoned(std::exception_ptr e) noexcept {
    eptr_ = std::move(e);
    done_.store(true, std::memory_order_release);
  }

 private:
  run_fn fn_;
  std::atomic<bool> done_{false};
  std::exception_ptr eptr_;  // written pre-done_ by the executor only
};

// Wraps a callable (typically a lambda capturing by reference) as a job.
template <typename F>
class lambda_job : public job {
 public:
  static_assert(std::is_invocable_v<F&>);

  explicit lambda_job(F& f) noexcept : job(&invoke), f_(f) {}

 private:
  static void invoke(job* base) {
    auto* self = static_cast<lambda_job*>(base);
    if constexpr (std::is_nothrow_invocable_v<F&>) {
      self->f_();
    } else {
      try {
        self->f_();
      } catch (...) {
        base->set_exception(std::current_exception());
      }
    }
  }
  F& f_;
};

}  // namespace lcws
