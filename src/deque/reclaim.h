// Quiescence-based reclamation for growable deque storage.
//
// When an owner deque outgrows its slot array it publishes a larger copy
// and must eventually free the old one — but a thief may still be inside
// pop_top holding a pointer to the old array, so freeing needs a grace
// period. Classic epoch/hazard schemes put a fence or RMW on the *reader*
// side, which would betray this library's whole point (the paper's owner
// fast path is fence- and CAS-free, and the thief path pays exactly one
// CAS). This domain shifts all expensive synchronization to the retiring
// owner's slow path:
//
//   * Readers (thieves) call quiesce() at moments when they provably hold
//     no deque buffer pointer — the scheduler does it once per
//     find-task round. quiesce() is one acquire load of the global epoch
//     plus one release store to the reader's own cache-aligned slot: no
//     fence, no CAS, no RMW, and it never touches the deques themselves.
//   * A retiring owner first publishes the replacement buffer (release
//     store inside the deque), then takes a retire token by bumping the
//     global epoch (acq_rel RMW — growth is already a slow path). The old
//     buffer may be freed once every registered reader's slot has reached
//     the token.
//
// Why this is sound (both directions are plain release/acquire chains, so
// TSan can verify them — no fence modeling needed):
//
//   backward: any access a reader made through the *old* buffer is
//     program-ordered before its next quiesce(), whose release store the
//     collecting owner acquire-reads in passed(); hence every such access
//     happens-before the free.
//   forward: a reader whose slot holds a value >= the token acquire-read
//     the global epoch after the owner's acq_rel bump, which is
//     program-ordered after the release publication of the replacement
//     buffer; hence the reader's subsequent buffer loads can no longer
//     observe the retired pointer.
//
// Readers that stop quiescing (parked, stuck in a long task, or exited)
// merely *delay* reclamation — never compromise it. Storage retired while
// a reader is silent stays on the owner's retired list; geometric doubling
// bounds that list's total footprint by one current-buffer's worth, and
// the deque destructor frees whatever is left. A deque constructed without
// a domain never frees early at all (destructor-only reclamation): that is
// the safe default for standalone use where thief threads are unknown.
//
// Contract: every thread that may call pop_top on a growth-enabled deque
// must be registered with the deque's domain *before the first growth can
// occur* (the scheduler registers all workers at construction, before any
// run()). Registration is not designed for mid-retirement arrival.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

#include "support/align.h"

namespace lcws {

class reclaim_domain {
 public:
  // Generous ceiling on registered readers (worker pools are far smaller);
  // the slot array is 16 KiB per domain, one domain per scheduler.
  static constexpr std::size_t max_readers = 256;
  static constexpr std::size_t invalid_reader = ~std::size_t{0};

  reclaim_domain() = default;
  reclaim_domain(const reclaim_domain&) = delete;
  reclaim_domain& operator=(const reclaim_domain&) = delete;

  // Registers the calling context as a reader and returns its id. Returns
  // invalid_reader when the table is full; the domain then refuses to pass
  // any token (early reclamation stops — deques fall back to freeing at
  // destruction), because an untracked reader could never be waited on.
  std::size_t register_reader() noexcept {
    const std::size_t id = nreaders_.fetch_add(1, std::memory_order_acq_rel);
    if (id >= max_readers) {
      overflowed_.store(true, std::memory_order_release);
      return invalid_reader;
    }
    return id;
  }

  // Reader-side announcement: "I hold no deque buffer pointer right now,
  // and anything I read before this point is done." One acquire load + one
  // release store to this reader's own slot — no fence, no CAS. Safe to
  // call as often as desired; the scheduler calls it once per find-task
  // round and before parking.
  void quiesce(std::size_t id) noexcept {
    if (id >= max_readers) return;
    slots_[id].epoch.store(epoch_.load(std::memory_order_acquire),
                           std::memory_order_release);
  }

  // Owner-side: draws a retire token for storage whose replacement has
  // already been published. Called on the growth slow path only.
  std::uint64_t retire_token() noexcept {
    return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  // Owner-side: true once every registered reader has quiesced at or past
  // `token` — the matching storage can no longer be reached.
  bool passed(std::uint64_t token) const noexcept {
    if (overflowed_.load(std::memory_order_acquire)) return false;
    const std::size_t n = nreaders_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n && i < max_readers; ++i) {
      if (slots_[i].epoch.load(std::memory_order_acquire) < token) {
        return false;
      }
    }
    return true;
  }

  std::size_t reader_count() const noexcept {
    const std::size_t n = nreaders_.load(std::memory_order_acquire);
    return n < max_readers ? n : max_readers;
  }

 private:
  struct alignas(cache_line_size) reader_slot {
    // Starts at 0 (< any token), so a fresh reader conservatively blocks
    // reclamation until its first quiesce().
    std::atomic<std::uint64_t> epoch{0};
  };

  // Epoch starts at 1 so token 1 (first retirement) is unreachable by the
  // initial slot value 0 until the reader has genuinely quiesced after it.
  alignas(cache_line_size) std::atomic<std::uint64_t> epoch_{1};
  std::atomic<std::size_t> nreaders_{0};
  std::atomic<bool> overflowed_{false};
  reader_slot slots_[max_readers];
};

// Growable slot storage shared by the three owner deques: a header plus a
// trailing array of atomic task-pointer slots, so the owner fast path pays
// exactly one dependent load (buffer pointer -> slot) over the old inline
// std::vector — still zero fences, zero CAS.
template <typename T>
struct deque_buffer {
  const std::size_t size;            // slot count (immutable)
  deque_buffer* retired_next{nullptr};  // owner-only intrusive retired list
  std::uint64_t retire_token{0};        // reclaim_domain token at retirement

  std::atomic<T*>* slots() noexcept {
    return reinterpret_cast<std::atomic<T*>*>(this + 1);
  }

  static deque_buffer* create(std::size_t n) {
    static_assert(alignof(std::atomic<T*>) <= alignof(std::max_align_t),
                  "trailing slot array relies on default new alignment");
    static_assert(sizeof(deque_buffer) % alignof(std::atomic<T*>) == 0,
                  "trailing slot array must start aligned");
    void* mem =
        ::operator new(sizeof(deque_buffer) + n * sizeof(std::atomic<T*>));
    auto* b = new (mem) deque_buffer(n);
    auto* s = b->slots();
    for (std::size_t i = 0; i < n; ++i) new (s + i) std::atomic<T*>(nullptr);
    return b;
  }

  static void destroy(deque_buffer* b) noexcept {
    // std::atomic<T*> is trivially destructible; tear down the header and
    // release the single allocation.
    b->~deque_buffer();
    ::operator delete(static_cast<void*>(b));
  }

 private:
  explicit deque_buffer(std::size_t n) noexcept : size(n) {}
};

}  // namespace lcws
