// Fully fence-free work stealing with multiplicity (the paper's "WS-mult"
// endpoint, after Castañeda & Piña, "Fully Read/Write Fence-Free
// Work-Stealing with Multiplicity" — see PAPERS.md and DESIGN.md §9).
//
// Every deque in this library so far pays for exactly-once extraction with
// synchronization on the hot path: the ABP baseline fences in push/pop and
// CASes in pop_top; the split deques fence per exposure round and CAS per
// steal. This deque pays *nothing* there: owner push_bottom/pop_bottom and
// thief pop_top are fence-free AND CAS-free. The price is relaxed
// semantics — two extractors may pick up the same index (multiplicity) —
// which is made safe by a claim that guarantees a twice-extracted task
// still *runs* exactly once:
//
//   The claim word IS the slot. Extraction (owner or thief) is a single
//   `exchange` of the slot to a claimed sentinel. Whoever reads back the
//   task pointer owns it; everyone else reads the sentinel and treats the
//   extraction as empty. Three designs were rejected to get here:
//     * a claimed_ flag on `job` — memory-unsafe: a slow thief can hold a
//       stale job pointer after the claimed winner ran the job, the join
//       completed, and the spawn frame (which owns the job) unwound; its
//       exchange would touch freed stack. The claim must be resolved
//       *before* dereferencing the task pointer, in deque-owned storage.
//     * a claim array inside the growable buffer — the growth prefix-copy
//       races concurrent claim RMWs and can lose a claim (two winners).
//       Fused into the slot, growth copies BY exchanging the sentinel into
//       the old slot, so the per-slot RMW total order arbitrates between
//       the copier and any concurrent extractor (exactly one sees the
//       task).
//     * a never-reset side chunk table — reclaiming it needs the same
//       grace periods as the buffers; fusing claim and slot gets the
//       reclamation for free from deque/reclaim.h.
//
// Index protocol (all plain loads/stores, no RMW except the slot claim):
//   * push_bottom: release-store task into slots[bot], release-store
//     bot+1. No fence (the ABP baseline fences here).
//   * pop_bottom: walk bot downward; each visited index is claimed with
//     one slot exchange. A lost claim (a thief got there) just continues
//     the walk — each index is visited at most once by the owner, so the
//     walk is amortized O(1) per push. No fence, no CAS (the baseline
//     pays a Dekker fence plus a last-task CAS here).
//   * pop_top: read top (relaxed) and bot (acquire); if top < bot, claim
//     slots[top] with one exchange and plain-store top+1. No CAS — two
//     thieves can both read the same top and both store top+1; the slot
//     exchange picks the single winner and the loser advances top anyway
//     (healing), counting a claims_lost/dup_extraction.
//
// Why arbitrary staleness is safe: thieves read top/bot relaxed/acquire
// and may act on values from any point in the past (there is no CAS to
// invalidate a stale snapshot). Every consequence funnels into the slot
// exchange, and RMWs are required to read the *latest* value in the
// slot's modification order — so a stale extractor can only (a) lose
// against the sentinel, (b) read nullptr from a never-pushed slot
// (reported as an aborted steal; the sentinel it left behind is simply
// overwritten by the owner's next push to that index), or (c) win a live
// task that the current window legitimately offers — never touch freed
// memory and never duplicate an execution. Stale top stores can regress
// or overshoot top (the paper's "backwards top" anomaly); both are
// liveness noise that the owner repairs by zeroing top when it drains the
// deque, never safety: claimed slots make re-offered indices inert.
//
// Memory-ordering sketch (pure release/acquire — TSan-verifiable):
//   payload visibility: the owner's slot store is a release; a winning
//     exchange is an acquire that reads-from it (directly, or through the
//     release-chain of a growth copy), so the job payload written before
//     push_bottom happens-before the winner's execution.
//   buffer lifetime: identical to the other growable deques — thieves
//     load buf after their acquire of bot, growth release-publishes the
//     replacement, and retired buffers are freed through reclaim_domain's
//     grace period (DESIGN.md §8). A stale in-flight thief bounds-checks
//     its index against the buffer it actually holds.
//
// Counters: the identity `steals == useful_steals + claims_lost` holds
// for the thief side (a "steal" is any claim arbitration on an index the
// thief's snapshot said was occupied); the exactly-once balance becomes
// `pushes == pops_private + useful_steals`.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "deque/deque_common.h"
#include "deque/reclaim.h"
#include "stats/counters.h"
#include "stats/trace.h"
#include "support/align.h"
#include "support/fault_injection.h"

namespace lcws {

template <typename T>
class wsmult_deque {
  using buffer_t = deque_buffer<T>;

 public:
  explicit wsmult_deque(std::size_t capacity = default_deque_capacity,
                        reclaim_domain* domain = nullptr,
                        deque_growth growth = deque_growth::from_env())
      : buf_(buffer_t::create(capacity == 0 ? 1 : capacity)),
        domain_(domain),
        growth_(growth),
        capacity_(capacity == 0 ? 1 : capacity) {}

  wsmult_deque(const wsmult_deque&) = delete;
  wsmult_deque& operator=(const wsmult_deque&) = delete;

  ~wsmult_deque() {
    buffer_t* r = retired_;
    while (r != nullptr) {
      buffer_t* next = r->retired_next;
      buffer_t::destroy(r);
      r = next;
    }
    buffer_t::destroy(buf_.load(std::memory_order_relaxed));
  }

  std::size_t capacity() const noexcept {
    return capacity_.load(std::memory_order_relaxed);
  }

  // Owner only. Fence-free, CAS-free.
  void push_bottom(T* task) {
    const auto b = bot_.load(std::memory_order_relaxed);
    buffer_t* buf = buf_.load(std::memory_order_relaxed);
    if (static_cast<std::size_t>(b) >= buf->size) [[unlikely]] {
      buf = grow(buf, b);
    }
    // Release: a thief whose claim exchange reads this pointer — even one
    // that reached the slot through a stale index before bot is bumped —
    // must see the job payload written before the push.
    buf->slots()[static_cast<std::size_t>(b)].store(
        task, std::memory_order_release);
    bot_.store(b + 1, std::memory_order_release);
    if (b + 1 > hwm_.load(std::memory_order_relaxed)) [[unlikely]] {
      hwm_.store(b + 1, std::memory_order_relaxed);
      stats::count_deque_hwm(static_cast<std::uint64_t>(b + 1));
    }
    stats::count_push();
  }

  // Owner only. Fence-free, CAS-free; one slot exchange per index visited
  // (each index at most once ever). Returns nullptr when drained.
  T* pop_bottom() {
    auto b = bot_.load(std::memory_order_relaxed);
    buffer_t* buf = buf_.load(std::memory_order_relaxed);
    while (b > 0) {
      --b;
      bot_.store(b, std::memory_order_relaxed);
      if (fi::inject(fi::site::wsmult_dup)) grow_race_pause();
      T* task = buf->slots()[static_cast<std::size_t>(b)].exchange(
          claimed(), std::memory_order_acq_rel);
      if (task != claimed() && task != nullptr) {
        stats::count_pop_private();
        if (retired_ != nullptr) collect();
        return task;
      }
      // A thief claimed this index first (its top store may still be in
      // flight — that is the multiplicity window). Keep walking down.
      stats::count_dup_extraction();
    }
    drain_reset();
    if (retired_ != nullptr) collect();
    return nullptr;
  }

  // Thieves. Fence-free, CAS-free: one slot exchange decides ownership.
  steal_result<T> pop_top() {
    stats::count_steal_attempt();
    const auto t = top_.load(std::memory_order_relaxed);
    const auto b = bot_.load(std::memory_order_acquire);
    if (t >= b || t < 0) {
      return {steal_status::empty, nullptr};
    }
    buffer_t* buf = buf_.load(std::memory_order_acquire);
    if (static_cast<std::size_t>(t) >= buf->size) [[unlikely]] {
      // Mutually stale index/buffer snapshot; fail the attempt rather
      // than read out of bounds.
      stats::count_steal_abort();
      return {steal_status::aborted, nullptr};
    }
    // Fault site: stall between snapshot and claim, and (on the winning
    // path) suppress the top advancement — modelling the stalled thief
    // whose top store is delayed indefinitely, which forces the next
    // extractor onto the same index so duplicate extraction actually
    // happens and the claim must resolve it.
    const bool stall = fi::inject(fi::site::wsmult_dup);
    if (stall) grow_race_pause();
    T* task = buf->slots()[static_cast<std::size_t>(t)].exchange(
        claimed(), std::memory_order_acq_rel);
    if (task == nullptr) {
      // Never-pushed slot: only reachable through a stale bot from a
      // previous generation. The sentinel we left is overwritten by the
      // owner's next push to this index; do not touch top (our index may
      // be far beyond the live window).
      stats::count_steal_abort();
      return {steal_status::aborted, nullptr};
    }
    if (task != claimed()) {
      if (!stall) top_.store(t + 1, std::memory_order_relaxed);
      stats::count_steal_success();
      stats::count_useful_steal();
      return {steal_status::stolen, task};
    }
    // Duplicate extraction: someone else claimed this index. Advance top
    // past the dead index regardless (healing the stalled winner's
    // missing store) and report an unsuccessful claim.
    top_.store(t + 1, std::memory_order_relaxed);
    stats::count_steal_success();
    stats::count_claim_lost();
    stats::count_dup_extraction();
    return {steal_status::aborted, nullptr};
  }

  // Racy size estimate (harness/diagnostics only). top can legitimately
  // run ahead of bot (stale heals), hence the clamp.
  std::int64_t size_estimate() const noexcept {
    const auto b = bot_.load(std::memory_order_relaxed);
    const auto t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

  bool empty_estimate() const noexcept { return size_estimate() == 0; }

  std::uint64_t grow_count() const noexcept {
    return grows_.load(std::memory_order_relaxed);
  }

  std::int64_t high_water_mark() const noexcept {
    return hwm_.load(std::memory_order_relaxed);
  }

  std::uint64_t retired_buffers() const noexcept {
    return retired_count_.load(std::memory_order_relaxed);
  }

  std::uint64_t reset_count() const noexcept {
    return resets_.load(std::memory_order_relaxed);
  }

  // Racy one-line snapshot for watchdog/post-mortem dumps.
  std::string debug_string() const {
    return "top=" + std::to_string(top_.load(std::memory_order_relaxed)) +
           " bot=" + std::to_string(bot_.load(std::memory_order_relaxed)) +
           " cap=" + std::to_string(capacity()) +
           " hwm=" + std::to_string(high_water_mark()) +
           " grows=" + std::to_string(grow_count()) +
           " resets=" + std::to_string(reset_count()) +
           " retired=" + std::to_string(retired_buffers());
  }

 private:
  // Claimed-slot sentinel: distinct from every real task pointer and from
  // the never-pushed nullptr.
  static T* claimed() noexcept {
    return reinterpret_cast<T*>(std::uintptr_t{1});
  }

  [[noreturn]] void overflow(std::size_t cap) const {
    throw deque_overflow_error("wsmult_deque", cap, growth_.soft_cap);
  }

  buffer_t* grow(buffer_t* old, std::int64_t b) {
    if (growth_.fixed) overflow(old->size);
    collect();
    std::size_t nsize = old->size * 2;
    while (nsize <= static_cast<std::size_t>(b)) nsize *= 2;
    buffer_t* nb = buffer_t::create(nsize);
    auto* src = old->slots();
    auto* dst = nb->slots();
    for (std::int64_t i = 0; i < b; ++i) {
      // The copy claims the old slot as it reads it: a concurrent thief
      // exchange on old storage either beat this RMW (we copy the
      // sentinel it left) or follows it (it reads the sentinel we left) —
      // the slot's modification order guarantees exactly one side ever
      // sees the task. The release store keeps the payload-visibility
      // chain intact for a winner claiming through the new buffer.
      dst[i].store(src[i].exchange(claimed(), std::memory_order_acq_rel),
                   std::memory_order_release);
    }
    if (fi::inject(fi::site::deque_grow)) grow_race_pause();
    buf_.store(nb, std::memory_order_release);
    capacity_.store(nsize, std::memory_order_relaxed);
    retire(old);
    grows_.store(grows_.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
    stats::count_deque_grow();
    trace::emit(trace::event::deque_grow, nsize);
    return nb;
  }

  // Owner, on finding the deque drained: wind the window back to index 0
  // so storage demand tracks the high-water mark instead of total tasks
  // ever pushed. Always safe — a straggling thief acting on pre-reset
  // indices only ever meets claimed slots (inert) or the next
  // generation's live window (a legitimate steal); the worst a stale
  // top store can do is hide the window until bot outgrows it or the
  // next drain re-zeros top.
  void drain_reset() noexcept {
    if (top_.load(std::memory_order_relaxed) == 0) return;
    top_.store(0, std::memory_order_relaxed);
    resets_.store(resets_.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
  }

  void retire(buffer_t* old) noexcept {
    old->retire_token = domain_ != nullptr ? domain_->retire_token() : 0;
    old->retired_next = retired_;
    retired_ = old;
    retired_count_.store(
        retired_count_.load(std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
  }

  void collect() noexcept {
    if (domain_ == nullptr) return;
    buffer_t** link = &retired_;
    while (*link != nullptr) {
      buffer_t* r = *link;
      if (domain_->passed(r->retire_token)) {
        *link = r->retired_next;
        buffer_t::destroy(r);
        retired_count_.store(
            retired_count_.load(std::memory_order_relaxed) - 1,
            std::memory_order_relaxed);
      } else {
        link = &r->retired_next;
      }
    }
  }

  alignas(cache_line_size) std::atomic<std::int64_t> bot_{0};
  alignas(cache_line_size) std::atomic<std::int64_t> top_{0};
  alignas(cache_line_size) std::atomic<buffer_t*> buf_;
  reclaim_domain* const domain_;
  const deque_growth growth_;
  buffer_t* retired_ = nullptr;  // owner-only intrusive list
  std::atomic<std::int64_t> hwm_{0};
  std::atomic<std::uint64_t> grows_{0};
  std::atomic<std::size_t> capacity_;  // shadow of buf_->size for dumps
  std::atomic<std::uint64_t> retired_count_{0};
  std::atomic<std::uint64_t> resets_{0};
};

}  // namespace lcws
