// Chase–Lev circular work-stealing deque (SPAA '05), bounded variant.
//
// Included as a second fully-concurrent baseline for the ablation
// microbenches (bench/micro_deque): it has the same owner-side fence cost
// as the ABP deque — one seq_cst fence in take() — but uses monotonically
// increasing 64-bit indices instead of an age/tag word, so it needs no ABA
// tag and the top CAS can fail only against a genuinely concurrent steal.
//
// Index convention follows the original paper: top is the steal end,
// bottom the owner end; the buffer is circular so indices never reset.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "deque/deque_common.h"
#include "stats/counters.h"
#include "support/align.h"

namespace lcws {

template <typename T>
class chase_lev_deque {
 public:
  explicit chase_lev_deque(std::size_t capacity = default_deque_capacity)
      : mask_(next_pow2(capacity) - 1), slots_(next_pow2(capacity)) {}

  chase_lev_deque(const chase_lev_deque&) = delete;
  chase_lev_deque& operator=(const chase_lev_deque&) = delete;

  std::size_t capacity() const noexcept { return slots_.size(); }

  // Owner only.
  void push_bottom(T* task) {
    const auto b = bottom_.load(std::memory_order_relaxed);
    const auto t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(slots_.size())) overflow();
    slots_[static_cast<std::size_t>(b) & mask_].store(
        task, std::memory_order_relaxed);
    // Publish the slot before the new bottom becomes visible to thieves.
    bottom_.store(b + 1, std::memory_order_release);
    stats::count_push();
  }

  // Owner only.
  T* pop_bottom() {
    const auto b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    stats::count_fence();
    auto t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Deque was already empty; undo.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T* task =
        slots_[static_cast<std::size_t>(b) & mask_].load(
            std::memory_order_relaxed);
    if (t < b) {
      stats::count_pop_private();
      return task;  // More than one task: no race possible.
    }
    // Last task: race thieves by advancing top ourselves.
    const bool won = top_.compare_exchange_strong(
        t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
    stats::count_cas(won);
    bottom_.store(b + 1, std::memory_order_relaxed);
    if (won) {
      stats::count_pop_private();
      return task;
    }
    return nullptr;
  }

  // Thieves.
  steal_result<T> pop_top() {
    stats::count_steal_attempt();
    auto t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    stats::count_fence();
    const auto b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return {steal_status::empty, nullptr};
    T* task = slots_[static_cast<std::size_t>(t) & mask_].load(
        std::memory_order_relaxed);
    const bool won = top_.compare_exchange_strong(
        t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
    stats::count_cas(won);
    if (won) {
      stats::count_steal_success();
      return {steal_status::stolen, task};
    }
    stats::count_steal_abort();
    return {steal_status::aborted, nullptr};
  }

  std::int64_t size_estimate() const noexcept {
    const auto b = bottom_.load(std::memory_order_relaxed);
    const auto t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

 private:
  [[noreturn]] void overflow() const {
    std::fprintf(stderr, "lcws: chase_lev_deque overflow (capacity %zu)\n",
                 slots_.size());
    std::abort();
  }

  alignas(cache_line_size) std::atomic<std::int64_t> top_{0};
  alignas(cache_line_size) std::atomic<std::int64_t> bottom_{0};
  const std::size_t mask_;
  std::vector<std::atomic<T*>> slots_;
};

}  // namespace lcws
