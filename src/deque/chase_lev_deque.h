// Chase–Lev circular work-stealing deque (SPAA '05), growable variant.
//
// Included as a second fully-concurrent baseline for the ablation
// microbenches (bench/micro_deque): it has the same owner-side fence cost
// as the ABP deque — one seq_cst fence in take() — but uses monotonically
// increasing 64-bit indices instead of an age/tag word, so it needs no ABA
// tag and the top CAS can fail only against a genuinely concurrent steal.
//
// Index convention follows the original paper: top is the steal end,
// bottom the owner end; the buffer is circular so indices never reset.
//
// Growth is the classic Chase–Lev doubling (their Section 3 "growable"
// variant), fitted to this library's reclamation scheme (DESIGN.md §8):
// each power-of-two buffer carries its own mask, the owner copies the
// live logical range [top, bottom) into a doubled buffer, release-stores
// the buffer pointer, and retires the old storage through the
// reclaim_domain. Thieves load the buffer pointer after their acquire of
// bottom, whose release store is sequenced after any growth covering the
// range they index; a steal that raced a growth past its top value is
// rejected by the top CAS before the task pointer is ever dereferenced.
// Because the indices are monotone the owner's stores to bottom that
// *raise* it (the undo/restore stores in pop_bottom) are release — they
// are publication points for the slot range thieves may index.
//
// The historical hard abort() on overflow is gone: under LCWS_DEQUE_FIXED
// the overflowing push throws deque_overflow_error like the other deques;
// by default it grows.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "deque/deque_common.h"
#include "deque/reclaim.h"
#include "stats/counters.h"
#include "stats/trace.h"
#include "support/align.h"
#include "support/fault_injection.h"

namespace lcws {

template <typename T>
class chase_lev_deque {
  using buffer_t = deque_buffer<T>;

 public:
  explicit chase_lev_deque(std::size_t capacity = default_deque_capacity,
                           reclaim_domain* domain = nullptr,
                           deque_growth growth = deque_growth::from_env())
      : buf_(buffer_t::create(next_pow2(capacity == 0 ? 1 : capacity))),
        domain_(domain),
        growth_(growth),
        capacity_(next_pow2(capacity == 0 ? 1 : capacity)) {}

  chase_lev_deque(const chase_lev_deque&) = delete;
  chase_lev_deque& operator=(const chase_lev_deque&) = delete;

  ~chase_lev_deque() {
    buffer_t* r = retired_;
    while (r != nullptr) {
      buffer_t* next = r->retired_next;
      buffer_t::destroy(r);
      r = next;
    }
    buffer_t::destroy(buf_.load(std::memory_order_relaxed));
  }

  std::size_t capacity() const noexcept {
    return capacity_.load(std::memory_order_relaxed);
  }

  // Owner only.
  void push_bottom(T* task) {
    const auto b = bottom_.load(std::memory_order_relaxed);
    const auto t = top_.load(std::memory_order_acquire);
    buffer_t* buf = buf_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(buf->size)) [[unlikely]] {
      buf = grow(buf, t, b);
    }
    buf->slots()[static_cast<std::size_t>(b) & (buf->size - 1)].store(
        task, std::memory_order_relaxed);
    // Publish the slot before the new bottom becomes visible to thieves.
    bottom_.store(b + 1, std::memory_order_release);
    if (b + 1 - t > hwm_.load(std::memory_order_relaxed)) [[unlikely]] {
      hwm_.store(b + 1 - t, std::memory_order_relaxed);
      stats::count_deque_hwm(static_cast<std::uint64_t>(b + 1 - t));
    }
    stats::count_push();
  }

  // Owner only.
  T* pop_bottom() {
    const auto b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    stats::count_fence();
    auto t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Deque was already empty; undo. Release: this store raises the
      // bound thieves index by, so it must publish the (unchanged) slots.
      bottom_.store(b + 1, std::memory_order_release);
      if (retired_ != nullptr) collect();
      return nullptr;
    }
    buffer_t* buf = buf_.load(std::memory_order_relaxed);
    T* task =
        buf->slots()[static_cast<std::size_t>(b) & (buf->size - 1)].load(
            std::memory_order_relaxed);
    if (t < b) {
      stats::count_pop_private();
      return task;  // More than one task: no race possible.
    }
    // Last task: race thieves by advancing top ourselves.
    const bool won = top_.compare_exchange_strong(
        t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
    stats::count_cas(won);
    bottom_.store(b + 1, std::memory_order_release);
    if (retired_ != nullptr) collect();
    if (won) {
      stats::count_pop_private();
      return task;
    }
    return nullptr;
  }

  // Thieves. The buffer pointer is loaded after the acquire of bottom: the
  // release store that raised bottom past t is sequenced after any growth
  // covering logical index t, so the buffer read here maps t correctly —
  // and if top has since moved past t (its slot possibly recycled), the
  // CAS rejects the steal before the task pointer is used.
  steal_result<T> pop_top() {
    stats::count_steal_attempt();
    auto t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    stats::count_fence();
    const auto b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return {steal_status::empty, nullptr};
    buffer_t* buf = buf_.load(std::memory_order_acquire);
    T* task =
        buf->slots()[static_cast<std::size_t>(t) & (buf->size - 1)].load(
            std::memory_order_relaxed);
    const bool won = top_.compare_exchange_strong(
        t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
    stats::count_cas(won);
    if (won) {
      stats::count_steal_success();
      return {steal_status::stolen, task};
    }
    stats::count_steal_abort();
    return {steal_status::aborted, nullptr};
  }

  std::int64_t size_estimate() const noexcept {
    const auto b = bottom_.load(std::memory_order_relaxed);
    const auto t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

  std::uint64_t grow_count() const noexcept {
    return grows_.load(std::memory_order_relaxed);
  }

  std::int64_t high_water_mark() const noexcept {
    return hwm_.load(std::memory_order_relaxed);
  }

  std::uint64_t retired_buffers() const noexcept {
    return retired_count_.load(std::memory_order_relaxed);
  }

  // Racy one-line snapshot for watchdog/post-mortem dumps (capacity comes
  // from a shadow word so the dump never dereferences the buffer).
  std::string debug_string() const {
    return "top=" + std::to_string(top_.load(std::memory_order_relaxed)) +
           " bottom=" +
           std::to_string(bottom_.load(std::memory_order_relaxed)) +
           " cap=" + std::to_string(capacity()) +
           " hwm=" + std::to_string(high_water_mark()) +
           " grows=" + std::to_string(grow_count()) +
           " retired=" + std::to_string(retired_buffers());
  }

 private:
  [[noreturn]] void overflow(std::size_t cap) const {
    throw deque_overflow_error("chase_lev_deque", cap, growth_.soft_cap);
  }

  // Classic Chase–Lev doubling: remap the live logical range [t, b) from
  // the old mask to the new one. Owner thread only.
  buffer_t* grow(buffer_t* old, std::int64_t t, std::int64_t b) {
    if (growth_.fixed) overflow(old->size);
    collect();
    const std::size_t nsize = old->size * 2;
    buffer_t* nb = buffer_t::create(nsize);
    auto* src = old->slots();
    auto* dst = nb->slots();
    const std::size_t omask = old->size - 1;
    const std::size_t nmask = nsize - 1;
    for (std::int64_t i = t; i < b; ++i) {
      dst[static_cast<std::size_t>(i) & nmask].store(
          src[static_cast<std::size_t>(i) & omask].load(
              std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    if (fi::inject(fi::site::deque_grow)) grow_race_pause();
    buf_.store(nb, std::memory_order_release);
    capacity_.store(nsize, std::memory_order_relaxed);
    retire(old);
    grows_.store(grows_.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
    stats::count_deque_grow();
    trace::emit(trace::event::deque_grow, nsize);
    return nb;
  }

  void retire(buffer_t* old) noexcept {
    old->retire_token = domain_ != nullptr ? domain_->retire_token() : 0;
    old->retired_next = retired_;
    retired_ = old;
    retired_count_.store(
        retired_count_.load(std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
  }

  void collect() noexcept {
    if (domain_ == nullptr) return;
    buffer_t** link = &retired_;
    while (*link != nullptr) {
      buffer_t* r = *link;
      if (domain_->passed(r->retire_token)) {
        *link = r->retired_next;
        buffer_t::destroy(r);
        retired_count_.store(
            retired_count_.load(std::memory_order_relaxed) - 1,
            std::memory_order_relaxed);
      } else {
        link = &r->retired_next;
      }
    }
  }

  alignas(cache_line_size) std::atomic<std::int64_t> top_{0};
  alignas(cache_line_size) std::atomic<std::int64_t> bottom_{0};
  alignas(cache_line_size) std::atomic<buffer_t*> buf_;
  reclaim_domain* const domain_;
  const deque_growth growth_;
  buffer_t* retired_ = nullptr;  // owner-only intrusive list
  std::atomic<std::int64_t> hwm_{0};
  std::atomic<std::uint64_t> grows_{0};
  std::atomic<std::size_t> capacity_;  // shadow of buf_->size for dumps
  std::atomic<std::uint64_t> retired_count_{0};
};

}  // namespace lcws
