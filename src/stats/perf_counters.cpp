#include "stats/perf_counters.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace lcws::stats {

bool perf_env_enabled() noexcept {
  const char* v = std::getenv("LCWS_PERF");
  if (!v || !*v) return true;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0);
}

int perf_env_force_errno() noexcept {
  const char* v = std::getenv("LCWS_PERF_FORCE_FAIL");
  if (!v || !*v) return 0;
  if (std::strcmp(v, "EACCES") == 0) return EACCES;
  if (std::strcmp(v, "EPERM") == 0) return EPERM;
  if (std::strcmp(v, "ENOENT") == 0) return ENOENT;
  if (std::strcmp(v, "ENOSYS") == 0) return ENOSYS;
  const int n = std::atoi(v);
  return n > 0 ? n : EACCES;
}

const char* errno_name(int e) noexcept {
  switch (e) {
    case 0: return "OK";
    case EACCES: return "EACCES";
    case EPERM: return "EPERM";
    case ENOENT: return "ENOENT";
    case ENOSYS: return "ENOSYS";
    case ENODEV: return "ENODEV";
    case EINVAL: return "EINVAL";
    case EMFILE: return "EMFILE";
    case EBUSY: return "EBUSY";
    default: {
      static thread_local char buf[24];
      std::snprintf(buf, sizeof buf, "errno-%d", e);
      return buf;
    }
  }
}

#ifdef __linux__

namespace {

int open_event(std::uint32_t type, std::uint64_t config, int group_fd,
               bool leader) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = type;
  attr.size = sizeof attr;
  attr.config = config;
  attr.disabled = leader ? 1 : 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.inherit = 0;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  // pid=0, cpu=-1: this thread, any CPU it migrates to.
  return static_cast<int>(
      syscall(__NR_perf_event_open, &attr, 0, -1, group_fd, 0UL));
}

// Scales a raw group value for counter multiplexing.
std::uint64_t scale(std::uint64_t raw, std::uint64_t enabled,
                    std::uint64_t running) {
  if (running == 0) return 0;
  if (running >= enabled) return raw;
  return static_cast<std::uint64_t>(
      static_cast<double>(raw) * static_cast<double>(enabled) /
      static_cast<double>(running));
}

}  // namespace

bool perf_group::open(int force_errno) {
  close();
  error_ = 0;
  if (force_errno != 0) {
    error_ = force_errno;
    return false;
  }

  struct hw_event {
    std::uint64_t config;
  };
  static constexpr hw_event kFull[] = {{PERF_COUNT_HW_CPU_CYCLES},
                                       {PERF_COUNT_HW_INSTRUCTIONS},
                                       {PERF_COUNT_HW_CACHE_REFERENCES},
                                       {PERF_COUNT_HW_CACHE_MISSES}};
  // Tier 1: full group; tier 2: cycles + instructions only.
  for (int nev : {4, 2}) {
    int leader = -1;
    bool ok = true;
    for (int i = 0; i < nev; ++i) {
      const int fd = open_event(PERF_TYPE_HARDWARE, kFull[i].config, leader,
                                /*leader=*/i == 0);
      if (fd < 0) {
        if (i == 0) error_ = errno;
        ok = false;
        break;
      }
      if (i == 0) leader = fd;
    }
    if (ok) {
      group_fd_ = leader;
      nevents_ = nev;
      error_ = 0;
      ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
      ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
      break;
    }
    if (leader >= 0) {
      // Closing the leader tears down the partial group.
      ::close(leader);
      leader = -1;
    }
    if (error_ == 0) error_ = EINVAL;
  }

  // Task-clock is a software event; try it even when the PMU said no.
  clock_fd_ = open_event(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK, -1,
                         /*leader=*/true);
  if (clock_fd_ >= 0) {
    ioctl(clock_fd_, PERF_EVENT_IOC_RESET, 0);
    ioctl(clock_fd_, PERF_EVENT_IOC_ENABLE, 0);
  }
  return is_open();
}

void perf_group::close() noexcept {
  if (group_fd_ >= 0) {
    ioctl(group_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
    ::close(group_fd_);  // leader close releases the whole group
    group_fd_ = -1;
  }
  if (clock_fd_ >= 0) {
    ::close(clock_fd_);
    clock_fd_ = -1;
  }
  nevents_ = 0;
}

hw_values perf_group::read() const noexcept {
  hw_values v;
  if (group_fd_ >= 0) {
    // nr, time_enabled, time_running, values[nr]
    std::uint64_t buf[3 + 4] = {0};
    const ssize_t want =
        static_cast<ssize_t>((3 + nevents_) * sizeof(std::uint64_t));
    if (::read(group_fd_, buf, static_cast<std::size_t>(want)) == want &&
        buf[0] == static_cast<std::uint64_t>(nevents_)) {
      const std::uint64_t enabled = buf[1], running = buf[2];
      v.cycles = scale(buf[3], enabled, running);
      v.instructions = scale(buf[4], enabled, running);
      v.cpu_valid = true;
      if (nevents_ == 4) {
        v.cache_references = scale(buf[5], enabled, running);
        v.cache_misses = scale(buf[6], enabled, running);
        v.cache_valid = true;
      }
    }
  }
  if (clock_fd_ >= 0) {
    std::uint64_t buf[3 + 1] = {0};
    const ssize_t want = static_cast<ssize_t>(4 * sizeof(std::uint64_t));
    if (::read(clock_fd_, buf, static_cast<std::size_t>(want)) == want &&
        buf[0] == 1) {
      v.task_clock_ns = scale(buf[3], buf[1], buf[2]);
      v.clock_valid = true;
    }
  }
  return v;
}

#else  // !__linux__

bool perf_group::open(int force_errno) {
  close();
  error_ = force_errno != 0 ? force_errno : ENOSYS;
  return false;
}

void perf_group::close() noexcept {
  group_fd_ = -1;
  clock_fd_ = -1;
  nevents_ = 0;
}

hw_values perf_group::read() const noexcept { return {}; }

#endif

std::string perf_group::status() const {
  if (group_fd_ >= 0)
    return nevents_ == 4 ? "available" : "partial:no-cache-counters";
  if (clock_fd_ >= 0)
    return std::string("partial:task-clock-only:") + errno_name(error_);
  return std::string("unavailable:") + errno_name(error_);
}

}  // namespace lcws::stats
