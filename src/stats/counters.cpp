#include "stats/counters.h"

#include <sstream>

namespace lcws::stats {
namespace {
thread_local op_counters tl_fallback;
thread_local op_counters* tl_active = nullptr;
}  // namespace

op_counters& op_counters::operator+=(const op_counters& other) noexcept {
  fences += other.fences;
  cas += other.cas;
  cas_failed += other.cas_failed;
  pushes += other.pushes;
  pops_private += other.pops_private;
  pops_public += other.pops_public;
  steal_attempts += other.steal_attempts;
  steals += other.steals;
  steal_aborts += other.steal_aborts;
  useful_steals += other.useful_steals;
  claims_lost += other.claims_lost;
  dup_extractions += other.dup_extractions;
  steals_near += other.steals_near;
  steals_remote += other.steals_remote;
  for (std::size_t t = 0; t < kStealTierCount; ++t) {
    steals_by_tier[t] += other.steals_by_tier[t];
  }
  locality_explores += other.locality_explores;
  private_work_seen += other.private_work_seen;
  exposures += other.exposures;
  exposure_requests += other.exposure_requests;
  unexposures += other.unexposures;
  signals_sent += other.signals_sent;
  signals_failed += other.signals_failed;
  degrade_events += other.degrade_events;
  recover_events += other.recover_events;
  fallback_exposures += other.fallback_exposures;
  deque_grows += other.deque_grows;
  // High-water mark: aggregation takes the max across workers, not a sum.
  if (other.deque_hwm.get() > deque_hwm.get()) deque_hwm = other.deque_hwm;
  spawns_inline += other.spawns_inline;
  tasks_executed += other.tasks_executed;
  idle_loops += other.idle_loops;
  parks += other.parks;
  wakes += other.wakes;
  idle_ns += other.idle_ns;
  workers_lost += other.workers_lost;
  deques_adopted += other.deques_adopted;
  tasks_orphaned += other.tasks_orphaned;
  runs_cancelled += other.runs_cancelled;
  return *this;
}

op_counters operator-(op_counters a, const op_counters& b) noexcept {
  a.fences -= b.fences;
  a.cas -= b.cas;
  a.cas_failed -= b.cas_failed;
  a.pushes -= b.pushes;
  a.pops_private -= b.pops_private;
  a.pops_public -= b.pops_public;
  a.steal_attempts -= b.steal_attempts;
  a.steals -= b.steals;
  a.steal_aborts -= b.steal_aborts;
  a.useful_steals -= b.useful_steals;
  a.claims_lost -= b.claims_lost;
  a.dup_extractions -= b.dup_extractions;
  a.steals_near -= b.steals_near;
  a.steals_remote -= b.steals_remote;
  for (std::size_t t = 0; t < kStealTierCount; ++t) {
    a.steals_by_tier[t] -= b.steals_by_tier[t];
  }
  a.locality_explores -= b.locality_explores;
  a.private_work_seen -= b.private_work_seen;
  a.exposures -= b.exposures;
  a.exposure_requests -= b.exposure_requests;
  a.unexposures -= b.unexposures;
  a.signals_sent -= b.signals_sent;
  a.signals_failed -= b.signals_failed;
  a.degrade_events -= b.degrade_events;
  a.recover_events -= b.recover_events;
  a.fallback_exposures -= b.fallback_exposures;
  a.deque_grows -= b.deque_grows;
  // deque_hwm is a max, not a sum: differencing is meaningless, so the
  // delta keeps a's observed mark (bench deltas over an interval report
  // the mark reached during the run, since blocks start at zero).
  a.spawns_inline -= b.spawns_inline;
  a.tasks_executed -= b.tasks_executed;
  a.idle_loops -= b.idle_loops;
  a.parks -= b.parks;
  a.wakes -= b.wakes;
  a.idle_ns -= b.idle_ns;
  a.workers_lost -= b.workers_lost;
  a.deques_adopted -= b.deques_adopted;
  a.tasks_orphaned -= b.tasks_orphaned;
  a.runs_cancelled -= b.runs_cancelled;
  return a;
}

op_counters& local_counters() noexcept {
  return tl_active != nullptr ? *tl_active : tl_fallback;
}

void set_local_counters(op_counters* block) noexcept { tl_active = block; }

profile aggregate(const std::vector<cache_aligned<op_counters>>& blocks) {
  profile p;
  for (const auto& block : blocks) p.totals += block.get();
  return p;
}

std::string format_profile(const profile& p) {
  const auto& t = p.totals;
  std::ostringstream out;
  out << "fences=" << t.fences << " cas=" << t.cas << " (failed "
      << t.cas_failed << ")\n"
      << "pushes=" << t.pushes << " pops_private=" << t.pops_private
      << " pops_public=" << t.pops_public << "\n"
      << "steal_attempts=" << t.steal_attempts << " steals=" << t.steals
      << " aborts=" << t.steal_aborts
      << " private_work_seen=" << t.private_work_seen << "\n"
      << "useful_steals=" << t.useful_steals
      << " claims_lost=" << t.claims_lost
      << " dup_extractions=" << t.dup_extractions << "\n"
      << "steals_near=" << t.steals_near
      << " steals_remote=" << t.steals_remote << " by_tier=["
      << t.steals_by_tier[0] << " " << t.steals_by_tier[1] << " "
      << t.steals_by_tier[2] << " " << t.steals_by_tier[3] << " "
      << t.steals_by_tier[4] << "] explores=" << t.locality_explores
      << " near_fraction=" << p.near_steal_fraction() << "\n"
      << "exposures=" << t.exposures
      << " exposure_requests=" << t.exposure_requests
      << " unexposures=" << t.unexposures
      << " signals_sent=" << t.signals_sent
      << " signals_failed=" << t.signals_failed << "\n"
      << "degrade_events=" << t.degrade_events
      << " recover_events=" << t.recover_events
      << " fallback_exposures=" << t.fallback_exposures << "\n"
      << "deque_grows=" << t.deque_grows << " deque_hwm=" << t.deque_hwm
      << " spawns_inline=" << t.spawns_inline << "\n"
      << "tasks_executed=" << t.tasks_executed
      << " idle_loops=" << t.idle_loops << "\n"
      << "parks=" << t.parks << " wakes=" << t.wakes
      << " idle_ns=" << t.idle_ns << "\n"
      << "workers_lost=" << t.workers_lost
      << " deques_adopted=" << t.deques_adopted
      << " tasks_orphaned=" << t.tasks_orphaned
      << " runs_cancelled=" << t.runs_cancelled << "\n"
      << "exposed_not_stolen=" << p.exposed_not_stolen_fraction()
      << " steal_success_rate=" << p.steal_success_rate() << "\n"
      << "hw: status=" << p.hw.status << " cycles=" << p.hw.cycles
      << " instructions=" << p.hw.instructions << " ipc=" << p.hw.ipc()
      << " cache_refs=" << p.hw.cache_references
      << " cache_misses=" << p.hw.cache_misses
      << " miss_rate=" << p.hw.cache_miss_rate()
      << " task_clock_ms=" << p.hw.task_clock_ns / 1000000 << "\n";
  return out.str();
}

}  // namespace lcws::stats
