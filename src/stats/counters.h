// Synchronization-operation instrumentation.
//
// The LCWS paper's profiles (Figs 3 and 8) compare, between schedulers, the
// number of memory fences, CAS instructions, steal attempts/successes and
// the amount of exposed-but-not-stolen work. Every deque and scheduler in
// this library reports those events here.
//
// Counting must not perturb what it measures: each worker increments a
// plain (non-atomic) cache-line-private block through a thread-local
// pointer; aggregation only happens when a harness asks for totals.
// Define LCWS_NO_STATS to compile the counting away entirely.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/align.h"

namespace lcws::stats {

// Number of steal-locality tiers; mirrors lcws::kNumLocalityTiers
// (support/topology.h) without making the counter block depend on the
// topology header.
inline constexpr std::size_t kStealTierCount = 5;

// A single-writer event counter. Only the owning thread (including its
// signal handlers, which never interleave with its own increments mid-
// instruction) writes; harnesses read concurrently while monitoring. The
// load+store increment compiles to a plain `inc` — no RMW — yet every
// access is a relaxed atomic, so cross-thread profile reads are formally
// race-free (monitoring reads may lag by an increment; aggregation while
// quiescent is exact).
class relaxed_counter {
 public:
  relaxed_counter() = default;
  relaxed_counter(std::uint64_t v) noexcept : value_(v) {}  // NOLINT: implicit
  relaxed_counter(const relaxed_counter& other) noexcept : value_(other.get()) {}
  relaxed_counter& operator=(const relaxed_counter& other) noexcept {
    value_.store(other.get(), std::memory_order_relaxed);
    return *this;
  }
  relaxed_counter& operator=(std::uint64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
    return *this;
  }

  std::uint64_t get() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  operator std::uint64_t() const noexcept { return get(); }  // NOLINT

  // Single-writer increment: load+store, not an atomic RMW.
  relaxed_counter& operator+=(std::uint64_t n) noexcept {
    value_.store(get() + n, std::memory_order_relaxed);
    return *this;
  }
  relaxed_counter& operator++() noexcept { return *this += 1; }
  relaxed_counter& operator-=(std::uint64_t n) noexcept {
    value_.store(get() - n, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// One worker's event counts. Single-writer (the owning thread; signal
// handlers run on the owning thread too).
struct op_counters {
  relaxed_counter fences;          // atomic_thread_fence(seq_cst) executed
  relaxed_counter cas;             // compare_exchange executed
  relaxed_counter cas_failed;      // ... of which failed
  relaxed_counter pushes;          // push_bottom
  relaxed_counter pops_private;    // successful pop_bottom
  relaxed_counter pops_public;     // successful pop_public_bottom (owner
                                   // re-took work it had exposed)
  relaxed_counter steal_attempts;  // pop_top calls by thieves
  relaxed_counter steals;          // ... of which returned a task
  relaxed_counter steal_aborts;    // ... of which lost the CAS race
  // Multiplicity accounting (wsmult only, DESIGN.md §9). The fence-free
  // deque may extract one index twice; the claim word arbitrates, so
  //   steals == useful_steals + claims_lost
  // holds for thief-side extraction, and dup_extractions counts every
  // arbitration that saw an already-claimed slot (owner or thief side).
  relaxed_counter useful_steals;   // steals whose claim exchange won
  relaxed_counter claims_lost;     // steals whose claim exchange lost
  relaxed_counter dup_extractions; // claim arbitrations (any side) that
                                   // found the slot already claimed
  // Locality split of successful steals (DESIGN.md §7). Maintained only
  // while the locality layer is on; there the accounting identity
  //   steals == steals_near + steals_remote
  //          == sum(steals_by_tier)
  // holds (equivalently steal_attempts == steals_near + steals_remote +
  // failed attempts). With LCWS_LOCALITY_OFF all of these stay zero.
  relaxed_counter steals_near;     // victim shared a cache (smt/core/llc)
  relaxed_counter steals_remote;   // victim across an LLC/socket/NUMA edge
  relaxed_counter steals_by_tier[kStealTierCount];  // indexed by
                                                    // locality_tier
  relaxed_counter locality_explores;  // uniform exploration picks (every
                                      // explore_period-th victim choice)
  relaxed_counter private_work_seen;  // pop_top returned PRIVATE_WORK
  relaxed_counter exposures;       // update_public_bottom transfers
                                   // (tasks moved private -> public)
  relaxed_counter exposure_requests;  // targeted flag flips false->true
  relaxed_counter unexposures;     // tasks reclaimed public -> private
                                   // (Lace-style schedulers only)
  relaxed_counter signals_sent;    // pthread_kill(SIGUSR1) system calls
  relaxed_counter signals_failed;  // exposure sends that failed delivery
                                   // even after the retry-budget backoff
  relaxed_counter degrade_events;  // health monitor trips: a victim's
                                   // signal path switched to fallback
  relaxed_counter recover_events;  // ... and sustained probes restored it
  relaxed_counter fallback_exposures;  // exposure requests routed through
                                       // the user-space flag (no signal
                                       // attempted) while degraded; the
                                       // signal-family balance becomes
                                       // exposure_requests == signals_sent
                                       //   + signals_failed
                                       //   + fallback_exposures
  relaxed_counter deque_grows;     // slow-path deque growth events (the
                                   // owner doubled its slot storage)
  relaxed_counter deque_hwm;       // max outstanding tasks observed in this
                                   // worker's deque (high-water mark, NOT a
                                   // sum: += takes the max, - keeps a's)
  relaxed_counter spawns_inline;   // pardo branches run serially because
                                   // size_estimate() hit LCWS_DEQUE_SOFT_CAP
                                   // (backpressure; no push, no steal)
  relaxed_counter tasks_executed;  // jobs actually run by this worker
  relaxed_counter idle_loops;      // scheduling-loop iterations w/o a task
  relaxed_counter parks;           // park episodes (worker blocked idle)
  relaxed_counter wakes;           // unpark permits issued by this worker
  relaxed_counter idle_ns;         // nanoseconds spent parked
  // Worker-loss containment (DESIGN.md §11). Counted on the *recovering*
  // worker's block (the CAS winner of each recovery phase), never on the
  // dead worker's. Adoption drains through the normal steal path, so the
  // push identity widens to
  //   pushes == pops_private + pops_public + steals + tasks_orphaned
  // where tasks_orphaned is work stranded in a lost worker's private part
  // (or, mailbox family, its whole stack) that no thief can reach.
  relaxed_counter workers_lost;    // worker_lost verdicts acted upon
  relaxed_counter deques_adopted;  // lost workers whose public deque was
                                   // drained by the recovering worker
  relaxed_counter tasks_orphaned;  // size_estimate of unreachable work at
                                   // adoption time (estimate by design)
  relaxed_counter runs_cancelled;  // cancel_run() edges (token false->true)

  op_counters& operator+=(const op_counters& other) noexcept;
  friend op_counters operator-(op_counters a, const op_counters& b) noexcept;
};

// Pool-wide hardware-counter totals (src/stats/perf_counters.{h,cpp}).
// `available` means at least one worker produced a real reading;
// `status` is never empty -- when the kernel denies perf_event_open the
// marker names the errno ("unavailable:EACCES") instead of leaving
// zeros that look like data.
struct hw_profile {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t task_clock_ns = 0;
  bool available = false;
  std::string status = "unavailable:off";

  double ipc() const noexcept {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }
  double cache_miss_rate() const noexcept {
    return cache_references == 0 ? 0.0
                                 : static_cast<double>(cache_misses) /
                                       static_cast<double>(cache_references);
  }
};

// Totals with the derived quantities the paper plots.
struct profile {
  op_counters totals;
  hw_profile hw;

  // Exposed tasks that were *not* stolen end up re-taken by their owner via
  // pop_public_bottom; Fig 3d / Fig 8d plot this fraction.
  double exposed_not_stolen_fraction() const noexcept {
    return totals.exposures == 0
               ? 0.0
               : static_cast<double>(totals.pops_public) /
                     static_cast<double>(totals.exposures);
  }
  double steal_success_rate() const noexcept {
    return totals.steal_attempts == 0
               ? 0.0
               : static_cast<double>(totals.steals) /
                     static_cast<double>(totals.steal_attempts);
  }
  // Fraction of successful steals that stayed within a cache domain
  // (bench/locality's headline metric). 0 when the locality layer is off.
  double near_steal_fraction() const noexcept {
    const std::uint64_t classified =
        totals.steals_near + totals.steals_remote;
    return classified == 0 ? 0.0
                           : static_cast<double>(totals.steals_near) /
                                 static_cast<double>(classified);
  }
};

// ---- per-thread counting interface --------------------------------------

// Returns the calling thread's active counter block. Worker pools point
// this at a pool-owned, cache-aligned per-worker block for the duration of
// a run; other threads fall back to a thread_local block.
op_counters& local_counters() noexcept;

// Redirects this thread's counting to `block` (nullptr restores the
// thread_local fallback). Used by worker pools.
void set_local_counters(op_counters* block) noexcept;

#ifdef LCWS_NO_STATS
inline void count_fence() noexcept {}
inline void count_cas(bool /*success*/) noexcept {}
inline void count_push() noexcept {}
inline void count_pop_private() noexcept {}
inline void count_pop_public() noexcept {}
inline void count_steal_attempt() noexcept {}
inline void count_steal_success() noexcept {}
inline void count_steal_abort() noexcept {}
inline void count_useful_steal() noexcept {}
inline void count_claim_lost() noexcept {}
inline void count_dup_extraction() noexcept {}
inline void count_locality_steal(std::size_t tier, bool near) noexcept {
  (void)tier;
  (void)near;
}
inline void count_locality_explore() noexcept {}
inline void count_private_work_seen() noexcept {}
inline void count_exposure(std::uint64_t n = 1) noexcept { (void)n; }
inline void count_exposure_request() noexcept {}
inline void count_unexposure(std::uint64_t n = 1) noexcept { (void)n; }
inline void count_signal_sent() noexcept {}
inline void count_signal_failed() noexcept {}
inline void count_degrade_event() noexcept {}
inline void count_recover_event() noexcept {}
inline void count_fallback_exposure() noexcept {}
inline void count_deque_grow() noexcept {}
inline void count_deque_hwm(std::uint64_t size) noexcept { (void)size; }
inline void count_spawn_inline() noexcept {}
inline void count_task_executed() noexcept {}
inline void count_idle_loop() noexcept {}
inline void count_park() noexcept {}
inline void count_wake(std::uint64_t n = 1) noexcept { (void)n; }
inline void count_idle_ns(std::uint64_t ns) noexcept { (void)ns; }
inline void count_worker_lost() noexcept {}
inline void count_deque_adopted() noexcept {}
inline void count_tasks_orphaned(std::uint64_t n) noexcept { (void)n; }
inline void count_run_cancelled() noexcept {}
#else
inline void count_fence() noexcept { ++local_counters().fences; }
inline void count_cas(bool success) noexcept {
  auto& c = local_counters();
  ++c.cas;
  if (!success) ++c.cas_failed;
}
inline void count_push() noexcept { ++local_counters().pushes; }
inline void count_pop_private() noexcept { ++local_counters().pops_private; }
inline void count_pop_public() noexcept { ++local_counters().pops_public; }
inline void count_steal_attempt() noexcept {
  ++local_counters().steal_attempts;
}
inline void count_steal_success() noexcept { ++local_counters().steals; }
inline void count_steal_abort() noexcept { ++local_counters().steal_aborts; }
inline void count_useful_steal() noexcept {
  ++local_counters().useful_steals;
}
inline void count_claim_lost() noexcept { ++local_counters().claims_lost; }
inline void count_dup_extraction() noexcept {
  ++local_counters().dup_extractions;
}
// One successful steal classified by the victim's distance tier; `near`
// is tier <= llc (the thief shares a cache with the victim).
inline void count_locality_steal(std::size_t tier, bool near) noexcept {
  auto& c = local_counters();
  if (tier < kStealTierCount) ++c.steals_by_tier[tier];
  if (near) {
    ++c.steals_near;
  } else {
    ++c.steals_remote;
  }
}
inline void count_locality_explore() noexcept {
  ++local_counters().locality_explores;
}
inline void count_private_work_seen() noexcept {
  ++local_counters().private_work_seen;
}
inline void count_exposure(std::uint64_t n = 1) noexcept {
  local_counters().exposures += n;
}
inline void count_exposure_request() noexcept {
  ++local_counters().exposure_requests;
}
inline void count_unexposure(std::uint64_t n = 1) noexcept {
  local_counters().unexposures += n;
}
inline void count_signal_sent() noexcept { ++local_counters().signals_sent; }
inline void count_signal_failed() noexcept {
  ++local_counters().signals_failed;
}
inline void count_degrade_event() noexcept {
  ++local_counters().degrade_events;
}
inline void count_recover_event() noexcept {
  ++local_counters().recover_events;
}
inline void count_fallback_exposure() noexcept {
  ++local_counters().fallback_exposures;
}
inline void count_deque_grow() noexcept { ++local_counters().deque_grows; }
// Max-update: records the largest deque size this worker ever held.
inline void count_deque_hwm(std::uint64_t size) noexcept {
  auto& c = local_counters().deque_hwm;
  if (size > c.get()) c = size;
}
inline void count_spawn_inline() noexcept {
  ++local_counters().spawns_inline;
}
inline void count_task_executed() noexcept {
  ++local_counters().tasks_executed;
}
inline void count_idle_loop() noexcept { ++local_counters().idle_loops; }
inline void count_park() noexcept { ++local_counters().parks; }
inline void count_wake(std::uint64_t n = 1) noexcept {
  local_counters().wakes += n;
}
inline void count_idle_ns(std::uint64_t ns) noexcept {
  local_counters().idle_ns += ns;
}
inline void count_worker_lost() noexcept {
  ++local_counters().workers_lost;
}
inline void count_deque_adopted() noexcept {
  ++local_counters().deques_adopted;
}
inline void count_tasks_orphaned(std::uint64_t n) noexcept {
  local_counters().tasks_orphaned += n;
}
inline void count_run_cancelled() noexcept {
  ++local_counters().runs_cancelled;
}
#endif

// ---- aggregation ---------------------------------------------------------

// Sums a set of per-worker blocks into a profile.
profile aggregate(const std::vector<cache_aligned<op_counters>>& blocks);

// Multi-line human-readable rendering.
std::string format_profile(const profile& p);

}  // namespace lcws::stats
