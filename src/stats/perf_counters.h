#pragma once

// Per-worker hardware counters via perf_event_open.
//
// Each worker opens one counter group on its own thread (pid=0, cpu=-1):
// cycles (leader), instructions, cache-references, cache-misses, plus a
// separate task-clock software event.  Groups are read with
// PERF_FORMAT_GROUP | TOTAL_TIME_ENABLED | TOTAL_TIME_RUNNING and scaled
// for multiplexing.  Reads happen only at cold boundaries (worker
// start/stop, park entry, run exit) -- never per task or per steal.
//
// Availability is tiered, and unavailability is first-class: the
// committed perf-gate baselines were produced in a container where
// perf_event_paranoid forbids the syscall entirely, so every consumer
// must handle status() != "available" without treating zeros as data.
//   1. full group (cycles, instructions, cache refs, cache misses)
//   2. cycles + instructions only ("partial:no-cache-counters")
//   3. nothing ("unavailable:<errno name>")
// The task-clock event is software-only and usually survives even when
// the PMU is denied; its validity is tracked separately.
//
// LCWS_PERF=0 disables the whole subsystem; LCWS_PERF_FORCE_FAIL=EACCES
// (or ENOENT/EPERM) forces the failure path for tests.

#include <cstdint>
#include <string>

namespace lcws::stats {

struct hw_values {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t task_clock_ns = 0;
  bool cpu_valid = false;    // cycles / instructions are real
  bool cache_valid = false;  // cache_references / cache_misses are real
  bool clock_valid = false;  // task_clock_ns is real
  bool any() const noexcept { return cpu_valid || cache_valid || clock_valid; }
};

class perf_group {
 public:
  perf_group() = default;
  ~perf_group() { close(); }
  perf_group(const perf_group&) = delete;
  perf_group& operator=(const perf_group&) = delete;

  // Opens the counters on the *calling* thread; must run on the worker
  // whose activity is to be measured.  force_errno != 0 simulates an
  // open failure with that errno (test hook; also fails the task-clock
  // event so the fallback is total).  Returns true if anything opened.
  bool open(int force_errno = 0);

  void close() noexcept;

  bool is_open() const noexcept { return group_fd_ >= 0 || clock_fd_ >= 0; }

  // errno from the hardware-group open failure; 0 when the group opened.
  int error() const noexcept { return error_; }

  // "available" | "partial:no-cache-counters" | "unavailable:EACCES" | ...
  std::string status() const;

  // Cumulative, multiplex-scaled readings since open().
  hw_values read() const noexcept;

 private:
  int group_fd_ = -1;   // leader fd (cycles); members read via group format
  int nevents_ = 0;     // 2 or 4 hardware events in the group
  int clock_fd_ = -1;   // task-clock software event
  int error_ = 0;
};

// False when LCWS_PERF is "0" or "off" (default: enabled).
bool perf_env_enabled() noexcept;

// Nonzero errno to force open() failures, from LCWS_PERF_FORCE_FAIL.
int perf_env_force_errno() noexcept;

// "EACCES", "ENOENT", ... or "errno-N" for names we don't know.
const char* errno_name(int e) noexcept;

}  // namespace lcws::stats
