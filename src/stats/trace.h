#pragma once

// Per-worker event tracing (opt-in via LCWS_TRACE=<file>).
//
// Each worker owns a fixed-size power-of-two ring of 16-byte records.
// Emitting an event is a TLS load, a predicted-not-taken null check when
// tracing is off, and -- when on -- a clock read plus two relaxed stores
// into the single-writer ring.  No fences, no CAS, no allocation on the
// emit path, so tracing cannot perturb the fence/CAS accounting that the
// perf gate audits (tests/trace_test.cpp proves bit-equality).
//
// Signal-handler safety: the SIGUSR1 exposure trampoline emits into the
// same ring as the interrupted worker.  emit() reserves the slot index
// (plain head bump) *before* filling the slot, so a handler that lands
// mid-emit overwrites at most the one record that was being written; the
// ring never corrupts beyond losing that single record.  clock_gettime
// (behind monotonic_ns) and relaxed stores are async-signal-safe.
//
// On every top-level run() exit -- and again when the pool is destroyed --
// the rings are snapshotted and rewritten as Chrome trace-event JSON
// (load the file in chrome://tracing or https://ui.perfetto.dev).  Rings
// wrap silently; the writer reports per-worker dropped-event counts in
// the JSON's otherData block.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/timing.h"

namespace lcws::trace {

enum class event : std::uint8_t {
  run_begin = 1,
  run_end,
  task_begin,        // arg: 1 if the task was stolen, 0 if popped locally
  task_end,
  steal_attempt,     // arg: victim worker id
  steal_success,     // arg: victim worker id
  steal_loss,        // arg: victim worker id
  exposure_request,  // arg: victim worker id (emitted on the thief)
  exposure_answer,   // arg: own worker id (emitted on the victim)
  park_begin,
  park_end,
  unpark,            // arg: worker id being woken (emitted on the waker)
  degrade,           // arg: victim worker id whose signal path tripped
  recover,           // arg: victim worker id restored to the signal path
  pressure,          // arg: 1 entering oversubscription pressure, 0 leaving
  deque_grow,        // arg: new capacity
  quiesce,           // arg: own worker id (cold-path reclaim quiesce only)
  hw_cycles,         // arg: cumulative cycles sampled on this worker
  hw_cache_misses,   // arg: cumulative cache misses sampled on this worker
  worker_lost,       // arg: lost worker id (emitted on the detecting worker)
  adopt,             // arg: lost worker id whose public deque was drained
  cancel,            // arg: 1 deadline/watchdog, 0 explicit cancel_run()
};

inline const char* to_string(event e) noexcept {
  switch (e) {
    case event::run_begin: return "run";
    case event::run_end: return "run_end";
    case event::task_begin: return "task";
    case event::task_end: return "task_end";
    case event::steal_attempt: return "steal_attempt";
    case event::steal_success: return "steal_success";
    case event::steal_loss: return "steal_loss";
    case event::exposure_request: return "exposure_request";
    case event::exposure_answer: return "exposure_answer";
    case event::park_begin: return "park";
    case event::park_end: return "park_end";
    case event::unpark: return "unpark";
    case event::degrade: return "degrade";
    case event::recover: return "recover";
    case event::pressure: return "pressure";
    case event::deque_grow: return "deque_grow";
    case event::quiesce: return "quiesce";
    case event::hw_cycles: return "cycles";
    case event::hw_cache_misses: return "cache_misses";
    case event::worker_lost: return "worker_lost";
    case event::adopt: return "adopt";
    case event::cancel: return "cancel";
  }
  return "?";
}

// One ring slot: timestamp word + packed kind/arg word.  Both words are
// relaxed atomics so concurrent snapshot reads are race-free under TSan;
// a snapshot may observe a torn record (ts from one event, payload from
// another) only for the slot currently being overwritten, which the
// writer tolerates by dropping records whose ts is zero or out of range.
struct record {
  std::atomic<std::uint64_t> ts{0};    // monotonic_ns
  std::atomic<std::uint64_t> word{0};  // kind << 56 | arg
};

constexpr std::uint64_t kArgMask = (std::uint64_t{1} << 56) - 1;

inline std::uint64_t pack(event e, std::uint64_t arg) noexcept {
  return (static_cast<std::uint64_t>(e) << 56) | (arg & kArgMask);
}

class ring {
 public:
  explicit ring(std::size_t capacity) {
    std::size_t cap = 8;
    while (cap < capacity) cap <<= 1;
    buf_ = std::make_unique<record[]>(cap);
    mask_ = cap - 1;
  }

  ring(const ring&) = delete;
  ring& operator=(const ring&) = delete;

  // Single-writer (the owning worker thread, plus signal handlers running
  // on that same thread).  Reserve-then-fill: see file comment.
  void emit(event e, std::uint64_t arg = 0) noexcept {
    const std::uint64_t i = head_.load(std::memory_order_relaxed);
    head_.store(i + 1, std::memory_order_relaxed);
    record& r = buf_[i & mask_];
    r.word.store(pack(e, arg), std::memory_order_relaxed);
    r.ts.store(lcws::monotonic_ns(), std::memory_order_relaxed);
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }

  // Total events ever emitted (monotonic; >= capacity() means the ring
  // has wrapped and oldest events were dropped).
  std::uint64_t emitted() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }

  std::uint64_t dropped() const noexcept {
    const std::uint64_t n = emitted();
    return n > capacity() ? n - capacity() : 0;
  }

  struct entry {
    std::uint64_t ts;
    event kind;
    std::uint64_t arg;
  };

  // Oldest-to-newest retained records.  Safe to call from any thread
  // while the owner keeps emitting; in-flight slots are skipped.
  std::vector<entry> snapshot() const {
    std::vector<entry> out;
    const std::uint64_t end = head_.load(std::memory_order_relaxed);
    const std::uint64_t n = end < capacity() ? end : capacity();
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = end - n; i < end; ++i) {
      const record& r = buf_[i & mask_];
      const std::uint64_t ts = r.ts.load(std::memory_order_relaxed);
      const std::uint64_t w = r.word.load(std::memory_order_relaxed);
      if (ts == 0 || w == 0) continue;  // slot mid-write
      out.push_back(entry{ts, static_cast<event>(w >> 56), w & kArgMask});
    }
    return out;
  }

 private:
  std::unique_ptr<record[]> buf_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
};

// TLS pointer to the calling worker's ring; null when tracing is off or
// the thread is not a registered worker.
inline thread_local ring* tl_ring = nullptr;

inline void set_local_ring(ring* r) noexcept { tl_ring = r; }
inline ring* local_ring() noexcept { return tl_ring; }

#ifdef LCWS_NO_STATS
inline void emit(event, std::uint64_t = 0) noexcept {}
#else
inline void emit(event e, std::uint64_t arg = 0) noexcept {
  ring* r = tl_ring;
  if (__builtin_expect(r != nullptr, 0)) r->emit(e, arg);
}
#endif

// Serializes multi-line diagnostic dumps (LCWS_DUMP_ON_EXIT, watchdog
// stall reports) across pools and threads so each worker's block comes
// out contiguous on stderr.
inline std::mutex& dump_mutex() {
  static std::mutex m;
  return m;
}

struct config {
  std::string path;                 // empty => tracing disabled
  std::size_t ring_capacity = 4096;

  static config from_env() {
    config c;
    if (const char* p = std::getenv("LCWS_TRACE"); p && *p) c.path = p;
    if (const char* r = std::getenv("LCWS_TRACE_RING"); r && *r) {
      const long v = std::strtol(r, nullptr, 10);
      if (v >= 8) c.ring_capacity = static_cast<std::size_t>(v);
    }
    return c;
  }
};

// Owns one ring per worker and knows how to serialize them.  Created
// disabled; the scheduler calls init() once it knows the worker count.
class tracer {
 public:
  tracer() = default;

  void init(std::size_t workers, config cfg) {
    cfg_ = std::move(cfg);
    rings_.clear();
    if (cfg_.path.empty()) return;
    rings_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
      rings_.push_back(std::make_unique<ring>(cfg_.ring_capacity));
  }

  bool enabled() const noexcept { return !rings_.empty(); }
  std::size_t workers() const noexcept { return rings_.size(); }

  ring* worker_ring(std::size_t i) noexcept {
    return i < rings_.size() ? rings_[i].get() : nullptr;
  }
  const ring* worker_ring(std::size_t i) const noexcept {
    return i < rings_.size() ? rings_[i].get() : nullptr;
  }

  // Rewrites the whole trace file from current ring contents.  Called at
  // every top-level run() exit and from the pool destructor; last writer
  // wins, which is what you want for a file observed after the process
  // ends.  Failure to open the path is reported once on stderr.
  void write_chrome_json(const char* scheduler_name) const noexcept {
    if (!enabled()) return;
    std::FILE* f = std::fopen(cfg_.path.c_str(), "w");
    if (!f) {
      if (!warned_.exchange(true, std::memory_order_relaxed))
        std::fprintf(stderr, "lcws: LCWS_TRACE: cannot open %s\n",
                     cfg_.path.c_str());
      return;
    }
    std::vector<std::vector<ring::entry>> snaps(rings_.size());
    std::uint64_t t0 = UINT64_MAX;
    for (std::size_t i = 0; i < rings_.size(); ++i) {
      snaps[i] = rings_[i]->snapshot();
      if (!snaps[i].empty() && snaps[i].front().ts < t0)
        t0 = snaps[i].front().ts;
    }
    if (t0 == UINT64_MAX) t0 = 0;

    std::fprintf(f, "{\"traceEvents\":[\n");
    bool first = true;
    for (std::size_t w = 0; w < rings_.size(); ++w) {
      emit_meta(f, first, w, scheduler_name);
      for (const ring::entry& e : snaps[w]) emit_entry(f, first, w, e, t0);
    }
    std::fprintf(f, "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{");
    std::fprintf(f, "\"scheduler\":\"%s\",\"ring_capacity\":%zu",
                 scheduler_name ? scheduler_name : "?", cfg_.ring_capacity);
    std::fprintf(f, ",\"dropped_events\":[");
    for (std::size_t w = 0; w < rings_.size(); ++w)
      std::fprintf(f, "%s%llu", w ? "," : "",
                   static_cast<unsigned long long>(rings_[w]->dropped()));
    std::fprintf(f, "]}}\n");
    std::fclose(f);
  }

  // Human-readable tail of one worker's ring, for stall dumps.
  std::string tail_string(std::size_t worker, std::size_t max_events) const {
    const ring* r = worker_ring(worker);
    if (!r) return {};
    std::vector<ring::entry> snap = r->snapshot();
    const std::size_t start =
        snap.size() > max_events ? snap.size() - max_events : 0;
    std::string out;
    char line[128];
    for (std::size_t i = start; i < snap.size(); ++i) {
      const ring::entry& e = snap[i];
      std::snprintf(line, sizeof line, "      t=%llu.%03llums %s v=%llu\n",
                    static_cast<unsigned long long>(e.ts / 1000000),
                    static_cast<unsigned long long>((e.ts / 1000) % 1000),
                    to_string(e.kind), static_cast<unsigned long long>(e.arg));
      out += line;
    }
    return out;
  }

 private:
  static bool is_begin(event e) noexcept {
    return e == event::run_begin || e == event::task_begin ||
           e == event::park_begin;
  }
  static bool is_end(event e) noexcept {
    return e == event::run_end || e == event::task_end ||
           e == event::park_end;
  }
  static bool is_counter(event e) noexcept {
    return e == event::hw_cycles || e == event::hw_cache_misses;
  }

  static void emit_meta(std::FILE* f, bool& first, std::size_t w,
                        const char* sched) {
    std::fprintf(f,
                 "%s{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
                 "\"tid\":%zu,\"args\":{\"name\":\"lcws-%s\"}}",
                 first ? "" : ",\n", w, sched ? sched : "?");
    first = false;
    std::fprintf(f,
                 ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                 "\"tid\":%zu,\"args\":{\"name\":\"worker %zu\"}}",
                 w, w);
  }

  static void emit_entry(std::FILE* f, bool& first, std::size_t w,
                         const ring::entry& e, std::uint64_t t0) {
    const double ts_us = static_cast<double>(e.ts - t0) / 1000.0;
    const char* sep = first ? "" : ",\n";
    first = false;
    const unsigned long long arg = static_cast<unsigned long long>(e.arg);
    if (is_counter(e.kind)) {
      std::fprintf(f,
                   "%s{\"name\":\"%s\",\"ph\":\"C\",\"pid\":0,\"tid\":%zu,"
                   "\"ts\":%.3f,\"args\":{\"value\":%llu}}",
                   sep, to_string(e.kind), w, ts_us, arg);
    } else if (is_begin(e.kind)) {
      std::fprintf(f,
                   "%s{\"name\":\"%s\",\"cat\":\"sched\",\"ph\":\"B\","
                   "\"pid\":0,\"tid\":%zu,\"ts\":%.3f,\"args\":{\"v\":%llu}}",
                   sep, to_string(e.kind), w, ts_us, arg);
    } else if (is_end(e.kind)) {
      // Chrome pairs E with the innermost open B on the same tid by name
      // ordering; we emit the matching begin name so flame slices close.
      const char* name = e.kind == event::run_end     ? "run"
                         : e.kind == event::task_end  ? "task"
                                                      : "park";
      std::fprintf(f,
                   "%s{\"name\":\"%s\",\"cat\":\"sched\",\"ph\":\"E\","
                   "\"pid\":0,\"tid\":%zu,\"ts\":%.3f}",
                   sep, name, w, ts_us);
    } else {
      std::fprintf(f,
                   "%s{\"name\":\"%s\",\"cat\":\"sched\",\"ph\":\"i\","
                   "\"s\":\"t\",\"pid\":0,\"tid\":%zu,\"ts\":%.3f,"
                   "\"args\":{\"v\":%llu}}",
                   sep, to_string(e.kind), w, ts_us, arg);
    }
  }

  config cfg_;
  std::vector<std::unique_ptr<ring>> rings_;
  mutable std::atomic<bool> warned_{false};
};

}  // namespace lcws::trace
