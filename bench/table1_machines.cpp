// Reproduces Table 1: the machines used in the experimental evaluation.
// The paper lists Intel12 (2x Xeon E5-2620 v2, 12c/24t, 64 GiB), AMD32
// (4x Opteron 6272, 32c/64t, 64 GiB) and Intel16 (2x Xeon E5-2609 v4,
// 16c/16t, 32 GiB); this binary probes and prints the machine the
// reproduction actually ran on, for EXPERIMENTS.md's paper-vs-local record.
#include <cstdio>

#include "support/topology.h"

int main() {
  std::printf("== Table 1 ==\n");
  std::printf("paper machines:\n");
  std::printf(
      "  Intel12  2 x Intel Xeon E5-2620 v2   12 cores / 24 threads   64 "
      "GiB DDR3 1600\n"
      "  AMD32    4 x AMD Opteron 6272        32 cores / 64 threads   64 "
      "GiB DDR3 1600\n"
      "  Intel16  2 x Intel Xeon E5-2609 v4   16 cores / 16 threads   32 "
      "GiB DDR4 2400\n\n");
  std::printf("local machine (this reproduction):\n%s",
              lcws::format_machine(lcws::probe_machine()).c_str());
  return 0;
}
