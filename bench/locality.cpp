// Microbenchmark for locality-aware victim selection (DESIGN.md §7).
//
// Two cache-heavy kernels from the parallel toolkit, each run for every
// scheduler kind with locality-aware stealing enabled and disabled (the
// LCWS_LOCALITY_OFF kill-switch, applied here via the constructor knob so
// one process measures both):
//
//   sample_sort  oversampled bucket sort of 64-bit keys. Bucket scatter is
//                bandwidth-bound; a thief that steals from an LLC-sharing
//                victim reuses lines the victim just wrote.
//
//   histogram    private per-worker counts merged by a parallel reduction.
//                Steal placement decides whether merge traffic crosses the
//                socket interconnect.
//
// Both kernels report wall seconds plus the steal-placement counters:
// steals_near / steals_remote (near = SMT, core, or LLC tier) and the
// near fraction. On hosts whose topology collapses to one tier — one
// socket, no SMT, or a 1-CPU container — "near" and "remote" merge and
// the near fraction is reported but not meaningful; scripts/perf_gate.py
// applies the same caveat.
//
// Output: a human table plus, when LCWS_BENCH_JSON is set, one JSON object
// per (kernel, kind, locality) cell with the raw numbers (used to produce
// BENCH_locality.json).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "parallel/histogram.h"
#include "parallel/sample_sort.h"
#include "sched/dispatch.h"
#include "support/rng.h"
#include "support/timing.h"
#include "support/topology.h"

using namespace lcws;

namespace {

constexpr std::size_t kWorkers = 8;
constexpr std::size_t kSortBase = 200 * 1000;
constexpr std::size_t kHistBase = 400 * 1000;
constexpr std::size_t kHistBuckets = 256;

double env_scale() {
  if (const char* s = std::getenv("LCWS_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 1.0;
}

int env_rounds() {
  if (const char* s = std::getenv("LCWS_BENCH_ROUNDS")) {
    return std::max(1, std::atoi(s));
  }
  return 3;
}

struct measurement {
  double seconds = 0;  // median of the timed rounds
  std::uint64_t steals = 0;
  std::uint64_t steals_near = 0;
  std::uint64_t steals_remote = 0;
  double near_fraction = 0;
};

// Runs `kernel(sched)` once as warmup and `rounds` timed repetitions,
// keeping the median time and the counters summed over the timed rounds.
template <typename Kernel>
measurement measure(sched_kind kind, locality_mode locality, int rounds,
                    Kernel&& kernel) {
  measurement m;
  with_scheduler(
      kind, kWorkers, parking_mode::env_default, locality, [&](auto& sched) {
        sched.run([&] { kernel(sched); });  // warmup
        sched.reset_counters();
        std::vector<double> times;
        times.reserve(static_cast<std::size_t>(rounds));
        for (int r = 0; r < rounds; ++r) {
          stopwatch sw;
          sched.run([&] { kernel(sched); });
          times.push_back(sw.elapsed_seconds());
        }
        std::sort(times.begin(), times.end());
        m.seconds = times[times.size() / 2];
        const auto t = sched.profile().totals;
        m.steals = t.steals;
        m.steals_near = t.steals_near;
        m.steals_remote = t.steals_remote;
        m.near_fraction = sched.profile().near_steal_fraction();
      });
  return m;
}

void maybe_append_json(const char* kernel, sched_kind kind, const char* mode,
                       const measurement& m) {
  const char* path = std::getenv("LCWS_BENCH_JSON");
  if (path == nullptr) return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(
      f,
      "{\"benchmark\":\"locality_%s\",\"scheduler\":\"%s\","
      "\"locality\":\"%s\",\"procs\":%zu,\"seconds\":%.9f,"
      "\"steals\":%llu,\"steals_near\":%llu,\"steals_remote\":%llu,"
      "\"near_fraction\":%.6f}\n",
      kernel, to_string(kind), mode, kWorkers, m.seconds,
      static_cast<unsigned long long>(m.steals),
      static_cast<unsigned long long>(m.steals_near),
      static_cast<unsigned long long>(m.steals_remote), m.near_fraction);
  std::fclose(f);
}

void print_row(const char* kernel, sched_kind kind, const char* mode,
               const measurement& m) {
  std::printf("%-12s %-16s %-4s %12.3f %10llu %10llu %10llu %8.3f\n", kernel,
              to_string(kind), mode, m.seconds * 1e3,
              static_cast<unsigned long long>(m.steals),
              static_cast<unsigned long long>(m.steals_near),
              static_cast<unsigned long long>(m.steals_remote),
              m.near_fraction);
}

template <typename Kernel>
void run_kernel(const char* name, int rounds, Kernel&& kernel) {
  for (const sched_kind kind : all_sched_kinds) {
    const measurement on =
        measure(kind, locality_mode::enabled, rounds, kernel);
    const measurement off =
        measure(kind, locality_mode::disabled, rounds, kernel);
    print_row(name, kind, "on", on);
    print_row(name, kind, "off", off);
    maybe_append_json(name, kind, "on", on);
    maybe_append_json(name, kind, "off", off);
  }
}

}  // namespace

int main() {
  const double scale = env_scale();
  const int rounds = env_rounds();
  const std::size_t sort_n =
      std::max<std::size_t>(1000, static_cast<std::size_t>(
                                      static_cast<double>(kSortBase) * scale));
  const std::size_t hist_n =
      std::max<std::size_t>(1000, static_cast<std::size_t>(
                                      static_cast<double>(kHistBase) * scale));

  const auto topo = probe_topology();
  std::printf("== locality: NUMA-hierarchical victim selection ==\n");
  std::printf(
      "P=%zu | topology: %zu cpus, %zu sockets, %zu nodes (sysfs=%d) | "
      "scale=%.3g rounds=%d\n",
      kWorkers, topo.cpus.size(), topo.socket_count(), topo.node_count(),
      topo.from_sysfs ? 1 : 0, scale, rounds);
  std::printf(
      "near = smt/core/llc tier; on flat topologies near/remote merge and "
      "near_fraction is not meaningful\n\n");
  std::printf("%-12s %-16s %-4s %12s %10s %10s %10s %8s\n", "kernel",
              "scheduler", "loc", "median (ms)", "steals", "near", "remote",
              "near_fr");

  // Inputs are generated once; the kernels copy per run so every round
  // sorts/histograms the same bytes.
  std::vector<std::uint64_t> sort_input(sort_n);
  xoshiro256 rng(42);
  for (auto& x : sort_input) x = rng();
  std::vector<std::uint32_t> hist_input(hist_n);
  for (std::size_t i = 0; i < hist_n; ++i) {
    hist_input[i] = static_cast<std::uint32_t>(hash64(i) % kHistBuckets);
  }

  run_kernel("sample_sort", rounds, [&](auto& sched) {
    auto v = sort_input;
    par::sample_sort(sched, v);
    if (v.front() > v.back()) std::abort();  // keep the sort observable
  });
  run_kernel("histogram", rounds, [&](auto& sched) {
    const auto h =
        par::histogram(sched, hist_input.begin(), hist_input.size(),
                       kHistBuckets);
    if (h.size() != kHistBuckets) std::abort();
  });
  return 0;
}
