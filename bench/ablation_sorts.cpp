// Ablation over the sorting backends of the toolkit: D&C merge sort
// (parallel/sort.h), sample sort (parallel/sample_sort.h), LSD radix
// (parallel/integer_sort.h) and sequential std::sort, under the signal
// LCWS scheduler — the kind of substrate choice that shifts the paper's
// per-benchmark constants without changing who wins.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "parallel/integer_sort.h"
#include "parallel/sample_sort.h"
#include "parallel/sort.h"
#include "sched/scheduler.h"
#include "support/rng.h"

namespace {

constexpr std::size_t kN = 1 << 20;

const std::vector<std::uint64_t>& input() {
  static const std::vector<std::uint64_t> v = [] {
    std::vector<std::uint64_t> data(kN);
    lcws::xoshiro256 rng(99);
    for (auto& x : data) x = rng() & ((std::uint64_t{1} << 32) - 1);
    return data;
  }();
  return v;
}

void BM_StdSort(benchmark::State& state) {
  for (auto _ : state) {
    auto v = input();
    std::sort(v.begin(), v.end());
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_StdSort)->Unit(benchmark::kMillisecond);

void BM_MergeSort(benchmark::State& state) {
  lcws::signal_scheduler sched(4);
  for (auto _ : state) {
    auto v = input();
    sched.run([&] { lcws::par::sort(sched, v); });
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_MergeSort)->Unit(benchmark::kMillisecond);

void BM_SampleSort(benchmark::State& state) {
  lcws::signal_scheduler sched(4);
  for (auto _ : state) {
    auto v = input();
    sched.run([&] { lcws::par::sample_sort(sched, v); });
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_SampleSort)->Unit(benchmark::kMillisecond);

void BM_RadixSort(benchmark::State& state) {
  lcws::signal_scheduler sched(4);
  for (auto _ : state) {
    auto v = input();
    sched.run([&] { lcws::par::integer_sort(sched, v, 32); });
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_RadixSort)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
