// Reproduces Figure 3 (paper Section 3.3): profile of USLCWS against WS,
// varying the number of processors, over all benchmark configurations.
//   3a  USLCWS memory fences / WS memory fences
//   3b  USLCWS CAS / WS CAS
//   3c  successful steals USLCWS / successful steals WS
//   3d  % of exposed work that is not stolen in USLCWS
// Each panel is a box plot over all benchmark configurations.
#include <cstdio>
#include <vector>

#include "harness.h"

using namespace lcws;
using namespace lcws::benchh;

int main() {
  print_header("Figure 3", "USLCWS profile vs WS (box over all configs)");
  const auto procs = env_procs({2, 4, 8});
  const auto cells = sweep({sched_kind::ws, sched_kind::uslcws}, procs);
  const sweep_index index(cells);

  std::printf("-- 3a: USLCWS memory fences / WS memory fences --\n");
  for (const auto p : procs) {
    print_box_row(p, box_of(counter_ratios(
                         cells, index, sched_kind::uslcws, sched_kind::ws, p,
                         [](const stats::profile& pr) {
                           return pr.totals.fences;
                         })));
  }

  std::printf("\n-- 3b: USLCWS CAS / WS CAS --\n");
  for (const auto p : procs) {
    print_box_row(p, box_of(counter_ratios(
                         cells, index, sched_kind::uslcws, sched_kind::ws, p,
                         [](const stats::profile& pr) {
                           return pr.totals.cas;
                         })));
  }

  std::printf("\n-- 3c: successful steals USLCWS / successful steals WS --\n");
  for (const auto p : procs) {
    print_box_row(p, box_of(counter_ratios(
                         cells, index, sched_kind::uslcws, sched_kind::ws, p,
                         [](const stats::profile& pr) {
                           return pr.totals.steals;
                         })));
  }

  std::printf("\n-- 3d: %% of exposed work not stolen in USLCWS --\n");
  for (const auto p : procs) {
    std::vector<double> fractions;
    for (const auto& c : cells) {
      if (c.kind != sched_kind::uslcws || c.procs != p) continue;
      fractions.push_back(c.result.profile.exposed_not_stolen_fraction());
    }
    print_box_row(p, box_of(std::move(fractions)));
  }
  return 0;
}
