// Multiprogrammed-environment experiment (paper Section 1.1's motivation):
// two independent runtime systems co-located on the same machine, each
// with its own scheduler pool, running identical workload streams. When
// runtimes compete for cores, each effectively owns a fraction of the
// machine — the regime where LCWS is designed to beat WS. Reports each
// scheduler kind's co-run makespan next to its solo makespan.
#include <cstdio>
#include <thread>
#include <vector>

#include "parallel/integer_sort.h"
#include "parallel/parallel_for.h"
#include "sched/dispatch.h"
#include "support/timing.h"

using namespace lcws;

namespace {

constexpr std::size_t kElements = 1 << 19;
constexpr int kRepeats = 6;
constexpr std::size_t kWorkers = 2;

// One runtime system's workload stream: repeated generate+sort rounds.
template <typename Sched>
void workload(Sched& sched) {
  std::vector<std::uint64_t> v(kElements);
  for (int round = 0; round < kRepeats; ++round) {
    sched.run([&] {
      par::parallel_for(sched, 0, v.size(), [&](std::size_t i) {
        v[i] = hash64(i * 2654435761u + static_cast<std::size_t>(round));
      });
      par::integer_sort(sched, v, 32);
    });
  }
}

double solo_run(sched_kind kind) {
  stopwatch sw;
  with_scheduler(kind, kWorkers, [](auto& sched) { workload(sched); });
  return sw.elapsed_seconds();
}

double corun(sched_kind kind) {
  stopwatch sw;
  auto one_runtime = [kind] {
    with_scheduler(kind, kWorkers, [](auto& sched) { workload(sched); });
  };
  std::thread other(one_runtime);
  one_runtime();
  other.join();
  return sw.elapsed_seconds();
}

}  // namespace

int main() {
  std::printf("== Multiprogrammed co-run (Section 1.1 motivation) ==\n");
  std::printf(
      "two co-located runtimes, %zu workers each, %d sort rounds of %zu "
      "elements\n\n",
      kWorkers, kRepeats, kElements);
  std::printf("%-16s %12s %12s %16s\n", "scheduler", "solo (s)", "corun (s)",
              "corun/2*solo");
  for (const sched_kind kind :
       {sched_kind::ws, sched_kind::uslcws, sched_kind::signal,
        sched_kind::conservative, sched_kind::expose_half,
        sched_kind::private_deques}) {
    const double solo = solo_run(kind);
    const double co = corun(kind);
    // Perfect sharing doubles the work on the same silicon: ratio 1.0
    // means no interference overhead beyond capacity; > 1 means the
    // schedulers tread on each other.
    std::printf("%-16s %12.3f %12.3f %15.3f\n", to_string(kind), solo, co,
                co / (2 * solo));
  }
  return 0;
}
