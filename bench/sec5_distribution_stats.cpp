// Reproduces the distribution statistics quoted in Sections 5.1, 5.2 and
// 5.4 of the paper:
//   * per variant: % of benchmark executions with speedup > 1 over WS, and
//     the % with gains of at least 5/10/15/20%;
//   * per benchmark: the best- and worst-performing configuration's
//     speedup (the paper quotes e.g. +3.5%..+25.3% best and -0.8%..-102%
//     worst for USLCWS).
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "harness.h"

using namespace lcws;
using namespace lcws::benchh;

int main() {
  print_header("Section 5.1/5.2/5.4 statistics",
               "speedup distribution per variant; best/worst per benchmark");
  const auto procs = env_procs({1, 2, 4, 8});
  const auto cells = sweep({sched_kind::ws, sched_kind::uslcws,
                            sched_kind::signal, sched_kind::conservative,
                            sched_kind::expose_half},
                           procs);
  const sweep_index index(cells);

  std::printf("%-14s %8s %8s %8s %8s %8s\n", "variant", ">1", ">=1.05",
              ">=1.10", ">=1.15", ">=1.20");
  for (const sched_kind kind : lcws_sched_kinds) {
    std::vector<double> all;
    for (const auto p : procs) {
      const auto s = speedups_vs_ws(cells, index, kind, p);
      all.insert(all.end(), s.begin(), s.end());
    }
    std::printf("%-14s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
                to_string(kind), 100 * fraction_above(all, 1.0),
                100 * fraction_above(all, 1.05 - 1e-12),
                100 * fraction_above(all, 1.10 - 1e-12),
                100 * fraction_above(all, 1.15 - 1e-12),
                100 * fraction_above(all, 1.20 - 1e-12));
  }

  for (const sched_kind kind : {sched_kind::uslcws, sched_kind::signal,
                                sched_kind::expose_half}) {
    std::printf("\nbest/worst configuration speedup per benchmark (%s):\n",
                to_string(kind));
    std::map<std::string, std::pair<double, double>> best_worst;
    for (const auto& c : cells) {
      if (c.kind != kind) continue;
      const cell* base = index.find(c.cfg, c.procs, sched_kind::ws);
      if (base == nullptr || c.result.seconds <= 0) continue;
      const double s = base->result.seconds / c.result.seconds;
      auto [it, fresh] =
          best_worst.try_emplace(c.cfg.benchmark, s, s);
      if (!fresh) {
        it->second.first = std::max(it->second.first, s);
        it->second.second = std::min(it->second.second, s);
      }
    }
    for (const auto& [bench, bw] : best_worst) {
      std::printf("  %-22s best %+6.1f%%   worst %+6.1f%%\n", bench.c_str(),
                  100 * (bw.first - 1), 100 * (bw.second - 1));
    }
  }
  return 0;
}
