// Graceful-degradation harness (DESIGN.md §6).
//
// Sweeps the Signal-family schedulers over a grid of forced signal-send
// failure rates (via the deterministic fault injector — this binary links
// the LCWS_FAULT_INJECTION library copy) and co-run load (spinner threads
// competing for the CPUs, the paper's §1.1 multiprogramming regime). Each
// cell runs a fork-join tree workload with CPU-burning leaves and reports:
//
//   makespan      median wall time of kReps runs
//   degrades /    health-monitor state transitions observed
//   recovers      (recovery is measured in a follow-up clean phase)
//   fallback      exposure requests routed through the user-space flag
//   sent/failed   signal delivery outcomes
//
// The interesting comparison is failure-rate > 0 with degradation ON:
// instead of burning every exposure request on a doomed pthread_kill +
// retry backoff, the pool converges to USLCWS-style user-space exposure
// and keeps flowing; once the fault is lifted, probes restore the signal
// path (recovers > 0 in the "recovery" column).
//
// Output: a human table plus, when LCWS_BENCH_JSON is set, one JSON
// object per cell (used to produce BENCH_degraded.json).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sched/dispatch.h"
#include "support/fault_injection.h"
#include "support/timing.h"

using namespace lcws;

namespace {

constexpr std::size_t kWorkers = 4;
constexpr int kReps = 5;
constexpr unsigned kTreeDepth = 9;      // 512 leaves x ~20us burn per run
constexpr std::uint64_t kTreeAnswer = 512;
constexpr int kCorunSpinners = 4;

const sched_kind kSignalFamily[] = {sched_kind::signal,
                                    sched_kind::conservative,
                                    sched_kind::expose_half};
const unsigned kFailPermille[] = {0, 500, 1000};

// Balanced fork tree whose leaves burn real CPU, so one run spans many OS
// scheduling quanta. A fib kernel with a sequential cutoff is over in a
// few microseconds — inside a single quantum the owner is never
// descheduled while holding private work, no exposure request is ever
// issued, and every degradation counter would read zero.
template <typename Sched>
std::uint64_t burn_tree(Sched& sched, unsigned depth) {
  if (depth == 0) {
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 20000; ++i) sink = sink + 1;
    return 1;
  }
  std::uint64_t left = 0, right = 0;
  sched.pardo([&] { left = burn_tree(sched, depth - 1); },
              [&] { right = burn_tree(sched, depth - 1); });
  return left + right;
}

// Pure CPU burn competing with the pool: the co-run load.
class corun_load {
 public:
  explicit corun_load(int threads) {
    for (int i = 0; i < threads; ++i) {
      spinners_.emplace_back([this] {
        volatile std::uint64_t sink = 0;
        while (!stop_.load(std::memory_order_relaxed)) {
          for (int j = 0; j < 4096; ++j) sink = sink + 1;
        }
      });
    }
  }
  ~corun_load() {
    stop_.store(true, std::memory_order_relaxed);
    for (auto& t : spinners_) t.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::vector<std::thread> spinners_;
};

struct cell {
  double makespan_med_s = 0;
  double recovery_s = 0;  // one clean run after lifting the fault
  std::uint64_t degrades = 0;
  std::uint64_t recovers = 0;
  std::uint64_t fallback = 0;
  std::uint64_t sent = 0;
  std::uint64_t failed = 0;
  std::uint64_t requests = 0;
};

cell measure(sched_kind kind, unsigned fail_permille, bool corun) {
  cell c;
  std::unique_ptr<corun_load> load;
  if (corun) load = std::make_unique<corun_load>(kCorunSpinners);
  with_scheduler(kind, kWorkers, [&](auto& sched) {
    sched.reset_counters();
    if (fail_permille > 0) {
      fi::configure(0x5eedull * (fail_permille + 1), fail_permille,
                    fi::site_bit(fi::site::signal_send));
    }
    std::vector<double> times;
    times.reserve(kReps);
    for (int rep = 0; rep < kReps; ++rep) {
      stopwatch sw;
      const std::uint64_t f = sched.run([&] { return burn_tree(sched, kTreeDepth); });
      times.push_back(sw.elapsed_seconds());
      if (f != kTreeAnswer) {
        std::fprintf(stderr, "WRONG RESULT %llu\n",
                     static_cast<unsigned long long>(f));
        std::exit(1);
      }
    }
    std::sort(times.begin(), times.end());
    c.makespan_med_s = times[times.size() / 2];
    // Lift the fault and measure one clean run: probes should restore the
    // signal path (recovers moves) without hurting the makespan.
    fi::disable();
    stopwatch sw;
    const std::uint64_t f = sched.run([&] { return burn_tree(sched, kTreeDepth); });
    c.recovery_s = sw.elapsed_seconds();
    if (f != kTreeAnswer) std::exit(1);
    const auto t = sched.profile().totals;
    c.degrades = t.degrade_events;
    c.recovers = t.recover_events;
    c.fallback = t.fallback_exposures;
    c.sent = t.signals_sent;
    c.failed = t.signals_failed;
    c.requests = t.exposure_requests;
  });
  fi::disable();
  return c;
}

void maybe_append_json(sched_kind kind, unsigned fail_permille, bool corun,
                       const cell& c) {
  const char* path = std::getenv("LCWS_BENCH_JSON");
  if (path == nullptr) return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(
      f,
      "{\"benchmark\":\"degraded_mode\",\"scheduler\":\"%s\","
      "\"procs\":%zu,\"fail_permille\":%u,\"corun\":%d,"
      "\"makespan_median_s\":%.6f,\"recovery_run_s\":%.6f,"
      "\"degrade_events\":%llu,\"recover_events\":%llu,"
      "\"fallback_exposures\":%llu,\"signals_sent\":%llu,"
      "\"signals_failed\":%llu,\"exposure_requests\":%llu}\n",
      to_string(kind), kWorkers, fail_permille, corun ? 1 : 0,
      c.makespan_med_s, c.recovery_s,
      static_cast<unsigned long long>(c.degrades),
      static_cast<unsigned long long>(c.recovers),
      static_cast<unsigned long long>(c.fallback),
      static_cast<unsigned long long>(c.sent),
      static_cast<unsigned long long>(c.failed),
      static_cast<unsigned long long>(c.requests));
  std::fclose(f);
}

// ---- §11 worker-loss scenario ---------------------------------------------
//
// One worker is killed (debug_lose_worker — a deterministic stand-in for
// the fi worker_crash site) during a run with heartbeat detection armed.
// Reported: the wall time of the run that absorbs the loss (detection +
// fencing + deque adoption, bounded by iterating the tree until the loss
// is booked) and the median short-handed makespan afterwards. Both land in
// BENCH_degraded.json as scenario="worker_loss" rows, which the perf gate
// holds to the same loose ratio as every other timing cell.
struct loss_cell {
  double loss_run_s = 0;        // run during which the loss is detected
  double shorthanded_med_s = 0; // median makespan on the surviving workers
  std::uint64_t workers_lost = 0;
  std::uint64_t deques_adopted = 0;
};

loss_cell measure_worker_loss(sched_kind kind) {
  loss_cell c;
  ::setenv("LCWS_WORKER_LOST_MS", "10", 1);
  with_scheduler(kind, kWorkers, [&](auto& sched) {
    sched.reset_counters();
    if (sched.run([&] { return burn_tree(sched, kTreeDepth); }) !=
        kTreeAnswer) {
      std::exit(1);  // warm run
    }
    stopwatch sw;
    sched.run([&]() -> std::uint64_t {
      sched.debug_lose_worker(1);
      // Keep the tree going until the loss is detected and absorbed (the
      // detector lives in the idle/join paths), with a hard iteration cap
      // so a broken detector shows up as a huge cell, not a hang.
      std::uint64_t sum = 0;
      for (int i = 0; i < 1000 && sched.lost_workers() == 0; ++i) {
        sum += burn_tree(sched, kTreeDepth);
      }
      return sum;
    });
    c.loss_run_s = sw.elapsed_seconds();
    std::vector<double> times;
    times.reserve(kReps);
    for (int rep = 0; rep < kReps; ++rep) {
      stopwatch sw2;
      if (sched.run([&] { return burn_tree(sched, kTreeDepth); }) !=
          kTreeAnswer) {
        std::exit(1);
      }
      times.push_back(sw2.elapsed_seconds());
    }
    std::sort(times.begin(), times.end());
    c.shorthanded_med_s = times[times.size() / 2];
    const auto t = sched.profile().totals;
    c.workers_lost = t.workers_lost;
    c.deques_adopted = t.deques_adopted;
  });
  ::unsetenv("LCWS_WORKER_LOST_MS");
  return c;
}

void maybe_append_loss_json(sched_kind kind, const loss_cell& c) {
  const char* path = std::getenv("LCWS_BENCH_JSON");
  if (path == nullptr) return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(
      f,
      "{\"benchmark\":\"degraded_mode\",\"scenario\":\"worker_loss\","
      "\"scheduler\":\"%s\",\"procs\":%zu,\"fail_permille\":0,\"corun\":0,"
      "\"recovery_run_s\":%.6f,\"makespan_median_s\":%.6f,"
      "\"workers_lost\":%llu,\"deques_adopted\":%llu}\n",
      to_string(kind), kWorkers, c.loss_run_s, c.shorthanded_med_s,
      static_cast<unsigned long long>(c.workers_lost),
      static_cast<unsigned long long>(c.deques_adopted));
  std::fclose(f);
}

}  // namespace

int main() {
  if (!fi::compiled_in()) {
    std::fprintf(stderr,
                 "degraded_mode must link the LCWS_FAULT_INJECTION build\n");
    return 1;
  }
  std::printf("== degraded_mode: Signal->user-space fallback under fire ==\n");
  std::printf(
      "P=%zu | burn_tree(%u) x%d per cell | co-run: %d spinner threads | "
      "degradation %s\n\n",
      kWorkers, kTreeDepth, kReps, kCorunSpinners,
      std::getenv("LCWS_DEGRADE_OFF") != nullptr ? "OFF" : "on");
  std::printf("%-14s %6s %6s %12s %12s %9s %9s %9s %8s %8s\n", "scheduler",
              "fail", "corun", "makespan(ms)", "recover(ms)", "degrades",
              "recovers", "fallback", "sent", "failed");
  for (const sched_kind kind : kSignalFamily) {
    for (const unsigned rate : kFailPermille) {
      for (const bool corun : {false, true}) {
        const cell c = measure(kind, rate, corun);
        std::printf("%-14s %6u %6d %12.3f %12.3f %9llu %9llu %9llu %8llu "
                    "%8llu\n",
                    to_string(kind), rate, corun ? 1 : 0,
                    c.makespan_med_s * 1e3, c.recovery_s * 1e3,
                    static_cast<unsigned long long>(c.degrades),
                    static_cast<unsigned long long>(c.recovers),
                    static_cast<unsigned long long>(c.fallback),
                    static_cast<unsigned long long>(c.sent),
                    static_cast<unsigned long long>(c.failed));
        maybe_append_json(kind, rate, corun, c);
      }
    }
  }
  std::printf("\n== worker_loss: one worker killed mid-run, detection %u ms "
              "(DESIGN.md §11) ==\n",
              10u);
  std::printf("%-14s %14s %16s %6s %8s\n", "scheduler", "loss_run(ms)",
              "shorthanded(ms)", "lost", "adopted");
  for (const sched_kind kind : all_sched_kinds) {
    const loss_cell c = measure_worker_loss(kind);
    std::printf("%-14s %14.3f %16.3f %6llu %8llu\n", to_string(kind),
                c.loss_run_s * 1e3, c.shorthanded_med_s * 1e3,
                static_cast<unsigned long long>(c.workers_lost),
                static_cast<unsigned long long>(c.deques_adopted));
    maybe_append_loss_json(kind, c);
  }
  return 0;
}
