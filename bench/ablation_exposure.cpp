// Ablation over the work-exposure policies (DESIGN.md): the same
// fork-join workload under the base Signal, Conservative Exposure and
// Expose Half schedulers, reporting wall-clock time together with the
// exposure/steal/fence counters that explain it (Section 5.4's analysis).
#include <benchmark/benchmark.h>

#include <cstdint>

#include "sched/scheduler.h"

namespace {

// The probe workload: fib with a moderate sequential cutoff, giving a deep
// fork tree with mixed task sizes.
template <typename Sched>
std::uint64_t fib(Sched& sched, unsigned n) {
  if (n < 2) return n;
  if (n < 14) {
    std::uint64_t a = 0, b = 1;
    for (unsigned i = 1; i < n; ++i) {
      const std::uint64_t c = a + b;
      a = b;
      b = c;
    }
    return b;
  }
  std::uint64_t left = 0, right = 0;
  sched.pardo([&] { left = fib(sched, n - 1); },
              [&] { right = fib(sched, n - 2); });
  return left + right;
}

template <typename Sched>
void run_policy(benchmark::State& state) {
  Sched sched(4);
  const unsigned n = 27;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.run([&] { return fib(sched, n); }));
  }
  const auto totals = sched.profile().totals;
  const auto it = static_cast<double>(state.iterations());
  state.counters["exposures"] =
      benchmark::Counter(static_cast<double>(totals.exposures) / it);
  state.counters["steals"] =
      benchmark::Counter(static_cast<double>(totals.steals) / it);
  state.counters["fences"] =
      benchmark::Counter(static_cast<double>(totals.fences) / it);
  state.counters["signals"] =
      benchmark::Counter(static_cast<double>(totals.signals_sent) / it);
  state.counters["unstolen_frac"] = benchmark::Counter(
      totals.exposures == 0
          ? 0.0
          : static_cast<double>(totals.pops_public) /
                static_cast<double>(totals.exposures));
}

void BM_ExposureWs(benchmark::State& state) {
  run_policy<lcws::ws_scheduler>(state);
}
BENCHMARK(BM_ExposureWs)->Unit(benchmark::kMillisecond);

void BM_ExposureUslcws(benchmark::State& state) {
  run_policy<lcws::uslcws_scheduler>(state);
}
BENCHMARK(BM_ExposureUslcws)->Unit(benchmark::kMillisecond);

void BM_ExposureSignal(benchmark::State& state) {
  run_policy<lcws::signal_scheduler>(state);
}
BENCHMARK(BM_ExposureSignal)->Unit(benchmark::kMillisecond);

void BM_ExposureConservative(benchmark::State& state) {
  run_policy<lcws::conservative_scheduler>(state);
}
BENCHMARK(BM_ExposureConservative)->Unit(benchmark::kMillisecond);

void BM_ExposureHalf(benchmark::State& state) {
  run_policy<lcws::expose_half_scheduler>(state);
}
BENCHMARK(BM_ExposureHalf)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
