// Reproduces Figure 7 (paper Section 5.2): box plots of the speedup of the
// signal-based LCWS implementation with regard to WS, varying the number
// of processors across all benchmark configurations.
#include <cstdio>

#include "harness.h"

using namespace lcws;
using namespace lcws::benchh;

int main() {
  print_header("Figure 7",
               "speedup of signal-based LCWS wrt WS (box over all configs)");
  const auto procs = env_procs({1, 2, 4, 8});
  const auto cells = sweep({sched_kind::ws, sched_kind::signal}, procs);
  const sweep_index index(cells);
  for (const auto p : procs) {
    print_box_row(p,
                  box_of(speedups_vs_ws(cells, index, sched_kind::signal, p)));
  }
  return 0;
}
