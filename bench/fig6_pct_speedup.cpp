// Reproduces Figure 6: percentage of benchmark configurations for which
// each LCWS variant obtained a speedup > 1 over WS, varying the number of
// processors.
#include <cstdio>

#include "harness.h"

using namespace lcws;
using namespace lcws::benchh;

int main() {
  print_header("Figure 6",
               "%% of configs with speedup > 1 wrt WS, per variant and P");
  const auto procs = env_procs({1, 2, 4, 8});
  const auto cells = sweep({sched_kind::ws, sched_kind::uslcws,
                            sched_kind::signal, sched_kind::conservative,
                            sched_kind::expose_half},
                           procs);
  const sweep_index index(cells);

  std::printf("%-14s", "variant");
  for (const auto p : procs) std::printf("  P=%-6zu", p);
  std::printf("\n");
  for (const sched_kind kind : lcws_sched_kinds) {
    std::printf("%-14s", to_string(kind));
    for (const auto p : procs) {
      const double pct =
          100.0 * fraction_above(speedups_vs_ws(cells, index, kind, p), 1.0);
      std::printf("  %5.1f%%  ", pct);
    }
    std::printf("\n");
  }
  return 0;
}
