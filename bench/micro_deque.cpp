// Microbenchmark: owner-side deque operation cost per deque type — the
// per-operation view of the paper's claim that split deques make local
// work synchronization-free. The WS baselines pay a seq_cst fence per
// push+pop cycle; the split deque pays none while work stays private.
#include <benchmark/benchmark.h>

#include "deque/abp_deque.h"
#include "deque/chase_lev_deque.h"
#include "deque/split_deque.h"

namespace {

using lcws::abp_deque;
using lcws::chase_lev_deque;
using lcws::split_deque;

void BM_AbpPushPop(benchmark::State& state) {
  abp_deque<int> d(1024);
  int task = 0;
  for (auto _ : state) {
    d.push_bottom(&task);
    benchmark::DoNotOptimize(d.pop_bottom());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AbpPushPop);

void BM_ChaseLevPushPop(benchmark::State& state) {
  chase_lev_deque<int> d(1024);
  int task = 0;
  for (auto _ : state) {
    d.push_bottom(&task);
    benchmark::DoNotOptimize(d.pop_bottom());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChaseLevPushPop);

void BM_SplitPushPopOriginal(benchmark::State& state) {
  split_deque<int> d(1024);
  int task = 0;
  for (auto _ : state) {
    d.push_bottom(&task);
    benchmark::DoNotOptimize(d.pop_bottom_original());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SplitPushPopOriginal);

void BM_SplitPushPopSignalSafe(benchmark::State& state) {
  split_deque<int> d(1024);
  int task = 0;
  for (auto _ : state) {
    d.push_bottom(&task);
    benchmark::DoNotOptimize(d.pop_bottom_signal_safe());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SplitPushPopSignalSafe);

// Exposed round trip: push -> expose -> pop_public (the synchronized slow
// path the split deque pays only for shared work).
void BM_SplitExposedRoundTrip(benchmark::State& state) {
  split_deque<int> d(1024);
  int task = 0;
  for (auto _ : state) {
    d.push_bottom(&task);
    d.expose_one();
    benchmark::DoNotOptimize(d.pop_bottom_original());  // private empty
    benchmark::DoNotOptimize(d.pop_public_bottom());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SplitExposedRoundTrip);

// Steal path cost (uncontended). Steals advance top without lowering bot,
// so the bounded deques only reset their indices when the owner drains
// them — batch the loop and drain once per batch.
constexpr int kStealBatch = 1024;

void BM_SplitStealFromPublic(benchmark::State& state) {
  split_deque<int> d(1 << 12);
  int task = 0;
  while (state.KeepRunningBatch(kStealBatch)) {
    for (int i = 0; i < kStealBatch; ++i) {
      d.push_bottom(&task);
      d.expose_one();
    }
    for (int i = 0; i < kStealBatch; ++i) {
      benchmark::DoNotOptimize(d.pop_top());
    }
    benchmark::DoNotOptimize(d.pop_public_bottom());  // resets indices
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SplitStealFromPublic);

void BM_AbpSteal(benchmark::State& state) {
  abp_deque<int> d(1 << 12);
  int task = 0;
  while (state.KeepRunningBatch(kStealBatch)) {
    for (int i = 0; i < kStealBatch; ++i) d.push_bottom(&task);
    for (int i = 0; i < kStealBatch; ++i) {
      benchmark::DoNotOptimize(d.pop_top());
    }
    benchmark::DoNotOptimize(d.pop_bottom());  // resets indices
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AbpSteal);

}  // namespace

BENCHMARK_MAIN();
