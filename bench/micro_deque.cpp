// Microbenchmark: owner-side deque operation cost per deque type — the
// per-operation view of the paper's claim that split deques make local
// work synchronization-free. The WS baselines pay a seq_cst fence per
// push+pop cycle; the split deque pays none while work stays private.
//
// Two modes:
//
//   default             the google-benchmark timing suite below.
//
//   LCWS_BENCH_JSON=f   deterministic structural pass (used to produce
//                       BENCH_deque.json and by scripts/perf_gate.py):
//                       each scenario runs a fixed 65536-op script twice —
//                       once with storage preallocated, once growing from
//                       64 slots — and reports the exact fence/CAS/grow
//                       counter deltas as JSON Lines. The counts are
//                       load-independent, so the gate can require
//                       bit-equality: growth must add zero fences and
//                       zero CAS to the fast path, the split deque's
//                       private fill+drain must stay at exactly zero of
//                       both, and the wsmult deque must report zero
//                       fences and zero CAS on BOTH its fill_drain and
//                       steal scenarios (the fig3-style proof that owner
//                       take and thief steal are fully fence/CAS-free).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "deque/abp_deque.h"
#include "deque/chase_lev_deque.h"
#include "deque/split_deque.h"
#include "deque/wsmult_deque.h"
#include "stats/counters.h"

namespace {

using lcws::abp_deque;
using lcws::chase_lev_deque;
using lcws::deque_growth;
using lcws::split_deque;
using lcws::wsmult_deque;

void BM_AbpPushPop(benchmark::State& state) {
  abp_deque<int> d(1024);
  int task = 0;
  for (auto _ : state) {
    d.push_bottom(&task);
    benchmark::DoNotOptimize(d.pop_bottom());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AbpPushPop);

void BM_ChaseLevPushPop(benchmark::State& state) {
  chase_lev_deque<int> d(1024);
  int task = 0;
  for (auto _ : state) {
    d.push_bottom(&task);
    benchmark::DoNotOptimize(d.pop_bottom());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChaseLevPushPop);

void BM_SplitPushPopOriginal(benchmark::State& state) {
  split_deque<int> d(1024);
  int task = 0;
  for (auto _ : state) {
    d.push_bottom(&task);
    benchmark::DoNotOptimize(d.pop_bottom_original());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SplitPushPopOriginal);

void BM_SplitPushPopSignalSafe(benchmark::State& state) {
  split_deque<int> d(1024);
  int task = 0;
  for (auto _ : state) {
    d.push_bottom(&task);
    benchmark::DoNotOptimize(d.pop_bottom_signal_safe());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SplitPushPopSignalSafe);

void BM_WsmultPushPop(benchmark::State& state) {
  wsmult_deque<int> d(1024);
  int task = 0;
  for (auto _ : state) {
    d.push_bottom(&task);
    benchmark::DoNotOptimize(d.pop_bottom());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WsmultPushPop);

// Exposed round trip: push -> expose -> pop_public (the synchronized slow
// path the split deque pays only for shared work).
void BM_SplitExposedRoundTrip(benchmark::State& state) {
  split_deque<int> d(1024);
  int task = 0;
  for (auto _ : state) {
    d.push_bottom(&task);
    d.expose_one();
    benchmark::DoNotOptimize(d.pop_bottom_original());  // private empty
    benchmark::DoNotOptimize(d.pop_public_bottom());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SplitExposedRoundTrip);

// Steal path cost (uncontended). Steals advance top without lowering bot,
// so the bounded deques only reset their indices when the owner drains
// them — batch the loop and drain once per batch.
constexpr int kStealBatch = 1024;

void BM_SplitStealFromPublic(benchmark::State& state) {
  split_deque<int> d(1 << 12);
  int task = 0;
  while (state.KeepRunningBatch(kStealBatch)) {
    for (int i = 0; i < kStealBatch; ++i) {
      d.push_bottom(&task);
      d.expose_one();
    }
    for (int i = 0; i < kStealBatch; ++i) {
      benchmark::DoNotOptimize(d.pop_top());
    }
    benchmark::DoNotOptimize(d.pop_public_bottom());  // resets indices
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SplitStealFromPublic);

void BM_AbpSteal(benchmark::State& state) {
  abp_deque<int> d(1 << 12);
  int task = 0;
  while (state.KeepRunningBatch(kStealBatch)) {
    for (int i = 0; i < kStealBatch; ++i) d.push_bottom(&task);
    for (int i = 0; i < kStealBatch; ++i) {
      benchmark::DoNotOptimize(d.pop_top());
    }
    benchmark::DoNotOptimize(d.pop_bottom());  // resets indices
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AbpSteal);

void BM_WsmultSteal(benchmark::State& state) {
  wsmult_deque<int> d(1 << 12);
  int task = 0;
  while (state.KeepRunningBatch(kStealBatch)) {
    for (int i = 0; i < kStealBatch; ++i) d.push_bottom(&task);
    for (int i = 0; i < kStealBatch; ++i) {
      benchmark::DoNotOptimize(d.pop_top());
    }
    // Drain walk past the claimed slots winds the indices back.
    benchmark::DoNotOptimize(d.pop_bottom());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WsmultSteal);

// Growth ramp: the whole point of the growable deque is that this cycle
// no longer throws — time a fill that doubles 64 -> 64Ki in-loop.
void BM_SplitGrowthRamp(benchmark::State& state) {
  constexpr int kRamp = 1 << 16;
  int task = 0;
  for (auto _ : state) {
    split_deque<int> d(64, nullptr, deque_growth{false, 0});
    for (int i = 0; i < kRamp; ++i) d.push_bottom(&task);
    for (int i = 0; i < kRamp; ++i) {
      benchmark::DoNotOptimize(d.pop_bottom_original());
    }
  }
  state.SetItemsProcessed(state.iterations() * kRamp);
}
BENCHMARK(BM_SplitGrowthRamp)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Structural mode (LCWS_BENCH_JSON)
// ---------------------------------------------------------------------------

constexpr int kOps = 1 << 16;        // fixed op count: counters, not time
constexpr std::size_t kGrowStart = 64;  // 64 -> 65536 is exactly 10 doublings

struct cell {
  const char* scenario;
  const char* deque;
  const char* mode;  // "prealloc" | "grow"
  double seconds = 0;
  lcws::stats::op_counters delta;
};

// Runs `body` under a counter snapshot and wall clock.
template <typename Body>
cell measure(const char* scenario, const char* deque, const char* mode,
             Body&& body) {
  cell c{scenario, deque, mode, 0, {}};
  const lcws::stats::op_counters before = lcws::stats::local_counters();
  const auto t0 = std::chrono::steady_clock::now();
  body();
  const auto t1 = std::chrono::steady_clock::now();
  c.delta = lcws::stats::local_counters() - before;
  c.seconds = std::chrono::duration<double>(t1 - t0).count();
  return c;
}

// mode=="grow" starts at kGrowStart slots and must double its way up;
// "prealloc" starts with all kOps slots so no growth path ever runs.
std::size_t start_capacity(const char* mode) {
  return mode[0] == 'g' ? kGrowStart : static_cast<std::size_t>(kOps);
}

cell split_fill_drain(const char* mode) {
  return measure("fill_drain", "split", mode, [&] {
    split_deque<int> d(start_capacity(mode), nullptr, deque_growth{false, 0});
    static int task = 0;
    for (int i = 0; i < kOps; ++i) d.push_bottom(&task);
    for (int i = 0; i < kOps; ++i) (void)d.pop_bottom_original();
  });
}

cell abp_fill_drain(const char* mode) {
  return measure("fill_drain", "abp", mode, [&] {
    abp_deque<int> d(start_capacity(mode), nullptr, deque_growth{false, 0});
    static int task = 0;
    for (int i = 0; i < kOps; ++i) d.push_bottom(&task);
    for (int i = 0; i < kOps; ++i) (void)d.pop_bottom();
  });
}

cell chase_lev_fill_drain(const char* mode) {
  return measure("fill_drain", "chase_lev", mode, [&] {
    chase_lev_deque<int> d(start_capacity(mode), nullptr,
                           deque_growth{false, 0});
    static int task = 0;
    for (int i = 0; i < kOps; ++i) d.push_bottom(&task);
    for (int i = 0; i < kOps; ++i) (void)d.pop_bottom();
  });
}

cell wsmult_fill_drain(const char* mode) {
  return measure("fill_drain", "wsmult", mode, [&] {
    wsmult_deque<int> d(start_capacity(mode), nullptr,
                        deque_growth{false, 0});
    static int task = 0;
    for (int i = 0; i < kOps; ++i) d.push_bottom(&task);
    for (int i = 0; i < kOps; ++i) (void)d.pop_bottom();
  });
}

cell split_steal(const char* mode) {
  return measure("steal", "split", mode, [&] {
    split_deque<int> d(start_capacity(mode), nullptr, deque_growth{false, 0});
    static int task = 0;
    for (int i = 0; i < kOps; ++i) {
      d.push_bottom(&task);
      d.expose_one();
    }
    for (int i = 0; i < kOps; ++i) (void)d.pop_top();
    (void)d.pop_public_bottom();  // resets indices
  });
}

cell abp_steal(const char* mode) {
  return measure("steal", "abp", mode, [&] {
    abp_deque<int> d(start_capacity(mode), nullptr, deque_growth{false, 0});
    static int task = 0;
    for (int i = 0; i < kOps; ++i) d.push_bottom(&task);
    for (int i = 0; i < kOps; ++i) (void)d.pop_top();
    (void)d.pop_bottom();  // resets indices
  });
}

cell chase_lev_steal(const char* mode) {
  return measure("steal", "chase_lev", mode, [&] {
    chase_lev_deque<int> d(start_capacity(mode), nullptr,
                           deque_growth{false, 0});
    static int task = 0;
    for (int i = 0; i < kOps; ++i) d.push_bottom(&task);
    for (int i = 0; i < kOps; ++i) (void)d.pop_top();
  });
}

cell wsmult_steal(const char* mode) {
  return measure("steal", "wsmult", mode, [&] {
    wsmult_deque<int> d(start_capacity(mode), nullptr,
                        deque_growth{false, 0});
    static int task = 0;
    for (int i = 0; i < kOps; ++i) d.push_bottom(&task);
    for (int i = 0; i < kOps; ++i) (void)d.pop_top();
    (void)d.pop_bottom();  // drain walk resets indices
  });
}

int run_structural(const char* path) {
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) {
    std::fprintf(stderr, "LCWS_BENCH_JSON: cannot open %s\n", path);
    return 1;
  }
  cell cells[] = {
      split_fill_drain("prealloc"),     split_fill_drain("grow"),
      abp_fill_drain("prealloc"),       abp_fill_drain("grow"),
      chase_lev_fill_drain("prealloc"), chase_lev_fill_drain("grow"),
      wsmult_fill_drain("prealloc"),    wsmult_fill_drain("grow"),
      split_steal("prealloc"),          split_steal("grow"),
      abp_steal("prealloc"),            abp_steal("grow"),
      chase_lev_steal("prealloc"),      chase_lev_steal("grow"),
      wsmult_steal("prealloc"),         wsmult_steal("grow"),
  };
  std::printf("%-12s %-10s %-9s %10s %10s %10s %6s %8s %10s\n", "scenario",
              "deque", "mode", "ops", "fences", "cas", "grows", "hwm",
              "seconds");
  for (const cell& c : cells) {
    const auto& t = c.delta;
    std::printf("%-12s %-10s %-9s %10d %10llu %10llu %6llu %8llu %10.4f\n",
                c.scenario, c.deque, c.mode, kOps,
                static_cast<unsigned long long>(t.fences.get()),
                static_cast<unsigned long long>(t.cas.get()),
                static_cast<unsigned long long>(t.deque_grows.get()),
                static_cast<unsigned long long>(t.deque_hwm.get()),
                c.seconds);
    std::fprintf(
        f,
        "{\"benchmark\":\"micro_deque\",\"scenario\":\"%s\",\"deque\":\"%s\","
        "\"mode\":\"%s\",\"ops\":%d,\"fences\":%llu,\"cas\":%llu,"
        "\"grows\":%llu,\"hwm\":%llu,\"seconds\":%.6f}\n",
        c.scenario, c.deque, c.mode, kOps,
        static_cast<unsigned long long>(t.fences.get()),
        static_cast<unsigned long long>(t.cas.get()),
        static_cast<unsigned long long>(t.deque_grows.get()),
        static_cast<unsigned long long>(t.deque_hwm.get()), c.seconds);
  }
  std::fclose(f);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (const char* path = std::getenv("LCWS_BENCH_JSON")) {
    return run_structural(path);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
