// Ablation for the Section 4.1.2 implementation detail: computing
// round(r/2) in the Expose Half handler. The paper reports that std::round
// slowed the variant down by an order of magnitude and picked a Lua-style
// magic-number conversion (double2int); integer division is the middle
// ground.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>

#include "deque/split_deque.h"
#include "support/rng.h"

namespace {

constexpr int kBatch = 1024;

std::uint64_t* values() {
  static std::uint64_t v[kBatch];
  static bool init = [] {
    lcws::xoshiro256 rng(7);
    for (auto& x : v) x = 3 + rng.bounded(1000);
    return true;
  }();
  (void)init;
  return v;
}

void BM_StdRound(benchmark::State& state) {
  const auto* v = values();
  for (auto _ : state) {
    std::int64_t sum = 0;
    for (int i = 0; i < kBatch; ++i) {
      sum += static_cast<std::int64_t>(
          std::round(static_cast<double>(v[i]) / 2.0));
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_StdRound);

void BM_IntegerDivision(benchmark::State& state) {
  const auto* v = values();
  for (auto _ : state) {
    std::int64_t sum = 0;
    for (int i = 0; i < kBatch; ++i) {
      sum += static_cast<std::int64_t>((v[i] + 1) / 2);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_IntegerDivision);

void BM_Double2Int(benchmark::State& state) {
  const auto* v = values();
  for (auto _ : state) {
    std::int64_t sum = 0;
    for (int i = 0; i < kBatch; ++i) {
      sum += lcws::double2int(static_cast<double>(v[i]) / 2.0);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_Double2Int);

}  // namespace

BENCHMARK_MAIN();
