// Microbenchmark: the raw cost of the synchronization primitives whose
// counts the paper compares — seq_cst fences and CAS versus the relaxed
// loads/stores that split deques get away with. This is the per-operation
// justification for "synchronization-light".
#include <benchmark/benchmark.h>

#include <atomic>

namespace {

std::atomic<std::uint64_t> g_word{0};

void BM_RelaxedStore(benchmark::State& state) {
  std::uint64_t v = 0;
  for (auto _ : state) {
    g_word.store(++v, std::memory_order_relaxed);
  }
}
BENCHMARK(BM_RelaxedStore);

void BM_RelaxedLoad(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_word.load(std::memory_order_relaxed));
  }
}
BENCHMARK(BM_RelaxedLoad);

void BM_SeqCstStore(benchmark::State& state) {
  std::uint64_t v = 0;
  for (auto _ : state) {
    g_word.store(++v, std::memory_order_seq_cst);
  }
}
BENCHMARK(BM_SeqCstStore);

void BM_SeqCstFence(benchmark::State& state) {
  std::uint64_t v = 0;
  for (auto _ : state) {
    g_word.store(++v, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }
}
BENCHMARK(BM_SeqCstFence);

void BM_CompareExchange(benchmark::State& state) {
  for (auto _ : state) {
    std::uint64_t expected = g_word.load(std::memory_order_relaxed);
    benchmark::DoNotOptimize(g_word.compare_exchange_strong(
        expected, expected + 1, std::memory_order_relaxed,
        std::memory_order_relaxed));
  }
}
BENCHMARK(BM_CompareExchange);

void BM_FetchAdd(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        g_word.fetch_add(1, std::memory_order_relaxed));
  }
}
BENCHMARK(BM_FetchAdd);

}  // namespace

BENCHMARK_MAIN();
