// Shared machinery for the figure-reproduction harnesses.
//
// Every harness sweeps benchmark configurations <benchmark, instance, P>
// under one or more schedulers, then aggregates per-configuration speedups
// or counter ratios into the paper's box plots / averages / percentages.
//
// Environment knobs (all optional):
//   LCWS_BENCH_SCALE   input-size multiplier (default 0.05: quick runs
//                      sized for a laptop core; the paper used 100M-element
//                      inputs on 16-64 hardware threads)
//   LCWS_BENCH_ROUNDS  timed repetitions per configuration (default 3)
//   LCWS_BENCH_PROCS   comma list of worker counts (default "1,2,4,8")
//   LCWS_BENCH_MAXCFG  cap on the number of benchmark configs (default all)
//   LCWS_BENCH_CSV     file path: append one CSV row per measured cell
//                      (benchmark,instance,procs,scheduler,seconds,fences,
//                      cas,steals,steal_attempts,exposures,unexposures,
//                      signals,parks,wakes,idle_ns,steals_near,
//                      steals_remote,hw,cycles,instructions,cache_refs,
//                      cache_misses,task_clock_ns) for offline plotting.
//                      `hw` is the perf_counters availability marker
//                      ("available", "partial:...", "unavailable:..."); the
//                      numeric hw fields are 0 unless it says otherwise
//   LCWS_BENCH_JSON    file path: append one JSON object per measured cell
//                      (JSON Lines; same fields as the CSV, named) for
//                      offline plotting without a CSV header convention
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "pbbs/runner.h"
#include "sched/policies.h"
#include "support/timing.h"
#include "support/topology.h"

namespace lcws::benchh {

// ---- environment -----------------------------------------------------------

inline double env_scale() {
  if (const char* s = std::getenv("LCWS_BENCH_SCALE")) return std::atof(s);
  return 0.05;
}

inline int env_rounds() {
  if (const char* s = std::getenv("LCWS_BENCH_ROUNDS")) {
    return std::max(1, std::atoi(s));
  }
  return 3;
}

inline std::vector<std::size_t> env_procs(
    std::vector<std::size_t> fallback = {1, 2, 4, 8}) {
  const char* s = std::getenv("LCWS_BENCH_PROCS");
  if (s == nullptr) return fallback;
  std::vector<std::size_t> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const long v = std::atol(item.c_str());
    if (v > 0) out.push_back(static_cast<std::size_t>(v));
  }
  return out.empty() ? fallback : out;
}

inline std::vector<pbbs::config> env_configs() {
  auto configs = pbbs::all_configs();
  if (const char* s = std::getenv("LCWS_BENCH_MAXCFG")) {
    const std::size_t cap = static_cast<std::size_t>(std::atol(s));
    if (cap > 0 && cap < configs.size()) configs.resize(cap);
  }
  return configs;
}

// ---- statistics ------------------------------------------------------------

struct box {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
  std::size_t n = 0;
};

inline double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

inline box box_of(std::vector<double> xs) {
  box b;
  if (xs.empty()) return b;
  std::sort(xs.begin(), xs.end());
  b.n = xs.size();
  b.min = xs.front();
  b.q1 = quantile(xs, 0.25);
  b.median = quantile(xs, 0.5);
  b.q3 = quantile(xs, 0.75);
  b.max = xs.back();
  return b;
}

inline double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double s = 0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

inline double fraction_above(const std::vector<double>& xs, double threshold) {
  if (xs.empty()) return 0;
  std::size_t n = 0;
  for (const double x : xs) n += x > threshold;
  return static_cast<double>(n) / static_cast<double>(xs.size());
}

// ---- sweep -----------------------------------------------------------------

// One measured cell: a configuration run under one scheduler with P
// workers.
struct cell {
  pbbs::config cfg;
  std::size_t procs = 0;
  sched_kind kind = sched_kind::ws;
  pbbs::run_result result;
};

// Appends measured cells as CSV rows when LCWS_BENCH_CSV is set.
inline void maybe_write_csv(const std::vector<cell>& cells) {
  const char* path = std::getenv("LCWS_BENCH_CSV");
  if (path == nullptr) return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) {
    std::fprintf(stderr, "LCWS_BENCH_CSV: cannot open %s\n", path);
    return;
  }
  for (const auto& c : cells) {
    const auto& t = c.result.profile.totals;
    const auto& hw = c.result.profile.hw;
    std::fprintf(
        f,
        "%s,%s,%zu,%s,%.9f,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
        "%llu,%llu,%s,%llu,%llu,%llu,%llu,%llu\n",
        c.cfg.benchmark.c_str(), c.cfg.instance.c_str(), c.procs,
        to_string(c.kind), c.result.seconds,
        static_cast<unsigned long long>(t.fences),
        static_cast<unsigned long long>(t.cas),
        static_cast<unsigned long long>(t.steals),
        static_cast<unsigned long long>(t.steal_attempts),
        static_cast<unsigned long long>(t.exposures),
        static_cast<unsigned long long>(t.unexposures),
        static_cast<unsigned long long>(t.signals_sent),
        static_cast<unsigned long long>(t.parks),
        static_cast<unsigned long long>(t.wakes),
        static_cast<unsigned long long>(t.idle_ns),
        static_cast<unsigned long long>(t.steals_near),
        static_cast<unsigned long long>(t.steals_remote),
        hw.status.c_str(),
        static_cast<unsigned long long>(hw.cycles),
        static_cast<unsigned long long>(hw.instructions),
        static_cast<unsigned long long>(hw.cache_references),
        static_cast<unsigned long long>(hw.cache_misses),
        static_cast<unsigned long long>(hw.task_clock_ns));
  }
  std::fclose(f);
}

// Appends measured cells as JSON Lines when LCWS_BENCH_JSON is set — the
// same fields as the CSV, but named, so downstream tooling needs no header
// convention. Benchmark/instance/scheduler names are identifier-like
// ([A-Za-z0-9_.-]), so plain %s interpolation cannot break the JSON.
inline void maybe_write_json(const std::vector<cell>& cells) {
  const char* path = std::getenv("LCWS_BENCH_JSON");
  if (path == nullptr) return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) {
    std::fprintf(stderr, "LCWS_BENCH_JSON: cannot open %s\n", path);
    return;
  }
  for (const auto& c : cells) {
    const auto& t = c.result.profile.totals;
    const auto& hw = c.result.profile.hw;
    std::fprintf(
        f,
        "{\"benchmark\":\"%s\",\"instance\":\"%s\",\"procs\":%zu,"
        "\"scheduler\":\"%s\",\"seconds\":%.9f,\"fences\":%llu,"
        "\"cas\":%llu,\"steals\":%llu,\"steal_attempts\":%llu,"
        "\"exposures\":%llu,\"unexposures\":%llu,\"signals\":%llu,"
        "\"parks\":%llu,\"wakes\":%llu,\"idle_ns\":%llu,"
        "\"steals_near\":%llu,\"steals_remote\":%llu,"
        "\"hw\":\"%s\",\"cycles\":%llu,\"instructions\":%llu,"
        "\"cache_refs\":%llu,\"cache_misses\":%llu,"
        "\"task_clock_ns\":%llu}\n",
        c.cfg.benchmark.c_str(), c.cfg.instance.c_str(), c.procs,
        to_string(c.kind), c.result.seconds,
        static_cast<unsigned long long>(t.fences),
        static_cast<unsigned long long>(t.cas),
        static_cast<unsigned long long>(t.steals),
        static_cast<unsigned long long>(t.steal_attempts),
        static_cast<unsigned long long>(t.exposures),
        static_cast<unsigned long long>(t.unexposures),
        static_cast<unsigned long long>(t.signals_sent),
        static_cast<unsigned long long>(t.parks),
        static_cast<unsigned long long>(t.wakes),
        static_cast<unsigned long long>(t.idle_ns),
        static_cast<unsigned long long>(t.steals_near),
        static_cast<unsigned long long>(t.steals_remote),
        hw.status.c_str(),
        static_cast<unsigned long long>(hw.cycles),
        static_cast<unsigned long long>(hw.instructions),
        static_cast<unsigned long long>(hw.cache_references),
        static_cast<unsigned long long>(hw.cache_misses),
        static_cast<unsigned long long>(hw.task_clock_ns));
  }
  std::fclose(f);
}

// Runs every config x P x kind; returns cells in deterministic order.
// Progress goes to stderr so figure output stays clean on stdout.
inline std::vector<cell> sweep(const std::vector<sched_kind>& kinds,
                               const std::vector<std::size_t>& procs) {
  const auto configs = env_configs();
  const double scale = env_scale();
  const int rounds = env_rounds();
  std::vector<cell> cells;
  cells.reserve(configs.size() * procs.size() * kinds.size());
  const std::size_t total = configs.size() * procs.size() * kinds.size();
  std::size_t done = 0;
  stopwatch sw;
  for (const auto& cfg : configs) {
    const std::size_t size = pbbs::default_size(cfg.benchmark, scale);
    for (const std::size_t p : procs) {
      for (const sched_kind kind : kinds) {
        cell c;
        c.cfg = cfg;
        c.procs = p;
        c.kind = kind;
        c.result = pbbs::run_config(kind, p, cfg, size, rounds, false);
        cells.push_back(std::move(c));
        ++done;
        if (done % 25 == 0 || done == total) {
          std::fprintf(stderr, "  [%zu/%zu] %.1fs elapsed\n", done, total,
                       sw.elapsed_seconds());
        }
      }
    }
  }
  maybe_write_csv(cells);
  maybe_write_json(cells);
  return cells;
}

// Index the sweep by (config key, procs, kind).
struct sweep_index {
  std::map<std::string, const cell*> by_key;

  explicit sweep_index(const std::vector<cell>& cells) {
    for (const auto& c : cells) {
      by_key[key(c.cfg, c.procs, c.kind)] = &c;
    }
  }

  static std::string key(const pbbs::config& cfg, std::size_t procs,
                         sched_kind kind) {
    return cfg.key() + "|" + std::to_string(procs) + "|" + to_string(kind);
  }

  const cell* find(const pbbs::config& cfg, std::size_t procs,
                   sched_kind kind) const {
    const auto it = by_key.find(key(cfg, procs, kind));
    return it == by_key.end() ? nullptr : it->second;
  }
};

// Per-config speedup of `kind` relative to the WS baseline at the same P.
inline std::vector<double> speedups_vs_ws(const std::vector<cell>& cells,
                                          const sweep_index& index,
                                          sched_kind kind,
                                          std::size_t procs) {
  std::vector<double> out;
  for (const auto& c : cells) {
    if (c.kind != kind || c.procs != procs) continue;
    const cell* base = index.find(c.cfg, procs, sched_kind::ws);
    if (base == nullptr || c.result.seconds <= 0) continue;
    out.push_back(base->result.seconds / c.result.seconds);
  }
  return out;
}

// Per-config ratio of a counter between two schedulers at the same P.
template <typename Field>
std::vector<double> counter_ratios(const std::vector<cell>& cells,
                                   const sweep_index& index, sched_kind num,
                                   sched_kind den, std::size_t procs,
                                   Field field) {
  std::vector<double> out;
  for (const auto& c : cells) {
    if (c.kind != num || c.procs != procs) continue;
    const cell* base = index.find(c.cfg, procs, den);
    if (base == nullptr) continue;
    const double d = static_cast<double>(field(base->result.profile));
    const double n = static_cast<double>(field(c.result.profile));
    if (d > 0) out.push_back(n / d);
  }
  return out;
}

// ---- output ----------------------------------------------------------------

inline void print_header(const char* figure, const char* what) {
  const auto info = probe_machine();
  std::printf("== %s ==\n%s\n", figure, what);
  std::printf("machine: %zu hw threads | scale=%.3g rounds=%d\n",
              info.logical_cpus, env_scale(), env_rounds());
  std::printf(
      "note: paper machines have 16-64 hw threads; see EXPERIMENTS.md for "
      "the oversubscription caveat\n\n");
}

inline void print_box_row(std::size_t procs, const box& b,
                          const char* unit = "") {
  std::printf(
      "P=%-3zu  min=%-9.4f q1=%-9.4f med=%-9.4f q3=%-9.4f max=%-9.4f "
      "(n=%zu)%s\n",
      procs, b.min, b.q1, b.median, b.q3, b.max, b.n, unit);
}

}  // namespace lcws::benchh
