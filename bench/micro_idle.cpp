// Microbenchmark for adaptive worker parking (elastic idling).
//
// Two phases, each run for every scheduler kind with parking enabled and
// disabled (the LCWS_NO_PARKING kill-switch, applied here via the
// constructor knob so one process measures both):
//
//   idle-CPU   worker 0 runs a ~200ms *sequential* spin inside run() at
//              P=8 while the other 7 workers have nothing to do. The CPU
//              time those workers burn is
//                  (process CPU delta) - (worker 0's thread CPU delta);
//              with parking they should sleep, without it they spin. This
//              is the paper's Section 1.1 regime in miniature: on a shared
//              or oversubscribed machine, spinning thieves tax the one
//              thread doing real work.
//
//   wake       after a ~5ms sequential quiesce (long enough for every
//              idle worker to park), a burst — a pardo tree of 64 leaves,
//              ~50us of work each — measures how quickly parked workers
//              come back: the makespan includes wake latency. Reported as
//              the median of kBurstReps bursts.
//
// Output: a human table plus, when LCWS_BENCH_JSON is set, one JSON object
// per (kind, parking) cell with the raw numbers (used to produce
// BENCH_idle.json).
#include <time.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sched/dispatch.h"
#include "support/timing.h"

using namespace lcws;

namespace {

constexpr std::size_t kWorkers = 8;
constexpr double kIdlePhaseSeconds = 0.2;
constexpr double kQuiesceSeconds = 0.005;
constexpr int kBurstReps = 21;
constexpr int kBurstDepth = 6;  // 2^6 = 64 leaves
constexpr std::uint64_t kLeafSpinNs = 50 * 1000;

double cpu_seconds(clockid_t id) {
  timespec ts{};
  clock_gettime(id, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

// Busy work that the optimizer cannot elide or hoist.
void spin_for_ns(std::uint64_t ns) {
  stopwatch sw;
  volatile std::uint64_t sink = 0;
  while (sw.elapsed_ns() < ns) {
    for (int i = 0; i < 64; ++i) sink = sink + 1;
  }
}

template <typename Sched>
void burst_tree(Sched& sched, int depth) {
  if (depth == 0) {
    spin_for_ns(kLeafSpinNs);
    return;
  }
  sched.pardo([&] { burst_tree(sched, depth - 1); },
              [&] { burst_tree(sched, depth - 1); });
}

struct measurement {
  double idle_cpu_s = 0;   // CPU burned by the 7 idle workers
  double burst_med_s = 0;  // median post-quiesce burst makespan
  std::uint64_t parks = 0;
  std::uint64_t wakes = 0;
  std::uint64_t idle_ns = 0;
};

measurement measure(sched_kind kind, parking_mode parking) {
  measurement m;
  with_scheduler(kind, kWorkers, parking, [&](auto& sched) {
    sched.reset_counters();
    sched.run([&] {
      // Phase 1: idle CPU while worker 0 works alone.
      const double p0 = cpu_seconds(CLOCK_PROCESS_CPUTIME_ID);
      const double t0 = cpu_seconds(CLOCK_THREAD_CPUTIME_ID);
      spin_for_ns(static_cast<std::uint64_t>(kIdlePhaseSeconds * 1e9));
      const double p1 = cpu_seconds(CLOCK_PROCESS_CPUTIME_ID);
      const double t1 = cpu_seconds(CLOCK_THREAD_CPUTIME_ID);
      m.idle_cpu_s = (p1 - p0) - (t1 - t0);

      // Phase 2: wake latency after quiesce.
      std::vector<double> bursts;
      bursts.reserve(kBurstReps);
      for (int rep = 0; rep < kBurstReps; ++rep) {
        spin_for_ns(static_cast<std::uint64_t>(kQuiesceSeconds * 1e9));
        stopwatch sw;
        burst_tree(sched, kBurstDepth);
        bursts.push_back(sw.elapsed_seconds());
      }
      std::sort(bursts.begin(), bursts.end());
      m.burst_med_s = bursts[bursts.size() / 2];
    });
    const auto t = sched.profile().totals;
    m.parks = t.parks;
    m.wakes = t.wakes;
    m.idle_ns = t.idle_ns;
  });
  return m;
}

void maybe_append_json(sched_kind kind, const char* mode,
                       const measurement& m) {
  const char* path = std::getenv("LCWS_BENCH_JSON");
  if (path == nullptr) return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(
      f,
      "{\"benchmark\":\"micro_idle\",\"scheduler\":\"%s\",\"parking\":\"%s\","
      "\"procs\":%zu,\"idle_cpu_s\":%.6f,\"burst_median_s\":%.6f,"
      "\"parks\":%llu,\"wakes\":%llu,\"idle_ns\":%llu}\n",
      to_string(kind), mode, kWorkers, m.idle_cpu_s, m.burst_med_s,
      static_cast<unsigned long long>(m.parks),
      static_cast<unsigned long long>(m.wakes),
      static_cast<unsigned long long>(m.idle_ns));
  std::fclose(f);
}

}  // namespace

int main() {
  std::printf("== micro_idle: adaptive parking (elastic idling) ==\n");
  std::printf(
      "P=%zu | idle phase %.0fms sequential spin | burst: %d leaves x "
      "%llu us after %.0fms quiesce, median of %d\n\n",
      kWorkers, kIdlePhaseSeconds * 1e3, 1 << kBurstDepth,
      static_cast<unsigned long long>(kLeafSpinNs / 1000),
      kQuiesceSeconds * 1e3, kBurstReps);
  std::printf("%-16s %-8s %12s %12s %8s %8s\n", "scheduler", "parking",
              "idle-cpu (s)", "burst (ms)", "parks", "wakes");
  for (const sched_kind kind : all_sched_kinds) {
    measurement on = measure(kind, parking_mode::enabled);
    measurement off = measure(kind, parking_mode::disabled);
    std::printf("%-16s %-8s %12.4f %12.3f %8llu %8llu\n", to_string(kind),
                "on", on.idle_cpu_s, on.burst_med_s * 1e3,
                static_cast<unsigned long long>(on.parks),
                static_cast<unsigned long long>(on.wakes));
    std::printf("%-16s %-8s %12.4f %12.3f %8llu %8llu\n", to_string(kind),
                "off", off.idle_cpu_s, off.burst_med_s * 1e3,
                static_cast<unsigned long long>(off.parks),
                static_cast<unsigned long long>(off.wakes));
    if (off.idle_cpu_s > 0) {
      std::printf("%-16s idle-cpu reduction: %.1f%%\n", "",
                  100.0 * (1.0 - on.idle_cpu_s / off.idle_cpu_s));
    }
    maybe_append_json(kind, "on", on);
    maybe_append_json(kind, "off", off);
  }
  return 0;
}
