// Related-work comparison (paper Section 2): the signal-based LCWS
// scheduler against the baselines its design is contrasted with —
// classic WS (fully concurrent deques) and the private-deques /
// steal-request approach of Acar et al. (PPoPP '13) — on a subset of the
// PBBS configurations, reporting both time and the synchronization
// profile that explains it.
#include <cstdio>
#include <vector>

#include "harness.h"

using namespace lcws;
using namespace lcws::benchh;

int main() {
  print_header("Related work",
               "WS vs signal LCWS vs private deques (Acar et al.) vs Lace-style");
  const auto procs = env_procs({2, 4});
  const std::vector<sched_kind> kinds = {
      sched_kind::ws, sched_kind::signal, sched_kind::private_deques,
      sched_kind::lace};
  const auto cells = sweep(kinds, procs);
  const sweep_index index(cells);

  for (const auto p : procs) {
    std::printf("-- P=%zu: speedup wrt WS --\n", p);
    for (const auto kind :
         {sched_kind::signal, sched_kind::private_deques, sched_kind::lace}) {
      const auto s = speedups_vs_ws(cells, index, kind, p);
      const auto b = box_of(s);
      std::printf("%-16s mean=%.4f  ", to_string(kind), mean_of(s));
      print_box_row(p, b);
    }
  }

  std::printf("\n-- aggregate synchronization profile (all configs, all P) --\n");
  std::printf("%-16s %12s %12s %12s %12s %12s\n", "scheduler", "fences",
              "cas", "steals", "attempts", "unexposed");
  for (const auto kind : kinds) {
    stats::op_counters totals;
    for (const auto& c : cells) {
      if (c.kind == kind) totals += c.result.profile.totals;
    }
    std::printf("%-16s %12llu %12llu %12llu %12llu %12llu\n",
                to_string(kind),
                static_cast<unsigned long long>(totals.fences),
                static_cast<unsigned long long>(totals.cas),
                static_cast<unsigned long long>(totals.steals),
                static_cast<unsigned long long>(totals.steal_attempts),
                static_cast<unsigned long long>(totals.unexposures));
  }
  return 0;
}
