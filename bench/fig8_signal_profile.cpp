// Reproduces Figure 8 (paper Section 5.3): profile of the signal-based
// LCWS implementation, varying the number of processors, over all
// benchmark configurations.
//   8a  Signal memory fences / WS memory fences
//   8b  Signal CAS / WS CAS
//   8c  Signal successful steals / WS successful steals
//   8d  % of exposed work not stolen under Signal
//   8e  Signal memory fences / USLCWS memory fences
//   8f  Signal CAS / USLCWS CAS
//   8g  Signal steals / USLCWS steals
//   8h  Signal unstolen-fraction / USLCWS unstolen-fraction
#include <cstdio>
#include <vector>

#include "harness.h"

using namespace lcws;
using namespace lcws::benchh;

namespace {

void panel_ratio(const char* title, const std::vector<cell>& cells,
                 const sweep_index& index,
                 const std::vector<std::size_t>& procs, sched_kind den,
                 stats::relaxed_counter stats::op_counters::*field) {
  std::printf("\n-- %s --\n", title);
  for (const auto p : procs) {
    print_box_row(
        p, box_of(counter_ratios(cells, index, sched_kind::signal, den, p,
                                 [field](const stats::profile& pr) {
                                   return pr.totals.*field;
                                 })));
  }
}

}  // namespace

int main() {
  print_header("Figure 8", "signal-based LCWS profile vs WS and vs USLCWS");
  const auto procs = env_procs({2, 4, 8});
  const auto cells = sweep(
      {sched_kind::ws, sched_kind::uslcws, sched_kind::signal}, procs);
  const sweep_index index(cells);

  panel_ratio("8a: Signal mem. fences / WS mem. fences", cells, index, procs,
              sched_kind::ws, &stats::op_counters::fences);
  panel_ratio("8b: Signal CAS / WS CAS", cells, index, procs, sched_kind::ws,
              &stats::op_counters::cas);
  panel_ratio("8c: Signal steals / WS steals", cells, index, procs,
              sched_kind::ws, &stats::op_counters::steals);

  std::printf("\n-- 8d: %% of exposed work not stolen (Signal) --\n");
  for (const auto p : procs) {
    std::vector<double> fractions;
    for (const auto& c : cells) {
      if (c.kind != sched_kind::signal || c.procs != p) continue;
      fractions.push_back(c.result.profile.exposed_not_stolen_fraction());
    }
    print_box_row(p, box_of(std::move(fractions)));
  }

  panel_ratio("8e: Signal mem. fences / USLCWS mem. fences", cells, index,
              procs, sched_kind::uslcws, &stats::op_counters::fences);
  panel_ratio("8f: Signal CAS / USLCWS CAS", cells, index, procs,
              sched_kind::uslcws, &stats::op_counters::cas);
  panel_ratio("8g: Signal steals / USLCWS steals", cells, index, procs,
              sched_kind::uslcws, &stats::op_counters::steals);

  std::printf("\n-- 8h: Signal unstolen fraction / USLCWS unstolen fraction --\n");
  for (const auto p : procs) {
    std::vector<double> ratios;
    for (const auto& c : cells) {
      if (c.kind != sched_kind::signal || c.procs != p) continue;
      const cell* base = index.find(c.cfg, p, sched_kind::uslcws);
      if (base == nullptr) continue;
      const double d = base->result.profile.exposed_not_stolen_fraction();
      if (d > 0) {
        ratios.push_back(c.result.profile.exposed_not_stolen_fraction() / d);
      }
    }
    print_box_row(p, box_of(std::move(ratios)));
  }
  return 0;
}
