// Reproduces Figure 4 (paper Section 5.1): box plots of the speedup of
// USLCWS with regard to WS, varying the number of processors, across all
// input instances of all benchmarks. (The paper shows one sub-figure per
// machine; this harness reports the local machine.)
#include <cstdio>

#include "harness.h"

using namespace lcws;
using namespace lcws::benchh;

int main() {
  print_header("Figure 4",
               "speedup of USLCWS wrt WS (box over all configs; >1 means "
               "USLCWS is faster)");
  const auto procs = env_procs({1, 2, 4, 8});
  const auto cells = sweep({sched_kind::ws, sched_kind::uslcws}, procs);
  const sweep_index index(cells);
  for (const auto p : procs) {
    print_box_row(p,
                  box_of(speedups_vs_ws(cells, index, sched_kind::uslcws, p)));
  }
  return 0;
}
