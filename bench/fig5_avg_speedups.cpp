// Reproduces Figure 5: average speedups with regard to WS of all four LCWS
// variants (User = USLCWS, Signal, Cons = Conservative Exposure, Half =
// Expose Half), varying the number of processors across all benchmark
// configurations.
#include <cstdio>

#include "harness.h"

using namespace lcws;
using namespace lcws::benchh;

int main() {
  print_header("Figure 5",
               "average speedup wrt WS per variant (one column per P)");
  const auto procs = env_procs({1, 2, 4, 8});
  const auto cells = sweep({sched_kind::ws, sched_kind::uslcws,
                            sched_kind::signal, sched_kind::conservative,
                            sched_kind::expose_half},
                           procs);
  const sweep_index index(cells);

  std::printf("%-14s", "variant");
  for (const auto p : procs) std::printf("  P=%-7zu", p);
  std::printf("\n");
  for (const sched_kind kind : lcws_sched_kinds) {
    std::printf("%-14s", to_string(kind));
    for (const auto p : procs) {
      std::printf("  %-9.4f", mean_of(speedups_vs_ws(cells, index, kind, p)));
    }
    std::printf("\n");
  }
  return 0;
}
